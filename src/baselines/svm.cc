#include "src/baselines/svm.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/index/union_find.h"

namespace dime {

Status LinearSvm::Train(const std::vector<LabeledPair>& pairs,
                        const SvmOptions& options) {
  weights_.clear();
  mean_.clear();
  stddev_.clear();
  bias_ = 0.0;
  if (pairs.empty()) {
    return InvalidArgumentError("LinearSvm: empty training set");
  }
  const size_t dim = pairs[0].features.size();
  for (const LabeledPair& p : pairs) {
    if (p.features.size() != dim) {
      return InvalidArgumentError(
          "LinearSvm: inconsistent feature widths (" +
          std::to_string(p.features.size()) + " vs " + std::to_string(dim) +
          ")");
    }
  }

  // Standardize features with training statistics.
  mean_.assign(dim, 0.0);
  stddev_.assign(dim, 0.0);
  for (const LabeledPair& p : pairs) {
    for (size_t i = 0; i < dim; ++i) mean_[i] += p.features[i];
  }
  for (size_t i = 0; i < dim; ++i) mean_[i] /= static_cast<double>(pairs.size());
  for (const LabeledPair& p : pairs) {
    for (size_t i = 0; i < dim; ++i) {
      double d = p.features[i] - mean_[i];
      stddev_[i] += d * d;
    }
  }
  for (size_t i = 0; i < dim; ++i) {
    stddev_[i] = std::sqrt(stddev_[i] / static_cast<double>(pairs.size()));
    if (stddev_[i] < 1e-12) stddev_[i] = 1.0;
  }

  // Balanced class weights: w_c = n / (2 * n_c).
  size_t n_pos = 0;
  for (const LabeledPair& p : pairs) n_pos += p.positive ? 1 : 0;
  size_t n_neg = pairs.size() - n_pos;
  double w_pos = 1.0, w_neg = 1.0;
  if (options.balanced_class_weights && n_pos > 0 && n_neg > 0) {
    w_pos = static_cast<double>(pairs.size()) / (2.0 * n_pos);
    w_neg = static_cast<double>(pairs.size()) / (2.0 * n_neg);
  }

  weights_.assign(dim, 0.0);
  bias_ = 0.0;

  // Pegasos: step 1/(lambda * t), sample uniformly.
  Random rng(options.seed);
  uint64_t t = 1;
  std::vector<double> x(dim);
  const size_t steps =
      static_cast<size_t>(options.epochs) * pairs.size();
  for (size_t step = 0; step < steps; ++step, ++t) {
    const LabeledPair& p = pairs[rng.Uniform(pairs.size())];
    for (size_t i = 0; i < dim; ++i) {
      x[i] = (p.features[i] - mean_[i]) / stddev_[i];
    }
    double y = p.positive ? 1.0 : -1.0;
    double cls_w = p.positive ? w_pos : w_neg;
    double margin = y * (std::inner_product(x.begin(), x.end(),
                                            weights_.begin(), 0.0) +
                         bias_);
    double eta = 1.0 / (options.lambda * static_cast<double>(t));
    // L2 shrink on w (not on bias).
    double shrink = 1.0 - eta * options.lambda;
    if (shrink < 0.0) shrink = 0.0;
    for (double& w : weights_) w *= shrink;
    if (margin < 1.0) {
      for (size_t i = 0; i < dim; ++i) weights_[i] += eta * cls_w * y * x[i];
      bias_ += eta * cls_w * y;
    }
  }
  return OkStatus();
}

double LinearSvm::Decision(const std::vector<double>& features) const {
  if (features.size() != weights_.size()) return 0.0;
  double sum = bias_;
  for (size_t i = 0; i < features.size(); ++i) {
    sum += weights_[i] * (features[i] - mean_[i]) / stddev_[i];
  }
  return sum;
}

std::vector<int> SvmDiscover(const Group& group,
                             const std::vector<FeatureSpec>& specs,
                             const LinearSvm& model,
                             const DimeContext& context) {
  const int n = static_cast<int>(group.size());
  std::vector<int> flagged;
  if (n == 0) return flagged;

  std::vector<Predicate> preds;
  preds.reserve(specs.size());
  for (const FeatureSpec& s : specs) preds.push_back(s.WithThreshold(0.0));
  PreparedGroup pg = PrepareGroupForPredicates(group, preds, context);

  // Every pair is classified (no transitivity shortcut: that is DIME's
  // optimization, not the SVM baseline's).
  UnionFind uf(static_cast<size_t>(n));
  std::vector<double> features(specs.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      for (size_t s = 0; s < preds.size(); ++s) {
        features[s] = PredicateSimilarity(pg, preds[s], i, j);
      }
      if (model.Predict(features)) uf.Union(i, j);
    }
  }

  std::vector<std::vector<int>> components = uf.Components();
  size_t largest = 0, best_size = 0;
  for (size_t c = 0; c < components.size(); ++c) {
    if (components[c].size() > best_size) {
      best_size = components[c].size();
      largest = c;
    }
  }
  for (size_t c = 0; c < components.size(); ++c) {
    if (c == largest) continue;
    flagged.insert(flagged.end(), components[c].begin(), components[c].end());
  }
  std::sort(flagged.begin(), flagged.end());
  return flagged;
}

PairLearner MakeSvmLearner(const SvmOptions& options) {
  return [options](const std::vector<LabeledPair>& train) -> PairClassifier {
    auto model = std::make_shared<LinearSvm>();
    Status trained = model->Train(train, options);
    if (!trained.ok()) {
      DIME_LOG(WARNING) << "SVM learner degraded to predict-false: "
                        << trained.ToString();
    }
    return [model](const std::vector<double>& features) {
      return model->Predict(features);
    };
  };
}

}  // namespace dime
