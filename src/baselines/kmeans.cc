#include "src/baselines/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace dime {
namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

KMeansResult RunKMeans(const std::vector<std::vector<double>>& points, int k,
                       int max_iterations, uint64_t seed) {
  KMeansResult result;
  const size_t n = points.size();
  if (n == 0 || k <= 0) return result;
  k = std::min<int>(k, static_cast<int>(n));

  // k-means++-style farthest-point seeding.
  Random rng(seed);
  result.centroids.push_back(points[rng.Uniform(n)]);
  std::vector<double> dist(n, std::numeric_limits<double>::max());
  while (static_cast<int>(result.centroids.size()) < k) {
    size_t farthest = 0;
    double best = -1.0;
    for (size_t i = 0; i < n; ++i) {
      dist[i] = std::min(dist[i],
                         SquaredDistance(points[i], result.centroids.back()));
      if (dist[i] > best) {
        best = dist[i];
        farthest = i;
      }
    }
    result.centroids.push_back(points[farthest]);
  }

  result.assignment.assign(n, 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    ++result.iterations;
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      int best_c = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        double d = SquaredDistance(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best_c = c;
        }
      }
      if (best_c != result.assignment[i]) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    const size_t dim = points[0].size();
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      ++counts[result.assignment[i]];
      for (size_t d = 0; d < dim; ++d) {
        sums[result.assignment[i]][d] += points[i][d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  return result;
}

std::vector<int> KMeansDiscover(const Group& group,
                                const std::vector<FeatureSpec>& specs,
                                const DimeContext& context, int num_anchors,
                                uint64_t seed) {
  const int n = static_cast<int>(group.size());
  std::vector<int> flagged;
  if (n < 2) return flagged;

  std::vector<Predicate> preds;
  preds.reserve(specs.size());
  for (const FeatureSpec& s : specs) preds.push_back(s.WithThreshold(0.0));
  PreparedGroup pg = PrepareGroupForPredicates(group, preds, context);

  Random rng(seed);
  std::vector<size_t> anchors = rng.SampleWithoutReplacement(
      static_cast<size_t>(n),
      std::min<size_t>(static_cast<size_t>(num_anchors),
                       static_cast<size_t>(n)));

  // Embedding: mean per-spec similarity to each anchor.
  std::vector<std::vector<double>> points(n);
  for (int e = 0; e < n; ++e) {
    points[e].reserve(anchors.size());
    for (size_t a : anchors) {
      double sum = 0.0;
      for (const Predicate& p : preds) {
        sum += PredicateSimilarity(pg, p, e, static_cast<int>(a));
      }
      points[e].push_back(sum / static_cast<double>(preds.size()));
    }
  }

  KMeansResult km = RunKMeans(points, 2, 50, seed + 1);
  size_t count0 = 0;
  for (int a : km.assignment) count0 += a == 0 ? 1 : 0;
  int minority = count0 * 2 <= static_cast<size_t>(n) ? 0 : 1;
  for (int e = 0; e < n; ++e) {
    if (km.assignment[e] == minority) flagged.push_back(e);
  }
  return flagged;
}

}  // namespace dime
