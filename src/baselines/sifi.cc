#include "src/baselines/sifi.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <set>

#include "src/common/logging.h"

namespace dime {
namespace {

constexpr double kEps = 1e-9;

int Objective(const SifiStructure& structure,
              const std::vector<std::vector<double>>& thresholds,
              const std::vector<LabeledPair>& pairs) {
  int score = 0;
  for (const LabeledPair& p : pairs) {
    if (SifiPredict(structure, thresholds, p.features)) {
      score += p.positive ? 1 : -1;
    }
  }
  return score;
}

}  // namespace

bool SifiPredict(const SifiStructure& structure,
                 const std::vector<std::vector<double>>& thresholds,
                 const std::vector<double>& features) {
  for (size_t c = 0; c < structure.conjunctions.size(); ++c) {
    bool all = true;
    for (size_t s = 0; s < structure.conjunctions[c].size(); ++s) {
      int spec = structure.conjunctions[c][s];
      // A slot outside the feature vector cannot be satisfied.
      if (spec < 0 || static_cast<size_t>(spec) >= features.size() ||
          features[spec] < thresholds[c][s] - kEps) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

StatusOr<SifiResult> TrainSifi(const std::vector<LabeledPair>& pairs,
                               const SifiStructure& structure) {
  if (pairs.empty()) {
    return InvalidArgumentError("SIFI: empty training set");
  }
  size_t num_specs = pairs[0].features.size();
  for (const LabeledPair& p : pairs) {
    if (p.features.size() != num_specs) {
      return InvalidArgumentError(
          "SIFI: inconsistent feature widths (" +
          std::to_string(p.features.size()) + " vs " +
          std::to_string(num_specs) + ")");
    }
  }
  for (const std::vector<int>& conjunction : structure.conjunctions) {
    for (int spec : conjunction) {
      if (spec < 0 || static_cast<size_t>(spec) >= num_specs) {
        return InvalidArgumentError(
            "SIFI: structure references spec " + std::to_string(spec) +
            " but features have " + std::to_string(num_specs) + " slots");
      }
    }
  }
  SifiResult result;

  // Candidate thresholds per spec: the observed feature values (Theorem 3
  // restricts the search to these), plus a value above the max so a slot
  // can be effectively disabled.
  std::vector<std::vector<double>> grid(num_specs);
  for (size_t s = 0; s < num_specs; ++s) {
    std::set<double> values;
    double max_v = 0.0;
    for (const LabeledPair& p : pairs) {
      values.insert(p.features[s]);
      max_v = std::max(max_v, p.features[s]);
    }
    grid[s].assign(values.begin(), values.end());
    grid[s].push_back(max_v + 1.0);
  }

  // Initialize every slot at the median observed value of its spec.
  result.thresholds.resize(structure.conjunctions.size());
  for (size_t c = 0; c < structure.conjunctions.size(); ++c) {
    for (int spec : structure.conjunctions[c]) {
      const std::vector<double>& g = grid[spec];
      result.thresholds[c].push_back(g[g.size() / 2]);
    }
  }

  int best = Objective(structure, result.thresholds, pairs);
  bool improved = true;
  while (improved) {
    improved = false;
    ++result.iterations;
    for (size_t c = 0; c < structure.conjunctions.size(); ++c) {
      for (size_t s = 0; s < structure.conjunctions[c].size(); ++s) {
        double original = result.thresholds[c][s];
        double best_value = original;
        for (double v : grid[structure.conjunctions[c][s]]) {
          result.thresholds[c][s] = v;
          int obj = Objective(structure, result.thresholds, pairs);
          if (obj > best) {
            best = obj;
            best_value = v;
            improved = true;
          }
        }
        result.thresholds[c][s] = best_value;
      }
    }
    if (result.iterations > 50) break;  // safety net; converges in a few
  }
  result.objective = best;
  return result;
}

SifiResult SifiSearch(const std::vector<LabeledPair>& pairs,
                      const SifiStructure& structure) {
  StatusOr<SifiResult> fitted = TrainSifi(pairs, structure);
  if (fitted.ok()) return std::move(fitted).value();
  DIME_LOG(WARNING) << "SifiSearch degraded to match-nothing thresholds: "
                    << fitted.status().ToString();
  // Thresholds no feature can reach: the predictor matches nothing.
  SifiResult none;
  none.thresholds.resize(structure.conjunctions.size());
  for (size_t c = 0; c < structure.conjunctions.size(); ++c) {
    none.thresholds[c].assign(structure.conjunctions[c].size(),
                              std::numeric_limits<double>::infinity());
  }
  return none;
}

PairLearner MakeSifiLearner(const SifiStructure& structure) {
  return [structure](const std::vector<LabeledPair>& train) -> PairClassifier {
    SifiResult fitted = SifiSearch(train, structure);
    auto thresholds =
        std::make_shared<std::vector<std::vector<double>>>(fitted.thresholds);
    return [structure, thresholds](const std::vector<double>& features) {
      return SifiPredict(structure, *thresholds, features);
    };
  };
}

}  // namespace dime
