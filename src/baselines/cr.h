#ifndef DIME_BASELINES_CR_H_
#define DIME_BASELINES_CR_H_

#include <vector>

#include "src/entity/entity.h"

/// \file cr.h
/// The CR baseline: collective relational entity resolution in the style of
/// Bhattacharya & Getoor (TKDD'07), as used in the paper's Exp-1/Exp-5.
/// Agglomerative clustering over a combined similarity
///
///   sim(C1, C2) = alpha * attribute_sim + (1 - alpha) * relational_sim
///
/// where attribute_sim averages Jaccard over the word-token sets of the
/// configured "attribute" attributes and relational_sim averages Jaccard
/// over the reference sets (co-author names, co-viewed ASINs, ...) of the
/// configured "reference" attributes. Cluster pairs are merged greedily in
/// descending similarity until the best similarity drops below the
/// termination threshold (the paper tries {0.5, 0.6, 0.7} and reports the
/// best). Entities outside the largest final cluster are reported as
/// mis-categorized, mirroring the paper's adaptation of CR to this
/// problem.

namespace dime {

struct CrConfig {
  std::vector<int> attribute_attrs;  ///< word-token attribute similarity
  std::vector<int> reference_attrs;  ///< value-list relational similarity
  double alpha = 0.5;                ///< weight of attribute similarity
  double threshold = 0.6;            ///< stop merging below this similarity
  /// Candidate termination thresholds for RunCrBestThreshold. The paper
  /// tries {0.5, 0.6, 0.7} on its distance scale; the presets provide
  /// values matched to this implementation's Jaccard-based scale.
  std::vector<double> candidate_thresholds{0.5, 0.6, 0.7};
};

struct CrResult {
  std::vector<std::vector<int>> clusters;  ///< ordered by smallest member
  std::vector<int> flagged;                ///< outside the largest cluster
  size_t merges = 0;
  size_t similarity_evaluations = 0;
};

/// Runs collective relational clustering on one group.
CrResult RunCr(const Group& group, const CrConfig& config);

/// Runs CR for each threshold and returns the result whose flagged set has
/// the best F-measure against the group's ground truth (the paper's "we
/// tried three termination thresholds and reported the best").
CrResult RunCrBestThreshold(const Group& group, CrConfig config,
                            const std::vector<double>& thresholds);

}  // namespace dime

#endif  // DIME_BASELINES_CR_H_
