#include "src/baselines/cr.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/core/metrics.h"
#include "src/sim/set_similarity.h"
#include "src/text/token_dictionary.h"
#include "src/text/tokenizer.h"

namespace dime {
namespace {

/// Sorted-unique token ids of one cluster for one attribute.
using TokenSet = std::vector<uint32_t>;

TokenSet UnionSets(const TokenSet& a, const TokenSet& b) {
  TokenSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

struct Cluster {
  std::vector<int> members;
  std::vector<TokenSet> attr_tokens;  ///< parallel to attribute_attrs
  std::vector<TokenSet> ref_tokens;   ///< parallel to reference_attrs
  int version = 0;
  bool alive = true;
};

double ClusterSimilarity(const Cluster& a, const Cluster& b, double alpha,
                         size_t* evals) {
  ++*evals;
  double attr_sim = 0.0;
  if (!a.attr_tokens.empty()) {
    for (size_t i = 0; i < a.attr_tokens.size(); ++i) {
      attr_sim += JaccardSim(a.attr_tokens[i], b.attr_tokens[i]);
    }
    attr_sim /= static_cast<double>(a.attr_tokens.size());
  }
  double rel_sim = 0.0;
  if (!a.ref_tokens.empty()) {
    for (size_t i = 0; i < a.ref_tokens.size(); ++i) {
      rel_sim += JaccardSim(a.ref_tokens[i], b.ref_tokens[i]);
    }
    rel_sim /= static_cast<double>(a.ref_tokens.size());
  }
  if (a.attr_tokens.empty()) return rel_sim;
  if (a.ref_tokens.empty()) return attr_sim;
  return alpha * attr_sim + (1.0 - alpha) * rel_sim;
}

struct QueueEntry {
  double sim;
  int c1, c2;
  int v1, v2;  ///< cluster versions at push time (stale detection)
  bool operator<(const QueueEntry& other) const { return sim < other.sim; }
};

}  // namespace

CrResult RunCr(const Group& group, const CrConfig& config) {
  CrResult result;
  const int n = static_cast<int>(group.size());
  if (n == 0) return result;

  // Tokenize each entity once per configured attribute.
  TokenDictionary dict;
  std::vector<Cluster> clusters(n);
  for (int e = 0; e < n; ++e) {
    Cluster& c = clusters[e];
    c.members = {e};
    for (int attr : config.attribute_attrs) {
      std::string joined;
      for (const std::string& v : group.entities[e].value(attr)) {
        joined += v;
        joined.push_back(' ');
      }
      TokenSet set;
      for (const std::string& t : WordTokenizeUnique(joined)) {
        set.push_back(dict.Intern(t));
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
      c.attr_tokens.push_back(std::move(set));
    }
    for (int attr : config.reference_attrs) {
      TokenSet set;
      for (const std::string& v : group.entities[e].value(attr)) {
        set.push_back(dict.Intern(ToLower(std::string(Trim(v)))));
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
      c.ref_tokens.push_back(std::move(set));
    }
  }

  // Candidate neighbors: clusters sharing any token on any configured
  // attribute (clusters with zero similarity can never merge).
  std::unordered_map<uint32_t, std::vector<int>> postings;
  for (int e = 0; e < n; ++e) {
    std::unordered_set<uint32_t> all;
    for (const TokenSet& s : clusters[e].attr_tokens) {
      all.insert(s.begin(), s.end());
    }
    for (const TokenSet& s : clusters[e].ref_tokens) {
      all.insert(s.begin(), s.end());
    }
    for (uint32_t t : all) postings[t].push_back(e);
  }
  std::vector<std::unordered_set<int>> neighbors(n);
  for (const auto& [token, list] : postings) {
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        neighbors[list[i]].insert(list[j]);
        neighbors[list[j]].insert(list[i]);
      }
    }
  }

  std::priority_queue<QueueEntry> queue;
  for (int e = 0; e < n; ++e) {
    for (int other : neighbors[e]) {
      if (other <= e) continue;
      double sim = ClusterSimilarity(clusters[e], clusters[other],
                                     config.alpha,
                                     &result.similarity_evaluations);
      if (sim >= config.threshold) {
        queue.push(QueueEntry{sim, e, other, 0, 0});
      }
    }
  }

  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    Cluster& a = clusters[top.c1];
    Cluster& b = clusters[top.c2];
    if (!a.alive || !b.alive || a.version != top.v1 || b.version != top.v2) {
      continue;  // stale entry
    }
    if (top.sim < config.threshold) break;

    // Merge b into a.
    ++result.merges;
    a.members.insert(a.members.end(), b.members.begin(), b.members.end());
    for (size_t i = 0; i < a.attr_tokens.size(); ++i) {
      a.attr_tokens[i] = UnionSets(a.attr_tokens[i], b.attr_tokens[i]);
    }
    for (size_t i = 0; i < a.ref_tokens.size(); ++i) {
      a.ref_tokens[i] = UnionSets(a.ref_tokens[i], b.ref_tokens[i]);
    }
    b.alive = false;
    ++a.version;
    for (int nb : neighbors[top.c2]) {
      if (nb != top.c1) neighbors[top.c1].insert(nb);
    }
    neighbors[top.c2].clear();

    // Refresh similarities from the merged cluster to its neighbors (the
    // iterative re-evaluation the paper attributes CR's cost to).
    for (int nb : neighbors[top.c1]) {
      if (!clusters[nb].alive || nb == top.c1) continue;
      double sim = ClusterSimilarity(a, clusters[nb], config.alpha,
                                     &result.similarity_evaluations);
      if (sim >= config.threshold) {
        queue.push(QueueEntry{sim, top.c1, nb, a.version,
                              clusters[nb].version});
      }
    }
  }

  // Collect final clusters, ordered by smallest member.
  for (Cluster& c : clusters) {
    if (!c.alive) continue;
    std::sort(c.members.begin(), c.members.end());
    result.clusters.push_back(c.members);
  }
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a[0] < b[0];
            });

  // Everything outside the largest cluster is flagged.
  size_t largest = 0;
  size_t best_size = 0;
  for (size_t i = 0; i < result.clusters.size(); ++i) {
    if (result.clusters[i].size() > best_size) {
      best_size = result.clusters[i].size();
      largest = i;
    }
  }
  for (size_t i = 0; i < result.clusters.size(); ++i) {
    if (i == largest) continue;
    result.flagged.insert(result.flagged.end(), result.clusters[i].begin(),
                          result.clusters[i].end());
  }
  std::sort(result.flagged.begin(), result.flagged.end());
  return result;
}

CrResult RunCrBestThreshold(const Group& group, CrConfig config,
                            const std::vector<double>& thresholds) {
  DIME_CHECK(group.has_truth());
  DIME_CHECK(!thresholds.empty());
  CrResult best;
  double best_f1 = -1.0;
  for (double t : thresholds) {
    config.threshold = t;
    CrResult r = RunCr(group, config);
    double f1 = EvaluateFlagged(group, r.flagged).f1;
    if (f1 > best_f1) {
      best_f1 = f1;
      best = std::move(r);
    }
  }
  return best;
}

}  // namespace dime
