#include "src/baselines/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "src/common/logging.h"

namespace dime {
namespace {

double Gini(size_t pos, size_t total) {
  if (total == 0) return 0.0;
  double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Train(const std::vector<LabeledPair>& pairs,
                           const DecisionTreeOptions& options) {
  nodes_.clear();
  if (pairs.empty()) {
    return InvalidArgumentError("DecisionTree: empty training set");
  }
  const size_t dim = pairs[0].features.size();
  for (const LabeledPair& p : pairs) {
    if (p.features.size() != dim) {
      return InvalidArgumentError(
          "DecisionTree: inconsistent feature widths (" +
          std::to_string(p.features.size()) + " vs " + std::to_string(dim) +
          ")");
    }
  }
  std::vector<int> indices(pairs.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = static_cast<int>(i);
  Build(&indices, pairs, 0, options);
  return OkStatus();
}

int DecisionTree::Build(std::vector<int>* indices,
                        const std::vector<LabeledPair>& pairs, int depth,
                        const DecisionTreeOptions& options) {
  size_t pos = 0;
  for (int i : *indices) pos += pairs[i].positive ? 1 : 0;
  const size_t total = indices->size();

  int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].label = pos * 2 >= total;

  bool pure = pos == 0 || pos == total;
  if (pure || depth >= options.max_depth ||
      total < 2 * options.min_leaf_size) {
    return node_id;
  }

  // Best Gini split over all features and observed midpoints.
  const size_t dim = pairs[(*indices)[0]].features.size();
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  double parent_gini = Gini(pos, total);

  std::vector<std::pair<double, bool>> values(total);
  for (size_t f = 0; f < dim; ++f) {
    for (size_t i = 0; i < total; ++i) {
      const LabeledPair& p = pairs[(*indices)[i]];
      values[i] = {p.features[f], p.positive};
    }
    std::sort(values.begin(), values.end());
    size_t left_pos = 0;
    for (size_t i = 0; i + 1 < total; ++i) {
      left_pos += values[i].second ? 1 : 0;
      if (values[i].first == values[i + 1].first) continue;
      size_t left_n = i + 1;
      size_t right_n = total - left_n;
      if (left_n < options.min_leaf_size || right_n < options.min_leaf_size) {
        continue;
      }
      double weighted =
          (static_cast<double>(left_n) * Gini(left_pos, left_n) +
           static_cast<double>(right_n) * Gini(pos - left_pos, right_n)) /
          static_cast<double>(total);
      double gain = parent_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (values[i].first + values[i + 1].first) / 2.0;
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<int> left, right;
  for (int i : *indices) {
    if (pairs[i].features[best_feature] < best_threshold) {
      left.push_back(i);
    } else {
      right.push_back(i);
    }
  }
  if (left.empty() || right.empty()) return node_id;

  nodes_[node_id].leaf = false;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  indices->clear();  // free before recursion
  int left_id = Build(&left, pairs, depth + 1, options);
  nodes_[node_id].left = left_id;
  int right_id = Build(&right, pairs, depth + 1, options);
  nodes_[node_id].right = right_id;
  return node_id;
}

bool DecisionTree::Predict(const std::vector<double>& features) const {
  if (nodes_.empty()) return false;
  int node = 0;
  while (!nodes_[node].leaf) {
    // Features the tree never saw (short vector) take the left branch, as
    // if the value were -inf.
    size_t f = static_cast<size_t>(nodes_[node].feature);
    node = f >= features.size() || features[f] < nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].label;
}

std::vector<LearnedRule> DecisionTree::ExtractPositiveRules() const {
  std::vector<LearnedRule> rules;
  if (nodes_.empty()) return rules;

  struct Frame {
    int node;
    LearnedRule rule;
    bool pure_lower;  ///< path only used ">= threshold" branches
  };
  std::vector<Frame> stack{{0, LearnedRule{}, true}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.node];
    if (node.leaf) {
      if (node.label && f.pure_lower && !f.rule.predicates.empty()) {
        rules.push_back(f.rule);
      }
      continue;
    }
    // Right branch: feature >= threshold (representable).
    Frame right = f;
    right.node = node.right;
    right.rule.predicates.push_back(
        CandidatePredicate{node.feature, node.threshold});
    stack.push_back(std::move(right));
    // Left branch: feature < threshold (upper bound, not representable as a
    // positive-rule conjunct).
    Frame left = f;
    left.node = node.left;
    left.pure_lower = false;
    stack.push_back(std::move(left));
  }
  return rules;
}

PairLearner MakeDecisionTreeLearner(const DecisionTreeOptions& options) {
  return [options](const std::vector<LabeledPair>& train) -> PairClassifier {
    auto tree = std::make_shared<DecisionTree>();
    Status trained = tree->Train(train, options);
    if (!trained.ok()) {
      DIME_LOG(WARNING) << "DecisionTree learner degraded to predict-false: "
                        << trained.ToString();
    }
    return [tree](const std::vector<double>& features) {
      return tree->Predict(features);
    };
  };
}

}  // namespace dime
