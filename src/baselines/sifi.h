#ifndef DIME_BASELINES_SIFI_H_
#define DIME_BASELINES_SIFI_H_

#include <vector>

#include "src/common/status.h"
#include "src/rulegen/candidates.h"
#include "src/rulegen/crossval.h"

/// \file sifi.h
/// The SIFI baseline of Exp-6 (Wang et al., PVLDB'11: "Entity Matching:
/// How similar is similar"): the *structure* of the match rule — which
/// attribute/similarity-function slots appear in which conjunction — is
/// fixed by an expert, and the system searches for the best thresholds.
/// We implement the threshold search as coordinate ascent over the finite
/// candidate thresholds (Theorem 3 grid): repeatedly re-optimize one
/// slot's threshold holding the others fixed, until F converges. The
/// expert structure is the weak point the paper exploits: a suboptimal
/// structure caps achievable F no matter the thresholds.

namespace dime {

/// The expert-given DNF structure: each conjunction lists feature-spec
/// indices (one threshold slot each).
struct SifiStructure {
  std::vector<std::vector<int>> conjunctions;
};

struct SifiResult {
  /// Learned thresholds, parallel to the structure.
  std::vector<std::vector<double>> thresholds;
  int objective = 0;  ///< |E ∩ S+| - |E ∩ S-| on the training pairs
  int iterations = 0; ///< coordinate-ascent sweeps until convergence
};

/// Searches thresholds for `structure` on the training pairs.
/// INVALID_ARGUMENT when the training set is empty, feature vectors have
/// inconsistent widths, or the structure references a spec index outside
/// the feature space — a hostile training set degrades into an error, it
/// cannot abort the process.
StatusOr<SifiResult> TrainSifi(const std::vector<LabeledPair>& pairs,
                               const SifiStructure& structure);

/// Shim over TrainSifi for existing call sites: on error, logs a warning
/// and returns a result whose thresholds are unattainably high, so the
/// fitted predictor matches nothing (objective 0).
SifiResult SifiSearch(const std::vector<LabeledPair>& pairs,
                      const SifiStructure& structure);

/// True iff some conjunction has all slots >= its threshold.
bool SifiPredict(const SifiStructure& structure,
                 const std::vector<std::vector<double>>& thresholds,
                 const std::vector<double>& features);

/// Adapts SIFI to the cross-validation PairLearner interface.
PairLearner MakeSifiLearner(const SifiStructure& structure);

}  // namespace dime

#endif  // DIME_BASELINES_SIFI_H_
