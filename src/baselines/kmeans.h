#ifndef DIME_BASELINES_KMEANS_H_
#define DIME_BASELINES_KMEANS_H_

#include <cstdint>
#include <vector>

#include "src/core/preprocess.h"
#include "src/rulegen/candidates.h"

/// \file kmeans.h
/// The clustering strawman from the paper's related-work discussion: "a
/// 'perfect' clustering algorithm that computes two partitions ... will
/// fail". We implement standard Lloyd k-means and a discovery adapter that
/// embeds each entity by its average similarity to anchor entities,
/// clusters with k = 2, and flags the smaller cluster. Tests and the
/// ablation bench use it to demonstrate why size-based outlier clustering
/// is the wrong tool (correct entities sit in small partitions, some
/// errors in large ones).

namespace dime {

struct KMeansResult {
  std::vector<int> assignment;                 ///< cluster id per point
  std::vector<std::vector<double>> centroids;
  int iterations = 0;
};

/// Lloyd's algorithm with deterministic seeding (k-means++-style farthest
/// selection from `seed`).
KMeansResult RunKMeans(const std::vector<std::vector<double>>& points, int k,
                       int max_iterations, uint64_t seed);

/// Discovery adapter: embeds entities by mean feature similarity to
/// `num_anchors` sampled anchors, 2-means, flags the smaller cluster.
std::vector<int> KMeansDiscover(const Group& group,
                                const std::vector<FeatureSpec>& specs,
                                const DimeContext& context, int num_anchors,
                                uint64_t seed);

}  // namespace dime

#endif  // DIME_BASELINES_KMEANS_H_
