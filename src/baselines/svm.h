#ifndef DIME_BASELINES_SVM_H_
#define DIME_BASELINES_SVM_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/core/preprocess.h"
#include "src/rulegen/candidates.h"
#include "src/rulegen/crossval.h"

/// \file svm.h
/// The SVM baseline of Exp-2: a linear SVM with balanced class weights
/// trained on pairwise-similarity features (the paper's second — and
/// better — model: "the features in positive/negative examples were the
/// similarities between two entities"). Discovery on a group computes the
/// feature vector for every entity pair, predicts match edges, takes
/// connected components, and reports everything outside the largest
/// component as mis-categorized.
///
/// The SVM is trained from scratch with Pegasos-style stochastic
/// subgradient descent on the hinge loss; features are standardized with
/// training-set statistics.

namespace dime {

struct SvmOptions {
  double lambda = 1e-3;  ///< L2 regularization strength
  int epochs = 200;
  uint64_t seed = 23;
  bool balanced_class_weights = true;
};

class LinearSvm {
 public:
  LinearSvm() = default;

  /// Trains on labeled feature-space pairs (positive = same category).
  /// INVALID_ARGUMENT (leaving the model untrained) when the training set
  /// is empty or feature widths are inconsistent.
  Status Train(const std::vector<LabeledPair>& pairs,
               const SvmOptions& options);

  /// Signed decision value (> 0 predicts "same category"). An untrained
  /// model — or a feature vector of the wrong width — scores 0.
  double Decision(const std::vector<double>& features) const;

  bool Predict(const std::vector<double>& features) const {
    return Decision(features) > 0.0;
  }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

/// Runs SVM-based discovery on one group: predicts pairwise matches with
/// the trained model, components, flags outside the largest. Returns
/// flagged entity indices (ascending).
std::vector<int> SvmDiscover(const Group& group,
                             const std::vector<FeatureSpec>& specs,
                             const LinearSvm& model,
                             const DimeContext& context);

/// Adapts LinearSvm to the cross-validation PairLearner interface.
PairLearner MakeSvmLearner(const SvmOptions& options = {});

}  // namespace dime

#endif  // DIME_BASELINES_SVM_H_
