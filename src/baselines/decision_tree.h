#ifndef DIME_BASELINES_DECISION_TREE_H_
#define DIME_BASELINES_DECISION_TREE_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"
#include "src/rulegen/candidates.h"
#include "src/rulegen/crossval.h"

/// \file decision_tree.h
/// The DecisionTree baseline of Exp-6: a CART-style binary tree (Gini
/// impurity, axis-aligned thresholds on pairwise-similarity features, max
/// depth 4 as in the paper's setup) used as an ML rule-generation method.
/// Root-to-positive-leaf paths are readable as match rules, which is why
/// the paper treats decision trees as a rule-learning competitor.

namespace dime {

struct DecisionTreeOptions {
  int max_depth = 4;
  size_t min_leaf_size = 2;
};

class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fits the tree. INVALID_ARGUMENT (leaving the tree untrained) when
  /// the training set is empty or feature vectors have inconsistent
  /// widths — hostile training data cannot abort the process.
  Status Train(const std::vector<LabeledPair>& pairs,
               const DecisionTreeOptions& options = {});

  /// Predicts "same category" for a feature vector. An untrained tree
  /// predicts false.
  bool Predict(const std::vector<double>& features) const;

  /// Number of internal nodes + leaves (for tests / inspection).
  size_t num_nodes() const { return nodes_.size(); }

  /// Extracts the learned positive paths as LearnedRule conjunctions of
  /// `feature >= threshold` / implicit upper bounds. Only the lower-bound
  /// conjuncts are representable as DIME positive rules; paths that
  /// require an upper bound are skipped.
  std::vector<LearnedRule> ExtractPositiveRules() const;

 private:
  struct Node {
    bool leaf = true;
    bool label = false;     ///< leaf prediction
    int feature = -1;       ///< split feature (internal)
    double threshold = 0.0; ///< go left if value < threshold
    int left = -1;
    int right = -1;
  };

  int Build(std::vector<int>* indices, const std::vector<LabeledPair>& pairs,
            int depth, const DecisionTreeOptions& options);

  std::vector<Node> nodes_;
};

/// Adapts DecisionTree to the cross-validation PairLearner interface.
PairLearner MakeDecisionTreeLearner(const DecisionTreeOptions& options = {});

}  // namespace dime

#endif  // DIME_BASELINES_DECISION_TREE_H_
