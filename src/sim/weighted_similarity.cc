#include "src/sim/weighted_similarity.h"

#include <cmath>

#include "src/common/logging.h"

namespace dime {
namespace {

double WeightOf(const std::vector<double>& weights, uint32_t rank) {
  // A rank outside the weight table means the caller mixed rank spaces;
  // treat the token as unweighted rather than aborting.
  return rank < weights.size() ? weights[rank] : 1.0;
}

double SquaredNorm(const std::vector<uint32_t>& v,
                   const std::vector<double>& weights) {
  double sum = 0.0;
  for (uint32_t r : v) {
    double w = WeightOf(weights, r);
    sum += w * w;
  }
  return sum;
}

}  // namespace

double WeightedJaccardSim(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b,
                          const std::vector<double>& weights) {
  if (a.empty() && b.empty()) return 1.0;
  double inter = 0.0, uni = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      double w = WeightOf(weights, a[i]);
      inter += w;
      uni += w;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      uni += WeightOf(weights, a[i]);
      ++i;
    } else {
      uni += WeightOf(weights, b[j]);
      ++j;
    }
  }
  for (; i < a.size(); ++i) uni += WeightOf(weights, a[i]);
  for (; j < b.size(); ++j) uni += WeightOf(weights, b[j]);
  return uni <= 0.0 ? 0.0 : inter / uni;
}

double WeightedCosineSim(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b,
                         const std::vector<double>& weights) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      double w = WeightOf(weights, a[i]);
      dot += w * w;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  double denom =
      std::sqrt(SquaredNorm(a, weights) * SquaredNorm(b, weights));
  return denom <= 0.0 ? 0.0 : dot / denom;
}

double WeightedSetSimilarity(SimFunc func, const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b,
                             const std::vector<double>& weights) {
  switch (func) {
    case SimFunc::kWeightedJaccard:
      return WeightedJaccardSim(a, b, weights);
    case SimFunc::kWeightedCosine:
      return WeightedCosineSim(a, b, weights);
    default:
      DIME_LOG(FATAL) << "WeightedSetSimilarity: " << SimFuncName(func)
                      << " is not weighted-set-based";
      return 0.0;
  }
}

size_t WeightedPrefixLength(SimFunc func, const std::vector<uint32_t>& ranks,
                            const std::vector<double>& weights,
                            double threshold) {
  if (ranks.empty()) return 0;
  if (threshold <= 0.0) return ranks.size();  // cannot filter

  // Ranks ascend => weights descend, the order weighted prefix filtering
  // requires. Keep extending the prefix until the residual suffix mass can
  // no longer reach the threshold on its own:
  //   wjaccard: sim <= w(suffix) / w(A)
  //   wcosine:  sim <= ||suffix|| / ||A||   (Cauchy-Schwarz)
  double total;
  if (func == SimFunc::kWeightedJaccard) {
    total = 0.0;
    for (uint32_t r : ranks) total += WeightOf(weights, r);
  } else {
    DIME_CHECK(func == SimFunc::kWeightedCosine);
    total = SquaredNorm(ranks, weights);
  }
  if (total <= 0.0) return ranks.size();

  double suffix = total;
  for (size_t p = 0; p < ranks.size(); ++p) {
    double w = WeightOf(weights, ranks[p]);
    suffix -= func == SimFunc::kWeightedJaccard ? w : w * w;
    double bound = func == SimFunc::kWeightedJaccard
                       ? suffix / total
                       : std::sqrt(std::max(suffix, 0.0) / total);
    if (bound < threshold - 1e-12) return p + 1;
  }
  return ranks.size();
}

std::vector<double> IdfWeightsByRank(
    const std::vector<uint32_t>& doc_freq_by_rank, size_t num_documents) {
  std::vector<double> weights;
  weights.reserve(doc_freq_by_rank.size());
  for (uint32_t df : doc_freq_by_rank) {
    double denom = df == 0 ? 1.0 : static_cast<double>(df);
    weights.push_back(
        std::log(1.0 + static_cast<double>(num_documents) / denom));
  }
  return weights;
}

}  // namespace dime
