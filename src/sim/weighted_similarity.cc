#include "src/sim/weighted_similarity.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/sim/set_similarity.h"

namespace dime {
namespace {

// Safety margin for the conservative early exits in the threshold-aware
// kernels. An early answer is only taken when the bound clears the decision
// threshold by at least this much; otherwise the merge completes and the
// exact comparison runs. The margin must dwarf floating-point accumulation
// error in the running sums (absolute error ~1e-12 for realistic idf
// magnitudes and set sizes) while still firing on clearly-decided pairs.
constexpr double kEarlyExitMargin = 1e-7;

// How often (in merge steps) the early-exit bounds are evaluated. The
// bounds cost two divisions; amortizing them over a block keeps the
// no-exit path within a few percent of the plain merge.
constexpr size_t kBoundCheckStride = 16;

double WeightOf(const std::vector<double>& weights, uint32_t rank) {
  // A rank outside the weight table means the caller mixed rank spaces;
  // treat the token as unweighted rather than aborting.
  return rank < weights.size() ? weights[rank] : 1.0;
}

// Shared state of the weighted-Jaccard merge: `inter` / `uni` accumulate in
// the exact order of WeightedJaccardSim; `cons_a` / `cons_b` track consumed
// per-side mass for the conservative bounds.
struct JaccardMerge {
  double inter = 0.0;
  double uni = 0.0;
  double cons_a = 0.0;
  double cons_b = 0.0;
};

// Decision outcome of a bound check: undecided, or decided with a value.
enum class Bound { kUndecided, kTrue, kFalse };

}  // namespace

double TotalWeight(RankSpan v, const std::vector<double>& weights) {
  double sum = 0.0;
  for (uint32_t r : v) sum += WeightOf(weights, r);
  return sum;
}

double SquaredWeightNorm(RankSpan v, const std::vector<double>& weights) {
  double sum = 0.0;
  for (uint32_t r : v) {
    double w = WeightOf(weights, r);
    sum += w * w;
  }
  return sum;
}

double WeightedJaccardSim(RankSpan a, RankSpan b,
                          const std::vector<double>& weights) {
  if (a.empty() && b.empty()) return 1.0;
  double inter = 0.0, uni = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      double w = WeightOf(weights, a[i]);
      inter += w;
      uni += w;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      uni += WeightOf(weights, a[i]);
      ++i;
    } else {
      uni += WeightOf(weights, b[j]);
      ++j;
    }
  }
  for (; i < a.size(); ++i) uni += WeightOf(weights, a[i]);
  for (; j < b.size(); ++j) uni += WeightOf(weights, b[j]);
  return uni <= 0.0 ? 0.0 : inter / uni;
}

double WeightedCosineSim(RankSpan a, RankSpan b,
                         const std::vector<double>& weights) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      double w = WeightOf(weights, a[i]);
      dot += w * w;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  double denom = std::sqrt(SquaredWeightNorm(a, weights) *
                           SquaredWeightNorm(b, weights));
  return denom <= 0.0 ? 0.0 : dot / denom;
}

double WeightedSetSimilarity(SimFunc func, RankSpan a, RankSpan b,
                             const std::vector<double>& weights) {
  switch (func) {
    case SimFunc::kWeightedJaccard:
      return WeightedJaccardSim(a, b, weights);
    case SimFunc::kWeightedCosine:
      return WeightedCosineSim(a, b, weights);
    default:
      DIME_LOG(FATAL) << "WeightedSetSimilarity: " << SimFuncName(func)
                      << " is not weighted-set-based";
      return 0.0;
  }
}

namespace {

// Conservative bracket [lb, ub] on the final weighted-Jaccard similarity
// given the merge state and the total per-side masses. The best case for
// the remaining suffixes is that the lighter one matches entirely; the
// worst case is that nothing more matches.
Bound JaccardBound(const JaccardMerge& m, double mass_a, double mass_b,
                   double lo_cut, double hi_cut) {
  double rem_a = std::max(mass_a - m.cons_a, 0.0);
  double rem_b = std::max(mass_b - m.cons_b, 0.0);
  double gain = std::min(rem_a, rem_b);
  double uni_min = m.uni + rem_a + rem_b - gain;
  double uni_max = m.uni + rem_a + rem_b;
  double ub = uni_min <= 0.0 ? 1.0 : (m.inter + gain) / uni_min;
  double lb = uni_max <= 0.0 ? 0.0 : m.inter / uni_max;
  if (ub < lo_cut) return Bound::kFalse;  // cannot reach the threshold
  if (lb > hi_cut) return Bound::kTrue;   // cannot fall back below it
  return Bound::kUndecided;
}

// Runs the weighted-Jaccard merge with early exits; `decide_ge` is the
// comparison applied on completion (and the orientation of the early
// exits): true => deciding `sim >= theta - eps`, false => `sim <= sigma +
// eps` (reported through the same Bound values: kTrue means the *check*
// holds).
bool JaccardThreshold(RankSpan a, RankSpan b,
                      const std::vector<double>& weights, double mass_a,
                      double mass_b, double threshold, bool decide_ge) {
  const double eps = kSimCompareEps;
  if (a.empty() && b.empty()) {
    internal::BumpKernelEarlyExit();
    return decide_ge ? 1.0 >= threshold - eps : 1.0 <= threshold + eps;
  }
  // Cut lines for the conservative bracket. For >= theta: below lo_cut the
  // pair can never pass, above hi_cut it can never fail. For <= sigma the
  // roles flip, handled by flipping the returned decision.
  const double decision = decide_ge ? threshold - eps : threshold + eps;
  const double lo_cut = decision - kEarlyExitMargin;
  const double hi_cut = decision + kEarlyExitMargin;
  JaccardMerge m;
  size_t i = 0, j = 0, steps = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      double w = WeightOf(weights, a[i]);
      m.inter += w;
      m.uni += w;
      m.cons_a += w;
      m.cons_b += w;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      double w = WeightOf(weights, a[i]);
      m.uni += w;
      m.cons_a += w;
      ++i;
    } else {
      double w = WeightOf(weights, b[j]);
      m.uni += w;
      m.cons_b += w;
      ++j;
    }
    if (++steps % kBoundCheckStride == 0) {
      Bound bound = JaccardBound(m, mass_a, mass_b, lo_cut, hi_cut);
      if (bound != Bound::kUndecided) {
        internal::BumpKernelEarlyExit();
        bool ge = bound == Bound::kTrue;  // sim certainly >= decision line
        return decide_ge ? ge : !ge;
      }
    }
  }
  // Completion path: identical accumulation order to WeightedJaccardSim,
  // identical final expression, identical comparison — bit-for-bit the
  // same decision as the exact kernel.
  for (; i < a.size(); ++i) m.uni += WeightOf(weights, a[i]);
  for (; j < b.size(); ++j) m.uni += WeightOf(weights, b[j]);
  double sim = m.uni <= 0.0 ? 0.0 : m.inter / m.uni;
  return decide_ge ? sim >= threshold - eps : sim <= threshold + eps;
}

// Same structure for weighted cosine: `dot` accumulates in exact-kernel
// order; the remaining dot product is bounded by Cauchy-Schwarz over the
// unconsumed suffix norms.
bool CosineThreshold(RankSpan a, RankSpan b,
                     const std::vector<double>& weights, double sqnorm_a,
                     double sqnorm_b, double threshold, bool decide_ge) {
  const double eps = kSimCompareEps;
  if (a.empty() && b.empty()) {
    internal::BumpKernelEarlyExit();
    return decide_ge ? 1.0 >= threshold - eps : 1.0 <= threshold + eps;
  }
  if (a.empty() || b.empty()) {
    internal::BumpKernelEarlyExit();
    return decide_ge ? 0.0 >= threshold - eps : 0.0 <= threshold + eps;
  }
  const double denom = std::sqrt(sqnorm_a * sqnorm_b);
  const double decision = decide_ge ? threshold - eps : threshold + eps;
  // Work on the dot-product scale: sim ≷ decision  <=>  dot ≷ decision *
  // denom, with the margin scaled the same way (only used with slack, so
  // the rescaling rounding is immaterial).
  const double lo_cut = decision * denom - kEarlyExitMargin * (denom + 1.0);
  const double hi_cut = decision * denom + kEarlyExitMargin * (denom + 1.0);
  double dot = 0.0, cons_a = 0.0, cons_b = 0.0;
  size_t i = 0, j = 0, steps = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      double w = WeightOf(weights, a[i]);
      double w2 = w * w;
      dot += w2;
      cons_a += w2;
      cons_b += w2;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      double w = WeightOf(weights, a[i]);
      cons_a += w * w;
      ++i;
    } else {
      double w = WeightOf(weights, b[j]);
      cons_b += w * w;
      ++j;
    }
    if (++steps % kBoundCheckStride == 0) {
      double rem_a = std::max(sqnorm_a - cons_a, 0.0);
      double rem_b = std::max(sqnorm_b - cons_b, 0.0);
      double gain = std::sqrt(rem_a * rem_b);  // Cauchy-Schwarz
      bool decided_true = dot > hi_cut;            // final dot >= dot
      bool decided_false = dot + gain < lo_cut;    // final dot <= dot + gain
      if (decided_true || decided_false) {
        internal::BumpKernelEarlyExit();
        bool ge = decided_true;
        return decide_ge ? ge : !ge;
      }
    }
  }
  // Completion: same denominator expression and comparison as the exact
  // kernel (sqnorm_a/b are computed by SquaredWeightNorm over the same
  // spans, so the product under the sqrt is bit-identical).
  double sim = denom <= 0.0 ? 0.0 : dot / denom;
  return decide_ge ? sim >= threshold - eps : sim <= threshold + eps;
}

}  // namespace

bool WeightedSimilarityAtLeast(SimFunc func, RankSpan a, RankSpan b,
                               const std::vector<double>& weights,
                               double mass_a, double mass_b, double theta) {
  switch (func) {
    case SimFunc::kWeightedJaccard:
      return JaccardThreshold(a, b, weights, mass_a, mass_b, theta,
                              /*decide_ge=*/true);
    case SimFunc::kWeightedCosine:
      return CosineThreshold(a, b, weights, mass_a, mass_b, theta,
                             /*decide_ge=*/true);
    default:
      DIME_LOG(FATAL) << "WeightedSimilarityAtLeast: " << SimFuncName(func)
                      << " is not weighted-set-based";
      return false;
  }
}

bool WeightedSimilarityAtMost(SimFunc func, RankSpan a, RankSpan b,
                              const std::vector<double>& weights,
                              double mass_a, double mass_b, double sigma) {
  switch (func) {
    case SimFunc::kWeightedJaccard:
      return JaccardThreshold(a, b, weights, mass_a, mass_b, sigma,
                              /*decide_ge=*/false);
    case SimFunc::kWeightedCosine:
      return CosineThreshold(a, b, weights, mass_a, mass_b, sigma,
                             /*decide_ge=*/false);
    default:
      DIME_LOG(FATAL) << "WeightedSimilarityAtMost: " << SimFuncName(func)
                      << " is not weighted-set-based";
      return false;
  }
}

size_t WeightedPrefixLength(SimFunc func, RankSpan ranks,
                            const std::vector<double>& weights,
                            double threshold) {
  if (ranks.empty()) return 0;
  if (threshold <= 0.0) return ranks.size();  // cannot filter

  // Ranks ascend => weights descend, the order weighted prefix filtering
  // requires. Keep extending the prefix until the residual suffix mass can
  // no longer reach the threshold on its own:
  //   wjaccard: sim <= w(suffix) / w(A)
  //   wcosine:  sim <= ||suffix|| / ||A||   (Cauchy-Schwarz)
  double total;
  if (func == SimFunc::kWeightedJaccard) {
    total = TotalWeight(ranks, weights);
  } else {
    DIME_CHECK(func == SimFunc::kWeightedCosine);
    total = SquaredWeightNorm(ranks, weights);
  }
  if (total <= 0.0) return ranks.size();

  double suffix = total;
  for (size_t p = 0; p < ranks.size(); ++p) {
    double w = WeightOf(weights, ranks[p]);
    suffix -= func == SimFunc::kWeightedJaccard ? w : w * w;
    double bound = func == SimFunc::kWeightedJaccard
                       ? suffix / total
                       : std::sqrt(std::max(suffix, 0.0) / total);
    if (bound < threshold - 1e-12) return p + 1;
  }
  return ranks.size();
}

std::vector<double> IdfWeightsByRank(
    const std::vector<uint32_t>& doc_freq_by_rank, size_t num_documents) {
  std::vector<double> weights;
  weights.reserve(doc_freq_by_rank.size());
  for (uint32_t df : doc_freq_by_rank) {
    double denom = df == 0 ? 1.0 : static_cast<double>(df);
    weights.push_back(
        std::log(1.0 + static_cast<double>(num_documents) / denom));
  }
  return weights;
}

}  // namespace dime
