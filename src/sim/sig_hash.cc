#include "src/sim/sig_hash.h"

#include "src/sim/simd_dispatch.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DIME_SIM_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace dime {
namespace {

// Below this batch size the vector setup (lane spreads, the dispatch
// load) costs more than four scalar hashes; typical rule prefixes are a
// handful of tokens, so the cutoff matters.
constexpr size_t kBatchMin = 8;

void Batch32Scalar(uint64_t base, const uint32_t* payloads, size_t n,
                   uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = SplitMix64(base + SplitMix64(payloads[i]));
  }
}

void Batch64Scalar(uint64_t base, const uint64_t* payloads, size_t n,
                   uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = SplitMix64(base + SplitMix64(payloads[i]));
  }
}

#ifdef DIME_SIM_HAVE_AVX2

// Lane-wise 64-bit product against a constant: AVX2 has no vpmullq, so
// compose it from the three 32x32 partial products that land in the low
// 64 bits.
__attribute__((target("avx2"))) inline __m256i Mul64(__m256i x, __m256i y) {
  const __m256i lo = _mm256_mul_epu32(x, y);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(x, 32), y),
                       _mm256_mul_epu32(x, _mm256_srli_epi64(y, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i SplitMix64x4(__m256i z) {
  z = _mm256_add_epi64(z, _mm256_set1_epi64x(kGoldenGamma));
  z = Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
            _mm256_set1_epi64x(0xbf58476d1ce4e5b9ULL));
  z = Mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
            _mm256_set1_epi64x(0x94d049bb133111ebULL));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

__attribute__((target("avx2"))) void Batch32Avx2(uint64_t base,
                                                const uint32_t* payloads,
                                                size_t n, uint64_t* out) {
  const __m256i vbase = _mm256_set1_epi64x(base);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i p = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(payloads + i)));
    const __m256i h = SplitMix64x4(_mm256_add_epi64(vbase, SplitMix64x4(p)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  Batch32Scalar(base, payloads + i, n - i, out + i);
}

__attribute__((target("avx2"))) void Batch64Avx2(uint64_t base,
                                                const uint64_t* payloads,
                                                size_t n, uint64_t* out) {
  const __m256i vbase = _mm256_set1_epi64x(base);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(payloads + i));
    const __m256i h = SplitMix64x4(_mm256_add_epi64(vbase, SplitMix64x4(p)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), h);
  }
  Batch64Scalar(base, payloads + i, n - i, out + i);
}

#endif  // DIME_SIM_HAVE_AVX2

}  // namespace

void MixHashBatch32(uint64_t tag, const uint32_t* payloads, size_t n,
                    uint64_t* out) {
  const uint64_t base = tag * kGoldenGamma;
#ifdef DIME_SIM_HAVE_AVX2
  if (n >= kBatchMin && ActiveSimdLevel() == SimdLevel::kAvx2) {
    Batch32Avx2(base, payloads, n, out);
    return;
  }
#endif
  Batch32Scalar(base, payloads, n, out);
}

void MixHashBatch64(uint64_t tag, const uint64_t* payloads, size_t n,
                    uint64_t* out) {
  const uint64_t base = tag * kGoldenGamma;
#ifdef DIME_SIM_HAVE_AVX2
  if (n >= kBatchMin && ActiveSimdLevel() == SimdLevel::kAvx2) {
    Batch64Avx2(base, payloads, n, out);
    return;
  }
#endif
  Batch64Scalar(base, payloads, n, out);
}

namespace internal {

void MixHashBatch32Scalar(uint64_t tag, const uint32_t* payloads, size_t n,
                          uint64_t* out) {
  Batch32Scalar(tag * kGoldenGamma, payloads, n, out);
}

void MixHashBatch64Scalar(uint64_t tag, const uint64_t* payloads, size_t n,
                          uint64_t* out) {
  Batch64Scalar(tag * kGoldenGamma, payloads, n, out);
}

}  // namespace internal

}  // namespace dime
