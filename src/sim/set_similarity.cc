#include "src/sim/set_similarity.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/sim/simd_dispatch.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DIME_SIM_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace dime {
namespace {

thread_local uint64_t tls_kernel_early_exits = 0;

// When the longer input is at least this many times the shorter one, the
// merge switches to galloping (exponential probe + binary search) through
// the longer side. 8 is the usual crossover for intersection joins: below
// it the branchy search costs more than it saves.
constexpr size_t kGallopFactor = 8;

// Below this many elements on the shorter side the AVX2 block kernel is
// not worth its setup (loads, lane rotations, the dispatch load itself);
// the scalar merge wins on the short sets that dominate rule predicates.
constexpr size_t kSimdMinLen = 16;

// First position in [first, last) with *pos >= value, found by doubling
// probes from `first` and a binary search over the final bracket. O(log d)
// for a hit d elements away, against O(d) for a linear merge.
const uint32_t* Gallop(const uint32_t* first, const uint32_t* last,
                       uint32_t value) {
  size_t step = 1;
  const uint32_t* probe = first;
  while (probe < last && *probe < value) {
    first = probe + 1;
    probe = (static_cast<size_t>(last - first) > step) ? first + step : last;
    step *= 2;
  }
  return std::lower_bound(first, probe, value);
}

size_t MergeCount(const uint32_t* pa, const uint32_t* ea, const uint32_t* pb,
                  const uint32_t* eb) {
  size_t count = 0;
  while (pa < ea && pb < eb) {
    if (*pa == *pb) {
      ++count;
      ++pa;
      ++pb;
    } else if (*pa < *pb) {
      ++pa;
    } else {
      ++pb;
    }
  }
  return count;
}

// The scalar threshold-aware merge, resumable from a partially consumed
// state (`count` matches already seen) so the SIMD kernel can hand its
// sub-block tail here. `gallop` only makes sense from an unconsumed start.
bool AtLeastMergeScalar(const uint32_t* pa, const uint32_t* ea,
                        const uint32_t* pb, const uint32_t* eb, size_t count,
                        size_t required, bool gallop) {
  while (pa < ea && pb < eb) {
    // Cannot-reach: even matching every remaining element of the smaller
    // side leaves the count short of `required`.
    const size_t rem = std::min(static_cast<size_t>(ea - pa),
                                static_cast<size_t>(eb - pb));
    if (count + rem < required) {
      internal::BumpKernelEarlyExit();
      return false;
    }
    if (gallop) {
      pb = Gallop(pb, eb, *pa);
      if (pb == eb) break;
      if (*pb == *pa) {
        ++count;
        ++pb;
      }
      ++pa;
    } else if (*pa == *pb) {
      ++count;
      ++pa;
      ++pb;
    } else if (*pa < *pb) {
      ++pa;
    } else {
      ++pb;
      continue;  // count unchanged; skip the cannot-miss check
    }
    // Cannot-miss: the decision is already made, stop consuming input.
    if (count >= required) {
      if (pa < ea && pb < eb) internal::BumpKernelEarlyExit();
      return true;
    }
  }
  return count >= required;
}

#ifdef DIME_SIM_HAVE_AVX2

// All-pairs compare of one 8-lane block of `a` against one 8-lane block of
// `b`: the b block is rotated through all 8 lane alignments and each
// alignment compared for equality, so the OR of the masks has one set lane
// per a element present anywhere in the b block. Inputs are strictly
// ascending (sets), so an a lane matches at most one b lane and the
// popcount of the movemask is exactly the number of common elements
// between the two blocks.
__attribute__((target("avx2"))) inline int BlockMatches8(const uint32_t* pa,
                                                         const uint32_t* pb) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa));
  __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb));
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __m256i eq = _mm256_cmpeq_epi32(va, vb);
  for (int r = 1; r < 8; ++r) {
    vb = _mm256_permutevar8x32_epi32(vb, rot1);
    eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
  }
  return __builtin_popcount(
      static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq))));
}

// Block-at-a-time sorted intersection (Schlegel-style): compare the two
// current 8-element blocks all-pairs, then retire whichever block's max is
// smaller (both on a tie). Every common value is counted exactly once:
// the two blocks containing it are simultaneously current right before
// the first of them retires, and no block pair is compared twice because
// each step retires at least one block.
__attribute__((target("avx2"))) size_t IntersectionSizeAvx2Impl(
    const uint32_t* pa, const uint32_t* ea, const uint32_t* pb,
    const uint32_t* eb) {
  size_t count = 0;
  while (ea - pa >= 8 && eb - pb >= 8) {
    count += static_cast<size_t>(BlockMatches8(pa, pb));
    const uint32_t amax = pa[7];
    const uint32_t bmax = pb[7];
    if (amax <= bmax) pa += 8;
    if (bmax <= amax) pb += 8;
  }
  return count + MergeCount(pa, ea, pb, eb);
}

// Threshold-aware twin: same block walk with the cannot-reach /
// cannot-miss exits applied at block granularity. The decision is the
// one the scalar merge makes — the count only ever grows, so checking it
// every 8 elements instead of every element cannot flip a verdict, it
// just consumes at most one extra block before exiting.
__attribute__((target("avx2"))) bool IntersectionAtLeastAvx2Impl(
    const uint32_t* pa, const uint32_t* ea, const uint32_t* pb,
    const uint32_t* eb, size_t required) {
  size_t count = 0;
  while (ea - pa >= 8 && eb - pb >= 8) {
    const size_t rem = std::min(static_cast<size_t>(ea - pa),
                                static_cast<size_t>(eb - pb));
    if (count + rem < required) {
      internal::BumpKernelEarlyExit();
      return false;
    }
    count += static_cast<size_t>(BlockMatches8(pa, pb));
    const uint32_t amax = pa[7];
    const uint32_t bmax = pb[7];
    if (amax <= bmax) pa += 8;
    if (bmax <= amax) pb += 8;
    if (count >= required) {
      if (pa < ea && pb < eb) internal::BumpKernelEarlyExit();
      return true;
    }
  }
  return AtLeastMergeScalar(pa, ea, pb, eb, count, required,
                            /*gallop=*/false);
}

#endif  // DIME_SIM_HAVE_AVX2

inline bool UseAvx2(size_t shorter_len) {
#ifdef DIME_SIM_HAVE_AVX2
  return shorter_len >= kSimdMinLen &&
         ActiveSimdLevel() == SimdLevel::kAvx2;
#else
  (void)shorter_len;
  return false;
#endif
}

}  // namespace

namespace internal {

void BumpKernelEarlyExit() { ++tls_kernel_early_exits; }

size_t IntersectionSizeScalar(RankSpan a, RankSpan b) {
  return MergeCount(a.begin(), a.end(), b.begin(), b.end());
}

bool IntersectionAtLeastScalar(RankSpan a, RankSpan b, size_t required) {
  if (required == 0) return true;
  if (a.len > b.len) std::swap(a, b);
  if (required > a.len) {
    internal::BumpKernelEarlyExit();
    return false;
  }
  return AtLeastMergeScalar(a.begin(), a.end(), b.begin(), b.end(), 0,
                            required, b.len >= kGallopFactor * a.len);
}

}  // namespace internal

uint64_t KernelEarlyExits() { return tls_kernel_early_exits; }

size_t IntersectionSize(RankSpan a, RankSpan b) {
#ifdef DIME_SIM_HAVE_AVX2
  if (UseAvx2(std::min(a.len, b.len))) {
    return IntersectionSizeAvx2Impl(a.begin(), a.end(), b.begin(), b.end());
  }
#endif
  return MergeCount(a.begin(), a.end(), b.begin(), b.end());
}

bool IntersectionAtLeast(RankSpan a, RankSpan b, size_t required) {
  if (required == 0) return true;
  if (a.len > b.len) std::swap(a, b);
  if (required > a.len) {
    internal::BumpKernelEarlyExit();
    return false;
  }
  const bool gallop = b.len >= kGallopFactor * a.len;
#ifdef DIME_SIM_HAVE_AVX2
  // The dense (size-balanced) case goes to the block kernel; skewed sizes
  // keep the galloping merge, which touches O(|a| log |b|) elements and
  // beats any full-width scan.
  if (!gallop && UseAvx2(a.len)) {
    return IntersectionAtLeastAvx2Impl(a.begin(), a.end(), b.begin(), b.end(),
                                       required);
  }
#endif
  return AtLeastMergeScalar(a.begin(), a.end(), b.begin(), b.end(), 0,
                            required, gallop);
}

double SetSimilarityFromOverlap(SimFunc func, size_t overlap, size_t size_a,
                                size_t size_b) {
  // Each case repeats the floating-point expression of the matching exact
  // kernel verbatim so derived threshold decisions are bit-identical.
  switch (func) {
    case SimFunc::kOverlap:
      return static_cast<double>(overlap);
    case SimFunc::kJaccard: {
      if (size_a == 0 && size_b == 0) return 1.0;
      size_t uni = size_a + size_b - overlap;
      return static_cast<double>(overlap) / static_cast<double>(uni);
    }
    case SimFunc::kDice:
      if (size_a == 0 && size_b == 0) return 1.0;
      return 2.0 * static_cast<double>(overlap) /
             static_cast<double>(size_a + size_b);
    case SimFunc::kCosine:
      if (size_a == 0 && size_b == 0) return 1.0;
      if (size_a == 0 || size_b == 0) return 0.0;
      return static_cast<double>(overlap) /
             std::sqrt(static_cast<double>(size_a) *
                       static_cast<double>(size_b));
    default:
      DIME_LOG(FATAL) << "SetSimilarityFromOverlap called with non-set "
                      << "function " << SimFuncName(func);
      return 0.0;
  }
}

namespace {

// Closed-form estimate of the smallest overlap reaching `theta` — the
// algebraic inversion of each similarity formula, intentionally without
// any epsilon gymnastics. It lands within one of the true answer; the
// callers below then nudge it with the exact floating-point predicate, so
// the result is decided by the same expression the exact kernels evaluate
// (bit-identical) while the per-pair log(n) binary search — one FP divide
// or sqrt per probe, hot inside the O(n^2) DIME pair loop — is gone.
double OverlapGuess(SimFunc func, size_t size_a, size_t size_b,
                    double theta) {
  switch (func) {
    case SimFunc::kOverlap:
      return theta;
    case SimFunc::kJaccard:
      // o / (a + b - o) >= t  <=>  o >= t (a + b) / (1 + t)
      return theta * static_cast<double>(size_a + size_b) / (1.0 + theta);
    case SimFunc::kDice:
      // 2o / (a + b) >= t  <=>  o >= t (a + b) / 2
      return theta * static_cast<double>(size_a + size_b) / 2.0;
    case SimFunc::kCosine:
      // o / sqrt(ab) >= t  <=>  o >= t sqrt(ab)
      return theta * std::sqrt(static_cast<double>(size_a) *
                               static_cast<double>(size_b));
    default:
      DIME_LOG(FATAL) << "OverlapGuess called with non-set function "
                      << SimFuncName(func);
      return 0.0;
  }
}

// Clamps a (possibly negative / NaN-free) guess into [0, max_o + 1].
size_t ClampGuess(double guess, size_t max_o) {
  if (!(guess > 0.0)) return 0;
  if (guess >= static_cast<double>(max_o + 1)) return max_o + 1;
  return static_cast<size_t>(guess);
}

}  // namespace

size_t MinOverlapForAtLeast(SimFunc func, size_t size_a, size_t size_b,
                            double theta) {
  // sim(o) is nondecreasing in o for every set function at fixed sizes, so
  // the satisfying overlaps form a suffix of [0, max_o]; start from the
  // closed-form estimate and walk (at most a step or two) to the exact
  // boundary of the comparison Predicate::Compare would apply.
  const size_t max_o = std::min(size_a, size_b);
  const auto holds = [&](size_t o) {
    return SetSimilarityFromOverlap(func, o, size_a, size_b) >=
           theta - kSimCompareEps;
  };
  size_t o = ClampGuess(OverlapGuess(func, size_a, size_b, theta), max_o);
  while (o > 0 && holds(o - 1)) --o;
  while (o <= max_o && !holds(o)) ++o;
  return o;  // max_o + 1 == unsatisfiable
}

bool SetSimilarityAtLeast(SimFunc func, RankSpan a, RankSpan b, double theta) {
  if (func == SimFunc::kOverlap) {
    // The dominant predicate of the O(n^2) DIME pair loop; its required
    // overlap is size-independent, so skip the generic derivation. The
    // smallest integer o with (double)o >= theta - eps is exactly
    // ceil(theta - eps) — the very comparison holds_at applies — so the
    // decision is unchanged.
    const double t = std::ceil(theta - kSimCompareEps);
    if (t > static_cast<double>(std::min(a.len, b.len))) {
      internal::BumpKernelEarlyExit();  // decided from sizes alone
      return false;
    }
    if (t <= 0.0) {
      internal::BumpKernelEarlyExit();
      return true;
    }
    return IntersectionAtLeast(a, b, static_cast<size_t>(t));
  }
  const size_t required = MinOverlapForAtLeast(func, a.len, b.len, theta);
  if (required > std::min(a.len, b.len)) {
    internal::BumpKernelEarlyExit();  // decided from sizes alone
    return false;
  }
  if (required == 0) {
    internal::BumpKernelEarlyExit();
    return true;
  }
  return IntersectionAtLeast(a, b, required);
}

bool SetSimilarityAtMost(SimFunc func, RankSpan a, RankSpan b, double sigma) {
  if (func == SimFunc::kOverlap) {
    // Negative-rule twin of the fast path above: the smallest integer o
    // with (double)o > sigma + eps is floor(sigma + eps) + 1 (0 when the
    // bound is negative) — derived with the same FP sum the violation
    // predicate evaluates, so the decision is unchanged.
    const double bound = sigma + kSimCompareEps;
    if (bound < 0.0) {
      internal::BumpKernelEarlyExit();  // even o = 0 violates
      return false;
    }
    const double lo = std::floor(bound) + 1.0;
    if (lo > static_cast<double>(std::min(a.len, b.len))) {
      internal::BumpKernelEarlyExit();  // no overlap can violate
      return true;
    }
    return !IntersectionAtLeast(a, b, static_cast<size_t>(lo));
  }
  // Smallest overlap that violates `sim <= sigma + eps`; the check holds
  // iff the actual overlap stays below it. Same closed-form-plus-nudge
  // scheme as MinOverlapForAtLeast, against the violation predicate.
  const size_t max_o = std::min(a.len, b.len);
  const auto violates = [&](size_t o) {
    return SetSimilarityFromOverlap(func, o, a.len, b.len) >
           sigma + kSimCompareEps;
  };
  size_t lo = ClampGuess(OverlapGuess(func, a.len, b.len, sigma), max_o);
  while (lo > 0 && violates(lo - 1)) --lo;
  while (lo <= max_o && !violates(lo)) ++lo;
  if (lo > max_o) {
    internal::BumpKernelEarlyExit();  // no overlap can violate
    return true;
  }
  if (lo == 0) {
    internal::BumpKernelEarlyExit();  // violated before any overlap
    return false;
  }
  return !IntersectionAtLeast(a, b, lo);
}

double OverlapSim(RankSpan a, RankSpan b) {
  return static_cast<double>(IntersectionSize(a, b));
}

double JaccardSim(RankSpan a, RankSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = IntersectionSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSim(RankSpan a, RankSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = IntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

double CosineSim(RankSpan a, RankSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t inter = IntersectionSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double SetSimilarity(SimFunc func, RankSpan a, RankSpan b) {
  switch (func) {
    case SimFunc::kOverlap:
      return OverlapSim(a, b);
    case SimFunc::kJaccard:
      return JaccardSim(a, b);
    case SimFunc::kDice:
      return DiceSim(a, b);
    case SimFunc::kCosine:
      return CosineSim(a, b);
    default:
      DIME_LOG(FATAL) << "SetSimilarity called with non-set function "
                      << SimFuncName(func);
      return 0.0;
  }
}

double SetSimilarityStrings(SimFunc func, std::vector<std::string> a,
                            std::vector<std::string> b) {
  auto canonicalize = [](std::vector<std::string>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  canonicalize(&a);
  canonicalize(&b);
  // Both sides are sorted and deduplicated, so one merge pass counts the
  // overlap directly — no merged vocabulary, no re-sort, no binary search.
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++overlap;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return SetSimilarityFromOverlap(func, overlap, a.size(), b.size());
}

size_t SetPrefixLength(SimFunc func, size_t size, double theta) {
  if (size == 0) return 0;
  size_t required = 0;  // minimum overlap any qualifying partner must have
  switch (func) {
    case SimFunc::kOverlap: {
      double t = std::ceil(theta - 1e-9);
      if (t <= 0) return size;  // threshold 0: everything qualifies
      if (t > static_cast<double>(size)) return 0;
      required = static_cast<size_t>(t);
      break;
    }
    case SimFunc::kJaccard:
      // o >= theta * |A∪B| >= theta * |A|
      required = static_cast<size_t>(
          std::ceil(theta * static_cast<double>(size) - 1e-9));
      break;
    case SimFunc::kDice:
      // 2o/(|A|+|B|) >= t and |B| >= o  =>  o >= t|A|/(2-t)
      required = static_cast<size_t>(std::ceil(
          theta * static_cast<double>(size) / (2.0 - theta) - 1e-9));
      break;
    case SimFunc::kCosine:
      // o >= t*sqrt(|A||B|) and |B| >= o  =>  o >= t^2 |A|
      required = static_cast<size_t>(
          std::ceil(theta * theta * static_cast<double>(size) - 1e-9));
      break;
    default:
      DIME_LOG(FATAL) << "SetPrefixLength called with non-set function "
                      << SimFuncName(func);
      return 0;
  }
  if (required == 0) return size;  // threshold too small to filter anything
  if (required > size) return 0;  // cannot qualify at all
  return size - required + 1;
}

}  // namespace dime
