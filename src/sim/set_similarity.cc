#include "src/sim/set_similarity.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace dime {

size_t IntersectionSize(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

double OverlapSim(const std::vector<uint32_t>& a,
                  const std::vector<uint32_t>& b) {
  return static_cast<double>(IntersectionSize(a, b));
}

double JaccardSim(const std::vector<uint32_t>& a,
                  const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = IntersectionSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSim(const std::vector<uint32_t>& a,
               const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = IntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

double CosineSim(const std::vector<uint32_t>& a,
                 const std::vector<uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t inter = IntersectionSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double SetSimilarity(SimFunc func, const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  switch (func) {
    case SimFunc::kOverlap:
      return OverlapSim(a, b);
    case SimFunc::kJaccard:
      return JaccardSim(a, b);
    case SimFunc::kDice:
      return DiceSim(a, b);
    case SimFunc::kCosine:
      return CosineSim(a, b);
    default:
      DIME_LOG(FATAL) << "SetSimilarity called with non-set function "
                      << SimFuncName(func);
      return 0.0;
  }
}

double SetSimilarityStrings(SimFunc func, std::vector<std::string> a,
                            std::vector<std::string> b) {
  auto canonicalize = [](std::vector<std::string>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  canonicalize(&a);
  canonicalize(&b);
  // Map each distinct string to a rank in the merged sorted order so the
  // integer kernels can be reused.
  std::vector<std::string> all;
  all.reserve(a.size() + b.size());
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  auto to_ids = [&all](const std::vector<std::string>& v) {
    std::vector<uint32_t> ids;
    ids.reserve(v.size());
    for (const std::string& s : v) {
      ids.push_back(static_cast<uint32_t>(
          std::lower_bound(all.begin(), all.end(), s) - all.begin()));
    }
    return ids;  // already ascending because v is sorted
  };
  return SetSimilarity(func, to_ids(a), to_ids(b));
}

size_t SetPrefixLength(SimFunc func, size_t size, double theta) {
  if (size == 0) return 0;
  size_t required = 0;  // minimum overlap any qualifying partner must have
  switch (func) {
    case SimFunc::kOverlap: {
      double t = std::ceil(theta - 1e-9);
      if (t <= 0) return size;  // threshold 0: everything qualifies
      if (t > static_cast<double>(size)) return 0;
      required = static_cast<size_t>(t);
      break;
    }
    case SimFunc::kJaccard:
      // o >= theta * |A∪B| >= theta * |A|
      required = static_cast<size_t>(
          std::ceil(theta * static_cast<double>(size) - 1e-9));
      break;
    case SimFunc::kDice:
      // 2o/(|A|+|B|) >= t and |B| >= o  =>  o >= t|A|/(2-t)
      required = static_cast<size_t>(std::ceil(
          theta * static_cast<double>(size) / (2.0 - theta) - 1e-9));
      break;
    case SimFunc::kCosine:
      // o >= t*sqrt(|A||B|) and |B| >= o  =>  o >= t^2 |A|
      required = static_cast<size_t>(
          std::ceil(theta * theta * static_cast<double>(size) - 1e-9));
      break;
    default:
      DIME_LOG(FATAL) << "SetPrefixLength called with non-set function "
                      << SimFuncName(func);
      return 0;
  }
  if (required == 0) return size;  // threshold too small to filter anything
  if (required > size) return 0;  // cannot qualify at all
  return size - required + 1;
}

}  // namespace dime
