#include "src/sim/set_similarity.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace dime {
namespace {

thread_local uint64_t tls_kernel_early_exits = 0;

// When the longer input is at least this many times the shorter one, the
// merge switches to galloping (exponential probe + binary search) through
// the longer side. 8 is the usual crossover for intersection joins: below
// it the branchy search costs more than it saves.
constexpr size_t kGallopFactor = 8;

// First position in [first, last) with *pos >= value, found by doubling
// probes from `first` and a binary search over the final bracket. O(log d)
// for a hit d elements away, against O(d) for a linear merge.
const uint32_t* Gallop(const uint32_t* first, const uint32_t* last,
                       uint32_t value) {
  size_t step = 1;
  const uint32_t* probe = first;
  while (probe < last && *probe < value) {
    first = probe + 1;
    probe = (static_cast<size_t>(last - first) > step) ? first + step : last;
    step *= 2;
  }
  return std::lower_bound(first, probe, value);
}

}  // namespace

namespace internal {
void BumpKernelEarlyExit() { ++tls_kernel_early_exits; }
}  // namespace internal

uint64_t KernelEarlyExits() { return tls_kernel_early_exits; }

size_t IntersectionSize(RankSpan a, RankSpan b) {
  const uint32_t* pa = a.begin();
  const uint32_t* ea = a.end();
  const uint32_t* pb = b.begin();
  const uint32_t* eb = b.end();
  size_t count = 0;
  while (pa < ea && pb < eb) {
    if (*pa == *pb) {
      ++count;
      ++pa;
      ++pb;
    } else if (*pa < *pb) {
      ++pa;
    } else {
      ++pb;
    }
  }
  return count;
}

bool IntersectionAtLeast(RankSpan a, RankSpan b, size_t required) {
  if (required == 0) return true;
  if (a.len > b.len) std::swap(a, b);
  if (required > a.len) {
    internal::BumpKernelEarlyExit();
    return false;
  }
  const uint32_t* pa = a.begin();
  const uint32_t* ea = a.end();
  const uint32_t* pb = b.begin();
  const uint32_t* eb = b.end();
  const bool gallop = b.len >= kGallopFactor * a.len;
  size_t count = 0;
  while (pa < ea && pb < eb) {
    // Cannot-reach: even matching every remaining element of the smaller
    // side leaves the count short of `required`.
    const size_t rem = std::min(static_cast<size_t>(ea - pa),
                                static_cast<size_t>(eb - pb));
    if (count + rem < required) {
      internal::BumpKernelEarlyExit();
      return false;
    }
    if (gallop) {
      pb = Gallop(pb, eb, *pa);
      if (pb == eb) break;
      if (*pb == *pa) {
        ++count;
        ++pb;
      }
      ++pa;
    } else if (*pa == *pb) {
      ++count;
      ++pa;
      ++pb;
    } else if (*pa < *pb) {
      ++pa;
    } else {
      ++pb;
      continue;  // count unchanged; skip the cannot-miss check
    }
    // Cannot-miss: the decision is already made, stop consuming input.
    if (count >= required) {
      if (pa < ea && pb < eb) internal::BumpKernelEarlyExit();
      return true;
    }
  }
  return count >= required;
}

double SetSimilarityFromOverlap(SimFunc func, size_t overlap, size_t size_a,
                                size_t size_b) {
  // Each case repeats the floating-point expression of the matching exact
  // kernel verbatim so derived threshold decisions are bit-identical.
  switch (func) {
    case SimFunc::kOverlap:
      return static_cast<double>(overlap);
    case SimFunc::kJaccard: {
      if (size_a == 0 && size_b == 0) return 1.0;
      size_t uni = size_a + size_b - overlap;
      return static_cast<double>(overlap) / static_cast<double>(uni);
    }
    case SimFunc::kDice:
      if (size_a == 0 && size_b == 0) return 1.0;
      return 2.0 * static_cast<double>(overlap) /
             static_cast<double>(size_a + size_b);
    case SimFunc::kCosine:
      if (size_a == 0 && size_b == 0) return 1.0;
      if (size_a == 0 || size_b == 0) return 0.0;
      return static_cast<double>(overlap) /
             std::sqrt(static_cast<double>(size_a) *
                       static_cast<double>(size_b));
    default:
      DIME_LOG(FATAL) << "SetSimilarityFromOverlap called with non-set "
                      << "function " << SimFuncName(func);
      return 0.0;
  }
}

size_t MinOverlapForAtLeast(SimFunc func, size_t size_a, size_t size_b,
                            double theta) {
  // sim(o) is nondecreasing in o for every set function at fixed sizes, so
  // the satisfying overlaps form a suffix of [0, min]; binary-search its
  // start with the exact comparison Predicate::Compare would apply.
  const size_t max_o = std::min(size_a, size_b);
  size_t lo = 0, hi = max_o + 1;  // max_o + 1 == unsatisfiable
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (SetSimilarityFromOverlap(func, mid, size_a, size_b) >=
        theta - kSimCompareEps) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool SetSimilarityAtLeast(SimFunc func, RankSpan a, RankSpan b, double theta) {
  const size_t required = MinOverlapForAtLeast(func, a.len, b.len, theta);
  if (required > std::min(a.len, b.len)) {
    internal::BumpKernelEarlyExit();  // decided from sizes alone
    return false;
  }
  if (required == 0) {
    internal::BumpKernelEarlyExit();
    return true;
  }
  return IntersectionAtLeast(a, b, required);
}

bool SetSimilarityAtMost(SimFunc func, RankSpan a, RankSpan b, double sigma) {
  // Smallest overlap that violates `sim <= sigma + eps`; the check holds
  // iff the actual overlap stays below it.
  const size_t max_o = std::min(a.len, b.len);
  size_t lo = 0, hi = max_o + 1;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (SetSimilarityFromOverlap(func, mid, a.len, b.len) >
        sigma + kSimCompareEps) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo > max_o) {
    internal::BumpKernelEarlyExit();  // no overlap can violate
    return true;
  }
  if (lo == 0) {
    internal::BumpKernelEarlyExit();  // violated before any overlap
    return false;
  }
  return !IntersectionAtLeast(a, b, lo);
}

double OverlapSim(RankSpan a, RankSpan b) {
  return static_cast<double>(IntersectionSize(a, b));
}

double JaccardSim(RankSpan a, RankSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = IntersectionSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSim(RankSpan a, RankSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = IntersectionSize(a, b);
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size());
}

double CosineSim(RankSpan a, RankSpan b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t inter = IntersectionSize(a, b);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double SetSimilarity(SimFunc func, RankSpan a, RankSpan b) {
  switch (func) {
    case SimFunc::kOverlap:
      return OverlapSim(a, b);
    case SimFunc::kJaccard:
      return JaccardSim(a, b);
    case SimFunc::kDice:
      return DiceSim(a, b);
    case SimFunc::kCosine:
      return CosineSim(a, b);
    default:
      DIME_LOG(FATAL) << "SetSimilarity called with non-set function "
                      << SimFuncName(func);
      return 0.0;
  }
}

double SetSimilarityStrings(SimFunc func, std::vector<std::string> a,
                            std::vector<std::string> b) {
  auto canonicalize = [](std::vector<std::string>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  canonicalize(&a);
  canonicalize(&b);
  // Both sides are sorted and deduplicated, so one merge pass counts the
  // overlap directly — no merged vocabulary, no re-sort, no binary search.
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    int cmp = a[i].compare(b[j]);
    if (cmp == 0) {
      ++overlap;
      ++i;
      ++j;
    } else if (cmp < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return SetSimilarityFromOverlap(func, overlap, a.size(), b.size());
}

size_t SetPrefixLength(SimFunc func, size_t size, double theta) {
  if (size == 0) return 0;
  size_t required = 0;  // minimum overlap any qualifying partner must have
  switch (func) {
    case SimFunc::kOverlap: {
      double t = std::ceil(theta - 1e-9);
      if (t <= 0) return size;  // threshold 0: everything qualifies
      if (t > static_cast<double>(size)) return 0;
      required = static_cast<size_t>(t);
      break;
    }
    case SimFunc::kJaccard:
      // o >= theta * |A∪B| >= theta * |A|
      required = static_cast<size_t>(
          std::ceil(theta * static_cast<double>(size) - 1e-9));
      break;
    case SimFunc::kDice:
      // 2o/(|A|+|B|) >= t and |B| >= o  =>  o >= t|A|/(2-t)
      required = static_cast<size_t>(std::ceil(
          theta * static_cast<double>(size) / (2.0 - theta) - 1e-9));
      break;
    case SimFunc::kCosine:
      // o >= t*sqrt(|A||B|) and |B| >= o  =>  o >= t^2 |A|
      required = static_cast<size_t>(
          std::ceil(theta * theta * static_cast<double>(size) - 1e-9));
      break;
    default:
      DIME_LOG(FATAL) << "SetPrefixLength called with non-set function "
                      << SimFuncName(func);
      return 0;
  }
  if (required == 0) return size;  // threshold too small to filter anything
  if (required > size) return 0;  // cannot qualify at all
  return size - required + 1;
}

}  // namespace dime
