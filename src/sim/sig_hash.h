#ifndef DIME_SIM_SIG_HASH_H_
#define DIME_SIM_SIG_HASH_H_

#include <cstddef>
#include <cstdint>

/// \file sig_hash.h
/// The 64-bit mixing primitive behind signature generation
/// (core/signature.h MixSignature) and its batch forms. Signature
/// generation hashes every token of every entity's prefix — the
/// PrepareGroup bottleneck named in DESIGN.md — so the batch kernels walk
/// a whole rank prefix at once and have AVX2 twins (4 x 64-bit lanes,
/// with the 64-bit multiply synthesized from 32x32 products). Hashes are
/// integers: the vector twins produce bit-identical outputs to the scalar
/// path, dispatch follows simd_dispatch.h.

namespace dime {

/// The SplitMix64 increment; also the multiplier MixSignature applies to
/// its first argument.
inline constexpr uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

/// One SplitMix64 step (finalizer included).
inline uint64_t SplitMix64(uint64_t z) {
  z += kGoldenGamma;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// out[i] = SplitMix64(tag * kGoldenGamma + SplitMix64(payloads[i])) for
/// i in [0, n) — MixSignature(tag, payloads[i]) unrolled over a batch of
/// 32-bit payloads (a rank or q-gram prefix). `out` must hold n values
/// and may not alias `payloads`.
void MixHashBatch32(uint64_t tag, const uint32_t* payloads, size_t n,
                    uint64_t* out);

/// Same contract over 64-bit payloads (the tuple-signature cross product).
void MixHashBatch64(uint64_t tag, const uint64_t* payloads, size_t n,
                    uint64_t* out);

namespace internal {
/// Portable twins, always scalar regardless of ActiveSimdLevel(); the
/// differential tests compare the dispatched batches against these.
void MixHashBatch32Scalar(uint64_t tag, const uint32_t* payloads, size_t n,
                          uint64_t* out);
void MixHashBatch64Scalar(uint64_t tag, const uint64_t* payloads, size_t n,
                          uint64_t* out);
}  // namespace internal

}  // namespace dime

#endif  // DIME_SIM_SIG_HASH_H_
