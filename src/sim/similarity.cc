#include "src/sim/similarity.h"

namespace dime {

const char* SimFuncName(SimFunc func) {
  switch (func) {
    case SimFunc::kOverlap:
      return "overlap";
    case SimFunc::kJaccard:
      return "jaccard";
    case SimFunc::kDice:
      return "dice";
    case SimFunc::kCosine:
      return "cosine";
    case SimFunc::kEditSim:
      return "editsim";
    case SimFunc::kOntology:
      return "ontology";
    case SimFunc::kWeightedJaccard:
      return "wjaccard";
    case SimFunc::kWeightedCosine:
      return "wcosine";
  }
  return "unknown";
}

bool SimFuncFromName(std::string_view name, SimFunc* out) {
  for (SimFunc f :
       {SimFunc::kOverlap, SimFunc::kJaccard, SimFunc::kDice,
        SimFunc::kCosine, SimFunc::kEditSim, SimFunc::kOntology,
        SimFunc::kWeightedJaccard, SimFunc::kWeightedCosine}) {
    if (name == SimFuncName(f)) {
      *out = f;
      return true;
    }
  }
  return false;
}

bool IsSetBased(SimFunc func) {
  switch (func) {
    case SimFunc::kOverlap:
    case SimFunc::kJaccard:
    case SimFunc::kDice:
    case SimFunc::kCosine:
      return true;
    default:
      return false;
  }
}

bool IsWeightedSetBased(SimFunc func) {
  return func == SimFunc::kWeightedJaccard ||
         func == SimFunc::kWeightedCosine;
}

bool IsNormalized(SimFunc func) { return func != SimFunc::kOverlap; }

}  // namespace dime
