#ifndef DIME_SIM_SET_SIMILARITY_H_
#define DIME_SIM_SET_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/rank_span.h"
#include "src/sim/similarity.h"

/// \file set_similarity.h
/// Set-based similarity over canonical token representations. The canonical
/// per-value representation is a strictly ascending vector of global token
/// ranks (rarest token first), produced by TokenDictionary; intersections
/// then reduce to a sorted-merge in O(|a| + |b|), matching the verification
/// cost model of Section III/IV-C.
///
/// Two kinds of kernels:
///
///  * exact-value kernels (`SetSimilarity` and friends) — compute the
///    similarity; used where the value itself is needed (rule generation,
///    feature extraction, explanations);
///  * threshold-aware kernels (`IntersectionAtLeast`,
///    `SetSimilarityAtLeast` / `AtMost`) — decide `f(A, B) vs threshold`
///    and stop at the decision point: as soon as the remaining elements
///    cannot reach — or cannot miss — the required overlap. Decisions are
///    bit-identical to computing the exact kernel and comparing (the
///    required overlap is derived from the very same floating-point
///    expression the exact kernel evaluates), so the filter–verification
///    engines can use them without changing any output.

namespace dime {

/// The epsilon Predicate::Compare applies on both comparison directions;
/// the threshold-aware kernels bake in the same tolerance so that
/// `SetSimilarityAtLeast(f, a, b, t) == (SetSimilarity(f, a, b) >= t - eps)`
/// holds exactly.
inline constexpr double kSimCompareEps = 1e-9;

/// Size of the intersection of two strictly ascending runs. Dispatches to
/// an AVX2 block kernel (8 lanes, all-pairs block compare) when the CPU
/// has it and both runs are dense enough; the scalar merge otherwise.
/// Counts are integers, so both paths return identical values (see
/// simd_dispatch.h for the twin contract and the DIME_FORCE_SCALAR
/// override).
size_t IntersectionSize(RankSpan a, RankSpan b);

/// True iff |a ∩ b| >= required. Early-exits as soon as the overlap
/// already counted can no longer miss `required`, or the elements left on
/// the shorter remaining side can no longer reach it; when one input is
/// much longer than the other the kernel gallops (exponential probe +
/// binary search) through the long side instead of merging. Worst case
/// O(|a| + |b|); typical far less.
bool IntersectionAtLeast(RankSpan a, RankSpan b, size_t required);

/// The exact similarity value `func` yields for an intersection of size
/// `overlap` between inputs of the given sizes — the same floating-point
/// expression the exact kernels evaluate, so threshold decisions derived
/// from it match the exact kernels bit for bit. Exposed for tests and for
/// single-merge-pass callers (SetSimilarityStrings).
double SetSimilarityFromOverlap(SimFunc func, size_t overlap, size_t size_a,
                                size_t size_b);

/// The smallest intersection size that satisfies `func >= theta - eps`
/// between inputs of the given sizes, i.e. min(size_a, size_b) + 1 when no
/// overlap can (unsatisfiable). Computed from the closed-form inversion of
/// the similarity formula, nudged to the exact boundary with the same
/// floating-point predicate the exact kernels evaluate — O(1) instead of
/// a per-pair binary search. Exposed for tests.
size_t MinOverlapForAtLeast(SimFunc func, size_t size_a, size_t size_b,
                            double theta);

/// Threshold-aware check `func(a, b) >= theta - eps` (the positive-rule
/// comparison, eps = kSimCompareEps). Decides without computing the exact
/// value; bit-identical to `SetSimilarity(func, a, b) >= theta - eps`.
bool SetSimilarityAtLeast(SimFunc func, RankSpan a, RankSpan b, double theta);

/// Threshold-aware check `func(a, b) <= sigma + eps` (the negative-rule
/// comparison). Bit-identical to `SetSimilarity(func, a, b) <= sigma + eps`.
bool SetSimilarityAtMost(SimFunc func, RankSpan a, RankSpan b, double sigma);

/// Monotone count of threshold-aware kernel invocations (set-based and
/// weighted) that decided before consuming their inputs, for the calling
/// thread. Engines snapshot deltas around a run and report them as
/// DimeResult::Stats::kernel_early_exits.
uint64_t KernelEarlyExits();

namespace internal {
/// Bumps the calling thread's early-exit counter (kernel-internal).
void BumpKernelEarlyExit();

/// Scalar reference twins of the dispatching kernels above: always take
/// the portable merge path regardless of ActiveSimdLevel(). Differential
/// tests compare these against the dispatched kernels under both force
/// modes; not for production use.
size_t IntersectionSizeScalar(RankSpan a, RankSpan b);
bool IntersectionAtLeastScalar(RankSpan a, RankSpan b, size_t required);
}  // namespace internal

/// Overlap similarity |A ∩ B| (a count, not normalized).
double OverlapSim(RankSpan a, RankSpan b);

/// Jaccard similarity |A ∩ B| / |A ∪ B|; 1.0 when both sets are empty.
double JaccardSim(RankSpan a, RankSpan b);

/// Dice similarity 2|A ∩ B| / (|A| + |B|); 1.0 when both sets are empty.
double DiceSim(RankSpan a, RankSpan b);

/// Cosine similarity |A ∩ B| / sqrt(|A||B|); 1.0 when both sets are empty.
double CosineSim(RankSpan a, RankSpan b);

/// Dispatches to the function above matching `func` (must be set-based).
double SetSimilarity(SimFunc func, RankSpan a, RankSpan b);

/// Convenience overloads on string sets (sorted + deduplicated internally);
/// used by tests and by code paths that have not interned tokens.
double SetSimilarityStrings(SimFunc func, std::vector<std::string> a,
                            std::vector<std::string> b);

/// The length of the prefix (of a rank-sorted value of size `size`) that
/// must be indexed so that any partner value with similarity >= `theta`
/// shares at least one prefix token (prefix-filtering principle,
/// Section IV-B). Returns 0 when no partner can reach `theta` (the value is
/// too small), in which case the value generates no signatures.
///
/// For kOverlap, `theta` is a count: prefix length is |v| - theta + 1.
/// For normalized set functions the bound uses the partner-size-free
/// relaxation (e.g. Jaccard >= t implies overlap >= t * |v|).
size_t SetPrefixLength(SimFunc func, size_t size, double theta);

}  // namespace dime

#endif  // DIME_SIM_SET_SIMILARITY_H_
