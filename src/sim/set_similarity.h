#ifndef DIME_SIM_SET_SIMILARITY_H_
#define DIME_SIM_SET_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/similarity.h"

/// \file set_similarity.h
/// Set-based similarity over canonical token representations. The canonical
/// per-value representation is a strictly ascending vector of global token
/// ranks (rarest token first), produced by TokenDictionary; intersections
/// then reduce to a sorted-merge in O(|a| + |b|), matching the verification
/// cost model of Section III/IV-C.

namespace dime {

/// Size of the intersection of two strictly ascending vectors.
size_t IntersectionSize(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);

/// Overlap similarity |A ∩ B| (a count, not normalized).
double OverlapSim(const std::vector<uint32_t>& a,
                  const std::vector<uint32_t>& b);

/// Jaccard similarity |A ∩ B| / |A ∪ B|; 1.0 when both sets are empty.
double JaccardSim(const std::vector<uint32_t>& a,
                  const std::vector<uint32_t>& b);

/// Dice similarity 2|A ∩ B| / (|A| + |B|); 1.0 when both sets are empty.
double DiceSim(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b);

/// Cosine similarity |A ∩ B| / sqrt(|A||B|); 1.0 when both sets are empty.
double CosineSim(const std::vector<uint32_t>& a,
                 const std::vector<uint32_t>& b);

/// Dispatches to the function above matching `func` (must be set-based).
double SetSimilarity(SimFunc func, const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b);

/// Convenience overloads on string sets (sorted + deduplicated internally);
/// used by tests and by code paths that have not interned tokens.
double SetSimilarityStrings(SimFunc func, std::vector<std::string> a,
                            std::vector<std::string> b);

/// The length of the prefix (of a rank-sorted value of size `size`) that
/// must be indexed so that any partner value with similarity >= `theta`
/// shares at least one prefix token (prefix-filtering principle,
/// Section IV-B). Returns 0 when no partner can reach `theta` (the value is
/// too small), in which case the value generates no signatures.
///
/// For kOverlap, `theta` is a count: prefix length is |v| - theta + 1.
/// For normalized set functions the bound uses the partner-size-free
/// relaxation (e.g. Jaccard >= t implies overlap >= t * |v|).
size_t SetPrefixLength(SimFunc func, size_t size, double theta);

}  // namespace dime

#endif  // DIME_SIM_SET_SIMILARITY_H_
