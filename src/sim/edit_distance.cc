#include "src/sim/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/check.h"

namespace dime {
namespace {

// ---------------------------------------------------------------------------
// Myers bit-parallel Levenshtein (single-word, blocked, banded).
//
// Word layout: the PATTERN (always the shorter string) runs down the bit
// positions — bit r of a word is pattern row r of that 64-row block, so
// bit 0 is the topmost row and carries propagate downward through the
// matrix as the addition in the D0 computation ripples toward the MSB.
// The TEXT advances one column per iteration. VP/VN hold the vertical
// deltas of the current column (+1 / -1 per row), HP/HN the horizontal
// deltas, and the scalar `score` tracks the DP value at a fixed sampling
// row, updated from the horizontal delta bit at that row each column.
//
// Distances are integers, so as long as each variant computes the exact
// DP recurrence its result — and every threshold decision derived from it
// — is bit-identical to the classic DP's.
// ---------------------------------------------------------------------------

/// Per-thread scratch. `peq` is the pattern-match bit table (256 chars x
/// `blocks` words) and is kept ALL-ZERO between calls: each call sets the
/// bits of its pattern and clears exactly those words again before
/// returning, so the cost per call is O(|pattern|) instead of a 2KB-per-
/// block memset.
struct MyersScratch {
  std::vector<uint64_t> peq;
  std::vector<uint64_t> vp;
  std::vector<uint64_t> vn;
  std::vector<size_t> bottom;  ///< per-block DP value at the block's last row

  void EnsureBlocks(size_t blocks) {
    if (peq.size() < blocks * 256) peq.resize(blocks * 256, 0);
    if (vp.size() < blocks) {
      vp.resize(blocks);
      vn.resize(blocks);
      bottom.resize(blocks);
    }
  }
};

MyersScratch& Scratch() {
  thread_local MyersScratch scratch;
  return scratch;
}

void FillPeq(std::string_view pattern, size_t blocks, uint64_t* peq) {
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<unsigned char>(pattern[i]) * blocks + (i >> 6)] |=
        uint64_t{1} << (i & 63);
  }
}

void ClearPeq(std::string_view pattern, size_t blocks, uint64_t* peq) {
  // Every bit set by FillPeq came from some position i; zeroing that
  // position's word again restores the all-zero invariant.
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<unsigned char>(pattern[i]) * blocks + (i >> 6)] = 0;
  }
}

/// Advances one 64-row block by one text column. `eq` is the block's
/// pattern-match word for the column's character; `hin` in {-1, 0, +1} is
/// the horizontal delta entering the block's top row. Returns the
/// horizontal delta leaving the bottom row; `*hp_out` / `*hn_out` receive
/// the unshifted horizontal delta vectors so callers can sample the score
/// at an interior row.
inline int AdvanceBlock(uint64_t eq, int hin, uint64_t* vp_io, uint64_t* vn_io,
                        uint64_t* hp_out, uint64_t* hn_out) {
  uint64_t vp = *vp_io;
  uint64_t vn = *vn_io;
  const uint64_t hin_neg = hin < 0 ? 1u : 0u;
  const uint64_t eq_h = eq | hin_neg;  // a -1 carry acts like a row-0 match
  const uint64_t xv = eq | vn;
  const uint64_t xh = (((eq_h & vp) + vp) ^ vp) | eq_h;
  uint64_t hp = vn | ~(xh | vp);
  uint64_t hn = vp & xh;
  *hp_out = hp;
  *hn_out = hn;
  const int hout = (hp >> 63) ? 1 : (hn >> 63) ? -1 : 0;
  hp = (hp << 1) | (hin > 0 ? 1u : 0u);
  hn = (hn << 1) | hin_neg;
  *vp_io = hn | ~(xv | hp);
  *vn_io = hp & xv;
  return hout;
}

/// Single-word core: pattern `a` (1..64 chars) against text `b`, abandoning
/// once the distance provably exceeds `k`. Returns the exact distance if
/// <= k, else k + 1. Pass k >= |b| for the unbounded exact distance.
size_t MyersSingleWordCore(std::string_view a, std::string_view b, size_t k) {
  const size_t m = a.size();
  const size_t n = b.size();
  MyersScratch& scratch = Scratch();
  scratch.EnsureBlocks(1);
  uint64_t* peq = scratch.peq.data();
  FillPeq(a, 1, peq);

  uint64_t vp = ~uint64_t{0};
  uint64_t vn = 0;
  size_t score = m;  // D[m][0]
  const uint64_t sample = uint64_t{1} << (m - 1);
  size_t result = k + 1;
  for (size_t j = 0; j < n; ++j) {
    uint64_t hp, hn;
    AdvanceBlock(peq[static_cast<unsigned char>(b[j])], /*hin=*/1, &vp, &vn,
                 &hp, &hn);
    if (hp & sample) {
      ++score;
    } else if (hn & sample) {
      --score;
    }
    // Each remaining column can lower the bottom-row value by at most 1,
    // so `score - remaining` bounds the final distance from below.
    if (score > k + (n - 1 - j)) {
      ClearPeq(a, 1, peq);
      return result;
    }
  }
  result = score <= k ? score : k + 1;
  ClearPeq(a, 1, peq);
  return result;
}

/// Blocked core: pattern `a` (any length) against text `b` with block-level
/// banding. Only blocks intersecting the |i - j| <= k band advance each
/// column: blocks entirely above the band are dropped (their influence
/// enters as a +1 carry, an overestimate of cells that cannot lie on any
/// <= k path), blocks below it are activated lazily with all-+1 vertical
/// deltas (again an overestimate of irrelevant cells). Overestimating
/// out-of-band cells is exactly what the banded DP's +inf does, so in-band
/// values — and the returned distance whenever it is <= k — stay exact.
/// Returns the exact distance if <= k, else k + 1. Pass k >= |b| for the
/// unbounded exact distance (the band then covers every block).
size_t MyersBlockedCore(std::string_view a, std::string_view b, size_t k) {
  const size_t m = a.size();
  const size_t n = b.size();
  const size_t num_blocks = (m + 63) >> 6;
  MyersScratch& scratch = Scratch();
  scratch.EnsureBlocks(num_blocks);
  uint64_t* peq = scratch.peq.data();
  uint64_t* vp = scratch.vp.data();
  uint64_t* vn = scratch.vn.data();
  size_t* bottom = scratch.bottom.data();
  FillPeq(a, num_blocks, peq);

  // Active block range [first, last]; rows below `last`'s bottom have not
  // been touched yet and rows above `first`'s top are out of band.
  size_t first = 0;
  size_t last = std::min(num_blocks - 1, k >> 6);
  for (size_t blk = 0; blk <= last; ++blk) {
    vp[blk] = ~uint64_t{0};
    vn[blk] = 0;
    bottom[blk] = (blk + 1) << 6;  // column 0: D[i][0] = i
  }

  size_t result = k + 1;
  bool abandoned = false;
  for (size_t j = 0; j < n; ++j) {
    // Grow the bottom of the band: rows r <= j + k are reachable.
    const size_t want_last = std::min(num_blocks - 1, (j + k) >> 6);
    while (last < want_last) {
      ++last;
      vp[last] = ~uint64_t{0};
      vn[last] = 0;
      bottom[last] = bottom[last - 1] + 64;
    }
    // Shrink the top: a block whose bottom row has prefix length
    // 64*(blk+1) < (j+1) - k lies entirely above the band.
    while (first < last && j + 1 > k && ((first + 1) << 6) < j + 1 - k) {
      ++first;
    }
    const size_t c = static_cast<unsigned char>(b[j]) * num_blocks;
    int hin = 1;  // row-0 boundary (or the +1 overestimate at a dropped top)
    uint64_t hp, hn;
    for (size_t blk = first; blk <= last; ++blk) {
      hin = AdvanceBlock(peq[c + blk], hin, &vp[blk], &vn[blk], &hp, &hn);
      bottom[blk] += static_cast<size_t>(hin);
    }
    // Column-min abandon: every path crosses every column inside the band,
    // and each in-band value is at least its block's bottom value minus 63.
    bool all_exceed = true;
    for (size_t blk = first; blk <= last; ++blk) {
      if (bottom[blk] <= k + 63) {
        all_exceed = false;
        break;
      }
    }
    if (all_exceed) {
      abandoned = true;
      break;
    }
    // Remaining-columns abandon at the last block's bottom row.
    const size_t bottom_row = ((last + 1) << 6) - 1;
    const size_t row_gap =
        bottom_row >= m - 1 ? bottom_row - (m - 1) : (m - 1) - bottom_row;
    if (bottom[last] > k + (n - 1 - j) + row_gap) {
      abandoned = true;
      break;
    }
  }
  if (!abandoned) {
    // The answer sits at pattern row m - 1 of the final block; walk the
    // vertical deltas up from the block's (possibly padded) bottom row.
    DIME_DCHECK_EQ(last, num_blocks - 1);
    const size_t r = (m - 1) & 63;
    size_t value = bottom[last];
    if (r != 63) {
      const uint64_t above = ~uint64_t{0} << (r + 1);
      value -= static_cast<size_t>(__builtin_popcountll(vp[last] & above));
      value += static_cast<size_t>(__builtin_popcountll(vn[last] & above));
    }
    result = value <= k ? value : k + 1;
  }
  ClearPeq(a, num_blocks, peq);
  return result;
}

/// Shared entry: orders the inputs (pattern = shorter), handles empties and
/// the length gap, clamps the threshold, and picks the word layout.
size_t MyersWithin(std::string_view a, std::string_view b, size_t max_dist) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > max_dist) return max_dist + 1;
  if (a.empty()) return b.size();  // <= max_dist by the gap check
  // The distance never exceeds |b|, so a larger threshold cannot change
  // the result; clamping keeps the band arithmetic overflow-free.
  const size_t k = std::min(max_dist, b.size());
  const size_t d = a.size() <= 64 ? MyersSingleWordCore(a, b, k)
                                  : MyersBlockedCore(a, b, k);
  return d <= max_dist ? d : max_dist + 1;
}

}  // namespace

namespace internal {

size_t EditDistanceDP(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter string
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({sub, prev[i] + 1, cur[i - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

size_t EditDistanceWithinDP(std::string_view a, std::string_view b,
                            size_t max_dist) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > max_dist) return max_dist + 1;
  const size_t kInf = std::numeric_limits<size_t>::max() / 2;
  // Band half-width: cells with |i - j| > max_dist can never contribute.
  std::vector<size_t> prev(a.size() + 1, kInf), cur(a.size() + 1, kInf);
  for (size_t i = 0; i <= std::min(a.size(), max_dist); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t lo = j > max_dist ? j - max_dist : 0;
    size_t hi = std::min(a.size(), j + max_dist);
    if (lo > hi) return max_dist + 1;
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 0) cur[0] = j;
    size_t row_min = kInf;
    if (lo == 0) row_min = cur[0];
    for (size_t i = std::max<size_t>(lo, 1); i <= hi; ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t del = prev[i] + 1;
      size_t ins = cur[i - 1] + 1;
      cur[i] = std::min({sub, del, ins});
      row_min = std::min(row_min, cur[i]);
    }
    if (row_min > max_dist) return max_dist + 1;
    std::swap(prev, cur);
  }
  size_t result = prev[a.size()];
  return result <= max_dist ? result : max_dist + 1;
}

size_t MyersDistanceSingleWord(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  DIME_CHECK_LE(a.size(), 64u);
  if (a.empty()) return b.size();
  return MyersSingleWordCore(a, b, /*k=*/b.size());
}

size_t MyersDistanceBlocked(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return b.size();
  return MyersBlockedCore(a, b, /*k=*/b.size());
}

size_t MyersDistanceBanded(std::string_view a, std::string_view b,
                           size_t max_dist) {
  return MyersWithin(a, b, max_dist);
}

}  // namespace internal

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return b.size();
  return a.size() <= 64 ? MyersSingleWordCore(a, b, /*k=*/b.size())
                        : MyersBlockedCore(a, b, /*k=*/b.size());
}

size_t EditDistanceWithin(std::string_view a, std::string_view b,
                          size_t max_dist) {
  return MyersWithin(a, b, max_dist);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  size_t ed = EditDistance(a, b);
  return 1.0 - static_cast<double>(ed) / static_cast<double>(max_len);
}

bool EditSimilarityAtLeast(std::string_view a, std::string_view b,
                           double tau) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return tau <= 1.0;
  if (tau <= 0.0) return true;
  double allowed = (1.0 - tau) * static_cast<double>(max_len);
  size_t max_dist = static_cast<size_t>(std::floor(allowed + 1e-9));
  size_t ed = EditDistanceWithin(a, b, max_dist);
  return ed <= max_dist;
}

bool EditSimilarityAtMost(std::string_view a, std::string_view b,
                          double sigma) {
  const size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0 <= sigma + 1e-9;  // sim is exactly 1.0
  // The check holds iff ed >= d0, where d0 is the smallest integer with
  // 1 - d0/max_len <= sigma + eps. Derive d0 in closed form, then nudge it
  // with the EXACT comparison Predicate::Compare applies, so the decision
  // is bit-identical to comparing the exact similarity.
  const double len = static_cast<double>(max_len);
  auto holds_at = [&](size_t ed) {
    return 1.0 - static_cast<double>(ed) / len <= sigma + 1e-9;
  };
  double guess = std::ceil((1.0 - sigma) * len) - 1.0;
  size_t d0 = guess <= 0.0 ? 0 : static_cast<size_t>(guess);
  while (d0 > 0 && holds_at(d0 - 1)) --d0;
  while (d0 <= max_len && !holds_at(d0)) ++d0;
  if (d0 == 0) return true;           // every distance qualifies
  if (d0 > max_len) return false;     // no achievable distance qualifies
  // ed >= d0  <=>  the banded check at d0 - 1 overflows its threshold.
  return EditDistanceWithin(a, b, d0 - 1) == d0;
}

size_t MaxEditDistanceForSim(size_t len, double tau) {
  if (tau <= 0.0) return std::numeric_limits<size_t>::max() / 4;
  double bound = (1.0 - tau) * static_cast<double>(len) / tau;
  return static_cast<size_t>(std::floor(bound + 1e-9));
}

}  // namespace dime
