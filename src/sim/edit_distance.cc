#include "src/sim/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace dime {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);  // a is the shorter string
  std::vector<size_t> prev(a.size() + 1), cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({sub, prev[i] + 1, cur[i - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

size_t EditDistanceWithin(std::string_view a, std::string_view b,
                          size_t max_dist) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > max_dist) return max_dist + 1;
  const size_t kInf = std::numeric_limits<size_t>::max() / 2;
  // Band half-width: cells with |i - j| > max_dist can never contribute.
  std::vector<size_t> prev(a.size() + 1, kInf), cur(a.size() + 1, kInf);
  for (size_t i = 0; i <= std::min(a.size(), max_dist); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t lo = j > max_dist ? j - max_dist : 0;
    size_t hi = std::min(a.size(), j + max_dist);
    if (lo > hi) return max_dist + 1;
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 0) cur[0] = j;
    size_t row_min = kInf;
    if (lo == 0) row_min = cur[0];
    for (size_t i = std::max<size_t>(lo, 1); i <= hi; ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t del = prev[i] + 1;
      size_t ins = cur[i - 1] + 1;
      cur[i] = std::min({sub, del, ins});
      row_min = std::min(row_min, cur[i]);
    }
    if (row_min > max_dist) return max_dist + 1;
    std::swap(prev, cur);
  }
  size_t result = prev[a.size()];
  return result <= max_dist ? result : max_dist + 1;
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  size_t ed = EditDistance(a, b);
  return 1.0 - static_cast<double>(ed) / static_cast<double>(max_len);
}

bool EditSimilarityAtLeast(std::string_view a, std::string_view b,
                           double tau) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return tau <= 1.0;
  if (tau <= 0.0) return true;
  double allowed = (1.0 - tau) * static_cast<double>(max_len);
  size_t max_dist = static_cast<size_t>(std::floor(allowed + 1e-9));
  size_t ed = EditDistanceWithin(a, b, max_dist);
  return ed <= max_dist;
}

size_t MaxEditDistanceForSim(size_t len, double tau) {
  if (tau <= 0.0) return std::numeric_limits<size_t>::max() / 4;
  double bound = (1.0 - tau) * static_cast<double>(len) / tau;
  return static_cast<size_t>(std::floor(bound + 1e-9));
}

}  // namespace dime
