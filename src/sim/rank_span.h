#ifndef DIME_SIM_RANK_SPAN_H_
#define DIME_SIM_RANK_SPAN_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

/// \file rank_span.h
/// A borrowed, non-owning view over one entity's canonical token
/// representation: a strictly ascending run of global token ranks. The
/// similarity kernels take these instead of `const std::vector<uint32_t>&`
/// so they can read straight out of the CSR arenas built by preprocessing
/// (core/preprocess.h) without per-pair copies; plain vectors still
/// convert implicitly, so call sites that own their data are unchanged.

namespace dime {

struct RankSpan {
  const uint32_t* ptr = nullptr;
  size_t len = 0;

  constexpr RankSpan() = default;
  constexpr RankSpan(const uint32_t* p, size_t n) : ptr(p), len(n) {}
  // Implicit by design: every pre-arena call site passes a vector.
  RankSpan(const std::vector<uint32_t>& v) : ptr(v.data()), len(v.size()) {}
  // For literal arguments in tests; the backing array of an
  // initializer_list only lives to the end of the full expression, so
  // never store a span constructed this way. (GCC warns about exactly
  // that storage hazard; passing a literal straight into a kernel is the
  // one safe use, which is all this constructor is for.)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  RankSpan(std::initializer_list<uint32_t> il)
      : ptr(il.begin()), len(il.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  const uint32_t* begin() const { return ptr; }
  const uint32_t* end() const { return ptr + len; }
  const uint32_t* data() const { return ptr; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
  uint32_t operator[](size_t i) const { return ptr[i]; }
};

}  // namespace dime

#endif  // DIME_SIM_RANK_SPAN_H_
