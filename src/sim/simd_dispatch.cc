#include "src/sim/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace dime {
namespace {

// The AVX2 kernels are compiled via the function `target` attribute, so
// they exist whenever the toolchain supports it on x86-64 — no global
// -mavx2 flag, the baseline ISA of every other translation unit is
// untouched.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
constexpr bool kAvx2CompiledIn = true;
bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }
#else
constexpr bool kAvx2CompiledIn = false;
bool CpuHasAvx2() { return false; }
#endif

// -1 = unresolved; otherwise a SimdLevel. Plain relaxed ops: the resolved
// value is a pure function of (env, CPUID, test override), so racing
// resolvers write the same value.
std::atomic<int> g_level{-1};
std::atomic<bool> g_force_scalar_for_test{false};

bool EnvForcesScalar() {
  const char* v = std::getenv("DIME_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

SimdLevel Resolve() {
  if (g_force_scalar_for_test.load(std::memory_order_relaxed)) {
    return SimdLevel::kScalar;
  }
  if (EnvForcesScalar()) return SimdLevel::kScalar;
  if (kAvx2CompiledIn && CpuHasAvx2()) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  int cached = g_level.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<SimdLevel>(cached);
  SimdLevel level = Resolve();
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

namespace internal {

void ForceScalarForTest(bool force_scalar) {
  g_force_scalar_for_test.store(force_scalar, std::memory_order_relaxed);
  g_level.store(static_cast<int>(Resolve()), std::memory_order_relaxed);
}

bool Avx2CompiledIn() { return kAvx2CompiledIn; }

}  // namespace internal

}  // namespace dime
