#ifndef DIME_SIM_WEIGHTED_SIMILARITY_H_
#define DIME_SIM_WEIGHTED_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "src/sim/rank_span.h"
#include "src/sim/similarity.h"

/// \file weighted_similarity.h
/// IDF-weighted set similarity (the library's extension beyond the paper's
/// three similarity classes). Values are the usual strictly ascending
/// rank vectors; `weights[r]` is the weight of the token with rank r
/// (idf = ln(1 + n/df), computed by preprocessing). Because ranks order
/// tokens by ascending document frequency, rank order == descending
/// weight order, which is exactly the ordering weighted prefix filtering
/// needs.
///
/// Alongside the exact kernels there are threshold-aware variants
/// (`WeightedSimilarityAtLeast` / `AtMost`) used by the verification hot
/// path. Unlike the unweighted kernels these cannot reduce the decision to
/// an integer overlap, so they interleave conservative bound checks with
/// the exact merge: an early answer is only taken when the bound clears
/// the threshold by a safety margin that dwarfs floating-point accumulation
/// error, and otherwise the merge runs to completion accumulating in the
/// exact same order as the exact kernel — so the decision is always
/// bit-identical to computing the exact similarity and comparing.

namespace dime {

/// w(A ∩ B) / w(A ∪ B); 1.0 when both sets are empty.
double WeightedJaccardSim(RankSpan a, RankSpan b,
                          const std::vector<double>& weights);

/// Binary-tf cosine: Σ_{t∈A∩B} w_t² / (‖A‖‖B‖) with ‖X‖ = sqrt(Σ w²);
/// 1.0 when both sets are empty.
double WeightedCosineSim(RankSpan a, RankSpan b,
                         const std::vector<double>& weights);

/// Dispatches on `func` (must satisfy IsWeightedSetBased).
double WeightedSetSimilarity(SimFunc func, RankSpan a, RankSpan b,
                             const std::vector<double>& weights);

/// Total weight w(X) of a value — the precomputed per-entity mass the
/// weighted-Jaccard threshold kernels take. Summation is in rank order so
/// preprocessing and the kernels agree bit for bit.
double TotalWeight(RankSpan v, const std::vector<double>& weights);

/// Squared norm Σ w² of a value, in rank order; the precomputed per-entity
/// mass the weighted-cosine threshold kernels take.
double SquaredWeightNorm(RankSpan v, const std::vector<double>& weights);

/// Threshold-aware check `func(a, b) >= theta - eps` (eps = 1e-9, matching
/// Predicate::Compare). `mass_a` / `mass_b` are TotalWeight for
/// kWeightedJaccard and SquaredWeightNorm for kWeightedCosine, computed
/// over the same spans and weights. Bit-identical to evaluating the exact
/// kernel and comparing.
bool WeightedSimilarityAtLeast(SimFunc func, RankSpan a, RankSpan b,
                               const std::vector<double>& weights,
                               double mass_a, double mass_b, double theta);

/// Threshold-aware check `func(a, b) <= sigma + eps`; same contract.
bool WeightedSimilarityAtMost(SimFunc func, RankSpan a, RankSpan b,
                              const std::vector<double>& weights,
                              double mass_a, double mass_b, double sigma);

/// Weighted prefix filtering: the shortest prefix of `ranks` (descending
/// weight) such that no partner intersecting only the suffix can reach
/// `threshold`. Guarantees: if sim(A, B) >= threshold then
/// prefix(A) ∩ prefix(B) != ∅. Returns 0 when the value cannot reach the
/// threshold with any partner (empty value), `ranks.size()` when no
/// filtering is possible (threshold <= 0).
size_t WeightedPrefixLength(SimFunc func, RankSpan ranks,
                            const std::vector<double>& weights,
                            double threshold);

/// The per-group token weights: idf(r) = ln(1 + n / df(r)) for each rank.
std::vector<double> IdfWeightsByRank(const std::vector<uint32_t>& doc_freq_by_rank,
                                     size_t num_documents);

}  // namespace dime

#endif  // DIME_SIM_WEIGHTED_SIMILARITY_H_
