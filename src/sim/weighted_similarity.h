#ifndef DIME_SIM_WEIGHTED_SIMILARITY_H_
#define DIME_SIM_WEIGHTED_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "src/sim/similarity.h"

/// \file weighted_similarity.h
/// IDF-weighted set similarity (the library's extension beyond the paper's
/// three similarity classes). Values are the usual strictly ascending
/// rank vectors; `weights[r]` is the weight of the token with rank r
/// (idf = ln(1 + n/df), computed by preprocessing). Because ranks order
/// tokens by ascending document frequency, rank order == descending
/// weight order, which is exactly the ordering weighted prefix filtering
/// needs.

namespace dime {

/// w(A ∩ B) / w(A ∪ B); 1.0 when both sets are empty.
double WeightedJaccardSim(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b,
                          const std::vector<double>& weights);

/// Binary-tf cosine: Σ_{t∈A∩B} w_t² / (‖A‖‖B‖) with ‖X‖ = sqrt(Σ w²);
/// 1.0 when both sets are empty.
double WeightedCosineSim(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b,
                         const std::vector<double>& weights);

/// Dispatches on `func` (must satisfy IsWeightedSetBased).
double WeightedSetSimilarity(SimFunc func, const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b,
                             const std::vector<double>& weights);

/// Weighted prefix filtering: the shortest prefix of `ranks` (descending
/// weight) such that no partner intersecting only the suffix can reach
/// `threshold`. Guarantees: if sim(A, B) >= threshold then
/// prefix(A) ∩ prefix(B) != ∅. Returns 0 when the value cannot reach the
/// threshold with any partner (empty value), `ranks.size()` when no
/// filtering is possible (threshold <= 0).
size_t WeightedPrefixLength(SimFunc func, const std::vector<uint32_t>& ranks,
                            const std::vector<double>& weights,
                            double threshold);

/// The per-group token weights: idf(r) = ln(1 + n / df(r)) for each rank.
std::vector<double> IdfWeightsByRank(const std::vector<uint32_t>& doc_freq_by_rank,
                                     size_t num_documents);

}  // namespace dime

#endif  // DIME_SIM_WEIGHTED_SIMILARITY_H_
