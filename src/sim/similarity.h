#ifndef DIME_SIM_SIMILARITY_H_
#define DIME_SIM_SIMILARITY_H_

#include <string>
#include <string_view>

/// \file similarity.h
/// Unified descriptors for the three classes of similarity functions the
/// paper supports (Section II): set-based (overlap, Jaccard, Dice, cosine),
/// character-based (edit similarity) and ontology-based. Rules reference
/// similarity functions through these descriptors; evaluation against
/// prepared entity representations lives in core/preprocess.h.

namespace dime {

/// The similarity-function library F.
enum class SimFunc : int {
  kOverlap = 0,    ///< |A ∩ B| (absolute count; thresholds are counts)
  kJaccard = 1,    ///< |A ∩ B| / |A ∪ B|
  kDice = 2,       ///< 2|A ∩ B| / (|A| + |B|)
  kCosine = 3,     ///< |A ∩ B| / sqrt(|A||B|)
  kEditSim = 4,    ///< 1 - ED(a, b) / max(|a|, |b|)
  kOntology = 5,   ///< 2|LCA(n, n')| / (|n| + |n'|)
  /// IDF-weighted extensions (beyond the paper's three classes): rare
  /// tokens count for more, so sharing "Desulfurization" means more than
  /// sharing "data". Weights are idf = ln(1 + n/df) over the group.
  kWeightedJaccard = 6,  ///< w(A ∩ B) / w(A ∪ B)
  kWeightedCosine = 7,   ///< Σ_{∩} w² / (‖A‖‖B‖), binary tf
};

/// How a multi-valued attribute is turned into a token set for the
/// set-based functions.
enum class TokenMode : int {
  kValueList = 0,  ///< each element of the value list is one token (Authors)
  kWords = 1,      ///< word-tokenize the concatenated text (Title)
};

/// Stable lower-case name ("overlap", "jaccard", ...).
const char* SimFuncName(SimFunc func);

/// Parses a name produced by SimFuncName. Returns false on unknown names.
bool SimFuncFromName(std::string_view name, SimFunc* out);

/// True for overlap/Jaccard/Dice/cosine (unweighted).
bool IsSetBased(SimFunc func);

/// True for the IDF-weighted set functions.
bool IsWeightedSetBased(SimFunc func);

/// True if the function's range is [0, 1] (everything except kOverlap).
bool IsNormalized(SimFunc func);

}  // namespace dime

#endif  // DIME_SIM_SIMILARITY_H_
