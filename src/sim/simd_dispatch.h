#ifndef DIME_SIM_SIMD_DISPATCH_H_
#define DIME_SIM_SIMD_DISPATCH_H_

/// \file simd_dispatch.h
/// Runtime selection between the portable scalar kernels and their SIMD
/// twins. This header (plus its .cc) is the single sanctioned home for
/// CPU-feature probing: everything else asks `ActiveSimdLevel()` and
/// branches, so the decision is made once, is overridable for testing,
/// and dime_lint can ban raw `<immintrin.h>` / `__builtin_cpu_supports`
/// use elsewhere (rule `raw-intrinsics`).
///
/// Resolution order, evaluated once on first use and cached:
///   1. `DIME_FORCE_SCALAR` set to anything but "" or "0" -> kScalar
///      (the differential-test and incident-escape hatch);
///   2. the CPU reports AVX2 -> kAvx2;
///   3. otherwise -> kScalar.
///
/// SIMD kernels are twins, not variants: every kernel selected here must
/// return bit-identical results to its scalar counterpart (integer counts
/// and threshold decisions only — no reassociated floating-point), so the
/// level never changes any engine output, only its speed.

namespace dime {

enum class SimdLevel {
  kScalar = 0,  ///< portable baseline, always available
  kAvx2 = 1,    ///< 8 x 32-bit lanes (x86-64 AVX2)
};

/// The level kernels should dispatch on. First call resolves (env var +
/// CPUID) and caches; later calls are a relaxed atomic load.
SimdLevel ActiveSimdLevel();

/// Human-readable level name ("scalar", "avx2") for logs and bench rows.
const char* SimdLevelName(SimdLevel level);

namespace internal {

/// Test hook: true forces kScalar; false restores the real resolution
/// (env var + CPUID). Takes effect immediately on all threads. Tests use
/// this to run both kernel families in one process; production code must
/// use the DIME_FORCE_SCALAR environment variable instead.
void ForceScalarForTest(bool force_scalar);

/// True when the build can emit AVX2 at all (x86-64 with a toolchain that
/// honors the target attribute); false means ActiveSimdLevel() can never
/// return kAvx2. Exposed so tests skip vector-vs-scalar comparisons on
/// hosts where there is only one family to compare.
bool Avx2CompiledIn();

}  // namespace internal

}  // namespace dime

#endif  // DIME_SIM_SIMD_DISPATCH_H_
