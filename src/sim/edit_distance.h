#ifndef DIME_SIM_EDIT_DISTANCE_H_
#define DIME_SIM_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

/// \file edit_distance.h
/// Character-based similarity (Section II). The exact and threshold-aware
/// entry points are backed by Myers' bit-parallel algorithm (64 pattern
/// rows per machine word): a single-word fast path when the shorter string
/// fits in one word, a blocked multi-word variant for longer strings, and
/// a banded variant that only advances the blocks intersecting the
/// |i - j| <= max_dist band and abandons as soon as the column minimum
/// provably exceeds the threshold. Distances are integers, so every
/// variant returns exactly what the classic DP returns and the decisions
/// downstream (EditSimilarityAtLeast, PredicateHolds) are bit-identical;
/// the DP twins survive in `internal` as differential-test references.

namespace dime {

/// Plain Levenshtein distance. Bit-parallel: O(|b|) words when the shorter
/// string fits in 64 chars, O(|a| / 64 * |b|) otherwise.
size_t EditDistance(std::string_view a, std::string_view b);

/// Banded Levenshtein: returns the exact distance if it is <= `max_dist`,
/// otherwise returns `max_dist + 1`. Bit-parallel with block-level banding:
/// O(min(max_dist, |a|) / 64 * |b|) block updates.
size_t EditDistanceWithin(std::string_view a, std::string_view b,
                          size_t max_dist);

/// Normalized edit similarity: 1 - ED(a, b) / max(|a|, |b|).
/// Both empty -> 1.0.
double EditSimilarity(std::string_view a, std::string_view b);

/// True iff EditSimilarity(a, b) >= tau, computed with the banded variant
/// so the cost matches the threshold (used by rule verification).
bool EditSimilarityAtLeast(std::string_view a, std::string_view b, double tau);

/// True iff EditSimilarity(a, b) <= sigma + eps (eps = 1e-9, matching
/// Predicate::Compare on Direction::kLe) — the negative-rule comparison,
/// decided with the banded variant instead of the full distance.
/// Bit-identical to `Predicate::Compare(EditSimilarity(a, b), kLe)`.
bool EditSimilarityAtMost(std::string_view a, std::string_view b,
                          double sigma);

/// The largest edit distance d such that some partner string could still
/// have EditSimilarity >= tau with a string of length `len`:
/// d <= (1 - tau) * len / tau. Used by q-gram signature generation. For
/// tau <= 0 returns a huge bound (no filtering possible).
size_t MaxEditDistanceForSim(size_t len, double tau);

namespace internal {

/// The classic two-row DP. Reference implementation for the differential
/// tests; not used on any hot path.
size_t EditDistanceDP(std::string_view a, std::string_view b);

/// The banded DP with the EditDistanceWithin contract (exact if
/// <= max_dist, else max_dist + 1). Differential-test reference.
size_t EditDistanceWithinDP(std::string_view a, std::string_view b,
                            size_t max_dist);

/// Myers single-word bit-parallel distance; requires
/// min(|a|, |b|) <= 64. Exact.
size_t MyersDistanceSingleWord(std::string_view a, std::string_view b);

/// Myers blocked multi-word distance, any lengths. Exact. (Also valid for
/// strings that fit in one word — used by tests to pin the block logic at
/// the 63/64/65 boundaries.)
size_t MyersDistanceBlocked(std::string_view a, std::string_view b);

/// Myers banded distance with the EditDistanceWithin contract.
size_t MyersDistanceBanded(std::string_view a, std::string_view b,
                           size_t max_dist);

}  // namespace internal

}  // namespace dime

#endif  // DIME_SIM_EDIT_DISTANCE_H_
