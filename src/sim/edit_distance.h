#ifndef DIME_SIM_EDIT_DISTANCE_H_
#define DIME_SIM_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

/// \file edit_distance.h
/// Character-based similarity (Section II). The threshold-aware variant
/// implements the banded dynamic program whose O(theta * min(|a|, |b|))
/// cost the paper uses as the verification cost model (Section IV-C).

namespace dime {

/// Plain Levenshtein distance, O(|a| * |b|).
size_t EditDistance(std::string_view a, std::string_view b);

/// Banded Levenshtein: returns the exact distance if it is <= `max_dist`,
/// otherwise returns `max_dist + 1`. O(max_dist * min(|a|, |b|)).
size_t EditDistanceWithin(std::string_view a, std::string_view b,
                          size_t max_dist);

/// Normalized edit similarity: 1 - ED(a, b) / max(|a|, |b|).
/// Both empty -> 1.0.
double EditSimilarity(std::string_view a, std::string_view b);

/// True iff EditSimilarity(a, b) >= tau, computed with the banded DP so the
/// cost matches the threshold (used by rule verification).
bool EditSimilarityAtLeast(std::string_view a, std::string_view b, double tau);

/// The largest edit distance d such that some partner string could still
/// have EditSimilarity >= tau with a string of length `len`:
/// d <= (1 - tau) * len / tau. Used by q-gram signature generation. For
/// tau <= 0 returns a huge bound (no filtering possible).
size_t MaxEditDistanceForSim(size_t len, double tau);

}  // namespace dime

#endif  // DIME_SIM_EDIT_DISTANCE_H_
