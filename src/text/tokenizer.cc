#include "src/text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace dime {

std::vector<std::string> WhitespaceTokenize(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) tokens.emplace_back(text.substr(start, i - start));
  }
  return tokens;
}

std::vector<std::string> WordTokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> WordTokenizeUnique(std::string_view text) {
  std::vector<std::string> tokens = WordTokenize(text);
  std::unordered_set<std::string> seen;
  std::vector<std::string> unique;
  unique.reserve(tokens.size());
  for (std::string& t : tokens) {
    if (seen.insert(t).second) unique.push_back(std::move(t));
  }
  return unique;
}

std::vector<std::string> QGrams(std::string_view text, int q) {
  std::vector<std::string> grams;
  if (text.empty() || q <= 0) return grams;
  if (text.size() <= static_cast<size_t>(q)) {
    grams.emplace_back(text);
    return grams;
  }
  grams.reserve(text.size() - q + 1);
  for (size_t i = 0; i + q <= text.size(); ++i) {
    grams.emplace_back(text.substr(i, q));
  }
  return grams;
}

}  // namespace dime
