#ifndef DIME_TEXT_TOKENIZER_H_
#define DIME_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

/// \file tokenizer.h
/// Tokenization primitives for the set-based and character-based similarity
/// functions (Section II of the paper). Set-based similarity first "splits
/// each value into a set of tokens"; character-based similarity (edit
/// distance) is supported through q-gram extraction for signature
/// generation (Section IV-B).

namespace dime {

/// Splits on runs of whitespace; tokens are returned verbatim.
std::vector<std::string> WhitespaceTokenize(std::string_view text);

/// Splits into lower-cased maximal alphanumeric runs ("KATARA: A data..."
/// -> {"katara", "a", "data", ...}). This is the default tokenizer for
/// free-text attributes such as Title and Description.
std::vector<std::string> WordTokenize(std::string_view text);

/// Like WordTokenize but deduplicates tokens, preserving first-seen order
/// (set semantics for set-based similarity).
std::vector<std::string> WordTokenizeUnique(std::string_view text);

/// Extracts the positional q-grams of `text` (without padding):
/// "abcd", q=2 -> {"ab", "bc", "cd"}. If `text` is shorter than q the whole
/// string is returned as a single gram. Used by edit-distance signatures.
std::vector<std::string> QGrams(std::string_view text, int q);

}  // namespace dime

#endif  // DIME_TEXT_TOKENIZER_H_
