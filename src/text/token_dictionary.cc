#include "src/text/token_dictionary.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace dime {

TokenId TokenDictionary::Intern(std::string_view token) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) return it->second;
  TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  doc_freq_.push_back(0);
  index_.emplace(tokens_.back(), id);
  return id;
}

TokenId TokenDictionary::Lookup(std::string_view token) const {
  auto it = index_.find(std::string(token));
  return it == index_.end() ? kNoToken : it->second;
}

std::vector<TokenId> TokenDictionary::InternDocument(
    const std::vector<std::string>& tokens) {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) ids.push_back(Intern(t));
  // Bump document frequency once per distinct token in this document.
  std::vector<TokenId> distinct = ids;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (TokenId id : distinct) ++doc_freq_[id];
  return ids;
}

void TokenDictionary::BuildGlobalOrder() {
  std::vector<TokenId> order(tokens_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](TokenId a, TokenId b) {
    if (doc_freq_[a] != doc_freq_[b]) return doc_freq_[a] < doc_freq_[b];
    return a < b;
  });
  rank_.assign(tokens_.size(), 0);
  for (uint32_t r = 0; r < order.size(); ++r) rank_[order[r]] = r;
}

std::vector<uint32_t> TokenDictionary::DocumentFrequencyByRank() const {
  if (!HasGlobalOrder()) {
    // Missed BuildGlobalOrder() is a caller bug, but not one worth dying
    // for: degrade to insertion order (rank == id) with a warning.
    DIME_LOG(WARNING)
        << "DocumentFrequencyByRank before BuildGlobalOrder(); "
           "degrading to insertion order";
    return doc_freq_;
  }
  std::vector<uint32_t> by_rank(tokens_.size(), 0);
  for (TokenId id = 0; id < tokens_.size(); ++id) {
    by_rank[rank_[id]] = doc_freq_[id];
  }
  return by_rank;
}

void TokenDictionary::Restore(std::vector<std::string> tokens,
                              std::vector<uint32_t> doc_freq) {
  DIME_DCHECK_EQ(tokens.size(), doc_freq.size());
  tokens_ = std::move(tokens);
  doc_freq_ = std::move(doc_freq);
  index_.clear();
  index_.reserve(tokens_.size());
  for (TokenId id = 0; id < tokens_.size(); ++id) {
    index_.emplace(tokens_[id], id);
  }
  rank_.clear();
  BuildGlobalOrder();
}

std::vector<TokenId> TokenDictionary::SortByRank(
    std::vector<TokenId> ids) const {
  if (!HasGlobalOrder()) {
    DIME_LOG(WARNING) << "SortByRank before BuildGlobalOrder(); "
                         "degrading to insertion order";
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  }
  std::sort(ids.begin(), ids.end(), [this](TokenId a, TokenId b) {
    return rank_[a] < rank_[b];
  });
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace dime
