#ifndef DIME_TEXT_TOKEN_DICTIONARY_H_
#define DIME_TEXT_TOKEN_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file token_dictionary.h
/// Interns tokens to dense integer ids and maintains document frequencies.
///
/// Signature generation (Section IV-B of the paper) requires "a global
/// ordering on all the tokens (e.g., document frequency)": prefix filtering
/// keeps the rarest tokens of each value, so candidate lists stay short.
/// TokenDictionary provides that ordering via `GlobalRank`, where rank 0 is
/// the rarest token (ties broken by token id for determinism).

namespace dime {

using TokenId = uint32_t;

class TokenDictionary {
 public:
  TokenDictionary() = default;

  /// Interns `token`, returning its stable id. Does not affect frequencies.
  TokenId Intern(std::string_view token);

  /// Returns the id of `token` or `kNoToken` if absent.
  static constexpr TokenId kNoToken = static_cast<TokenId>(-1);
  TokenId Lookup(std::string_view token) const;

  /// Interns every token of one document (one attribute value) and bumps
  /// each distinct token's document frequency once. Returns the ids in
  /// input order (duplicates preserved).
  std::vector<TokenId> InternDocument(const std::vector<std::string>& tokens);

  /// Number of distinct tokens.
  size_t size() const { return tokens_.size(); }

  /// The token string for `id`.
  const std::string& Token(TokenId id) const { return tokens_[id]; }

  /// Document frequency of `id`.
  uint32_t DocumentFrequency(TokenId id) const { return doc_freq_[id]; }

  /// Finalizes the global ordering: ascending document frequency, ties by
  /// id. Must be called after all documents are interned and before
  /// GlobalRank. Calling it again recomputes the ordering.
  void BuildGlobalOrder();

  /// Rank of `id` in the global ordering (0 = rarest). Requires
  /// BuildGlobalOrder() to have been called.
  uint32_t GlobalRank(TokenId id) const { return rank_[id]; }

  /// Document frequencies indexed by rank (ascending, by construction).
  /// Requires BuildGlobalOrder().
  std::vector<uint32_t> DocumentFrequencyByRank() const;

  /// True once BuildGlobalOrder has been called.
  bool HasGlobalOrder() const { return !rank_.empty() || tokens_.empty(); }

  /// Rebuilds the dictionary from serialized parts: token strings in id
  /// order plus their document frequencies (sizes must match). Re-derives
  /// the hash index and the global ordering — BuildGlobalOrder is
  /// deterministic in (doc_freq, id), so a restored dictionary reproduces
  /// the original ranks exactly. Used by the snapshot loader.
  void Restore(std::vector<std::string> tokens,
               std::vector<uint32_t> doc_freq);

  /// Sorts a token-id list by global rank ascending (rarest first) and
  /// removes duplicates. This is the canonical per-value representation
  /// used by prefix signatures and fast set-similarity verification.
  std::vector<TokenId> SortByRank(std::vector<TokenId> ids) const;

 private:
  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> tokens_;
  std::vector<uint32_t> doc_freq_;
  std::vector<uint32_t> rank_;
};

}  // namespace dime

#endif  // DIME_TEXT_TOKEN_DICTIONARY_H_
