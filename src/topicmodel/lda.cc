#include "src/topicmodel/lda.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace dime {

LdaModel::LdaModel(const std::vector<std::vector<std::string>>& docs,
                   const LdaOptions& options)
    : options_(options) {
  DIME_CHECK_GT(options_.num_topics, 0);
  doc_tokens_.reserve(docs.size());
  for (const auto& doc : docs) {
    doc_tokens_.push_back(dict_.InternDocument(doc));
  }
  const int k = options_.num_topics;
  doc_topic_count_.assign(doc_tokens_.size(), std::vector<int>(k, 0));
  topic_word_count_.assign(k, std::vector<int>(dict_.size(), 0));
  topic_count_.assign(k, 0);
  assignments_.resize(doc_tokens_.size());

  Random rng(options_.seed);
  for (size_t d = 0; d < doc_tokens_.size(); ++d) {
    assignments_[d].resize(doc_tokens_[d].size());
    for (size_t i = 0; i < doc_tokens_[d].size(); ++i) {
      int z = static_cast<int>(rng.Uniform(static_cast<uint64_t>(k)));
      assignments_[d][i] = z;
      ++doc_topic_count_[d][z];
      ++topic_word_count_[z][doc_tokens_[d][i]];
      ++topic_count_[z];
    }
  }
  RunGibbs();
}

void LdaModel::RunGibbs() {
  const int k = options_.num_topics;
  const double alpha = options_.alpha;
  const double beta = options_.beta;
  const double vbeta = beta * static_cast<double>(dict_.size());
  Random rng(options_.seed + 1);
  std::vector<double> probs(k);

  for (int iter = 0; iter < options_.iterations; ++iter) {
    for (size_t d = 0; d < doc_tokens_.size(); ++d) {
      for (size_t i = 0; i < doc_tokens_[d].size(); ++i) {
        TokenId w = doc_tokens_[d][i];
        int old_z = assignments_[d][i];
        --doc_topic_count_[d][old_z];
        --topic_word_count_[old_z][w];
        --topic_count_[old_z];

        double total = 0.0;
        for (int t = 0; t < k; ++t) {
          double p = (doc_topic_count_[d][t] + alpha) *
                     (topic_word_count_[t][w] + beta) /
                     (topic_count_[t] + vbeta);
          probs[t] = p;
          total += p;
        }
        double u = rng.UniformDouble() * total;
        int new_z = k - 1;
        double cum = 0.0;
        for (int t = 0; t < k; ++t) {
          cum += probs[t];
          if (u <= cum) {
            new_z = t;
            break;
          }
        }
        assignments_[d][i] = new_z;
        ++doc_topic_count_[d][new_z];
        ++topic_word_count_[new_z][w];
        ++topic_count_[new_z];
      }
    }
  }
}

std::vector<double> LdaModel::DocumentTopicMixture(size_t d) const {
  const int k = options_.num_topics;
  std::vector<double> mix(k);
  double total = 0.0;
  for (int t = 0; t < k; ++t) {
    mix[t] = doc_topic_count_[d][t] + options_.alpha;
    total += mix[t];
  }
  for (double& m : mix) m /= total;
  return mix;
}

int LdaModel::DominantTopic(size_t d) const {
  const auto& counts = doc_topic_count_[d];
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

double LdaModel::TopicWordProb(int topic, TokenId w) const {
  const double beta = options_.beta;
  const double vbeta = beta * static_cast<double>(dict_.size());
  return (topic_word_count_[topic][w] + beta) / (topic_count_[topic] + vbeta);
}

std::vector<double> LdaModel::InferMixture(
    const std::vector<std::string>& tokens) const {
  const int k = options_.num_topics;
  std::vector<double> mix(k, options_.alpha);
  for (const std::string& token : tokens) {
    TokenId w = dict_.Lookup(token);
    if (w == TokenDictionary::kNoToken) continue;
    // Soft assignment: add each word's posterior over topics.
    double total = 0.0;
    std::vector<double> p(k);
    for (int t = 0; t < k; ++t) {
      p[t] = TopicWordProb(t, w);
      total += p[t];
    }
    for (int t = 0; t < k; ++t) mix[t] += p[t] / total;
  }
  double total = std::accumulate(mix.begin(), mix.end(), 0.0);
  for (double& m : mix) m /= total;
  return mix;
}

int LdaModel::InferTopic(const std::vector<std::string>& tokens) const {
  bool any = false;
  for (const std::string& token : tokens) {
    if (dict_.Lookup(token) != TokenDictionary::kNoToken) {
      any = true;
      break;
    }
  }
  if (!any) return -1;
  std::vector<double> mix = InferMixture(tokens);
  return static_cast<int>(std::max_element(mix.begin(), mix.end()) -
                          mix.begin());
}

std::vector<std::string> LdaModel::TopWords(int topic, size_t k) const {
  std::vector<TokenId> ids(dict_.size());
  std::iota(ids.begin(), ids.end(), 0);
  size_t take = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + take, ids.end(),
                    [this, topic](TokenId a, TokenId b) {
                      int ca = topic_word_count_[topic][a];
                      int cb = topic_word_count_[topic][b];
                      if (ca != cb) return ca > cb;
                      return a < b;
                    });
  std::vector<std::string> words;
  words.reserve(take);
  for (size_t i = 0; i < take; ++i) words.push_back(dict_.Token(ids[i]));
  return words;
}

}  // namespace dime
