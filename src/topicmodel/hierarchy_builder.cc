#include "src/topicmodel/hierarchy_builder.h"

#include <unordered_set>

#include "src/common/logging.h"

namespace dime {

Ontology BuildThemeHierarchy(const std::vector<std::vector<std::string>>& docs,
                             const HierarchyOptions& options) {
  Ontology tree;
  int root = tree.AddRoot("Themes");
  if (docs.empty()) return tree;

  LdaOptions coarse_opts = options.lda;
  coarse_opts.num_topics = options.coarse_topics;
  LdaModel coarse(docs, coarse_opts);

  // Partition documents by dominant coarse topic.
  std::vector<std::vector<size_t>> members(options.coarse_topics);
  for (size_t d = 0; d < docs.size(); ++d) {
    members[coarse.DominantTopic(d)].push_back(d);
  }

  // Keywords may vote for only one node; track which words are taken so a
  // word ends up with its strongest theme (first-come in topic order, which
  // follows descending within-topic frequency).
  std::unordered_set<std::string> used_keywords;

  for (int t = 0; t < options.coarse_topics; ++t) {
    if (members[t].empty()) continue;
    std::string coarse_name = "theme_" + std::to_string(t);
    int coarse_node = tree.AddNode(coarse_name, root);

    int sub_k = options.sub_topics;
    if (members[t].size() < static_cast<size_t>(sub_k)) sub_k = 1;

    std::vector<std::vector<std::string>> sub_docs;
    sub_docs.reserve(members[t].size());
    for (size_t d : members[t]) sub_docs.push_back(docs[d]);

    LdaOptions sub_opts = options.lda;
    sub_opts.num_topics = sub_k;
    sub_opts.seed = options.lda.seed + 1000 + static_cast<uint64_t>(t);
    LdaModel sub(sub_docs, sub_opts);

    for (int s = 0; s < sub_k; ++s) {
      std::string sub_name = coarse_name + "_sub_" + std::to_string(s);
      int sub_node = tree.AddNode(sub_name, coarse_node);
      for (const std::string& word :
           sub.TopWords(s, options.keywords_per_node)) {
        if (used_keywords.insert(word).second) {
          tree.AddKeyword(word, sub_node);
        }
      }
    }
  }
  return tree;
}

}  // namespace dime
