#ifndef DIME_TOPICMODEL_LDA_H_
#define DIME_TOPICMODEL_LDA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/text/token_dictionary.h"

/// \file lda.h
/// Latent Dirichlet Allocation via collapsed Gibbs sampling. The paper uses
/// LDA to learn a theme hierarchy over product descriptions when no
/// curated ontology exists ("for product description, we utilized LDA to
/// learn a theme hierarchy structure", Section VI-A). We implement the
/// standard collapsed sampler from scratch; hierarchy_builder.h turns the
/// fitted model into an Ontology usable by the fon(Description) predicates.

namespace dime {

struct LdaOptions {
  int num_topics = 8;
  double alpha = 0.5;   ///< document-topic Dirichlet prior
  double beta = 0.1;    ///< topic-word Dirichlet prior
  int iterations = 60;  ///< Gibbs sweeps
  uint64_t seed = 7;
};

/// A fitted LDA model over a fixed corpus.
class LdaModel {
 public:
  /// Fits on `docs` (each a token list). Tokens are interned internally.
  LdaModel(const std::vector<std::vector<std::string>>& docs,
           const LdaOptions& options);

  int num_topics() const { return options_.num_topics; }
  size_t num_docs() const { return doc_tokens_.size(); }
  size_t vocab_size() const { return dict_.size(); }

  /// Posterior topic mixture of training document `d` (length num_topics,
  /// sums to 1).
  std::vector<double> DocumentTopicMixture(size_t d) const;

  /// argmax topic of training document `d`.
  int DominantTopic(size_t d) const;

  /// Topic mixture for an unseen document (fold-in by word-topic counts).
  std::vector<double> InferMixture(const std::vector<std::string>& tokens) const;

  /// argmax topic of an unseen document; -1 if no token is in-vocabulary.
  int InferTopic(const std::vector<std::string>& tokens) const;

  /// The `k` highest-probability words of `topic`.
  std::vector<std::string> TopWords(int topic, size_t k) const;

 private:
  void RunGibbs();
  double TopicWordProb(int topic, TokenId w) const;

  LdaOptions options_;
  TokenDictionary dict_;
  std::vector<std::vector<TokenId>> doc_tokens_;
  std::vector<std::vector<int>> assignments_;      // z for every token slot
  std::vector<std::vector<int>> doc_topic_count_;  // [doc][topic]
  std::vector<std::vector<int>> topic_word_count_; // [topic][word]
  std::vector<int> topic_count_;                   // total tokens per topic
};

}  // namespace dime

#endif  // DIME_TOPICMODEL_LDA_H_
