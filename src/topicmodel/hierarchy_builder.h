#ifndef DIME_TOPICMODEL_HIERARCHY_BUILDER_H_
#define DIME_TOPICMODEL_HIERARCHY_BUILDER_H_

#include <string>
#include <vector>

#include "src/ontology/ontology.h"
#include "src/topicmodel/lda.h"

/// \file hierarchy_builder.h
/// Builds an Ontology ("theme hierarchy") from free text using a two-level
/// LDA, reproducing the paper's construction of Description ontologies
/// (Section VI-A). Level 1 clusters the corpus into coarse themes; level 2
/// refines each coarse theme into subthemes. The resulting tree is
///
///     root (depth 1) -> coarse theme (depth 2) -> subtheme (depth 3)
///
/// and each subtheme node registers its LDA top words as keywords so that
/// any text can later be mapped into the tree by keyword voting
/// (Ontology::MapByKeywords), which is exactly how the fon(Description)
/// predicates evaluate and how their node signatures are generated.

namespace dime {

struct HierarchyOptions {
  int coarse_topics = 16;       ///< depth-2 fanout
  int sub_topics = 2;           ///< depth-3 fanout per coarse topic
  size_t keywords_per_node = 12;///< top words registered per subtheme
  LdaOptions lda;               ///< sampler settings (topic counts ignored)
};

/// Fits the two-level LDA on `docs` (tokenized texts) and returns the theme
/// hierarchy. Documents that end up in a coarse theme with fewer documents
/// than `sub_topics` get a single subtheme.
Ontology BuildThemeHierarchy(const std::vector<std::vector<std::string>>& docs,
                             const HierarchyOptions& options);

}  // namespace dime

#endif  // DIME_TOPICMODEL_HIERARCHY_BUILDER_H_
