#ifndef DIME_CORE_CORPUS_H_
#define DIME_CORE_CORPUS_H_

#include <vector>

#include "src/core/dime_plus.h"

/// \file corpus.h
/// Batch driver for whole corpora: the paper's experiments process 200
/// Scholar pages / thousands of Amazon categories, and groups are
/// independent, so they parallelize trivially. RunCorpus fans the groups
/// out over a thread pool and returns per-group results in input order.

namespace dime {

struct CorpusOptions {
  /// 0 = the ResolveThreadCount precedence (DIME_THREADS env, then
  /// hardware concurrency).
  unsigned num_threads = 0;
  /// false runs the naive Algorithm 1 instead of DIME+.
  bool use_dime_plus = true;
  DimePlusOptions dime_plus;
  /// Deadline / cancellation shared by every group. Groups that start
  /// after expiry come back empty with a DEADLINE_EXCEEDED / CANCELLED
  /// status; groups in flight are truncated by their engine.
  RunControl control;
};

/// Runs the chosen engine on every group (preparation included), in
/// parallel across groups. Faults are confined to the group that raised
/// them: a worker-thread exception marks that group's result INTERNAL
/// (empty, non-flagging) and the remaining groups still run.
std::vector<DimeResult> RunCorpus(const std::vector<Group>& groups,
                                  const std::vector<PositiveRule>& positive,
                                  const std::vector<NegativeRule>& negative,
                                  const DimeContext& context,
                                  const CorpusOptions& options = {});

}  // namespace dime

#endif  // DIME_CORE_CORPUS_H_
