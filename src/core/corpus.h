#ifndef DIME_CORE_CORPUS_H_
#define DIME_CORE_CORPUS_H_

#include <vector>

#include "src/core/dime_plus.h"

/// \file corpus.h
/// Batch driver for whole corpora: the paper's experiments process 200
/// Scholar pages / thousands of Amazon categories, and groups are
/// independent, so they parallelize trivially. RunCorpus fans the groups
/// out over a thread pool and returns per-group results in input order.

namespace dime {

struct CorpusOptions {
  /// 0 = std::thread::hardware_concurrency().
  unsigned num_threads = 0;
  /// false runs the naive Algorithm 1 instead of DIME+.
  bool use_dime_plus = true;
  DimePlusOptions dime_plus;
};

/// Runs the chosen engine on every group (preparation included), in
/// parallel across groups.
std::vector<DimeResult> RunCorpus(const std::vector<Group>& groups,
                                  const std::vector<PositiveRule>& positive,
                                  const std::vector<NegativeRule>& negative,
                                  const DimeContext& context,
                                  const CorpusOptions& options = {});

}  // namespace dime

#endif  // DIME_CORE_CORPUS_H_
