#include "src/core/signature.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/sim/edit_distance.h"
#include "src/sim/set_similarity.h"
#include "src/sim/sig_hash.h"
#include "src/sim/weighted_similarity.h"

namespace dime {
namespace {

constexpr uint64_t kUniversalPayload = 0xFFFFFFFFFFFFFFFFULL;
/// Marker shared by entities whose value is EMPTY under a normalized set
/// function: two empty sets have similarity 1 (they satisfy every
/// positive threshold and violate every sigma < 1), so they must find
/// each other through the index.
constexpr uint64_t kEmptySetPayload = 0xFFFFFFFFFFFFFFFEULL;

}  // namespace

uint64_t MixSignature(uint64_t a, uint64_t b) {
  return SplitMix64(a * kGoldenGamma + SplitMix64(b));
}

SignatureGenerator::SignatureGenerator(const PreparedGroup& pg,
                                       const std::vector<Predicate>& predicates,
                                       Direction dir, uint64_t rule_tag,
                                       const SignatureOptions& options)
    : pg_(pg),
      predicates_(predicates),
      dir_(dir),
      rule_tag_(rule_tag),
      options_(options) {
  const size_t n = pg.size();
  ontology_tau_min_.assign(predicates.size(), -1);
  for (size_t i = 0; i < predicates.size(); ++i) {
    const Predicate& p = predicates[i];
    if (p.func != SimFunc::kOntology) continue;
    // Effective threshold: just above sigma for negative rules.
    double theta = dir == Direction::kGe ? p.threshold : p.threshold + 1e-9;
    if (theta <= 0.0) continue;  // universal signatures; tau unused
    const PreparedAttr& attr = pg.attrs[p.attr];
    auto it = attr.nodes.find(p.ontology_index);
    DIME_CHECK(it != attr.nodes.end());
    const Ontology& tree = *pg.context.ontologies[p.ontology_index].tree;
    int tau_min = -1;
    for (size_t e = 0; e < n; ++e) {
      int node = it->second[e];
      if (node == kNoNode) continue;
      int tau = Ontology::TauDepth(tree.Depth(node), std::min(theta, 1.0));
      if (tau_min < 0 || tau < tau_min) tau_min = tau;
    }
    ontology_tau_min_[i] = tau_min < 0 ? 1 : tau_min;
  }

  // Decide, per edit-similarity predicate, whether prefix filtering is
  // usable for the whole group: if any entity's string can be entirely
  // rewritten within the edit budget, the predicate degrades to one
  // universal signature for everyone (symmetric, hence complete).
  editsim_universal_.assign(predicates.size(), false);
  for (size_t i = 0; i < predicates.size(); ++i) {
    const Predicate& p = predicates[i];
    if (p.func != SimFunc::kEditSim) continue;
    double tau = dir == Direction::kGe ? p.threshold : p.threshold + 1e-9;
    if (tau <= 0.0) {
      editsim_universal_[i] = true;
      continue;
    }
    if (tau > 1.0) continue;  // unsatisfiable, handled by empty signatures
    const PreparedAttr& attr = pg.attrs[p.attr];
    for (size_t e = 0; e < n; ++e) {
      size_t d = MaxEditDistanceForSim(attr.text[e].size(), tau);
      size_t prefix = static_cast<size_t>(pg.context.qgram_q) * d + 1;
      if (prefix > attr.qgram_ranks.size(e)) {
        editsim_universal_[i] = true;
        break;
      }
    }
  }

  // Average signature counts drive the tuple-vs-anchor decision for
  // positive rules. Counts come from the CSR sizes alone
  // (PredicateSignatureCount) — the old throwaway PredicateSignatures
  // pass hashed and allocated every entity's signatures once just to
  // .size() them, doubling generation cost.
  avg_sig_count_.assign(predicates.size(), 0.0);
  for (size_t i = 0; i < predicates.size(); ++i) {
    size_t total = 0;
    for (size_t e = 0; e < n; ++e) {
      total += PredicateSignatureCount(i, static_cast<int>(e));
    }
    avg_sig_count_[i] =
        n == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n);
  }
  double product = 1.0;
  for (double c : avg_sig_count_) product *= std::max(c, 1.0);
  if (product > static_cast<double>(options_.max_tuple_signatures) &&
      predicates.size() > 1) {
    anchor_only_ = true;
    anchor_ = 0;
    for (size_t i = 1; i < predicates.size(); ++i) {
      if (avg_sig_count_[i] < avg_sig_count_[anchor_]) anchor_ = i;
    }
  }
}

size_t SignatureGenerator::PredicateSignatureCount(size_t pred_idx,
                                                   int entity) const {
  // Mirrors PredicateSignatures branch for branch, returning the size the
  // materialized vector would have without hashing or allocating — every
  // count is a prefix length readable off the CSR arena. The constructor
  // averages these, so any drift from the real sizes would change the
  // tuple-vs-anchor decision; signature_test pins the equivalence.
  const Predicate& p = predicates_[pred_idx];
  const PreparedAttr& attr = pg_.attrs[p.attr];

  if (IsSetBased(p.func)) {
    const size_t size = p.mode == TokenMode::kValueList
                            ? attr.value_ranks.size(entity)
                            : attr.word_ranks.size(entity);
    double theta;
    if (p.func == SimFunc::kOverlap) {
      theta = dir_ == Direction::kGe
                  ? p.threshold
                  : std::floor(p.threshold + 1e-9) + 1.0;
      if (theta < 1.0) return 1;  // universal
    } else {
      theta = dir_ == Direction::kGe ? p.threshold : p.threshold + 1e-9;
      if (theta <= 0.0) return 1;  // universal
      if (theta > 1.0) return 0;   // unsatisfiable
      if (size == 0) return 1;     // empty-set marker
    }
    return SetPrefixLength(p.func, size, theta);
  }

  if (IsWeightedSetBased(p.func)) {
    const bool values = p.mode == TokenMode::kValueList;
    const RankSpan ranks =
        values ? attr.value_ranks.view(entity) : attr.word_ranks.view(entity);
    double theta = dir_ == Direction::kGe ? p.threshold : p.threshold + 1e-9;
    if (theta <= 0.0) return 1;
    if (theta > 1.0) return 0;
    if (ranks.empty()) return 1;
    const auto& weights = values ? attr.value_weights : attr.word_weights;
    return WeightedPrefixLength(p.func, ranks, weights, theta);
  }

  if (p.func == SimFunc::kEditSim) {
    if (editsim_universal_[pred_idx]) return 1;
    double tau = dir_ == Direction::kGe ? p.threshold : p.threshold + 1e-9;
    if (tau > 1.0) return 0;
    size_t d = MaxEditDistanceForSim(attr.text[entity].size(), tau);
    return static_cast<size_t>(pg_.context.qgram_q) * d + 1;
  }

  DIME_CHECK(p.func == SimFunc::kOntology);
  double theta = dir_ == Direction::kGe ? p.threshold : p.threshold + 1e-9;
  if (theta <= 0.0) return 1;
  if (theta > 1.0) return 0;
  auto it = attr.nodes.find(p.ontology_index);
  DIME_CHECK(it != attr.nodes.end());
  return it->second[entity] == kNoNode ? 0 : 1;
}

std::vector<uint64_t> SignatureGenerator::PredicateSignatures(
    size_t pred_idx, int entity) const {
  std::vector<uint64_t> sigs;
  PredicateSignatures(pred_idx, entity, &sigs);
  return sigs;
}

void SignatureGenerator::PredicateSignatures(
    size_t pred_idx, int entity, std::vector<uint64_t>* out) const {
  const Predicate& p = predicates_[pred_idx];
  const PreparedAttr& attr = pg_.attrs[p.attr];
  const uint64_t tag = MixSignature(rule_tag_, pred_idx + 1);
  std::vector<uint64_t>& sigs = *out;
  sigs.clear();

  if (IsSetBased(p.func)) {
    const RankSpan ranks = p.mode == TokenMode::kValueList
                               ? attr.value_ranks.view(entity)
                               : attr.word_ranks.view(entity);
    double theta;
    if (p.func == SimFunc::kOverlap) {
      theta = dir_ == Direction::kGe
                  ? p.threshold
                  : std::floor(p.threshold + 1e-9) + 1.0;
      if (theta < 1.0) {  // any pair qualifies: filtering impossible
        sigs.push_back(MixSignature(tag, kUniversalPayload));
        return;
      }
    } else {
      theta = dir_ == Direction::kGe ? p.threshold : p.threshold + 1e-9;
      if (theta <= 0.0) {
        sigs.push_back(MixSignature(tag, kUniversalPayload));
        return;
      }
      if (theta > 1.0) return;  // unsatisfiable: no partner possible
      if (ranks.empty()) {
        // Two empty sets have normalized similarity 1: they must meet.
        sigs.push_back(MixSignature(tag, kEmptySetPayload));
        return;
      }
    }
    size_t prefix = SetPrefixLength(p.func, ranks.size(), theta);
    sigs.resize(prefix);
    MixHashBatch32(tag, ranks.data(), prefix, sigs.data());
    return;
  }

  if (IsWeightedSetBased(p.func)) {
    const bool values = p.mode == TokenMode::kValueList;
    const RankSpan ranks =
        values ? attr.value_ranks.view(entity) : attr.word_ranks.view(entity);
    const auto& weights = values ? attr.value_weights : attr.word_weights;
    double theta = dir_ == Direction::kGe ? p.threshold : p.threshold + 1e-9;
    if (theta <= 0.0) {
      sigs.push_back(MixSignature(tag, kUniversalPayload));
      return;
    }
    if (theta > 1.0) return;
    if (ranks.empty()) {
      sigs.push_back(MixSignature(tag, kEmptySetPayload));
      return;
    }
    size_t prefix = WeightedPrefixLength(p.func, ranks, weights, theta);
    sigs.resize(prefix);
    MixHashBatch32(tag, ranks.data(), prefix, sigs.data());
    return;
  }

  if (p.func == SimFunc::kEditSim) {
    if (editsim_universal_[pred_idx]) {
      sigs.push_back(MixSignature(tag, kUniversalPayload));
      return;
    }
    double tau = dir_ == Direction::kGe ? p.threshold : p.threshold + 1e-9;
    if (tau > 1.0) return;  // unsatisfiable with any partner
    const RankSpan grams = attr.qgram_ranks.view(entity);
    size_t d = MaxEditDistanceForSim(attr.text[entity].size(), tau);
    size_t prefix = static_cast<size_t>(pg_.context.qgram_q) * d + 1;
    DIME_CHECK_LE(prefix, grams.size());  // else editsim_universal_ is set
    sigs.resize(prefix);
    MixHashBatch32(tag, grams.data(), prefix, sigs.data());
    return;
  }

  DIME_CHECK(p.func == SimFunc::kOntology);
  double theta = dir_ == Direction::kGe ? p.threshold : p.threshold + 1e-9;
  if (theta <= 0.0) {
    sigs.push_back(MixSignature(tag, kUniversalPayload));
    return;
  }
  if (theta > 1.0) return;
  auto it = attr.nodes.find(p.ontology_index);
  DIME_CHECK(it != attr.nodes.end());
  int node = it->second[entity];
  if (node == kNoNode) return;  // similarity 0 with everyone
  const Ontology& tree = *pg_.context.ontologies[p.ontology_index].tree;
  int tau = ontology_tau_min_[pred_idx];
  int anc = tau <= tree.Depth(node) ? tree.AncestorAtDepth(node, tau) : node;
  sigs.push_back(MixSignature(tag, static_cast<uint64_t>(anc)));
}

std::vector<uint64_t> SignatureGenerator::PositiveRuleSignatures(
    int entity) const {
  SignatureScratch scratch;
  return PositiveRuleSignatures(entity, &scratch);  // copies out of scratch
}

const std::vector<uint64_t>& SignatureGenerator::PositiveRuleSignatures(
    int entity, SignatureScratch* scratch) const {
  DIME_CHECK(dir_ == Direction::kGe);
  std::vector<uint64_t>& combined = scratch->combined;
  if (anchor_only_) {
    PredicateSignatures(anchor_, entity, &combined);
    return combined;
  }
  combined.clear();
  combined.push_back(rule_tag_);
  for (size_t i = 0; i < predicates_.size(); ++i) {
    PredicateSignatures(i, entity, &scratch->sigs);
    const std::vector<uint64_t>& sigs = scratch->sigs;
    if (sigs.empty()) {  // cannot satisfy predicate i with anyone
      combined.clear();
      return combined;
    }
    std::vector<uint64_t>& next = scratch->next;
    next.resize(combined.size() * sigs.size());
    uint64_t* out = next.data();
    for (uint64_t c : combined) {
      MixHashBatch64(c, sigs.data(), sigs.size(), out);
      out += sigs.size();
    }
    combined.swap(next);
  }
  std::sort(combined.begin(), combined.end());
  combined.erase(std::unique(combined.begin(), combined.end()),
                 combined.end());
  return combined;
}

std::vector<uint64_t> SignatureGenerator::NegativeRuleSignatures(
    int entity) const {
  SignatureScratch scratch;
  return NegativeRuleSignatures(entity, &scratch);  // copies out of scratch
}

const std::vector<uint64_t>& SignatureGenerator::NegativeRuleSignatures(
    int entity, SignatureScratch* scratch) const {
  DIME_CHECK(dir_ == Direction::kLe);
  std::vector<uint64_t>& all = scratch->combined;
  all.clear();
  for (size_t i = 0; i < predicates_.size(); ++i) {
    PredicateSignatures(i, entity, &scratch->sigs);
    all.insert(all.end(), scratch->sigs.begin(), scratch->sigs.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::shared_ptr<const PreparedRuleArtifacts> BuildPreparedRuleArtifacts(
    const PreparedGroup& pg, const std::vector<PositiveRule>& positive,
    const std::vector<NegativeRule>& negative,
    const SignatureOptions& options) {
  auto artifacts = std::make_shared<PreparedRuleArtifacts>();
  artifacts->max_tuple_signatures = options.max_tuple_signatures;
  const int n = static_cast<int>(pg.size());
  // Same generators, tags and insertion order as RunDimePlus steps 1 and
  // 3 — a run over these artifacts must be indistinguishable from a run
  // that generated on demand.
  SignatureScratch scratch;
  artifacts->positive_indexes.resize(positive.size());
  for (size_t r = 0; r < positive.size(); ++r) {
    SignatureGenerator gen(pg, positive[r].predicates, Direction::kGe,
                           /*rule_tag=*/r + 1, options);
    InvertedIndex& index = artifacts->positive_indexes[r];
    for (int e = 0; e < n; ++e) {
      index.Add(e, gen.PositiveRuleSignatures(e, &scratch));
    }
    index.FrozenData();  // freeze now: the offline step pays the sort
  }
  artifacts->negative_sigs.resize(negative.size());
  for (size_t r = 0; r < negative.size(); ++r) {
    SignatureGenerator gen(pg, negative[r].predicates, Direction::kLe,
                           /*rule_tag=*/0x1000 + r, options);
    SignatureColumn& column = artifacts->negative_sigs[r];
    for (int e = 0; e < n; ++e) {
      column.Append(gen.NegativeRuleSignatures(e, &scratch));
    }
  }
  return artifacts;
}

}  // namespace dime
