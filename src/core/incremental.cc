#include "src/core/incremental.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/sim/set_similarity.h"
#include "src/text/tokenizer.h"

namespace dime {

IncrementalDime::IncrementalDime(Schema schema,
                                 std::vector<PositiveRule> positive,
                                 std::vector<NegativeRule> negative,
                                 DimeContext context)
    : positive_(std::move(positive)), negative_(std::move(negative)) {
  group_.name = "incremental";
  group_.schema = std::move(schema);
  pg_.group = &group_;
  pg_.context = std::move(context);
  pg_.attrs.resize(group_.schema.size());

  std::vector<Predicate> all;
  for (const PositiveRule& r : positive_) {
    all.insert(all.end(), r.predicates.begin(), r.predicates.end());
  }
  for (const NegativeRule& r : negative_) {
    all.insert(all.end(), r.predicates.begin(), r.predicates.end());
  }
  for (const Predicate& p : all) {
    DIME_CHECK(!IsWeightedSetBased(p.func))
        << "IncrementalDime does not support IDF-weighted predicates: "
           "weights depend on corpus-wide document frequencies, which "
           "change with every arrival (rebuild with PrepareGroup instead)";
  }
  std::vector<AttrRequirements> needs =
      ComputeAttrRequirements(group_.schema.size(), all);
  for (size_t a = 0; a < pg_.attrs.size(); ++a) {
    pg_.attrs[a].has_value_list = needs[a].value_list;
    pg_.attrs[a].has_words = needs[a].words;
    pg_.attrs[a].has_text = needs[a].text;
    for (int oi : needs[a].ontology_indexes) {
      DIME_CHECK_GE(oi, 0);
      DIME_CHECK_LT(static_cast<size_t>(oi), pg_.context.ontologies.size());
      DIME_CHECK(pg_.context.ontologies[oi].tree != nullptr);
      pg_.attrs[a].nodes[oi];  // create the per-ontology node vector
    }
  }
}

void IncrementalDime::PrepareEntity(int e) {
  // Token ids double as the (frozen, arrival-order) global order: any
  // consistent total order keeps intersections and rule evaluation exact.
  for (size_t a = 0; a < pg_.attrs.size(); ++a) {
    PreparedAttr& attr = pg_.attrs[a];
    const AttributeValue& value =
        group_.entities[e].value(static_cast<int>(a));

    if (attr.has_value_list) {
      std::vector<std::string> tokens;
      tokens.reserve(value.size());
      for (const std::string& v : value) {
        tokens.push_back(ToLower(std::string(Trim(v))));
      }
      std::vector<TokenId> ids = attr.value_dict.InternDocument(tokens);
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      attr.value_ranks.Append(ids);
    }
    if (attr.has_words) {
      std::vector<TokenId> ids = attr.word_dict.InternDocument(
          WordTokenizeUnique(JoinAttributeText(value)));
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      attr.word_ranks.Append(ids);
    }
    if (attr.has_text) {
      attr.text.push_back(JoinAttributeText(value));
      std::vector<TokenId> ids = attr.qgram_dict.InternDocument(
          QGrams(attr.text.back(), pg_.context.qgram_q));
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      attr.qgram_ranks.Append(ids);
    }
    for (auto& [oi, nodes] : attr.nodes) {
      const OntologyRef& ref = pg_.context.ontologies[oi];
      nodes.push_back(MapAttributeToNode(*ref.tree, ref.mode, value));
    }
  }
}

int IncrementalDime::AddEntity(Entity entity) {
  DIME_CHECK_EQ(entity.values.size(), group_.schema.size());
  int e = static_cast<int>(group_.entities.size());
  group_.entities.push_back(std::move(entity));
  group_.truth.push_back(0);
  PrepareEntity(e);
  int id = uf_.Add();
  DIME_CHECK_EQ(id, e);

  // Connect the arrival: one pass over existing entities, skipping those
  // already in a partition we joined (transitivity).
  const uint64_t kernel_exits_before = KernelEarlyExits();
  for (int j = 0; j < e; ++j) {
    if (uf_.Connected(e, j)) {
      ++cached_.stats.pairs_skipped_by_transitivity;
      continue;
    }
    for (const PositiveRule& rule : positive_) {
      ++cached_.stats.positive_pair_checks;
      if (EvalPositiveRule(pg_, rule, e, j)) {
        uf_.Union(e, j);
        break;
      }
    }
  }
  cached_.stats.kernel_early_exits +=
      KernelEarlyExits() - kernel_exits_before;
  dirty_ = true;
  return e;
}

void IncrementalDime::AddGroup(const Group& group) {
  DIME_CHECK_EQ(group.schema.size(), group_.schema.size());
  for (size_t i = 0; i < group.entities.size(); ++i) {
    int e = AddEntity(group.entities[i]);
    if (group.has_truth()) group_.truth[e] = group.truth[i];
  }
}

const DimeResult& IncrementalDime::Result() {
  if (!dirty_) return cached_;

  DimeResult::Stats stats = cached_.stats;  // keep the running counters
  cached_ = DimeResult();
  cached_.stats = stats;
  cached_.partitions = uf_.Components();
  cached_.pivot = internal::PickPivot(cached_.partitions);

  std::vector<int> first_flagging(cached_.partitions.size(), -1);
  if (cached_.pivot >= 0 && !negative_.empty()) {
    const std::vector<int>& pivot_entities =
        cached_.partitions[cached_.pivot];
    for (size_t p = 0; p < cached_.partitions.size(); ++p) {
      if (static_cast<int>(p) == cached_.pivot) continue;
      for (size_t r = 0;
           r < negative_.size() && first_flagging[p] < 0; ++r) {
        for (int e : cached_.partitions[p]) {
          bool all_dissimilar = true;
          for (int e_star : pivot_entities) {
            ++cached_.stats.negative_pair_checks;
            if (!EvalNegativeRule(pg_, negative_[r], e, e_star)) {
              all_dissimilar = false;
              break;
            }
          }
          if (all_dissimilar) {
            first_flagging[p] = static_cast<int>(r);
            break;
          }
        }
      }
    }
  }
  cached_.first_flagging_rule = first_flagging;
  cached_.flagged_by_prefix = internal::BuildScrollbar(
      cached_.partitions, cached_.pivot, first_flagging, negative_.size());
  dirty_ = false;
  return cached_;
}

}  // namespace dime
