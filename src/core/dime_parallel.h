#ifndef DIME_CORE_DIME_PARALLEL_H_
#define DIME_CORE_DIME_PARALLEL_H_

#include "src/core/dime.h"

/// \file dime_parallel.h
/// Multi-threaded Algorithm 1. Historically a fork-join engine living in
/// src/core; it is now a thin wrapper over the sharded execution engine
/// (src/exec/sharded_dime.h), which decomposes the pair space into
/// shard-block tasks on a work-stealing pool and merges through a striped
/// concurrent union-find. The definition lives in src/exec/ (the core
/// layer does not depend on exec); this header keeps the historical API.
///
/// Results are bit-identical to RunDime — connected components and the
/// first-flagging-rule computation do not depend on edge discovery order
/// (covered by tests).
///
/// Fault tolerance: a task that throws no longer takes the process down
/// via std::terminate. The exception is captured and, by default, the
/// whole run falls back to the serial engine (bit-identical result); with
/// `serial_fallback = false` the failure surfaces as an INTERNAL status
/// on the result instead. Deadlines/cancellation are honored
/// cooperatively: tasks poll the RunControl at row / partition boundaries
/// and the truncation semantics match RunDime's.
///
/// This addresses the practical gap the paper leaves open for very large
/// groups where even DIME+'s verification phase is CPU-bound.

namespace dime {

namespace exec {
class WorkStealingPool;
}  // namespace exec

struct ParallelOptions {
  /// 0 = the exec::ResolveThreadCount precedence (--threads flag value
  /// passed through here, DIME_THREADS, hardware_concurrency).
  unsigned num_threads = 0;
  /// When a task throws, rerun the group serially (RunDime) and return
  /// that result. When false, return an empty result whose status is
  /// INTERNAL with the exception text.
  bool serial_fallback = true;
  /// Borrowed scheduler (null = build one for the call). DimeService
  /// shares its pool across requests through this.
  exec::WorkStealingPool* pool = nullptr;
};

/// Parallel counterpart of RunDime(pg, positive, negative, control).
DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options,
                           const RunControl& control);

DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options = {});

}  // namespace dime

#endif  // DIME_CORE_DIME_PARALLEL_H_
