#ifndef DIME_CORE_DIME_PARALLEL_H_
#define DIME_CORE_DIME_PARALLEL_H_

#include "src/core/dime.h"

/// \file dime_parallel.h
/// Multi-threaded Algorithm 1. The pair space of step 1 is embarrassingly
/// parallel: row blocks are scanned concurrently and matching edges merged
/// into one union-find afterwards; step 3's per-partition checks are
/// independent given the pivot. Results are bit-identical to RunDime —
/// connected components and the first-flagging-rule computation do not
/// depend on edge discovery order (covered by tests).
///
/// This addresses the practical gap the paper leaves open for very large
/// groups where even DIME+'s verification phase is CPU-bound.

namespace dime {

struct ParallelOptions {
  /// 0 = std::thread::hardware_concurrency().
  unsigned num_threads = 0;
};

/// Parallel counterpart of RunDime(pg, positive, negative).
DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options = {});

}  // namespace dime

#endif  // DIME_CORE_DIME_PARALLEL_H_
