#ifndef DIME_CORE_DIME_PARALLEL_H_
#define DIME_CORE_DIME_PARALLEL_H_

#include "src/core/dime.h"

/// \file dime_parallel.h
/// Multi-threaded Algorithm 1. The pair space of step 1 is embarrassingly
/// parallel: row blocks are scanned concurrently and matching edges merged
/// into one union-find afterwards; step 3's per-partition checks are
/// independent given the pivot. Results are bit-identical to RunDime —
/// connected components and the first-flagging-rule computation do not
/// depend on edge discovery order (covered by tests).
///
/// Fault tolerance: a worker thread that throws no longer takes the
/// process down via std::terminate. The exception is captured and, by
/// default, the whole run falls back to the serial engine (bit-identical
/// result); with `serial_fallback = false` the failure surfaces as an
/// INTERNAL status on the result instead. Deadlines/cancellation are
/// honored cooperatively: workers poll the RunControl at row / partition
/// boundaries and the truncation semantics match RunDime's.
///
/// This addresses the practical gap the paper leaves open for very large
/// groups where even DIME+'s verification phase is CPU-bound.

namespace dime {

struct ParallelOptions {
  /// 0 = std::thread::hardware_concurrency().
  unsigned num_threads = 0;
  /// When a worker thread throws, rerun the group serially (RunDime) and
  /// return that result. When false, return an empty result whose status
  /// is INTERNAL with the exception text.
  bool serial_fallback = true;
};

/// Parallel counterpart of RunDime(pg, positive, negative, control).
DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options,
                           const RunControl& control);

DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options = {});

}  // namespace dime

#endif  // DIME_CORE_DIME_PARALLEL_H_
