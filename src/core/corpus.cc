#include "src/core/corpus.h"

#include <atomic>
#include <exception>
#include <string>
#include <thread>

namespace dime {

std::vector<DimeResult> RunCorpus(const std::vector<Group>& groups,
                                  const std::vector<PositiveRule>& positive,
                                  const std::vector<NegativeRule>& negative,
                                  const DimeContext& context,
                                  const CorpusOptions& options) {
  std::vector<DimeResult> results(groups.size());
  if (groups.empty()) return results;

  unsigned threads = options.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(groups.size()));

  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t g = next.fetch_add(1);
      if (g >= groups.size()) break;
      Status gate = internal::CheckRunControl(options.control, "corpus/group");
      if (!gate.ok()) {
        results[g] = DimeResult{};
        results[g].flagged_by_prefix.assign(negative.size() + 1, {});
        results[g].status = gate;
        continue;
      }
      try {
        PreparedGroup pg =
            PrepareGroup(groups[g], positive, negative, context);
        results[g] = options.use_dime_plus
                         ? RunDimePlus(pg, positive, negative,
                                       options.dime_plus, options.control)
                         : RunDime(pg, positive, negative, options.control);
      } catch (const std::exception& e) {
        results[g] = DimeResult{};
        results[g].flagged_by_prefix.assign(negative.size() + 1, {});
        results[g].status =
            InternalError(std::string("corpus worker fault on group ") +
                          std::to_string(g) + ": " + e.what());
      } catch (...) {
        results[g] = DimeResult{};
        results[g].flagged_by_prefix.assign(negative.size() + 1, {});
        results[g].status =
            InternalError(std::string("corpus worker fault on group ") +
                          std::to_string(g) + ": unknown exception");
      }
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return results;
}

}  // namespace dime
