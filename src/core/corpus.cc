#include "src/core/corpus.h"

#include <atomic>
#include <exception>
#include <string>
#include <thread>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/common/threads.h"

namespace dime {
namespace {

/// Cross-group tallies shared by the pool. Multi-word state (counts plus
/// the first fault's text) → Mutex + DIME_GUARDED_BY per the mutex.h
/// convention; the work-stealing cursor stays a bare atomic below because
/// fetch_add is its entire contract.
struct CorpusProgress {
  Mutex mu;
  size_t faulted DIME_GUARDED_BY(mu) = 0;     ///< groups ending INTERNAL
  size_t truncated DIME_GUARDED_BY(mu) = 0;   ///< deadline/cancel gated
  std::string first_fault DIME_GUARDED_BY(mu);

  void RecordFault(const std::string& what) DIME_EXCLUDES(mu) {
    MutexLock lock(&mu);
    if (faulted == 0) first_fault = what;
    ++faulted;
  }

  void RecordTruncated() DIME_EXCLUDES(mu) {
    MutexLock lock(&mu);
    ++truncated;
  }
};

}  // namespace

std::vector<DimeResult> RunCorpus(const std::vector<Group>& groups,
                                  const std::vector<PositiveRule>& positive,
                                  const std::vector<NegativeRule>& negative,
                                  const DimeContext& context,
                                  const CorpusOptions& options) {
  std::vector<DimeResult> results(groups.size());
  if (groups.empty()) return results;

  unsigned threads = ResolveThreadCount(options.num_threads);
  threads = std::min<unsigned>(threads, static_cast<unsigned>(groups.size()));

  CorpusProgress progress;
  std::atomic<size_t> next{0};
  // Workers write only results[g] for the g values their fetch_add
  // claimed — element access is disjoint by construction, so the results
  // vector itself needs no lock (the joins below publish the writes).
  auto worker = [&]() {
    while (true) {
      size_t g = next.fetch_add(1);
      if (g >= groups.size()) break;
      Status gate = internal::CheckRunControl(options.control, "corpus/group");
      if (!gate.ok()) {
        results[g] = DimeResult{};
        results[g].flagged_by_prefix.assign(negative.size() + 1, {});
        results[g].status = gate;
        progress.RecordTruncated();
        continue;
      }
      try {
        PreparedGroup pg =
            PrepareGroup(groups[g], positive, negative, context);
        results[g] = options.use_dime_plus
                         ? RunDimePlus(pg, positive, negative,
                                       options.dime_plus, options.control)
                         : RunDime(pg, positive, negative, options.control);
      } catch (const std::exception& e) {
        results[g] = DimeResult{};
        results[g].flagged_by_prefix.assign(negative.size() + 1, {});
        results[g].status =
            InternalError(std::string("corpus worker fault on group ") +
                          std::to_string(g) + ": " + e.what());
        progress.RecordFault(e.what());
      } catch (...) {
        results[g] = DimeResult{};
        results[g].flagged_by_prefix.assign(negative.size() + 1, {});
        results[g].status =
            InternalError(std::string("corpus worker fault on group ") +
                          std::to_string(g) + ": unknown exception");
        progress.RecordFault("unknown exception");
      }
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  {
    MutexLock lock(&progress.mu);
    DIME_DCHECK_LE(progress.faulted + progress.truncated, groups.size());
    if (progress.faulted > 0) {
      DIME_LOG(WARNING) << "RunCorpus: " << progress.faulted << "/"
                        << groups.size() << " groups ended with a worker "
                        << "fault (first: " << progress.first_fault << ")";
    }
  }
  return results;
}

}  // namespace dime
