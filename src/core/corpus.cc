#include "src/core/corpus.h"

#include <atomic>
#include <thread>

namespace dime {

std::vector<DimeResult> RunCorpus(const std::vector<Group>& groups,
                                  const std::vector<PositiveRule>& positive,
                                  const std::vector<NegativeRule>& negative,
                                  const DimeContext& context,
                                  const CorpusOptions& options) {
  std::vector<DimeResult> results(groups.size());
  if (groups.empty()) return results;

  unsigned threads = options.num_threads;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min<unsigned>(threads, static_cast<unsigned>(groups.size()));

  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t g = next.fetch_add(1);
      if (g >= groups.size()) break;
      PreparedGroup pg =
          PrepareGroup(groups[g], positive, negative, context);
      results[g] = options.use_dime_plus
                       ? RunDimePlus(pg, positive, negative,
                                     options.dime_plus)
                       : RunDime(pg, positive, negative);
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return results;
}

}  // namespace dime
