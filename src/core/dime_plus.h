#ifndef DIME_CORE_DIME_PLUS_H_
#define DIME_CORE_DIME_PLUS_H_

#include "src/core/dime.h"
#include "src/core/signature.h"

/// \file dime_plus.h
/// DIME+ (Algorithm 2): the signature-based filter-verification framework.
/// Produces exactly the same DimeResult as RunDime — the filters are
/// complete (Section IV-B) and verification computes real similarities —
/// but avoids the all-pairs enumeration:
///
///  * positive rules: only pairs sharing an indexed rule signature are
///    candidates; candidates are verified in descending benefit order
///    B = P / C, and pairs already connected by transitivity are skipped;
///  * negative rules: a partition whose signature set is disjoint from the
///    pivot's is flagged without any verification; otherwise each member's
///    pivot checks run most-likely-similar-first (descending P / C), so
///    the violating pair that disqualifies a member is found early.

namespace dime {

struct DimePlusOptions {
  SignatureOptions signatures;
  /// Disable benefit ordering (ablation: verify candidates in input order).
  bool benefit_order = true;
  /// Disable the union-find transitivity short-circuit (ablation).
  bool transitivity_skip = true;
  /// Candidate-volume bound up to which positive-rule candidates are
  /// materialized and verified in exact benefit order; above it they are
  /// streamed off the inverted lists shortest-list-first (same result,
  /// no materialization cost — important when one signature, e.g. a page
  /// owner's name, occurs in every entity).
  size_t exact_benefit_cap = 100000;
};

/// Runs Algorithm 2 on a prepared group. `control` bounds the run exactly
/// as in RunDime: checks at candidate-batch and partition boundaries; on
/// expiry the partial result's flagged sets are subsets of the untruncated
/// run's and the scrollbar stays monotone (see DimeResult::status).
DimeResult RunDimePlus(const PreparedGroup& pg,
                       const std::vector<PositiveRule>& positive,
                       const std::vector<NegativeRule>& negative,
                       const DimePlusOptions& options,
                       const RunControl& control);

DimeResult RunDimePlus(const PreparedGroup& pg,
                       const std::vector<PositiveRule>& positive,
                       const std::vector<NegativeRule>& negative,
                       const DimePlusOptions& options = DimePlusOptions());

/// Convenience wrapper: prepares `group` and runs Algorithm 2.
DimeResult RunDimePlus(const Group& group,
                       const std::vector<PositiveRule>& positive,
                       const std::vector<NegativeRule>& negative,
                       const DimeContext& context,
                       const DimePlusOptions& options = DimePlusOptions());

}  // namespace dime

#endif  // DIME_CORE_DIME_PLUS_H_
