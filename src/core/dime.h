#ifndef DIME_CORE_DIME_H_
#define DIME_CORE_DIME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/status.h"
#include "src/core/preprocess.h"
#include "src/rules/rule.h"

/// \file dime.h
/// The basic rule-based framework DIME (Algorithm 1):
///
///   Step 1  apply the disjunction of positive rules to every entity pair
///           and take connected components as disjoint partitions;
///   Step 2  the largest partition is the pivot P* (assumed correct);
///   Step 3  apply negative rules in sequence: a non-pivot partition P is
///           mis-categorized under prefix k if some entity of P is
///           dissimilar from EVERY pivot entity according to one of the
///           first k negative rules (Example 9: e4 is flagged because it
///           "does not have overlapping Authors with any entity in P1").
///
/// The per-prefix outputs implement the scrollbar of Fig. 3: they are
/// monotone (each prefix's flagged set contains the previous one), so a
/// user can slide between conservative and aggressive suggestions.

namespace dime {

/// Output of DIME / DIME+ on one group.
struct DimeResult {
  /// Disjoint partitions; each partition's entity indices are ascending and
  /// partitions are ordered by smallest member.
  std::vector<std::vector<int>> partitions;

  /// Index into `partitions` of the pivot (-1 for an empty group). Largest
  /// size wins; ties break toward the smaller partition index.
  int pivot = -1;

  /// flagged_by_prefix[k] = mis-categorized entity indices (ascending)
  /// after applying negative rules phi_1 .. phi_{k+1} as a disjunction.
  /// Monotone in k. Size = number of negative rules.
  std::vector<std::vector<int>> flagged_by_prefix;

  /// Convenience: the last prefix (all negative rules), or empty if there
  /// are none.
  const std::vector<int>& flagged() const {
    static const std::vector<int>& kEmpty = *new std::vector<int>();
    return flagged_by_prefix.empty() ? kEmpty : flagged_by_prefix.back();
  }

  /// Per partition: the index of the first negative rule that flags it
  /// (-1 = never flagged). Parallel to `partitions`; drives the scrollbar
  /// and the explanation API (core/explain.h).
  std::vector<int> first_flagging_rule;

  /// The partition index containing `entity`, or -1. Linear scan — build
  /// your own entity->partition map for bulk queries.
  int PartitionOf(int entity) const {
    for (size_t p = 0; p < partitions.size(); ++p) {
      for (int e : partitions[p]) {
        if (e == entity) return static_cast<int>(p);
      }
    }
    return -1;
  }

  /// Instrumentation for the efficiency study (Fig. 9 / ablations).
  struct Stats {
    size_t positive_pair_checks = 0;   ///< rule evaluations in step 1
    size_t negative_pair_checks = 0;   ///< rule evaluations in step 3
    size_t candidate_pairs = 0;        ///< pairs surviving the filter (DIME+)
    size_t partitions_pruned_by_filter = 0;  ///< step-3 signature prunes
    /// Candidate pairs never verified because both entities were already
    /// in one partition (DIME+ transitivity skip, including whole inverted
    /// lists skipped at once).
    size_t pairs_skipped_by_transitivity = 0;
    /// Threshold-aware similarity kernel invocations that decided before
    /// consuming their whole inputs (sim/set_similarity.h).
    size_t kernel_early_exits = 0;
  };
  Stats stats;

  /// Entity indices of the pivot partition (empty for an empty group).
  const std::vector<int>& PivotEntities() const {
    static const std::vector<int>& kEmpty = *new std::vector<int>();
    return pivot < 0 ? kEmpty : partitions[pivot];
  }

  /// OK for a complete run. DEADLINE_EXCEEDED / CANCELLED when a
  /// RunControl stopped the engine early: the result is then partial but
  /// valid — every flagged set is a subset of what the untruncated run
  /// would flag, and the scrollbar prefixes stay monotone. INTERNAL when
  /// RunDimeParallel captured a worker fault and serial fallback was
  /// disabled (the result carries no partitions in that case).
  Status status;

  bool ok() const { return status.ok(); }
};

/// Runs Algorithm 1 (the naive quadratic framework). `control` bounds the
/// run: the engine checks the deadline / cancellation token at row and
/// partition boundaries and, on expiry, returns the monotone scrollbar
/// prefix computed so far with a non-OK status (see DimeResult::status).
/// An expiry during step 1 yields no partitions at all — half-merged
/// partitions would not be valid.
DimeResult RunDime(const PreparedGroup& pg,
                   const std::vector<PositiveRule>& positive,
                   const std::vector<NegativeRule>& negative,
                   const RunControl& control);

DimeResult RunDime(const PreparedGroup& pg,
                   const std::vector<PositiveRule>& positive,
                   const std::vector<NegativeRule>& negative);

/// Convenience wrapper: prepares `group` and runs Algorithm 1.
DimeResult RunDime(const Group& group,
                   const std::vector<PositiveRule>& positive,
                   const std::vector<NegativeRule>& negative,
                   const DimeContext& context);

/// Shared helpers (used by both engines; exposed for tests).
namespace internal {

/// Engine-side RunControl check: folds in the "engine/deadline" failpoint
/// so tests can apply deadline pressure without racing a real clock.
Status CheckRunControl(const RunControl& control, const char* where);

/// Picks the pivot: largest partition, ties toward smaller index.
int PickPivot(const std::vector<std::vector<int>>& partitions);

/// Turns per-partition "first flagging rule" indices (-1 = never flagged)
/// into monotone per-prefix entity lists.
std::vector<std::vector<int>> BuildScrollbar(
    const std::vector<std::vector<int>>& partitions, int pivot,
    const std::vector<int>& first_flagging_rule, size_t num_rules);

/// Debug-only (DIME_DCHECK) validation of the engine output contract,
/// called by every engine at its final phase boundary:
///   - the pivot is a maximum-size partition (ties to the smaller index);
///   - the scrollbar is monotone: flagged_by_prefix[k-1] ⊆ [k];
///   - every flagged entity is in the group ([0, group_size)) and outside
///     the pivot partition;
///   - flagged_by_prefix has exactly `num_rules` prefixes.
/// Free in NDEBUG builds (the body compiles away).
void DcheckResultInvariants(const DimeResult& result, size_t group_size,
                            size_t num_rules);

}  // namespace internal
}  // namespace dime

#endif  // DIME_CORE_DIME_H_
