#ifndef DIME_CORE_DIME_PLUS_INTERNAL_INL_H_
#define DIME_CORE_DIME_PLUS_INTERNAL_INL_H_

#include <algorithm>

#include "src/index/verification.h"

/// \file dime_plus_internal_inl.h
/// Template body of FlagPartitionAgainstPivot (see dime_plus_internal.h).
/// This is the historical inline code of RunDimePlus step 3, moved — the
/// comments and control flow are intentionally unchanged, because the
/// verification order and pair-check counts it produces are pinned by the
/// golden equality tests.

namespace dime {
namespace internal {

template <typename RuleContextFn>
int FlagPartitionAgainstPivot(const PreparedGroup& pg,
                              const std::vector<NegativeRule>& negative,
                              const PreparedRuleArtifacts* artifacts,
                              bool benefit_order,
                              const std::vector<int>& pivot_entities,
                              const std::vector<int>& members,
                              const RuleContextFn& rule_context,
                              NegativeScratch* scratch,
                              NegativePhaseStats* stats) {
  int flag = -1;
  if (scratch->member_sigs_owned.size() < members.size()) {
    scratch->member_sigs_owned.resize(members.size());
  }
  if (scratch->member_sigs.size() < members.size()) {
    scratch->member_sigs.resize(members.size());
  }
  // Dense per-member shared-signature counter: one slot per pivot
  // position, reset between members through the dirty list — the
  // hash-map pair counter this replaces spent more time hashing
  // (member, pivot) keys than verifying rules on large pivots.
  if (scratch->shared_with_pivot.size() != pivot_entities.size()) {
    scratch->shared_with_pivot.assign(pivot_entities.size(), 0);
    scratch->dirty.clear();
  }
  std::vector<SignatureSpan>& member_sigs = scratch->member_sigs;
  std::vector<uint32_t>& shared_with_pivot = scratch->shared_with_pivot;
  std::vector<uint32_t>& dirty = scratch->dirty;

  for (size_t r = 0; r < negative.size() && flag < 0; ++r) {
    const NegativeRuleContext& ctx = rule_context(r);

    // Filter: generate each member's signatures once (they are reused
    // for the shared counts below) and test whether any matches a
    // pivot signature.
    bool any_shared = false;
    for (size_t m = 0; m < members.size(); ++m) {
      if (artifacts != nullptr) {
        member_sigs[m] = artifacts->negative_sigs[r].row(members[m]);
      } else {
        scratch->member_sigs_owned[m] =
            ctx.gen->NegativeRuleSignatures(members[m], &scratch->sig);
        member_sigs[m] = SignatureSpan(scratch->member_sigs_owned[m]);
      }
      if (any_shared) continue;
      for (uint64_t s : member_sigs[m]) {
        if (ctx.pivot_map.Contains(s)) {
          any_shared = true;
          break;
        }
      }
    }
    if (!any_shared) {
      // No signature of P matches any signature of P*: every cross pair
      // satisfies the rule, so every member of P is dissimilar from the
      // whole pivot — flag without verification.
      flag = static_cast<int>(r);
      ++stats->partitions_pruned_by_filter;
      break;
    }

    // Verification: a member flags the partition if it is dissimilar
    // from EVERY pivot entity. For each member, pivot entities are
    // checked most-likely-similar first (shared signatures up, cost
    // down), so a violating pair — which ends this member's scan — is
    // found as early as possible.
    //
    // Only the dirty positions (shared > 0) can have positive benefit:
    // SimilarProbability(0, ·, ·) is 0 and the cost clamp keeps shared
    // benefits strictly above it, so the zero-shared majority forms a
    // tied block that the full sort would place last, ordered by
    // ascending e_star — which is pivot order, because Components()
    // emits each partition sorted by entity id. Building and sorting
    // candidates for the dirty list alone and then scanning the
    // zero-shared remainder in pivot order therefore verifies pairs in
    // exactly the order the full materialization did, without the
    // O(|pivot|) probability/cost computations and sort per member.
    std::vector<NegativeCandidate>& cands = scratch->cands;
    for (size_t m = 0; m < members.size() && flag < 0; ++m) {
      // Scatter this member's shared counts into the dense slots.
      for (uint64_t s : member_sigs[m]) {
        PivotSigMap::PosRun run = ctx.pivot_map.Find(s);
        for (const PivotSigMap::Entry& ent : run) {
          const uint32_t i = ent.second;
          if (shared_with_pivot[i]++ == 0) {
            dirty.push_back(i);
          }
        }
      }
      bool all_dissimilar = true;
      if (benefit_order) {
        cands.clear();
        cands.reserve(dirty.size());
        for (uint32_t i : dirty) {
          double prob = SimilarProbability(shared_with_pivot[i],
                                           member_sigs[m].size(),
                                           ctx.pivot_sigs[i].size());
          double cost = RuleVerificationCost(
              pg, negative[r].predicates, members[m], pivot_entities[i]);
          cands.push_back(NegativeCandidate{PositiveBenefit(prob, cost),
                                            members[m], pivot_entities[i]});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const NegativeCandidate& a, const NegativeCandidate& b) {
                    if (a.benefit != b.benefit) {
                      return a.benefit > b.benefit;
                    }
                    return a.e_star < b.e_star;
                  });
        for (const NegativeCandidate& c : cands) {
          ++stats->negative_pair_checks;
          if (!EvalNegativeRule(pg, negative[r], c.e, c.e_star)) {
            all_dissimilar = false;
            break;
          }
        }
        if (all_dissimilar) {
          for (size_t i = 0; i < pivot_entities.size(); ++i) {
            if (shared_with_pivot[i] != 0) continue;  // verified above
            ++stats->negative_pair_checks;
            if (!EvalNegativeRule(pg, negative[r], members[m],
                                  pivot_entities[i])) {
              all_dissimilar = false;
              break;
            }
          }
        }
      } else {
        // Without benefit ordering the old materialized order was just
        // pivot order; scan it directly.
        for (size_t i = 0; i < pivot_entities.size(); ++i) {
          ++stats->negative_pair_checks;
          if (!EvalNegativeRule(pg, negative[r], members[m],
                                pivot_entities[i])) {
            all_dissimilar = false;
            break;
          }
        }
      }
      for (uint32_t d : dirty) shared_with_pivot[d] = 0;
      dirty.clear();
      if (all_dissimilar) flag = static_cast<int>(r);
    }
  }
  return flag;
}

}  // namespace internal
}  // namespace dime

#endif  // DIME_CORE_DIME_PLUS_INTERNAL_INL_H_
