#ifndef DIME_CORE_PREPROCESS_H_
#define DIME_CORE_PREPROCESS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/entity.h"
#include "src/ontology/ontology.h"
#include "src/rules/rule.h"
#include "src/text/token_dictionary.h"

/// \file preprocess.h
/// Turns a raw Group into the canonical per-attribute representations that
/// rule evaluation, signature generation and the baselines all consume:
///
///  * set-based predicates    -> strictly ascending global-rank vectors
///                               (rarest token first; Section IV-B ordering)
///  * character-based         -> lower-cased joined text + rank-sorted
///                               q-gram vectors
///  * ontology-based          -> one mapped tree node per entity
///
/// Preparation is driven by the rules that will actually run, so only the
/// representations a rule references are built.

namespace dime {

/// How an attribute value is mapped onto an ontology node.
enum class MapMode : int {
  kExactName = 0,  ///< lookup the value (or one of its tokens) by node name
  kKeyword = 1,    ///< keyword voting over word tokens (LDA hierarchies)
  /// kExactName, falling back to the node whose name has the highest edit
  /// similarity (>= 0.8) with the value — the paper's footnote 2: "We can
  /// also use approximate matching based on similarity functions".
  kFuzzyName = 2,
};

/// One ontology usable by kOntology predicates, addressed by index.
struct OntologyRef {
  const Ontology* tree = nullptr;
  MapMode mode = MapMode::kExactName;
};

/// Shared evaluation context.
struct DimeContext {
  std::vector<OntologyRef> ontologies;
  int qgram_q = 2;  ///< q for edit-distance q-gram signatures
};

/// Prepared representations for one attribute. Only the members a rule
/// references are populated (check the has_* flags).
struct PreparedAttr {
  bool has_value_list = false;
  bool has_words = false;
  bool has_text = false;

  /// Per entity: ascending rank vectors for TokenMode::kValueList.
  std::vector<std::vector<uint32_t>> value_ranks;
  /// Per entity: ascending rank vectors for TokenMode::kWords.
  std::vector<std::vector<uint32_t>> word_ranks;
  /// IDF weight of each token, indexed by rank (parallel to the rank
  /// spaces above); built alongside the rank vectors and consumed by the
  /// weighted similarity functions.
  std::vector<double> value_weights;
  std::vector<double> word_weights;
  /// Per entity: lower-cased joined text (character-based functions).
  std::vector<std::string> text;
  /// Per entity: ascending rank vectors over q-grams of `text`.
  std::vector<std::vector<uint32_t>> qgram_ranks;
  /// Per ontology index: per entity mapped node (kNoNode when unmapped).
  std::unordered_map<int, std::vector<int>> nodes;

  TokenDictionary value_dict;
  TokenDictionary word_dict;
  TokenDictionary qgram_dict;
};

/// A Group plus everything the engines need to evaluate rules on it.
struct PreparedGroup {
  const Group* group = nullptr;
  DimeContext context;
  std::vector<PreparedAttr> attrs;  ///< parallel to the schema

  size_t size() const { return group->size(); }
};

/// Which representations an attribute needs for a set of predicates
/// (exposed for the incremental engine).
struct AttrRequirements {
  bool value_list = false;
  bool words = false;
  bool text = false;
  std::vector<int> ontology_indexes;
};

/// Scans `predicates` and reports the requirements per attribute.
std::vector<AttrRequirements> ComputeAttrRequirements(
    size_t num_attrs, const std::vector<Predicate>& predicates);

/// Lower-cased space-joined text of a multi-valued attribute (the
/// canonical character-based representation).
std::string JoinAttributeText(const AttributeValue& value);

/// Maps an attribute value onto a node of `tree` under `mode` (kNoNode if
/// unmappable). Exact mode tries the full value, each element, and every
/// contiguous token span, preferring the deepest hit.
int MapAttributeToNode(const Ontology& tree, MapMode mode,
                       const AttributeValue& value);

/// Validates that every predicate of the rules is evaluable against
/// `schema` under `context`: attribute indexes in range, ontology indexes
/// backed by a tree, thresholds within the function's range, and no
/// vacuous positive predicates (which would defeat signature filtering).
/// Returns an empty string when valid, else a human-readable reason.
std::string ValidateRules(const Schema& schema,
                          const std::vector<PositiveRule>& positive,
                          const std::vector<NegativeRule>& negative,
                          const DimeContext& context);

/// Builds representations for every predicate of `positive` and `negative`.
PreparedGroup PrepareGroup(const Group& group,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const DimeContext& context);

/// Variant that prepares for an explicit predicate list (rule generation
/// prepares for the whole candidate feature library).
PreparedGroup PrepareGroupForPredicates(const Group& group,
                                        const std::vector<Predicate>& preds,
                                        const DimeContext& context);

/// Exact similarity of `pred` between entities e1 and e2.
double PredicateSimilarity(const PreparedGroup& pg, const Predicate& pred,
                           int e1, int e2);

/// Threshold-aware check (uses the banded edit-distance verifier, so its
/// cost matches the paper's verification cost model).
bool PredicateHolds(const PreparedGroup& pg, const Predicate& pred,
                    Direction dir, int e1, int e2);

/// True iff every predicate of the rule holds.
bool EvalPositiveRule(const PreparedGroup& pg, const PositiveRule& rule,
                      int e1, int e2);
bool EvalNegativeRule(const PreparedGroup& pg, const NegativeRule& rule,
                      int e1, int e2);

/// Estimated verification cost C(e1, e2) of a rule, per Section IV-C:
/// O(|a|+|b|) for set functions, O(theta * min) for edit similarity,
/// O(depth_a + depth_b) for ontology similarity.
double RuleVerificationCost(const PreparedGroup& pg,
                            const std::vector<Predicate>& predicates, int e1,
                            int e2);

}  // namespace dime

#endif  // DIME_CORE_PREPROCESS_H_
