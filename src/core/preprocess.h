#ifndef DIME_CORE_PREPROCESS_H_
#define DIME_CORE_PREPROCESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/entity/entity.h"
#include "src/ontology/ontology.h"
#include "src/rules/rule.h"
#include "src/sim/rank_span.h"
#include "src/text/token_dictionary.h"

/// \file preprocess.h
/// Turns a raw Group into the canonical per-attribute representations that
/// rule evaluation, signature generation and the baselines all consume:
///
///  * set-based predicates    -> strictly ascending global-rank vectors
///                               (rarest token first; Section IV-B ordering)
///  * character-based         -> lower-cased joined text + rank-sorted
///                               q-gram vectors
///  * ontology-based          -> one mapped tree node per entity
///
/// Preparation is driven by the rules that will actually run, so only the
/// representations a rule references are built.
///
/// Rank vectors live in one contiguous arena per attribute/mode (a CSR
/// layout: arena + per-entity offsets) rather than a vector-of-vectors.
/// The verification hot path touches two entities' ranks per candidate
/// pair in essentially random order; with the arena those reads are two
/// offset lookups into memory laid out in entity order instead of two
/// pointer chases to independently heap-allocated vectors, and building
/// the group does one allocation per attribute/mode instead of one per
/// entity.

namespace dime {

/// One attribute/mode's rank vectors for every entity, flattened CSR-style:
/// entity e's strictly ascending ranks live at arena[offsets[e] ..
/// offsets[e+1]). Two storage modes share the read API:
///
///  * owned    — built by preparation (append-only; the incremental engine
///               appends entities at the tail), backed by vectors;
///  * borrowed — BorrowStorage() points the column at externally owned
///               arrays (the snapshot store maps these straight off disk,
///               zero-copy). A borrowed column is immutable; the caller
///               guarantees the backing outlives the column.
///
/// Offsets are uint64_t so the owned layout is bit-identical to the
/// serialized one — a snapshot load is a pointer swap, not a widening
/// copy.
class RankColumn {
 public:
  /// Pre-sizes for `entities` rows totalling `total_ranks` elements.
  void Reserve(size_t entities, size_t total_ranks) {
    offsets_.reserve(entities + 1);
    arena_.reserve(total_ranks);
  }

  /// Appends one entity's rank run (must be strictly ascending). Only
  /// valid on an owned column.
  void Append(const uint32_t* data, size_t len) {
    DIME_DCHECK(!borrowed());
    arena_.insert(arena_.end(), data, data + len);
    offsets_.push_back(arena_.size());
  }
  void Append(const std::vector<uint32_t>& v) { Append(v.data(), v.size()); }

  /// Points the column at external storage: `offsets` has `rows + 1`
  /// monotone entries with offsets[0] == 0; `arena` holds
  /// offsets[rows] elements. Replaces any owned content.
  void BorrowStorage(const uint32_t* arena, const uint64_t* offsets,
                     size_t rows) {
    arena_.clear();
    offsets_.clear();
    ext_arena_ = arena;
    ext_offsets_ = offsets;
    ext_rows_ = rows;
  }

  bool borrowed() const { return ext_offsets_ != nullptr; }

  /// Borrowed view of entity e's ranks. Stable across Append (offsets are
  /// resolved on each call), but not across destruction of the column (or
  /// of the external backing, in borrowed mode).
  RankSpan view(size_t e) const {
    const uint64_t* off = offsets_ptr();
    return RankSpan(arena_ptr() + off[e], off[e + 1] - off[e]);
  }

  size_t size(size_t e) const {
    const uint64_t* off = offsets_ptr();
    return off[e + 1] - off[e];
  }
  size_t num_entities() const {
    return borrowed() ? ext_rows_ : offsets_.size() - 1;
  }
  size_t total_ranks() const {
    return borrowed() ? ext_offsets_[ext_rows_] : arena_.size();
  }

  /// Raw storage, mode-independent (snapshot serialization).
  const uint32_t* arena_ptr() const {
    return borrowed() ? ext_arena_ : arena_.data();
  }
  const uint64_t* offsets_ptr() const {
    return borrowed() ? ext_offsets_ : offsets_.data();
  }

 private:
  // Owned mode. A copied column copies these and re-derives the data
  // pointers per call, so copies are safe in either mode.
  std::vector<uint32_t> arena_;
  std::vector<uint64_t> offsets_{0};
  // Borrowed mode (null when owned).
  const uint32_t* ext_arena_ = nullptr;
  const uint64_t* ext_offsets_ = nullptr;
  size_t ext_rows_ = 0;
};

/// How an attribute value is mapped onto an ontology node.
enum class MapMode : int {
  kExactName = 0,  ///< lookup the value (or one of its tokens) by node name
  kKeyword = 1,    ///< keyword voting over word tokens (LDA hierarchies)
  /// kExactName, falling back to the node whose name has the highest edit
  /// similarity (>= 0.8) with the value — the paper's footnote 2: "We can
  /// also use approximate matching based on similarity functions".
  kFuzzyName = 2,
};

/// One ontology usable by kOntology predicates, addressed by index.
struct OntologyRef {
  const Ontology* tree = nullptr;
  MapMode mode = MapMode::kExactName;
};

/// Shared evaluation context.
struct DimeContext {
  std::vector<OntologyRef> ontologies;
  int qgram_q = 2;  ///< q for edit-distance q-gram signatures
};

/// Prepared representations for one attribute. Only the members a rule
/// references are populated (check the has_* flags).
struct PreparedAttr {
  bool has_value_list = false;
  bool has_words = false;
  bool has_text = false;

  /// Ascending rank runs for TokenMode::kValueList, one per entity.
  RankColumn value_ranks;
  /// Ascending rank runs for TokenMode::kWords, one per entity.
  RankColumn word_ranks;
  /// IDF weight of each token, indexed by rank (parallel to the rank
  /// spaces above); built alongside the rank vectors and consumed by the
  /// weighted similarity functions.
  std::vector<double> value_weights;
  std::vector<double> word_weights;
  /// Per entity: precomputed total weight (weighted Jaccard) and squared
  /// weight norm (weighted cosine) of the value/word rank runs, so the
  /// threshold-aware weighted kernels get their per-side masses without a
  /// per-pair pass.
  std::vector<double> value_mass, word_mass;
  std::vector<double> value_sqnorm, word_sqnorm;
  /// Per entity: lower-cased joined text (character-based functions).
  std::vector<std::string> text;
  /// Ascending rank runs over q-grams of `text`, one per entity.
  RankColumn qgram_ranks;
  /// Per ontology index: per entity mapped node (kNoNode when unmapped).
  std::unordered_map<int, std::vector<int>> nodes;

  TokenDictionary value_dict;
  TokenDictionary word_dict;
  TokenDictionary qgram_dict;
};

struct PreparedRuleArtifacts;  // src/core/signature.h

/// A Group plus everything the engines need to evaluate rules on it.
struct PreparedGroup {
  const Group* group = nullptr;
  DimeContext context;
  std::vector<PreparedAttr> attrs;  ///< parallel to the schema

  /// Optional precomputed per-rule signatures and frozen indexes (snapshot
  /// warm start). RunDimePlus consumes these instead of regenerating when
  /// they match its rule set and signature options; a null pointer (the
  /// normal PrepareGroup output) means "generate on demand".
  std::shared_ptr<const PreparedRuleArtifacts> artifacts;

  size_t size() const { return group->size(); }
};

/// Which representations an attribute needs for a set of predicates
/// (exposed for the incremental engine).
struct AttrRequirements {
  bool value_list = false;
  bool words = false;
  bool text = false;
  std::vector<int> ontology_indexes;
};

/// Scans `predicates` and reports the requirements per attribute.
std::vector<AttrRequirements> ComputeAttrRequirements(
    size_t num_attrs, const std::vector<Predicate>& predicates);

/// Lower-cased space-joined text of a multi-valued attribute (the
/// canonical character-based representation).
std::string JoinAttributeText(const AttributeValue& value);

/// Maps an attribute value onto a node of `tree` under `mode` (kNoNode if
/// unmappable). Exact mode tries the full value, each element, and every
/// contiguous token span, preferring the deepest hit.
int MapAttributeToNode(const Ontology& tree, MapMode mode,
                       const AttributeValue& value);

/// Validates that every predicate of the rules is evaluable against
/// `schema` under `context`: attribute indexes in range, ontology indexes
/// backed by a tree, thresholds within the function's range, and no
/// vacuous positive predicates (which would defeat signature filtering).
/// Returns an empty string when valid, else a human-readable reason.
std::string ValidateRules(const Schema& schema,
                          const std::vector<PositiveRule>& positive,
                          const std::vector<NegativeRule>& negative,
                          const DimeContext& context);

/// Builds representations for every predicate of `positive` and `negative`.
PreparedGroup PrepareGroup(const Group& group,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const DimeContext& context);

/// Variant that prepares for an explicit predicate list (rule generation
/// prepares for the whole candidate feature library).
PreparedGroup PrepareGroupForPredicates(const Group& group,
                                        const std::vector<Predicate>& preds,
                                        const DimeContext& context);

/// Exact similarity of `pred` between entities e1 and e2.
double PredicateSimilarity(const PreparedGroup& pg, const Predicate& pred,
                           int e1, int e2);

/// Threshold-aware check: routes set-based predicates through
/// IntersectionAtLeast-derived kernels, weighted predicates through the
/// bounded merge, and kGe edit similarity through the banded verifier —
/// each stops at the decision point instead of computing the exact value,
/// while deciding bit-identically to `Compare(PredicateSimilarity(...))`.
bool PredicateHolds(const PreparedGroup& pg, const Predicate& pred,
                    Direction dir, int e1, int e2);

/// True iff every predicate of the rule holds.
bool EvalPositiveRule(const PreparedGroup& pg, const PositiveRule& rule,
                      int e1, int e2);
bool EvalNegativeRule(const PreparedGroup& pg, const NegativeRule& rule,
                      int e1, int e2);

/// One predicate resolved against a PreparedGroup: the kernel kind, the
/// column pointers and the threshold, hoisted out of the O(n^2) pair
/// loops. PredicateHolds re-derives all of this on every call (attribute
/// indexing, token-mode selection, an unordered_map lookup for ontology
/// predicates); a plan does it once per rule per run, and
/// PlanPredicateHolds decides bit-identically to
/// PredicateHolds(pg, pred, dir, e1, e2) with a single switch.
///
/// A plan borrows storage from the PreparedGroup it was built against and
/// is invalidated by any mutation of the group (e.g. the incremental
/// engine appending entities) — build it, run the pair loops, drop it.
struct PredicatePlan {
  enum class Kind : uint8_t { kSet, kWeighted, kEditSim, kOntology };
  Kind kind = Kind::kSet;
  Direction dir = Direction::kGe;
  SimFunc func = SimFunc::kOverlap;
  double threshold = 0.0;
  const RankColumn* ranks = nullptr;             ///< kSet / kWeighted
  const std::vector<double>* weights = nullptr;  ///< kWeighted
  const double* mass = nullptr;                  ///< kWeighted, per entity
  const std::string* text = nullptr;             ///< kEditSim, per entity
  const int* nodes = nullptr;                    ///< kOntology, per entity
  const Ontology* tree = nullptr;                ///< kOntology
};

/// A rule's predicates resolved in evaluation order (short-circuit order
/// is preserved, so pair-check counting and kernel early-exit behaviour
/// match the unplanned path exactly).
using RulePlan = std::vector<PredicatePlan>;

/// Resolves `predicates` against `pg` for evaluation under `dir`.
RulePlan BuildRulePlan(const PreparedGroup& pg,
                       const std::vector<Predicate>& predicates, Direction dir);

/// Threshold-aware check through a resolved plan; decides bit-identically
/// to PredicateHolds on the predicate the plan was built from.
bool PlanPredicateHolds(const PredicatePlan& p, int e1, int e2);

/// True iff every predicate of the plan holds (same short-circuit order
/// as EvalPositiveRule/EvalNegativeRule).
inline bool EvalRulePlan(const RulePlan& plan, int e1, int e2) {
  for (const PredicatePlan& p : plan) {
    if (!PlanPredicateHolds(p, e1, e2)) return false;
  }
  return true;
}

/// Estimated verification cost C(e1, e2) of a rule, per Section IV-C:
/// O(|a|+|b|) for set functions, O(theta * min) for edit similarity,
/// O(depth_a + depth_b) for ontology similarity.
double RuleVerificationCost(const PreparedGroup& pg,
                            const std::vector<Predicate>& predicates, int e1,
                            int e2);

}  // namespace dime

#endif  // DIME_CORE_PREPROCESS_H_
