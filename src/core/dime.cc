#include "src/core/dime.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/fault_injection.h"
#include "src/common/logging.h"
#include "src/index/union_find.h"
#include "src/sim/set_similarity.h"

namespace dime {
namespace internal {

int PickPivot(const std::vector<std::vector<int>>& partitions) {
  int pivot = -1;
  size_t best = 0;
  for (size_t i = 0; i < partitions.size(); ++i) {
    if (partitions[i].size() > best) {
      best = partitions[i].size();
      pivot = static_cast<int>(i);
    }
  }
  return pivot;
}

std::vector<std::vector<int>> BuildScrollbar(
    const std::vector<std::vector<int>>& partitions, int pivot,
    const std::vector<int>& first_flagging_rule, size_t num_rules) {
  std::vector<std::vector<int>> by_prefix(num_rules);
  for (size_t k = 0; k < num_rules; ++k) {
    std::vector<int>& flagged = by_prefix[k];
    for (size_t p = 0; p < partitions.size(); ++p) {
      if (static_cast<int>(p) == pivot) continue;
      int first = first_flagging_rule[p];
      if (first >= 0 && first <= static_cast<int>(k)) {
        flagged.insert(flagged.end(), partitions[p].begin(),
                       partitions[p].end());
      }
    }
    std::sort(flagged.begin(), flagged.end());
  }
  return by_prefix;
}

void DcheckResultInvariants(const DimeResult& result, size_t group_size,
                            size_t num_rules) {
#ifndef NDEBUG
  DIME_DCHECK_EQ(result.flagged_by_prefix.size(), num_rules);
  if (result.pivot >= 0) {
    DIME_DCHECK_LT(static_cast<size_t>(result.pivot),
                   result.partitions.size());
    // Step 2 contract: no partition is strictly larger than the pivot,
    // and none of equal size precedes it (ties break to smaller index).
    const size_t pivot_size = result.partitions[result.pivot].size();
    for (size_t p = 0; p < result.partitions.size(); ++p) {
      DIME_DCHECK_LE(result.partitions[p].size(), pivot_size)
          << "partition " << p << " is larger than pivot " << result.pivot;
      if (static_cast<int>(p) < result.pivot) {
        DIME_DCHECK_LT(result.partitions[p].size(), pivot_size)
            << "pivot tie must break to the smaller index, but partition "
            << p << " matches pivot " << result.pivot;
      }
    }
  }
  const std::vector<int>* prev = nullptr;
  for (size_t k = 0; k < result.flagged_by_prefix.size(); ++k) {
    const std::vector<int>& flagged = result.flagged_by_prefix[k];
    DIME_DCHECK(std::is_sorted(flagged.begin(), flagged.end()));
    if (prev != nullptr) {
      // Scrollbar monotonicity (Fig. 3): each prefix's flagged set
      // contains the previous prefix's.
      DIME_DCHECK(
          std::includes(flagged.begin(), flagged.end(), prev->begin(),
                        prev->end()))
          << "scrollbar not monotone at prefix " << k;
    }
    prev = &flagged;
    for (int e : flagged) {
      DIME_DCHECK_GE(e, 0);
      DIME_DCHECK_LT(static_cast<size_t>(e), group_size)
          << "flagged entity outside the group at prefix " << k;
      if (result.pivot >= 0) {
        const std::vector<int>& pe = result.partitions[result.pivot];
        DIME_DCHECK(!std::binary_search(pe.begin(), pe.end(), e))
            << "pivot entity " << e << " flagged at prefix " << k;
      }
    }
  }
#else
  (void)result;
  (void)group_size;
  (void)num_rules;
#endif
}

Status CheckRunControl(const RunControl& control, const char* where) {
  if (DIME_FAULT_POINT(failpoints::kEngineDeadline)) {
    return DeadlineExceededError(std::string("injected deadline pressure at ") +
                                 where);
  }
  if (control.IsUnbounded()) return OkStatus();
  return control.Check(where);
}

}  // namespace internal

namespace {

/// A run stopped before any partition existed: no partitions, a full-width
/// scrollbar of empty prefixes, and the explaining status.
DimeResult TruncatedBeforePartitions(Status status, size_t num_rules,
                                     DimeResult result) {
  result.partitions.clear();
  result.pivot = -1;
  result.first_flagging_rule.clear();
  result.flagged_by_prefix.assign(num_rules, {});
  result.status = std::move(status);
  return result;
}

}  // namespace

DimeResult RunDime(const PreparedGroup& pg,
                   const std::vector<PositiveRule>& positive,
                   const std::vector<NegativeRule>& negative,
                   const RunControl& control) {
  DimeResult result;
  const int n = static_cast<int>(pg.size());
  if (n == 0) {
    result.flagged_by_prefix.assign(negative.size(), {});
    return result;
  }
  // Snapshot the thread's kernel counter so the result reports this run's
  // early exits only (the engine is single-threaded, so the delta is ours).
  const uint64_t kernel_exits_before = KernelEarlyExits();

  // Both pair loops evaluate rules through resolved plans: the
  // per-predicate ceremony (attribute indexing, token-mode selection, the
  // ontology node-map lookup) runs once per rule here instead of once per
  // pair, and each check dispatches straight into the flat threshold-aware
  // kernels. Short-circuit order is unchanged, so the pair-check counters
  // are identical to the unplanned path.
  std::vector<RulePlan> positive_plans;
  positive_plans.reserve(positive.size());
  for (const PositiveRule& rule : positive) {
    positive_plans.push_back(
        BuildRulePlan(pg, rule.predicates, Direction::kGe));
  }
  std::vector<RulePlan> negative_plans;
  negative_plans.reserve(negative.size());
  for (const NegativeRule& rule : negative) {
    negative_plans.push_back(
        BuildRulePlan(pg, rule.predicates, Direction::kLe));
  }

  // Step 1: check every entity pair against the disjunction of positive
  // rules; connected components of the match graph are the partitions.
  // Aborting mid-scan would leave half-merged partitions, so a deadline
  // hit here discards step 1 entirely (checked once per row).
  UnionFind uf(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Status st = internal::CheckRunControl(control, "dime/positive-row");
    if (!st.ok()) {
      return TruncatedBeforePartitions(std::move(st), negative.size(),
                                       std::move(result));
    }
    for (int j = i + 1; j < n; ++j) {
      for (const RulePlan& plan : positive_plans) {
        ++result.stats.positive_pair_checks;
        if (EvalRulePlan(plan, i, j)) {
          uf.Union(i, j);
          break;
        }
      }
    }
  }
  result.partitions = uf.Components();

  // Step 2: the pivot partition.
  result.pivot = internal::PickPivot(result.partitions);

  // Step 3: negative rules in sequence. A partition P is mis-categorized
  // under rule r if some entity of P is dissimilar from EVERY pivot entity
  // (Example 9: e4 is flagged "because e4 does not have overlapping in
  // Authors with any entity in P1"). We record the first rule that flags
  // each partition; the scrollbar prefixes follow from it.
  //
  // Deadline checks sit at partition boundaries: stopping there leaves the
  // remaining partitions unflagged, so every flagged set is a subset of
  // the untruncated run's and the scrollbar stays monotone.
  std::vector<int> first_flagging(result.partitions.size(), -1);
  if (result.pivot >= 0) {
    const std::vector<int>& pivot_entities = result.partitions[result.pivot];
    for (size_t p = 0; p < result.partitions.size(); ++p) {
      if (static_cast<int>(p) == result.pivot) continue;
      Status st = internal::CheckRunControl(control, "dime/negative-partition");
      if (!st.ok()) {
        result.status = std::move(st);
        break;
      }
      for (size_t r = 0; r < negative.size() && first_flagging[p] < 0; ++r) {
        for (int e : result.partitions[p]) {
          bool all_dissimilar = true;
          for (int e_star : pivot_entities) {
            ++result.stats.negative_pair_checks;
            if (!EvalRulePlan(negative_plans[r], e, e_star)) {
              all_dissimilar = false;
              break;
            }
          }
          if (all_dissimilar) {
            first_flagging[p] = static_cast<int>(r);
            break;
          }
        }
      }
    }
  }
  result.first_flagging_rule = first_flagging;
  result.flagged_by_prefix = internal::BuildScrollbar(
      result.partitions, result.pivot, first_flagging, negative.size());
  result.stats.kernel_early_exits = KernelEarlyExits() - kernel_exits_before;
  internal::DcheckResultInvariants(result, pg.size(), negative.size());
  return result;
}

DimeResult RunDime(const PreparedGroup& pg,
                   const std::vector<PositiveRule>& positive,
                   const std::vector<NegativeRule>& negative) {
  return RunDime(pg, positive, negative, RunControl{});
}

DimeResult RunDime(const Group& group,
                   const std::vector<PositiveRule>& positive,
                   const std::vector<NegativeRule>& negative,
                   const DimeContext& context) {
  PreparedGroup pg = PrepareGroup(group, positive, negative, context);
  return RunDime(pg, positive, negative);
}

}  // namespace dime
