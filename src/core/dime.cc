#include "src/core/dime.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/index/union_find.h"

namespace dime {
namespace internal {

int PickPivot(const std::vector<std::vector<int>>& partitions) {
  int pivot = -1;
  size_t best = 0;
  for (size_t i = 0; i < partitions.size(); ++i) {
    if (partitions[i].size() > best) {
      best = partitions[i].size();
      pivot = static_cast<int>(i);
    }
  }
  return pivot;
}

std::vector<std::vector<int>> BuildScrollbar(
    const std::vector<std::vector<int>>& partitions, int pivot,
    const std::vector<int>& first_flagging_rule, size_t num_rules) {
  std::vector<std::vector<int>> by_prefix(num_rules);
  for (size_t k = 0; k < num_rules; ++k) {
    std::vector<int>& flagged = by_prefix[k];
    for (size_t p = 0; p < partitions.size(); ++p) {
      if (static_cast<int>(p) == pivot) continue;
      int first = first_flagging_rule[p];
      if (first >= 0 && first <= static_cast<int>(k)) {
        flagged.insert(flagged.end(), partitions[p].begin(),
                       partitions[p].end());
      }
    }
    std::sort(flagged.begin(), flagged.end());
  }
  return by_prefix;
}

}  // namespace internal

DimeResult RunDime(const PreparedGroup& pg,
                   const std::vector<PositiveRule>& positive,
                   const std::vector<NegativeRule>& negative) {
  DimeResult result;
  const int n = static_cast<int>(pg.size());
  if (n == 0) {
    result.flagged_by_prefix.assign(negative.size(), {});
    return result;
  }

  // Step 1: check every entity pair against the disjunction of positive
  // rules; connected components of the match graph are the partitions.
  UnionFind uf(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      for (const PositiveRule& rule : positive) {
        ++result.stats.positive_pair_checks;
        if (EvalPositiveRule(pg, rule, i, j)) {
          uf.Union(i, j);
          break;
        }
      }
    }
  }
  result.partitions = uf.Components();

  // Step 2: the pivot partition.
  result.pivot = internal::PickPivot(result.partitions);

  // Step 3: negative rules in sequence. A partition P is mis-categorized
  // under rule r if some entity of P is dissimilar from EVERY pivot entity
  // (Example 9: e4 is flagged "because e4 does not have overlapping in
  // Authors with any entity in P1"). We record the first rule that flags
  // each partition; the scrollbar prefixes follow from it.
  std::vector<int> first_flagging(result.partitions.size(), -1);
  if (result.pivot >= 0) {
    const std::vector<int>& pivot_entities = result.partitions[result.pivot];
    for (size_t p = 0; p < result.partitions.size(); ++p) {
      if (static_cast<int>(p) == result.pivot) continue;
      for (size_t r = 0; r < negative.size() && first_flagging[p] < 0; ++r) {
        for (int e : result.partitions[p]) {
          bool all_dissimilar = true;
          for (int e_star : pivot_entities) {
            ++result.stats.negative_pair_checks;
            if (!EvalNegativeRule(pg, negative[r], e, e_star)) {
              all_dissimilar = false;
              break;
            }
          }
          if (all_dissimilar) {
            first_flagging[p] = static_cast<int>(r);
            break;
          }
        }
      }
    }
  }
  result.first_flagging_rule = first_flagging;
  result.flagged_by_prefix = internal::BuildScrollbar(
      result.partitions, result.pivot, first_flagging, negative.size());
  return result;
}

DimeResult RunDime(const Group& group,
                   const std::vector<PositiveRule>& positive,
                   const std::vector<NegativeRule>& negative,
                   const DimeContext& context) {
  PreparedGroup pg = PrepareGroup(group, positive, negative, context);
  return RunDime(pg, positive, negative);
}

}  // namespace dime
