#include "src/core/review_session.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace dime {

ReviewOutcome SimulateReview(const Group& group, const DimeResult& result,
                             size_t prefix) {
  DIME_CHECK(group.has_truth());
  ReviewOutcome outcome;
  outcome.group_size = group.size();

  size_t total_errors = 0;
  for (uint8_t t : group.truth) total_errors += t;

  if (!result.flagged_by_prefix.empty()) {
    prefix = std::min(prefix, result.flagged_by_prefix.size());
    // Prefixes are monotone, so the entities reviewed by position k are
    // exactly flagged_by_prefix[k-1].
    const std::vector<int>& reviewed =
        prefix == 0 ? result.flagged_by_prefix.front()
                    : result.flagged_by_prefix[prefix - 1];
    outcome.suggestions_reviewed = reviewed.size();
    for (int e : reviewed) outcome.errors_found += group.truth[e];
  }
  outcome.errors_missed = total_errors - outcome.errors_found;
  outcome.effort_saved =
      group.size() == 0
          ? 0.0
          : 1.0 - static_cast<double>(outcome.suggestions_reviewed) /
                      static_cast<double>(group.size());
  outcome.coverage = total_errors == 0
                         ? 1.0
                         : static_cast<double>(outcome.errors_found) /
                               static_cast<double>(total_errors);
  return outcome;
}

InteractiveOutcome InteractiveReview(const Group& group,
                                     const DimeResult& result, size_t prefix,
                                     const ConfirmOracle& oracle) {
  DIME_CHECK(group.has_truth());
  InteractiveOutcome outcome;
  if (result.flagged_by_prefix.empty()) {
    outcome.quality = EvaluateFlagged(group, {});
    return outcome;
  }
  prefix = std::min(std::max<size_t>(prefix, 1),
                    result.flagged_by_prefix.size());

  std::vector<bool> seen(group.size(), false);
  for (size_t k = 0; k < prefix; ++k) {
    for (int e : result.flagged_by_prefix[k]) {
      if (seen[e]) continue;  // reviewed at a shallower position
      seen[e] = true;
      ++outcome.reviews;
      if (oracle(e)) {
        outcome.confirmed.push_back(e);
      } else {
        outcome.rejected.push_back(e);
      }
    }
  }
  std::sort(outcome.confirmed.begin(), outcome.confirmed.end());
  std::sort(outcome.rejected.begin(), outcome.rejected.end());
  outcome.quality = EvaluateFlagged(group, outcome.confirmed);
  return outcome;
}

ConfirmOracle NoisyTruthOracle(const Group& group, double mistake_rate,
                               uint64_t seed) {
  DIME_CHECK(group.has_truth());
  // Deterministic per (entity, seed): the same question always gets the
  // same answer, independent of review order.
  std::vector<uint8_t> truth = group.truth;
  return [truth, mistake_rate, seed](int entity) {
    Random rng(seed + static_cast<uint64_t>(entity) * 2654435761ULL);
    bool correct_answer = truth[entity] != 0;
    return rng.Bernoulli(mistake_rate) ? !correct_answer : correct_answer;
  };
}

size_t PrefixForCoverage(const Group& group, const DimeResult& result,
                         double min_coverage) {
  if (result.flagged_by_prefix.empty()) return 0;
  for (size_t k = 1; k <= result.flagged_by_prefix.size(); ++k) {
    if (SimulateReview(group, result, k).coverage >= min_coverage) return k;
  }
  return result.flagged_by_prefix.size();
}

}  // namespace dime
