#include "src/core/dime_plus_internal.h"

#include <algorithm>

namespace dime {
namespace internal {

void PivotSigMap::Build(const std::vector<SignatureSpan>& pivot_sigs) {
  std::vector<Entry> entries;
  size_t total = 0;
  for (const SignatureSpan& span : pivot_sigs) total += span.size();
  entries.reserve(total);
  for (size_t i = 0; i < pivot_sigs.size(); ++i) {
    for (uint64_t s : pivot_sigs[i]) {
      entries.emplace_back(s, static_cast<uint32_t>(i));
    }
  }
  std::sort(entries.begin(), entries.end());
  AdoptSorted(std::move(entries));
}

void PivotSigMap::AdoptSorted(std::vector<Entry> entries) {
  entries_ = std::move(entries);
}

PivotSigMap::PosRun PivotSigMap::Find(uint64_t s) const {
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), s,
      [](const Entry& e, uint64_t v) { return e.first < v; });
  auto hi = lo;
  while (hi != entries_.end() && hi->first == s) ++hi;
  PosRun run;
  run.ptr = entries_.data() + (lo - entries_.begin());
  run.len = static_cast<size_t>(hi - lo);
  return run;
}

void EnsureNegativeGenerator(const PreparedGroup& pg,
                             const NegativeRule& rule, size_t r,
                             const PreparedRuleArtifacts* artifacts,
                             const SignatureOptions& sig_options,
                             NegativeRuleContext* ctx) {
  if (artifacts != nullptr || ctx->gen != nullptr) return;
  ctx->gen = std::make_unique<SignatureGenerator>(
      pg, rule.predicates, Direction::kLe,
      /*rule_tag=*/0x1000 + r, sig_options);
}

void GeneratePivotSignatures(const PreparedRuleArtifacts* artifacts, size_t r,
                             const std::vector<int>& pivot_entities,
                             size_t begin, size_t end,
                             SignatureScratch* scratch,
                             NegativeRuleContext* ctx) {
  for (size_t i = begin; i < end; ++i) {
    if (artifacts != nullptr) {
      ctx->pivot_sigs[i] = artifacts->negative_sigs[r].row(pivot_entities[i]);
    } else {
      ctx->pivot_sigs_owned[i] =
          ctx->gen->NegativeRuleSignatures(pivot_entities[i], scratch);
      ctx->pivot_sigs[i] = SignatureSpan(ctx->pivot_sigs_owned[i]);
    }
  }
}

void BuildNegativeRuleContext(const PreparedGroup& pg,
                              const NegativeRule& rule, size_t r,
                              const PreparedRuleArtifacts* artifacts,
                              const std::vector<int>& pivot_entities,
                              const SignatureOptions& sig_options,
                              SignatureScratch* scratch,
                              NegativeRuleContext* ctx) {
  if (ctx->ready) return;
  EnsureNegativeGenerator(pg, rule, r, artifacts, sig_options, ctx);
  if (artifacts == nullptr) {
    ctx->pivot_sigs_owned.resize(pivot_entities.size());
  }
  ctx->pivot_sigs.resize(pivot_entities.size());
  GeneratePivotSignatures(artifacts, r, pivot_entities, 0,
                          pivot_entities.size(), scratch, ctx);
  ctx->pivot_map.Build(ctx->pivot_sigs);
  ctx->ready = true;
}

}  // namespace internal
}  // namespace dime
