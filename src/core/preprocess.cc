#include "src/core/preprocess.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/sim/edit_distance.h"
#include "src/sim/set_similarity.h"
#include "src/sim/weighted_similarity.h"
#include "src/text/tokenizer.h"

namespace dime {

std::vector<AttrRequirements> ComputeAttrRequirements(
    size_t num_attrs, const std::vector<Predicate>& predicates) {
  std::vector<AttrRequirements> needs(num_attrs);
  for (const Predicate& p : predicates) {
    DIME_CHECK_GE(p.attr, 0);
    DIME_CHECK_LT(static_cast<size_t>(p.attr), needs.size());
    AttrRequirements& n = needs[p.attr];
    if (IsSetBased(p.func) || IsWeightedSetBased(p.func)) {
      if (p.mode == TokenMode::kValueList) {
        n.value_list = true;
      } else {
        n.words = true;
      }
    } else if (p.func == SimFunc::kEditSim) {
      n.text = true;
    } else if (p.func == SimFunc::kOntology) {
      if (std::find(n.ontology_indexes.begin(), n.ontology_indexes.end(),
                    p.ontology_index) == n.ontology_indexes.end()) {
        n.ontology_indexes.push_back(p.ontology_index);
      }
    }
  }
  return needs;
}

std::string JoinAttributeText(const AttributeValue& value) {
  std::string joined;
  for (size_t i = 0; i < value.size(); ++i) {
    if (i > 0) joined.push_back(' ');
    joined.append(value[i]);
  }
  return ToLower(joined);
}

/// For kExactName we first try the full joined value, then each list
/// element, then every contiguous token span, preferring the deepest hit
/// (so "SIGMOD 2015" maps to the SIGMOD leaf and "RSC Advances 2001" finds
/// the "RSC Advances" node). For kKeyword we vote with word tokens.
namespace {

/// The node whose (lower-cased) name is most edit-similar to some element
/// or token span of `value`, if any reaches `min_similarity`.
int FuzzyNodeMatch(const Ontology& tree, const AttributeValue& value,
                   double min_similarity) {
  int best = kNoNode;
  double best_sim = min_similarity - 1e-9;
  auto consider = [&](const std::string& text) {
    for (int node = 0; node < tree.NumNodes(); ++node) {
      std::string name = ToLower(tree.Name(node));
      // Cheap length pre-filter before the banded verifier.
      size_t max_len = std::max(name.size(), text.size());
      if (max_len == 0) continue;
      size_t diff = max_len - std::min(name.size(), text.size());
      if (static_cast<double>(max_len - diff) / max_len <= best_sim) {
        continue;
      }
      if (EditSimilarityAtLeast(text, name, best_sim + 1e-9)) {
        best_sim = EditSimilarity(text, name);
        best = node;
      }
    }
  };
  for (const std::string& element : value) {
    consider(ToLower(std::string(Trim(element))));
  }
  consider(JoinAttributeText(value));
  return best;
}

}  // namespace

int MapAttributeToNode(const Ontology& tree, MapMode mode,
                       const AttributeValue& value) {
  if (mode == MapMode::kKeyword) {
    std::vector<std::string> tokens = WordTokenize(JoinAttributeText(value));
    return tree.MapByKeywords(tokens);
  }
  int best = kNoNode;
  auto consider = [&](int node) {
    if (node == kNoNode) return;
    if (best == kNoNode || tree.Depth(node) > tree.Depth(best)) best = node;
  };
  consider(tree.FindByName(JoinAttributeText(value)));
  for (const std::string& element : value) {
    consider(tree.FindByName(element));
    std::vector<std::string> tokens = WhitespaceTokenize(element);
    for (size_t i = 0; i < tokens.size(); ++i) {
      std::string span;
      for (size_t j = i; j < tokens.size(); ++j) {
        if (j > i) span.push_back(' ');
        span += tokens[j];
        consider(tree.FindByName(span));
      }
    }
  }
  if (best == kNoNode && mode == MapMode::kFuzzyName) {
    best = FuzzyNodeMatch(tree, value, /*min_similarity=*/0.8);
  }
  return best;
}

namespace {

/// Translates interned documents to sorted unique global-rank runs and
/// packs them into the column's arena, one entity per row.
void FlattenRanks(const std::vector<std::vector<TokenId>>& ids,
                  const TokenDictionary& dict, RankColumn* column) {
  size_t total = 0;
  for (const auto& doc : ids) total += doc.size();
  column->Reserve(ids.size(), total);
  std::vector<uint32_t> ranks;  // scratch, reused across entities
  for (const auto& doc : ids) {
    ranks.clear();
    ranks.reserve(doc.size());
    for (TokenId id : doc) ranks.push_back(dict.GlobalRank(id));
    std::sort(ranks.begin(), ranks.end());
    ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
    column->Append(ranks);
  }
}

/// Precomputes per-entity total weight and squared weight norm so the
/// threshold-aware weighted kernels never re-scan a side for its mass.
void ComputeMasses(const RankColumn& column,
                   const std::vector<double>& weights,
                   std::vector<double>* mass, std::vector<double>* sqnorm) {
  const size_t n = column.num_entities();
  mass->resize(n);
  sqnorm->resize(n);
  for (size_t e = 0; e < n; ++e) {
    RankSpan v = column.view(e);
    (*mass)[e] = TotalWeight(v, weights);
    (*sqnorm)[e] = SquaredWeightNorm(v, weights);
  }
}

PreparedGroup PrepareImpl(const Group& group,
                          const std::vector<Predicate>& predicates,
                          const DimeContext& context) {
  PreparedGroup pg;
  pg.group = &group;
  pg.context = context;
  pg.attrs.resize(group.schema.size());

  std::vector<AttrRequirements> needs =
      ComputeAttrRequirements(group.schema.size(), predicates);

  const size_t n = group.size();
  for (size_t a = 0; a < pg.attrs.size(); ++a) {
    PreparedAttr& attr = pg.attrs[a];
    const AttrRequirements& need = needs[a];

    if (need.value_list) {
      attr.has_value_list = true;
      std::vector<std::vector<TokenId>> ids(n);
      for (size_t e = 0; e < n; ++e) {
        std::vector<std::string> tokens;
        tokens.reserve(group.entities[e].value(static_cast<int>(a)).size());
        for (const std::string& v :
             group.entities[e].value(static_cast<int>(a))) {
          tokens.push_back(ToLower(std::string(Trim(v))));
        }
        ids[e] = attr.value_dict.InternDocument(tokens);
      }
      attr.value_dict.BuildGlobalOrder();
      attr.value_weights =
          IdfWeightsByRank(attr.value_dict.DocumentFrequencyByRank(), n);
      FlattenRanks(ids, attr.value_dict, &attr.value_ranks);
      ComputeMasses(attr.value_ranks, attr.value_weights, &attr.value_mass,
                    &attr.value_sqnorm);
    }

    if (need.words) {
      attr.has_words = true;
      std::vector<std::vector<TokenId>> ids(n);
      for (size_t e = 0; e < n; ++e) {
        ids[e] = attr.word_dict.InternDocument(WordTokenizeUnique(
            JoinAttributeText(group.entities[e].value(static_cast<int>(a)))));
      }
      attr.word_dict.BuildGlobalOrder();
      attr.word_weights =
          IdfWeightsByRank(attr.word_dict.DocumentFrequencyByRank(), n);
      FlattenRanks(ids, attr.word_dict, &attr.word_ranks);
      ComputeMasses(attr.word_ranks, attr.word_weights, &attr.word_mass,
                    &attr.word_sqnorm);
    }

    if (need.text) {
      attr.has_text = true;
      attr.text.resize(n);
      std::vector<std::vector<TokenId>> ids(n);
      for (size_t e = 0; e < n; ++e) {
        attr.text[e] =
            JoinAttributeText(group.entities[e].value(static_cast<int>(a)));
        ids[e] = attr.qgram_dict.InternDocument(
            QGrams(attr.text[e], context.qgram_q));
      }
      attr.qgram_dict.BuildGlobalOrder();
      FlattenRanks(ids, attr.qgram_dict, &attr.qgram_ranks);
    }

    for (int oi : need.ontology_indexes) {
      DIME_CHECK_GE(oi, 0);
      DIME_CHECK_LT(static_cast<size_t>(oi), context.ontologies.size())
          << "predicate references ontology index " << oi
          << " but the context has only " << context.ontologies.size();
      const OntologyRef& ref = context.ontologies[oi];
      DIME_CHECK(ref.tree != nullptr);
      std::vector<int>& nodes = attr.nodes[oi];
      nodes.resize(n);
      for (size_t e = 0; e < n; ++e) {
        nodes[e] = MapAttributeToNode(
            *ref.tree, ref.mode,
            group.entities[e].value(static_cast<int>(a)));
      }
    }
  }
  return pg;
}

}  // namespace

namespace {

std::string ValidatePredicate(const Schema& schema, const Predicate& p,
                              Direction dir, const DimeContext& context,
                              const std::string& where) {
  if (p.attr < 0 || static_cast<size_t>(p.attr) >= schema.size()) {
    return where + ": attribute index " + std::to_string(p.attr) +
           " out of range (schema has " + std::to_string(schema.size()) +
           " attributes)";
  }
  if (p.func == SimFunc::kOntology) {
    if (p.ontology_index < 0 ||
        static_cast<size_t>(p.ontology_index) >= context.ontologies.size()) {
      return where + ": ontology index " + std::to_string(p.ontology_index) +
             " not provided by the context";
    }
    if (context.ontologies[p.ontology_index].tree == nullptr) {
      return where + ": ontology " + std::to_string(p.ontology_index) +
             " has a null tree";
    }
  }
  if (IsNormalized(p.func) && (p.threshold < 0.0 || p.threshold > 1.0)) {
    return where + ": threshold " + std::to_string(p.threshold) +
           " outside [0, 1] for " + SimFuncName(p.func);
  }
  if (p.func == SimFunc::kOverlap && p.threshold < 0.0) {
    return where + ": negative overlap threshold";
  }
  if (dir == Direction::kGe) {
    bool vacuous = p.func == SimFunc::kOverlap ? p.threshold < 1.0
                                               : p.threshold <= 0.0;
    if (vacuous) {
      return where + ": vacuous positive predicate (" +
             p.ToString(schema, dir) + " holds for every pair)";
    }
  }
  return "";
}

}  // namespace

std::string ValidateRules(const Schema& schema,
                          const std::vector<PositiveRule>& positive,
                          const std::vector<NegativeRule>& negative,
                          const DimeContext& context) {
  for (size_t r = 0; r < positive.size(); ++r) {
    if (positive[r].predicates.empty()) {
      return "positive rule " + std::to_string(r + 1) + " has no predicates";
    }
    for (const Predicate& p : positive[r].predicates) {
      std::string error =
          ValidatePredicate(schema, p, Direction::kGe, context,
                            "positive rule " + std::to_string(r + 1));
      if (!error.empty()) return error;
    }
  }
  for (size_t r = 0; r < negative.size(); ++r) {
    if (negative[r].predicates.empty()) {
      return "negative rule " + std::to_string(r + 1) + " has no predicates";
    }
    for (const Predicate& p : negative[r].predicates) {
      std::string error =
          ValidatePredicate(schema, p, Direction::kLe, context,
                            "negative rule " + std::to_string(r + 1));
      if (!error.empty()) return error;
    }
  }
  return "";
}

PreparedGroup PrepareGroup(const Group& group,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const DimeContext& context) {
  std::vector<Predicate> all;
  for (const PositiveRule& r : positive) {
    all.insert(all.end(), r.predicates.begin(), r.predicates.end());
  }
  for (const NegativeRule& r : negative) {
    all.insert(all.end(), r.predicates.begin(), r.predicates.end());
  }
  return PrepareImpl(group, all, context);
}

PreparedGroup PrepareGroupForPredicates(const Group& group,
                                        const std::vector<Predicate>& preds,
                                        const DimeContext& context) {
  return PrepareImpl(group, preds, context);
}

double PredicateSimilarity(const PreparedGroup& pg, const Predicate& pred,
                           int e1, int e2) {
  const PreparedAttr& attr = pg.attrs[pred.attr];
  if (IsSetBased(pred.func)) {
    const RankColumn& ranks =
        pred.mode == TokenMode::kValueList ? attr.value_ranks : attr.word_ranks;
    return SetSimilarity(pred.func, ranks.view(e1), ranks.view(e2));
  }
  if (IsWeightedSetBased(pred.func)) {
    const bool values = pred.mode == TokenMode::kValueList;
    const RankColumn& ranks = values ? attr.value_ranks : attr.word_ranks;
    const auto& weights = values ? attr.value_weights : attr.word_weights;
    return WeightedSetSimilarity(pred.func, ranks.view(e1), ranks.view(e2),
                                 weights);
  }
  if (pred.func == SimFunc::kEditSim) {
    return EditSimilarity(attr.text[e1], attr.text[e2]);
  }
  DIME_CHECK(pred.func == SimFunc::kOntology);
  const auto it = attr.nodes.find(pred.ontology_index);
  DIME_CHECK(it != attr.nodes.end());
  const Ontology& tree = *pg.context.ontologies[pred.ontology_index].tree;
  return tree.Similarity(it->second[e1], it->second[e2]);
}

bool PredicateHolds(const PreparedGroup& pg, const Predicate& pred,
                    Direction dir, int e1, int e2) {
  const PreparedAttr& attr = pg.attrs[pred.attr];
  if (IsSetBased(pred.func)) {
    const RankColumn& ranks =
        pred.mode == TokenMode::kValueList ? attr.value_ranks : attr.word_ranks;
    return dir == Direction::kGe
               ? SetSimilarityAtLeast(pred.func, ranks.view(e1),
                                      ranks.view(e2), pred.threshold)
               : SetSimilarityAtMost(pred.func, ranks.view(e1),
                                     ranks.view(e2), pred.threshold);
  }
  if (IsWeightedSetBased(pred.func)) {
    const bool values = pred.mode == TokenMode::kValueList;
    const RankColumn& ranks = values ? attr.value_ranks : attr.word_ranks;
    const auto& weights = values ? attr.value_weights : attr.word_weights;
    // Per-side mass: total weight for wjaccard, squared norm for wcosine.
    const auto& mass = pred.func == SimFunc::kWeightedJaccard
                           ? (values ? attr.value_mass : attr.word_mass)
                           : (values ? attr.value_sqnorm : attr.word_sqnorm);
    return dir == Direction::kGe
               ? WeightedSimilarityAtLeast(pred.func, ranks.view(e1),
                                           ranks.view(e2), weights, mass[e1],
                                           mass[e2], pred.threshold)
               : WeightedSimilarityAtMost(pred.func, ranks.view(e1),
                                          ranks.view(e2), weights, mass[e1],
                                          mass[e2], pred.threshold);
  }
  if (pred.func == SimFunc::kEditSim) {
    // Both directions decide through the banded bit-parallel kernel: the
    // kGe path bounds the distance from the threshold, the kLe path from
    // its complement (EditSimilarityAtMost), so neither computes the full
    // distance matrix.
    return dir == Direction::kGe
               ? EditSimilarityAtLeast(attr.text[e1], attr.text[e2],
                                       pred.threshold)
               : EditSimilarityAtMost(attr.text[e1], attr.text[e2],
                                      pred.threshold);
  }
  return pred.Compare(PredicateSimilarity(pg, pred, e1, e2), dir);
}

bool EvalPositiveRule(const PreparedGroup& pg, const PositiveRule& rule,
                      int e1, int e2) {
  for (const Predicate& p : rule.predicates) {
    if (!PredicateHolds(pg, p, Direction::kGe, e1, e2)) return false;
  }
  return true;
}

bool EvalNegativeRule(const PreparedGroup& pg, const NegativeRule& rule,
                      int e1, int e2) {
  for (const Predicate& p : rule.predicates) {
    if (!PredicateHolds(pg, p, Direction::kLe, e1, e2)) return false;
  }
  return true;
}

RulePlan BuildRulePlan(const PreparedGroup& pg,
                       const std::vector<Predicate>& predicates,
                       Direction dir) {
  RulePlan plan;
  plan.reserve(predicates.size());
  for (const Predicate& pred : predicates) {
    const PreparedAttr& attr = pg.attrs[pred.attr];
    PredicatePlan p;
    p.dir = dir;
    p.func = pred.func;
    p.threshold = pred.threshold;
    if (IsSetBased(pred.func)) {
      p.kind = PredicatePlan::Kind::kSet;
      p.ranks = pred.mode == TokenMode::kValueList ? &attr.value_ranks
                                                   : &attr.word_ranks;
    } else if (IsWeightedSetBased(pred.func)) {
      const bool values = pred.mode == TokenMode::kValueList;
      p.kind = PredicatePlan::Kind::kWeighted;
      p.ranks = values ? &attr.value_ranks : &attr.word_ranks;
      p.weights = values ? &attr.value_weights : &attr.word_weights;
      p.mass = (pred.func == SimFunc::kWeightedJaccard
                    ? (values ? attr.value_mass : attr.word_mass)
                    : (values ? attr.value_sqnorm : attr.word_sqnorm))
                   .data();
    } else if (pred.func == SimFunc::kEditSim) {
      p.kind = PredicatePlan::Kind::kEditSim;
      p.text = attr.text.data();
    } else {
      DIME_CHECK(pred.func == SimFunc::kOntology);
      const auto it = attr.nodes.find(pred.ontology_index);
      DIME_CHECK(it != attr.nodes.end());
      p.kind = PredicatePlan::Kind::kOntology;
      p.nodes = it->second.data();
      p.tree = pg.context.ontologies[pred.ontology_index].tree;
    }
    plan.push_back(p);
  }
  return plan;
}

bool PlanPredicateHolds(const PredicatePlan& p, int e1, int e2) {
  switch (p.kind) {
    case PredicatePlan::Kind::kSet:
      return p.dir == Direction::kGe
                 ? SetSimilarityAtLeast(p.func, p.ranks->view(e1),
                                        p.ranks->view(e2), p.threshold)
                 : SetSimilarityAtMost(p.func, p.ranks->view(e1),
                                       p.ranks->view(e2), p.threshold);
    case PredicatePlan::Kind::kWeighted:
      return p.dir == Direction::kGe
                 ? WeightedSimilarityAtLeast(p.func, p.ranks->view(e1),
                                             p.ranks->view(e2), *p.weights,
                                             p.mass[e1], p.mass[e2],
                                             p.threshold)
                 : WeightedSimilarityAtMost(p.func, p.ranks->view(e1),
                                            p.ranks->view(e2), *p.weights,
                                            p.mass[e1], p.mass[e2],
                                            p.threshold);
    case PredicatePlan::Kind::kEditSim:
      return p.dir == Direction::kGe
                 ? EditSimilarityAtLeast(p.text[e1], p.text[e2], p.threshold)
                 : EditSimilarityAtMost(p.text[e1], p.text[e2], p.threshold);
    case PredicatePlan::Kind::kOntology: {
      // Same epsilon as Predicate::Compare.
      constexpr double kEps = 1e-9;
      const double sim = p.tree->Similarity(p.nodes[e1], p.nodes[e2]);
      return p.dir == Direction::kGe ? sim >= p.threshold - kEps
                                     : sim <= p.threshold + kEps;
    }
  }
  return false;  // unreachable: all kinds handled above
}

double RuleVerificationCost(const PreparedGroup& pg,
                            const std::vector<Predicate>& predicates, int e1,
                            int e2) {
  double cost = 0.0;
  for (const Predicate& p : predicates) {
    const PreparedAttr& attr = pg.attrs[p.attr];
    if (IsSetBased(p.func) || IsWeightedSetBased(p.func)) {
      const RankColumn& ranks =
          p.mode == TokenMode::kValueList ? attr.value_ranks : attr.word_ranks;
      cost += static_cast<double>(ranks.size(e1) + ranks.size(e2));
    } else if (p.func == SimFunc::kEditSim) {
      size_t min_len = std::min(attr.text[e1].size(), attr.text[e2].size());
      size_t band = MaxEditDistanceForSim(
          std::max(attr.text[e1].size(), attr.text[e2].size()), p.threshold);
      cost += static_cast<double>(std::max<size_t>(1, band) * min_len);
    } else {  // ontology
      const auto it = attr.nodes.find(p.ontology_index);
      const Ontology& tree = *pg.context.ontologies[p.ontology_index].tree;
      int d1 = it->second[e1] == kNoNode ? 1 : tree.Depth(it->second[e1]);
      int d2 = it->second[e2] == kNoNode ? 1 : tree.Depth(it->second[e2]);
      cost += static_cast<double>(d1 + d2);
    }
  }
  return std::max(cost, 1.0);
}

}  // namespace dime
