#include "src/core/dime_parallel.h"

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/index/union_find.h"

namespace dime {
namespace {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options) {
  DimeResult result;
  const int n = static_cast<int>(pg.size());
  if (n == 0) {
    result.flagged_by_prefix.assign(negative.size(), {});
    return result;
  }
  const unsigned threads = ResolveThreads(options.num_threads);

  // ---- Step 1: scan row blocks concurrently, merge edges afterwards. ----
  std::vector<std::vector<std::pair<int, int>>> edges(threads);
  std::vector<size_t> checks(threads, 0);
  {
    // Rows are dealt round-robin: row i has n-1-i pairs, so interleaving
    // balances the triangular workload.
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        // Accumulate locally: shared per-thread slots would false-share a
        // cache line across all workers.
        size_t local_checks = 0;
        std::vector<std::pair<int, int>> local_edges;
        for (int i = static_cast<int>(t); i < n;
             i += static_cast<int>(threads)) {
          for (int j = i + 1; j < n; ++j) {
            for (const PositiveRule& rule : positive) {
              ++local_checks;
              if (EvalPositiveRule(pg, rule, i, j)) {
                local_edges.emplace_back(i, j);
                break;
              }
            }
          }
        }
        checks[t] = local_checks;
        edges[t] = std::move(local_edges);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  UnionFind uf(static_cast<size_t>(n));
  for (unsigned t = 0; t < threads; ++t) {
    result.stats.positive_pair_checks += checks[t];
    for (const auto& [i, j] : edges[t]) uf.Union(i, j);
  }
  result.partitions = uf.Components();

  // ---- Step 2. -----------------------------------------------------------
  result.pivot = internal::PickPivot(result.partitions);

  // ---- Step 3: one non-pivot partition per task. --------------------------
  std::vector<int> first_flagging(result.partitions.size(), -1);
  if (result.pivot >= 0 && !negative.empty()) {
    const std::vector<int>& pivot_entities = result.partitions[result.pivot];
    std::atomic<size_t> next{0};
    std::vector<size_t> neg_checks(threads, 0);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        size_t local_checks = 0;
        while (true) {
          size_t p = next.fetch_add(1);
          if (p >= result.partitions.size()) break;
          if (static_cast<int>(p) == result.pivot) continue;
          for (size_t r = 0;
               r < negative.size() && first_flagging[p] < 0; ++r) {
            for (int e : result.partitions[p]) {
              bool all_dissimilar = true;
              for (int e_star : pivot_entities) {
                ++local_checks;
                if (!EvalNegativeRule(pg, negative[r], e, e_star)) {
                  all_dissimilar = false;
                  break;
                }
              }
              if (all_dissimilar) {
                first_flagging[p] = static_cast<int>(r);
                break;
              }
            }
          }
        }
        neg_checks[t] = local_checks;
      });
    }
    for (std::thread& w : workers) w.join();
    for (size_t c : neg_checks) result.stats.negative_pair_checks += c;
  }
  result.first_flagging_rule = first_flagging;
  result.flagged_by_prefix = internal::BuildScrollbar(
      result.partitions, result.pivot, first_flagging, negative.size());
  return result;
}

}  // namespace dime
