#include "src/core/dime_parallel.h"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/fault_injection.h"
#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/index/union_find.h"
#include "src/sim/set_similarity.h"

namespace dime {
namespace {

unsigned ResolveThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Shared failure state of one fan-out: the first captured worker
/// exception and the first non-OK control status. `stop` makes the other
/// workers drain quickly once either is set.
///
/// The multi-word fields (exception_ptr, Status) are DIME_GUARDED_BY the
/// mutex — under Clang's -Werror=thread-safety, reading or writing them
/// without holding `mu` is a compile error, e.g. removing the annotation
/// discipline here fails the build with:
///
///   error: reading variable 'exception' requires holding mutex 'mu'
///       [-Werror,-Wthread-safety-analysis]
///
/// (and, symmetrically, deleting one DIME_GUARDED_BY silences exactly the
/// checks that keep unlocked access out — which is why every shared field
/// carries one). `stop` stays a relaxed atomic by the mutex.h convention:
/// it is a single-word monotone flag polled in the hot row loop, carries
/// no payload, and a stale read only costs one extra row of work.
struct WorkerFailures {
  std::atomic<bool> stop{false};
  Mutex mu;
  std::exception_ptr exception DIME_GUARDED_BY(mu);
  Status control_status DIME_GUARDED_BY(mu);

  void RecordException(std::exception_ptr e) DIME_EXCLUDES(mu) {
    MutexLock lock(&mu);
    if (exception == nullptr) exception = std::move(e);
    stop.store(true, std::memory_order_relaxed);
  }

  void RecordControl(Status st) DIME_EXCLUDES(mu) {
    MutexLock lock(&mu);
    if (control_status.ok()) control_status = std::move(st);
    stop.store(true, std::memory_order_relaxed);
  }

  bool ShouldStop() const { return stop.load(std::memory_order_relaxed); }
};

/// Runs `body` on `threads` workers, joining them all even when one
/// throws: std::terminate is only reachable if an exception escapes a
/// worker, and here none can — the body is wrapped in a catch-all that
/// records the exception for the coordinating thread.
template <typename Body>
void RunWorkers(unsigned threads, WorkerFailures* failures,
                const Body& body) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      try {
        body(t);
      } catch (...) {
        failures->RecordException(std::current_exception());
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

/// Inspects a finished fan-out. Returns true when the run must abandon
/// the parallel path; fills `out` per the options (serial fallback or an
/// INTERNAL/truncation status).
bool ResolveFailures(WorkerFailures* failures, const PreparedGroup& pg,
                     const std::vector<PositiveRule>& positive,
                     const std::vector<NegativeRule>& negative,
                     const ParallelOptions& options, const RunControl& control,
                     bool partitions_done, DimeResult* out)
    DIME_EXCLUDES(failures->mu) {
  MutexLock lock(&failures->mu);
  if (failures->exception != nullptr) {
    std::string what = "worker thread failed";
    try {
      std::rethrow_exception(failures->exception);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    if (options.serial_fallback) {
      DIME_LOG(WARNING) << "RunDimeParallel worker fault (" << what
                        << "); falling back to the serial engine";
      *out = RunDime(pg, positive, negative, control);
    } else {
      *out = DimeResult();
      out->flagged_by_prefix.assign(negative.size(), {});
      out->status = InternalError("worker thread fault: " + what);
    }
    return true;
  }
  if (!failures->control_status.ok() && !partitions_done) {
    // Deadline/cancellation during step 1: same contract as RunDime — no
    // half-merged partitions, empty scrollbar, explaining status.
    *out = DimeResult();
    out->flagged_by_prefix.assign(negative.size(), {});
    out->status = failures->control_status;
    return true;
  }
  return false;
}

}  // namespace

DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options,
                           const RunControl& control) {
  DimeResult result;
  const int n = static_cast<int>(pg.size());
  if (n == 0) {
    result.flagged_by_prefix.assign(negative.size(), {});
    return result;
  }
  const unsigned threads = ResolveThreads(options.num_threads);

  // ---- Step 1: scan row blocks concurrently, merge edges afterwards. ----
  std::vector<std::vector<std::pair<int, int>>> edges(threads);
  std::vector<size_t> checks(threads, 0);
  // The kernel early-exit counter is thread-local; each worker reports its
  // delta through its slot and the coordinator sums them.
  std::vector<uint64_t> kernel_exits(threads, 0);
  {
    WorkerFailures failures;
    // Rows are dealt round-robin: row i has n-1-i pairs, so interleaving
    // balances the triangular workload.
    RunWorkers(threads, &failures, [&](unsigned t) {
      if (DIME_FAULT_POINT(failpoints::kParallelWorkerFault)) {
        throw std::runtime_error("injected worker fault (step 1)");
      }
      const uint64_t exits_before = KernelEarlyExits();
      // Accumulate locally: shared per-thread slots would false-share a
      // cache line across all workers.
      size_t local_checks = 0;
      std::vector<std::pair<int, int>> local_edges;
      for (int i = static_cast<int>(t); i < n;
           i += static_cast<int>(threads)) {
        if (failures.ShouldStop()) return;
        Status st =
            internal::CheckRunControl(control, "dime_parallel/positive-row");
        if (!st.ok()) {
          failures.RecordControl(std::move(st));
          return;
        }
        for (int j = i + 1; j < n; ++j) {
          for (const PositiveRule& rule : positive) {
            ++local_checks;
            if (EvalPositiveRule(pg, rule, i, j)) {
              local_edges.emplace_back(i, j);
              break;
            }
          }
        }
      }
      checks[t] = local_checks;
      edges[t] = std::move(local_edges);
      kernel_exits[t] = KernelEarlyExits() - exits_before;
    });
    if (ResolveFailures(&failures, pg, positive, negative, options, control,
                        /*partitions_done=*/false, &result)) {
      return result;
    }
  }
  UnionFind uf(static_cast<size_t>(n));
  for (unsigned t = 0; t < threads; ++t) {
    result.stats.positive_pair_checks += checks[t];
    result.stats.kernel_early_exits += kernel_exits[t];
    for (const auto& [i, j] : edges[t]) uf.Union(i, j);
  }
  result.partitions = uf.Components();

  // ---- Step 2. -----------------------------------------------------------
  result.pivot = internal::PickPivot(result.partitions);
  DIME_DCHECK(result.partitions.empty() || result.pivot >= 0)
      << "non-empty group must yield a pivot";

  // ---- Step 3: one non-pivot partition per task. --------------------------
  std::vector<int> first_flagging(result.partitions.size(), -1);
  if (result.pivot >= 0 && !negative.empty()) {
    const std::vector<int>& pivot_entities = result.partitions[result.pivot];
    std::atomic<size_t> next{0};
    std::vector<size_t> neg_checks(threads, 0);
    std::vector<uint64_t> neg_kernel_exits(threads, 0);
    WorkerFailures failures;
    RunWorkers(threads, &failures, [&](unsigned t) {
      if (DIME_FAULT_POINT(failpoints::kParallelWorkerFault)) {
        throw std::runtime_error("injected worker fault (step 3)");
      }
      const uint64_t exits_before = KernelEarlyExits();
      size_t local_checks = 0;
      while (true) {
        if (failures.ShouldStop()) break;
        Status st = internal::CheckRunControl(
            control, "dime_parallel/negative-partition");
        if (!st.ok()) {
          failures.RecordControl(std::move(st));
          break;
        }
        size_t p = next.fetch_add(1);
        if (p >= result.partitions.size()) break;
        if (static_cast<int>(p) == result.pivot) continue;
        for (size_t r = 0;
             r < negative.size() && first_flagging[p] < 0; ++r) {
          for (int e : result.partitions[p]) {
            bool all_dissimilar = true;
            for (int e_star : pivot_entities) {
              ++local_checks;
              if (!EvalNegativeRule(pg, negative[r], e, e_star)) {
                all_dissimilar = false;
                break;
              }
            }
            if (all_dissimilar) {
              first_flagging[p] = static_cast<int>(r);
              break;
            }
          }
        }
      }
      neg_checks[t] = local_checks;
      neg_kernel_exits[t] = KernelEarlyExits() - exits_before;
    });
    if (ResolveFailures(&failures, pg, positive, negative, options, control,
                        /*partitions_done=*/true, &result)) {
      return result;
    }
    // Deadline during step 3: partitions the workers finished keep their
    // flags (a subset of the full run's — monotone scrollbar), the rest
    // stay unflagged, and the status reports the truncation.
    {
      MutexLock lock(&failures.mu);
      if (!failures.control_status.ok()) {
        result.status = failures.control_status;
      }
    }
    for (size_t c : neg_checks) result.stats.negative_pair_checks += c;
    for (uint64_t x : neg_kernel_exits) result.stats.kernel_early_exits += x;
  }
  result.first_flagging_rule = first_flagging;
  result.flagged_by_prefix = internal::BuildScrollbar(
      result.partitions, result.pivot, first_flagging, negative.size());
  internal::DcheckResultInvariants(result, pg.size(), negative.size());
  return result;
}

DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options) {
  return RunDimeParallel(pg, positive, negative, options, RunControl{});
}

}  // namespace dime
