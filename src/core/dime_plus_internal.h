#ifndef DIME_CORE_DIME_PLUS_INTERNAL_H_
#define DIME_CORE_DIME_PLUS_INTERNAL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/dime.h"
#include "src/core/signature.h"

/// \file dime_plus_internal.h
/// The DIME+ negative phase, factored out of RunDimePlus so the sharded
/// execution engine (src/exec/sharded_dime.cc) runs the exact same
/// per-partition scan concurrently. The split is strictly mechanical —
/// the serial engine's verification order, pair-check counts and filter
/// prunes are pinned by golden tests and must not drift:
///
///  * NegativeRuleContext  per-rule read-only state (pivot signatures and
///                         the signature -> pivot-position map), built
///                         once, then shared by every partition scan;
///  * NegativeScratch      per-thread buffers (member signatures, the
///                         dense shared-count slots + dirty list);
///  * FlagPartitionAgainstPivot  the scan of one partition against the
///                         pivot: signature filter, then benefit-ordered
///                         (or pivot-ordered) pair verification.
///
/// The sig -> pivot-positions map is a flat sorted array instead of the
/// hash map RunDimePlus used to build inline: same contents, same
/// ascending-position iteration order (so verification order and counts
/// are unchanged), but buildable with a parallel sort and ~2x faster to
/// probe on large pivots.

namespace dime {
namespace internal {

/// Sorted (signature, pivot position) entries; the positions of one
/// signature form a contiguous ascending run, exactly the iteration
/// order of the hash-map-of-vectors it replaces.
class PivotSigMap {
 public:
  using Entry = std::pair<uint64_t, uint32_t>;

  /// Collects one entry per (pivot position, signature) and sorts.
  /// Deterministic for given spans.
  void Build(const std::vector<SignatureSpan>& pivot_sigs);

  /// Takes pre-collected entries (the sharded engine gathers them in
  /// parallel and pre-sorts with the pool); `entries` must be sorted.
  void AdoptSorted(std::vector<Entry> entries);

  /// The ascending pivot positions sharing signature `s` (len 0 if none).
  struct PosRun {
    const Entry* ptr = nullptr;
    size_t len = 0;
    const Entry* begin() const { return ptr; }
    const Entry* end() const { return ptr + len; }
  };
  PosRun Find(uint64_t s) const;

  bool Contains(uint64_t s) const { return Find(s).len > 0; }

 private:
  std::vector<Entry> entries_;
};

/// Read-only per-negative-rule state shared by every partition scan.
struct NegativeRuleContext {
  /// Generator for the on-demand path (null when artifacts supply the
  /// signature columns). Const methods only after construction, so tasks
  /// may share it with private scratches.
  std::unique_ptr<SignatureGenerator> gen;
  std::vector<std::vector<uint64_t>> pivot_sigs_owned;
  std::vector<SignatureSpan> pivot_sigs;  ///< one span per pivot position
  PivotSigMap pivot_map;
  bool ready = false;
};

/// Creates the generator for rule `r` when `artifacts` is null (the
/// artifact path reads spans straight from the columns). Idempotent.
void EnsureNegativeGenerator(const PreparedGroup& pg,
                             const NegativeRule& rule, size_t r,
                             const PreparedRuleArtifacts* artifacts,
                             const SignatureOptions& sig_options,
                             NegativeRuleContext* ctx);

/// Fills pivot_sigs[i] (and pivot_sigs_owned[i] on the on-demand path)
/// for pivot positions [begin, end). The sharded engine calls this from
/// per-chunk tasks with per-task scratches; the serial engine calls it
/// once over the full range.
void GeneratePivotSignatures(const PreparedRuleArtifacts* artifacts, size_t r,
                             const std::vector<int>& pivot_entities,
                             size_t begin, size_t end,
                             SignatureScratch* scratch,
                             NegativeRuleContext* ctx);

/// Serial one-shot build of the whole context (generator + signatures +
/// map) — the lazy ensure_rule path of RunDimePlus.
void BuildNegativeRuleContext(const PreparedGroup& pg,
                              const NegativeRule& rule, size_t r,
                              const PreparedRuleArtifacts* artifacts,
                              const std::vector<int>& pivot_entities,
                              const SignatureOptions& sig_options,
                              SignatureScratch* scratch,
                              NegativeRuleContext* ctx);

/// A negative-rule verification candidate (member of the partition under
/// test against one pivot entity), ordered by descending benefit.
struct NegativeCandidate {
  double benefit;
  int e;       ///< entity in the partition under test
  int e_star;  ///< entity in the pivot
};

/// Per-thread buffers for FlagPartitionAgainstPivot. One instance per
/// executing thread; reusable across partitions (the dense shared-count
/// slots rely on the dirty-list reset invariant to stay zeroed).
struct NegativeScratch {
  SignatureScratch sig;
  std::vector<std::vector<uint64_t>> member_sigs_owned;
  std::vector<SignatureSpan> member_sigs;
  std::vector<uint32_t> shared_with_pivot;  ///< dense, one per pivot position
  std::vector<uint32_t> dirty;
  std::vector<NegativeCandidate> cands;
};

/// Stat deltas of one or more partition scans; deterministic per
/// partition, so any summation order reproduces the serial totals.
struct NegativePhaseStats {
  size_t negative_pair_checks = 0;
  size_t partitions_pruned_by_filter = 0;
};

/// Scans one partition against the pivot and returns the index of the
/// first negative rule that flags it (-1 = never flagged). `rule_context`
/// returns the ready context of rule r (the serial engine builds lazily
/// inside it; the sharded engine prebuilds and just indexes). Identical
/// decision, verification order and counts to the historical inline code
/// of RunDimePlus step 3.
template <typename RuleContextFn>
int FlagPartitionAgainstPivot(const PreparedGroup& pg,
                              const std::vector<NegativeRule>& negative,
                              const PreparedRuleArtifacts* artifacts,
                              bool benefit_order,
                              const std::vector<int>& pivot_entities,
                              const std::vector<int>& members,
                              const RuleContextFn& rule_context,
                              NegativeScratch* scratch,
                              NegativePhaseStats* stats);

}  // namespace internal
}  // namespace dime

#include "src/core/dime_plus_internal_inl.h"

#endif  // DIME_CORE_DIME_PLUS_INTERNAL_H_
