#include "src/core/explain.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace dime {
namespace {

/// Finds a member of `partition` satisfying `rule` against every pivot
/// entity (there is at least one when the partition is flagged).
int FindWitness(const PreparedGroup& pg, const NegativeRule& rule,
                const std::vector<int>& partition,
                const std::vector<int>& pivot) {
  for (int e : partition) {
    bool all = true;
    for (int e_star : pivot) {
      if (!EvalNegativeRule(pg, rule, e, e_star)) {
        all = false;
        break;
      }
    }
    if (all) return e;
  }
  return -1;
}

}  // namespace

Explanation ExplainFlagged(const PreparedGroup& pg,
                           const std::vector<NegativeRule>& negative,
                           const DimeResult& result, int entity) {
  Explanation out;
  out.partition = result.PartitionOf(entity);
  DIME_CHECK_GE(out.partition, 0) << "entity not in the result's group";
  out.partition_size = result.partitions[out.partition].size();

  const Schema& schema = pg.group->schema;
  std::ostringstream text;
  const std::string& id = pg.group->entities[entity].id;

  if (out.partition == result.pivot) {
    text << "'" << id << "' is in the pivot partition (" << out.partition_size
         << " entities assumed correctly categorized); not suggested.";
    out.text = text.str();
    return out;
  }
  DIME_CHECK_LT(static_cast<size_t>(out.partition),
                result.first_flagging_rule.size());
  out.rule = result.first_flagging_rule[out.partition];
  if (out.rule < 0) {
    text << "'" << id << "' sits outside the pivot (partition of "
         << out.partition_size << "), but every member still resembles some "
         << "pivot entity under every negative rule; not suggested.";
    out.text = text.str();
    return out;
  }

  out.flagged = true;
  const NegativeRule& rule = negative[out.rule];
  const std::vector<int>& pivot = result.PivotEntities();
  out.witness = FindWitness(pg, rule, result.partitions[out.partition], pivot);
  DIME_CHECK_GE(out.witness, 0) << "flagged partition must have a witness";

  for (const Predicate& p : rule.predicates) {
    double max_sim = 0.0;
    for (int e_star : pivot) {
      max_sim = std::max(max_sim, PredicateSimilarity(pg, p, out.witness,
                                                      e_star));
    }
    out.max_similarity_to_pivot.push_back(max_sim);
  }

  text << "'" << id << "' is suggested: it shares a partition ("
       << out.partition_size << " entities) with '"
       << pg.group->entities[out.witness].id
       << "', which negative rule " << out.rule + 1 << " ["
       << rule.ToString(schema)
       << "] finds dissimilar from every pivot entity";
  text << " (";
  for (size_t i = 0; i < rule.predicates.size(); ++i) {
    if (i > 0) text << ", ";
    text << "max " << SimFuncName(rule.predicates[i].func) << "("
         << schema.AttributeName(rule.predicates[i].attr)
         << ") = " << FormatDouble(out.max_similarity_to_pivot[i], 2)
         << " <= " << FormatDouble(rule.predicates[i].threshold, 2);
  }
  text << ").";
  out.text = text.str();
  return out;
}

}  // namespace dime
