#include "src/core/dime_plus.h"

#include <algorithm>
#include <memory>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/core/dime_plus_internal.h"
#include "src/index/inverted_index.h"
#include "src/index/union_find.h"
#include "src/index/verification.h"
#include "src/sim/set_similarity.h"

namespace dime {
namespace {

struct PositiveCandidate {
  double benefit;
  int rule;
  int e1;
  int e2;
};

}  // namespace

DimeResult RunDimePlus(const PreparedGroup& pg,
                       const std::vector<PositiveRule>& positive,
                       const std::vector<NegativeRule>& negative,
                       const DimePlusOptions& options,
                       const RunControl& control) {
  DimeResult result;
  const int n = static_cast<int>(pg.size());
  if (n == 0) {
    result.flagged_by_prefix.assign(negative.size(), {});
    return result;
  }
  // Snapshot the thread's kernel counter so the result reports this run's
  // early exits only (the engine is single-threaded, so the delta is ours).
  const uint64_t kernel_exits_before = KernelEarlyExits();

  // Precomputed signature artifacts (snapshot warm start) are used only
  // when they were built for exactly this rule set and these signature
  // options; otherwise fall back to on-demand generation — stale
  // artifacts cost time, never correctness.
  const PreparedRuleArtifacts* artifacts = pg.artifacts.get();
  if (artifacts != nullptr &&
      (artifacts->positive_indexes.size() != positive.size() ||
       artifacts->negative_sigs.size() != negative.size() ||
       artifacts->max_tuple_signatures !=
           options.signatures.max_tuple_signatures)) {
    DIME_LOG(WARNING) << "prepared rule artifacts do not match the rule "
                         "set/options of this run; regenerating signatures";
    artifacts = nullptr;
  }

  // A deadline hit before partitioning completes discards step 1 (half
  // merged partitions are not valid output); the status explains why.
  auto truncate_before_partitions = [&](Status st) {
    result.partitions.clear();
    result.pivot = -1;
    result.first_flagging_rule.clear();
    result.flagged_by_prefix.assign(negative.size(), {});
    result.status = std::move(st);
    result.stats.kernel_early_exits =
        KernelEarlyExits() - kernel_exits_before;
    return result;
  };

  // ---- Step 1: signature-filtered partitioning. -------------------------
  UnionFind uf(static_cast<size_t>(n));
  std::vector<InvertedIndex> owned_indexes(
      artifacts == nullptr ? positive.size() : 0);
  auto index_for = [&](size_t r) -> const InvertedIndex& {
    return artifacts != nullptr ? artifacts->positive_indexes[r]
                                : owned_indexes[r];
  };
  size_t candidate_volume = 0;
  for (size_t r = 0; r < positive.size(); ++r) {
    Status st = internal::CheckRunControl(control, "dime_plus/index-rule");
    if (!st.ok()) return truncate_before_partitions(std::move(st));
    if (artifacts == nullptr) {
      SignatureGenerator gen(pg, positive[r].predicates, Direction::kGe,
                             /*rule_tag=*/r + 1, options.signatures);
      SignatureScratch scratch;
      for (int e = 0; e < n; ++e) {
        owned_indexes[r].Add(e, gen.PositiveRuleSignatures(e, &scratch));
      }
    }
    candidate_volume += index_for(r).CandidateVolume();
  }
  result.stats.candidate_pairs = candidate_volume;

  // Candidate verification re-checks the control every kCheckStride
  // verifications — cheap against the cost of a rule evaluation.
  constexpr size_t kCheckStride = 256;
  size_t until_check = kCheckStride;
  auto control_hit = [&]() -> Status {
    if (--until_check > 0) return OkStatus();
    until_check = kCheckStride;
    return internal::CheckRunControl(control, "dime_plus/verify-candidates");
  };

  // Two verification strategies, same result:
  //  * small candidate sets: materialize every candidate with its exact
  //    benefit B = P / C and verify in descending order (Section IV-C);
  //  * large candidate sets (long inverted lists, e.g. a page owner's name
  //    appearing in every entity): stream candidates directly off the
  //    lists, shortest list first — rare-signature (high-probability)
  //    pairs still go first, but without the materialization cost, so the
  //    transitivity skip handles the flood in O(1) per pair.
  if (options.benefit_order && candidate_volume <= options.exact_benefit_cap) {
    std::vector<PositiveCandidate> candidates;
    for (size_t r = 0; r < positive.size(); ++r) {
      const InvertedIndex& index = index_for(r);
      for (const InvertedIndex::CandidatePair& cp : index.CandidatePairs()) {
        double prob =
            SimilarProbability(cp.shared, index.SignatureCount(cp.e1),
                               index.SignatureCount(cp.e2));
        double cost =
            RuleVerificationCost(pg, positive[r].predicates, cp.e1, cp.e2);
        candidates.push_back(PositiveCandidate{PositiveBenefit(prob, cost),
                                               static_cast<int>(r), cp.e1,
                                               cp.e2});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const PositiveCandidate& a, const PositiveCandidate& b) {
                if (a.benefit != b.benefit) return a.benefit > b.benefit;
                if (a.e1 != b.e1) return a.e1 < b.e1;
                if (a.e2 != b.e2) return a.e2 < b.e2;
                return a.rule < b.rule;
              });
    for (const PositiveCandidate& c : candidates) {
      Status st = control_hit();
      if (!st.ok()) return truncate_before_partitions(std::move(st));
      if (options.transitivity_skip && uf.Connected(c.e1, c.e2)) {
        ++result.stats.pairs_skipped_by_transitivity;
        continue;
      }
      ++result.stats.positive_pair_checks;
      if (EvalPositiveRule(pg, positive[c.rule], c.e1, c.e2)) {
        uf.Union(c.e1, c.e2);
      }
    }
  } else {
    Status stream_status;
    for (size_t r = 0; r < positive.size() && stream_status.ok(); ++r) {
      index_for(r).ForEachList(
          options.benefit_order, [&](const int* list, size_t len) {
            // Whole-list transitivity skip: once every entity on a list
            // shares one partition, none of its |l|(|l|-1)/2 pairs can
            // change the components — decide that in O(|l|) instead of
            // enumerating them. This is where the flood from stop-word-like
            // signatures (e.g. the page owner's name on every entity) goes
            // from ~16ns a pair to nothing.
            if (options.transitivity_skip) {
              bool all_connected = true;
              for (size_t i = 1; i < len; ++i) {
                if (!uf.Connected(list[0], list[i])) {
                  all_connected = false;
                  break;
                }
              }
              if (all_connected) {
                result.stats.pairs_skipped_by_transitivity +=
                    len * (len - 1) / 2;
                return true;
              }
            }
            for (size_t i = 0; i < len; ++i) {
              for (size_t j = i + 1; j < len; ++j) {
                int e1 = list[i], e2 = list[j];
                if (e1 == e2) continue;
                if (e1 > e2) std::swap(e1, e2);
                stream_status = control_hit();
                if (!stream_status.ok()) return false;
                if (options.transitivity_skip && uf.Connected(e1, e2)) {
                  ++result.stats.pairs_skipped_by_transitivity;
                  continue;
                }
                ++result.stats.positive_pair_checks;
                if (EvalPositiveRule(pg, positive[r], e1, e2)) {
                  uf.Union(e1, e2);
                }
              }
            }
            return true;
          });
    }
    if (!stream_status.ok()) {
      return truncate_before_partitions(std::move(stream_status));
    }
  }
  result.partitions = uf.Components();

  // ---- Step 2: pivot. ----------------------------------------------------
  result.pivot = internal::PickPivot(result.partitions);

  // ---- Step 3: signature-filtered negative rules. ------------------------
  std::vector<int> first_flagging(result.partitions.size(), -1);
  if (result.pivot >= 0 && !negative.empty()) {
    const std::vector<int>& pivot_entities = result.partitions[result.pivot];

    // Per-rule read-only state (pivot signatures + the sig -> positions
    // map), built lazily on first use; the per-partition scan itself
    // lives in dime_plus_internal.h so the sharded engine (src/exec/)
    // runs the identical code concurrently.
    std::vector<internal::NegativeRuleContext> contexts(negative.size());
    internal::NegativeScratch scratch;
    auto rule_context =
        [&](size_t r) -> const internal::NegativeRuleContext& {
      if (!contexts[r].ready) {
        internal::BuildNegativeRuleContext(pg, negative[r], r, artifacts,
                                           pivot_entities, options.signatures,
                                           &scratch.sig, &contexts[r]);
      }
      return contexts[r];
    };
    internal::NegativePhaseStats nstats;

    for (size_t p = 0; p < result.partitions.size(); ++p) {
      if (static_cast<int>(p) == result.pivot) continue;
      // Partition-boundary deadline check: stopping here leaves the rest
      // unflagged, keeping every flagged set a subset of the full run's.
      Status st =
          internal::CheckRunControl(control, "dime_plus/negative-partition");
      if (!st.ok()) {
        result.status = std::move(st);
        break;
      }
      first_flagging[p] = internal::FlagPartitionAgainstPivot(
          pg, negative, artifacts, options.benefit_order, pivot_entities,
          result.partitions[p], rule_context, &scratch, &nstats);
    }
    result.stats.negative_pair_checks += nstats.negative_pair_checks;
    result.stats.partitions_pruned_by_filter +=
        nstats.partitions_pruned_by_filter;
  }
  result.first_flagging_rule = first_flagging;
  result.flagged_by_prefix = internal::BuildScrollbar(
      result.partitions, result.pivot, first_flagging, negative.size());
  result.stats.kernel_early_exits = KernelEarlyExits() - kernel_exits_before;
  internal::DcheckResultInvariants(result, pg.size(), negative.size());
  return result;
}

DimeResult RunDimePlus(const PreparedGroup& pg,
                       const std::vector<PositiveRule>& positive,
                       const std::vector<NegativeRule>& negative,
                       const DimePlusOptions& options) {
  return RunDimePlus(pg, positive, negative, options, RunControl{});
}

DimeResult RunDimePlus(const Group& group,
                       const std::vector<PositiveRule>& positive,
                       const std::vector<NegativeRule>& negative,
                       const DimeContext& context,
                       const DimePlusOptions& options) {
  PreparedGroup pg = PrepareGroup(group, positive, negative, context);
  return RunDimePlus(pg, positive, negative, options);
}

}  // namespace dime
