#ifndef DIME_CORE_METRICS_H_
#define DIME_CORE_METRICS_H_

#include <vector>

#include "src/entity/entity.h"

/// \file metrics.h
/// Precision / recall / F-measure of a flagged entity set against a
/// group's ground truth (the effectiveness metrics of Section VI-A).

namespace dime {

struct Prf {
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 1.0;
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
};

/// Evaluates `flagged` (entity indices reported mis-categorized) against
/// `group.truth`. Conventions: precision is 1 when nothing is flagged;
/// recall is 1 when there are no true errors; F is the harmonic mean (0
/// when both are 0).
Prf EvaluateFlagged(const Group& group, const std::vector<int>& flagged);

/// Micro-averages counts across per-group results (sums tp/fp/fn, then
/// recomputes the ratios).
Prf MicroAverage(const std::vector<Prf>& results);

/// Arithmetic mean of the ratios (macro average, used for per-page
/// summaries like Fig. 7(a)).
Prf MacroAverage(const std::vector<Prf>& results);

/// Builds a Prf from raw counts.
Prf PrfFromCounts(size_t tp, size_t fp, size_t fn);

}  // namespace dime

#endif  // DIME_CORE_METRICS_H_
