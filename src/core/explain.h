#ifndef DIME_CORE_EXPLAIN_H_
#define DIME_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "src/core/dime.h"
#include "src/core/preprocess.h"

/// \file explain.h
/// Explanations for flagged entities — what the GUI of Fig. 3 shows a user
/// next to each suggestion. An explanation names the partition the entity
/// landed in, the first negative rule that flagged it, the witness member
/// of the partition that is dissimilar from every pivot entity, and the
/// predicate-by-predicate similarities of the witness against a concrete
/// pivot example.

namespace dime {

struct Explanation {
  bool flagged = false;     ///< false: the entity is not suggested
  int partition = -1;       ///< index into result.partitions
  size_t partition_size = 0;
  int rule = -1;            ///< first flagging rule (index into negatives)
  int witness = -1;         ///< member of the partition satisfying the rule
  /// Per predicate of the flagging rule: the witness's MAXIMUM similarity
  /// across all pivot entities (all of them are below the rule's sigma —
  /// that is what being flagged means).
  std::vector<double> max_similarity_to_pivot;
  std::string text;         ///< one-paragraph human-readable summary
};

/// Explains why `entity` is (or is not) suggested by `result`. `pg` must
/// be the prepared group the result was computed from and `negative` the
/// same rule sequence.
Explanation ExplainFlagged(const PreparedGroup& pg,
                           const std::vector<NegativeRule>& negative,
                           const DimeResult& result, int entity);

}  // namespace dime

#endif  // DIME_CORE_EXPLAIN_H_
