#ifndef DIME_CORE_REVIEW_SESSION_H_
#define DIME_CORE_REVIEW_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/dime.h"
#include "src/entity/entity.h"
#include "src/core/metrics.h"

/// \file review_session.h
/// The user-effort model behind the paper's GUI argument (Section I /
/// Section III): "it is way cheaper for users to confirm our suggested
/// mis-categorized entities than selecting them manually from the entire
/// group — Guoliang has 178 Google Scholar entries, where 6 are
/// mis-categorized; we will discover 5 to 10 with different negative
/// rules, which saves Guoliang from checking 178 entries".
///
/// A ReviewSession replays a user dragging the scrollbar from the first
/// prefix to a chosen position and confirming each *newly* suggested
/// entity once. Effort = number of confirmations; the baseline is
/// reviewing the whole group.

namespace dime {

struct ReviewOutcome {
  size_t suggestions_reviewed = 0;  ///< entities the user had to look at
  size_t errors_found = 0;          ///< true errors among them
  size_t errors_missed = 0;         ///< true errors never suggested
  size_t group_size = 0;            ///< the manual-review baseline
  /// Fraction of the manual effort avoided: 1 - reviewed / group size.
  double effort_saved = 0.0;
  /// Fraction of all true errors surfaced by the chosen prefix.
  double coverage = 0.0;
};

/// Simulates reviewing prefixes 1..`prefix` (1-based; clamped to the
/// number of negative rules) of `result` against `group`'s ground truth.
/// Entities suggested by several prefixes are reviewed once.
ReviewOutcome SimulateReview(const Group& group, const DimeResult& result,
                             size_t prefix);

/// The smallest prefix reaching `min_coverage` of the true errors, or the
/// last prefix if none does (0-based result + 1; 0 when there are no
/// negative rules).
size_t PrefixForCoverage(const Group& group, const DimeResult& result,
                         double min_coverage);

/// The user's verdict on one suggestion.
using ConfirmOracle = std::function<bool(int entity)>;

struct InteractiveOutcome {
  std::vector<int> confirmed;   ///< suggestions the user accepted (removals)
  std::vector<int> rejected;    ///< suggestions the user kept
  size_t reviews = 0;           ///< confirmations performed (the effort)
  /// Quality of the final cleaned group, assuming confirmed entities are
  /// removed: precision/recall of `confirmed` against the ground truth.
  Prf quality;
};

/// Replays the interactive workflow of Fig. 3: the user drags through the
/// scrollbar positions 1..prefix; each NEWLY suggested entity is reviewed
/// exactly once via `oracle` (true = "yes, remove it"). Rejected entities
/// stay rejected at deeper positions (they are never re-suggested).
InteractiveOutcome InteractiveReview(const Group& group,
                                     const DimeResult& result, size_t prefix,
                                     const ConfirmOracle& oracle);

/// An oracle that answers from ground truth but errs with probability
/// `mistake_rate` (deterministic per seed) — models imperfect users.
ConfirmOracle NoisyTruthOracle(const Group& group, double mistake_rate,
                               uint64_t seed);

}  // namespace dime

#endif  // DIME_CORE_REVIEW_SESSION_H_
