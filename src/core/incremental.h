#ifndef DIME_CORE_INCREMENTAL_H_
#define DIME_CORE_INCREMENTAL_H_

#include <memory>
#include <vector>

#include "src/core/dime.h"
#include "src/core/preprocess.h"
#include "src/index/union_find.h"

/// \file incremental.h
/// Incremental maintenance of a DIME result while entities are appended —
/// the situation real categorizers are in (a Scholar page gains
/// publications continuously; re-running Algorithm 1 from scratch costs
/// O(n²) per arrival).
///
/// IncrementalDime keeps the prepared representations, the token
/// dictionaries and the partition union-find alive across insertions: one
/// AddEntity call tokenizes only the new entity and evaluates the positive
/// rules against existing entities until transitivity makes further checks
/// unnecessary — O(n) rule checks per arrival instead of an O(n²) re-run.
/// Pivot selection and the negative-rule scrollbar are recomputed lazily
/// on Result(), since they are the cheap steps.
///
/// Token order note: batch preparation orders tokens by document frequency
/// (best-possible prefixes); incrementally we freeze token ids in arrival
/// order. Any consistent total order preserves correctness — results are
/// bit-identical to a batch re-run (tested) — only signature selectivity
/// would differ, and the incremental engine verifies directly rather than
/// through signatures.
///
/// Deletions are out of scope (union-find cannot split); rebuild for that.

namespace dime {

class IncrementalDime {
 public:
  IncrementalDime(Schema schema, std::vector<PositiveRule> positive,
                  std::vector<NegativeRule> negative, DimeContext context);

  /// Appends `entity`, connects it to existing partitions, and returns its
  /// index within the group.
  int AddEntity(Entity entity);

  /// Convenience: AddEntity for every entity of `group` (its truth vector,
  /// if any, is carried over for evaluation).
  void AddGroup(const Group& group);

  /// Current Algorithm-1 result for everything added so far. Cached until
  /// the next AddEntity.
  const DimeResult& Result();

  const Group& group() const { return group_; }
  size_t size() const { return group_.entities.size(); }

 private:
  /// Builds the prepared representations for entity `e` (appending to the
  /// live dictionaries).
  void PrepareEntity(int e);

  std::vector<PositiveRule> positive_;
  std::vector<NegativeRule> negative_;
  Group group_;
  PreparedGroup pg_;
  UnionFind uf_{0};
  DimeResult cached_;
  bool dirty_ = true;
};

}  // namespace dime

#endif  // DIME_CORE_INCREMENTAL_H_
