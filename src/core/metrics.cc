#include "src/core/metrics.h"

#include "src/common/logging.h"

namespace dime {

Prf PrfFromCounts(size_t tp, size_t fp, size_t fn) {
  Prf out;
  out.tp = tp;
  out.fp = fp;
  out.fn = fn;
  out.precision = (tp + fp) == 0
                      ? 1.0
                      : static_cast<double>(tp) / static_cast<double>(tp + fp);
  out.recall = (tp + fn) == 0
                   ? 1.0
                   : static_cast<double>(tp) / static_cast<double>(tp + fn);
  out.f1 = (out.precision + out.recall) == 0.0
               ? 0.0
               : 2.0 * out.precision * out.recall /
                     (out.precision + out.recall);
  return out;
}

Prf EvaluateFlagged(const Group& group, const std::vector<int>& flagged) {
  DIME_CHECK(group.has_truth()) << "group " << group.name
                                << " has no ground truth";
  size_t tp = 0, fp = 0;
  for (int e : flagged) {
    if (group.truth[e]) {
      ++tp;
    } else {
      ++fp;
    }
  }
  size_t total_errors = 0;
  for (uint8_t t : group.truth) total_errors += t;
  size_t fn = total_errors - tp;
  return PrfFromCounts(tp, fp, fn);
}

Prf MicroAverage(const std::vector<Prf>& results) {
  size_t tp = 0, fp = 0, fn = 0;
  for (const Prf& r : results) {
    tp += r.tp;
    fp += r.fp;
    fn += r.fn;
  }
  return PrfFromCounts(tp, fp, fn);
}

Prf MacroAverage(const std::vector<Prf>& results) {
  Prf out;
  if (results.empty()) return out;
  double p = 0, r = 0;
  for (const Prf& x : results) {
    p += x.precision;
    r += x.recall;
    out.tp += x.tp;
    out.fp += x.fp;
    out.fn += x.fn;
  }
  out.precision = p / static_cast<double>(results.size());
  out.recall = r / static_cast<double>(results.size());
  out.f1 = (out.precision + out.recall) == 0.0
               ? 0.0
               : 2.0 * out.precision * out.recall /
                     (out.precision + out.recall);
  return out;
}

}  // namespace dime
