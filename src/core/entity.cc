#include "src/core/entity.h"

#include <fstream>
#include <sstream>

#include "src/common/csv.h"
#include "src/common/logging.h"

namespace dime {

Schema::Schema(std::vector<std::string> attribute_names)
    : attribute_names_(std::move(attribute_names)) {}

int Schema::AttributeIndex(std::string_view name) const {
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Group::TrueErrorIndices() const {
  DIME_CHECK(has_truth());
  std::vector<int> errors;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i]) errors.push_back(static_cast<int>(i));
  }
  return errors;
}

namespace {

/// TSV cells cannot contain the structural characters; values are
/// sanitized on write (tab/newline -> space, '|' -> '/') so every written
/// file parses back.
std::string SanitizeCell(const std::string& value) {
  std::string out = value;
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    if (c == '|') c = '/';
  }
  return out;
}

}  // namespace

std::string GroupToTsv(const Group& group) {
  std::vector<TsvRow> rows;
  TsvRow header;
  header.push_back("_id");
  for (const std::string& attr : group.schema.attribute_names()) {
    header.push_back(SanitizeCell(attr));
  }
  if (group.has_truth()) header.push_back("_error");
  rows.push_back(std::move(header));

  for (size_t i = 0; i < group.entities.size(); ++i) {
    const Entity& e = group.entities[i];
    TsvRow row;
    row.push_back(SanitizeCell(e.id));
    for (const AttributeValue& v : e.values) {
      std::vector<std::string> sanitized;
      sanitized.reserve(v.size());
      for (const std::string& piece : v) {
        sanitized.push_back(SanitizeCell(piece));
      }
      row.push_back(JoinMultiValue(sanitized));
    }
    if (group.has_truth()) row.push_back(group.truth[i] ? "1" : "0");
    rows.push_back(std::move(row));
  }
  return FormatTsv(rows);
}

bool GroupFromTsv(const std::string& tsv, std::string_view name, Group* out) {
  std::vector<TsvRow> rows = ParseTsv(tsv);
  if (rows.empty()) return false;
  const TsvRow& header = rows[0];
  if (header.empty() || header[0] != "_id") return false;

  bool has_truth = !header.empty() && header.back() == "_error";
  size_t num_attrs = header.size() - 1 - (has_truth ? 1 : 0);
  std::vector<std::string> attrs(header.begin() + 1,
                                 header.begin() + 1 + num_attrs);
  out->name = std::string(name);
  out->schema = Schema(std::move(attrs));
  out->entities.clear();
  out->truth.clear();

  for (size_t r = 1; r < rows.size(); ++r) {
    const TsvRow& row = rows[r];
    if (row.size() != header.size()) return false;
    Entity e;
    e.id = row[0];
    for (size_t a = 0; a < num_attrs; ++a) {
      e.values.push_back(SplitMultiValue(row[1 + a]));
    }
    out->entities.push_back(std::move(e));
    if (has_truth) out->truth.push_back(row.back() == "1" ? 1 : 0);
  }
  return true;
}

bool SaveGroupTsv(const Group& group, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << GroupToTsv(group);
  return static_cast<bool>(f);
}

bool LoadGroupTsv(const std::string& path, std::string_view name, Group* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  return GroupFromTsv(buf.str(), name, out);
}

}  // namespace dime
