#ifndef DIME_CORE_SIGNATURE_H_
#define DIME_CORE_SIGNATURE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/preprocess.h"
#include "src/index/inverted_index.h"
#include "src/rules/predicate.h"

/// \file signature.h
/// Signature generation (Section IV-B). For every similarity class there is
/// a scheme such that two values satisfying `f >= theta` must share a
/// signature:
///
///  * set-based:  the first |v| - o + 1 tokens of the rank-sorted value,
///                where o is the minimum qualifying overlap (prefix
///                filtering on the document-frequency global order);
///  * char-based: the first q*d + 1 rank-sorted q-grams, where d is the
///                largest edit distance compatible with the threshold;
///  * ontology:   the ancestor at depth tau_min (the node signature of
///                Lemma 4.2), where tau_min is the smallest tau_n over the
///                group.
///
/// For negative rules the same schemes run with the effective threshold
/// "just above" sigma, giving the dual guarantee: if two entities share no
/// signature for ANY predicate, every predicate similarity is <= sigma and
/// the pair must satisfy the rule.
///
/// Degenerate predicates that any pair satisfies (e.g. `jaccard >= 0`)
/// would break prefix filtering, so they emit a single universal signature
/// shared by all entities — completeness is preserved and the pairs fall
/// through to verification.

namespace dime {

struct SignatureOptions {
  /// Cap on tuple signatures per entity for a positive rule. When the
  /// expected cross-product across predicates exceeds the cap, the
  /// generator falls back to indexing only the most selective predicate
  /// (smallest average signature count), which is still complete.
  size_t max_tuple_signatures = 64;
};

/// Reusable buffers for the scratch overloads of SignatureGenerator:
/// hoist one instance out of a per-entity loop and the generator stops
/// touching the allocator in the hot path (the batched hash kernels then
/// dominate instead of malloc). Not thread-safe: one scratch per thread.
struct SignatureScratch {
  std::vector<uint64_t> sigs;      ///< one predicate's signatures
  std::vector<uint64_t> combined;  ///< accumulator; results are returned here
  std::vector<uint64_t> next;      ///< tuple cross-product target
};

/// Generates signatures for one rule (its predicate list + direction) over
/// a prepared group.
class SignatureGenerator {
 public:
  SignatureGenerator(const PreparedGroup& pg,
                     const std::vector<Predicate>& predicates, Direction dir,
                     uint64_t rule_tag,
                     const SignatureOptions& options = SignatureOptions());

  /// Per-predicate signatures of `entity` (tagged with the predicate index
  /// and `rule_tag`). Empty when the entity cannot reach the effective
  /// threshold with any partner.
  std::vector<uint64_t> PredicateSignatures(size_t pred_idx, int entity) const;

  /// As above, written into `*out` (cleared first) so a caller-held buffer
  /// is reused across entities.
  void PredicateSignatures(size_t pred_idx, int entity,
                           std::vector<uint64_t>* out) const;

  /// Signatures of `entity` for a positive rule: the (capped)
  /// cross-product combination across predicates. Two entities satisfying
  /// the rule must share one. Empty when some predicate is unsatisfiable
  /// for this entity.
  std::vector<uint64_t> PositiveRuleSignatures(int entity) const;

  /// Allocation-free variant: the result lives in `scratch->combined` and
  /// the returned reference is valid until the next call with the same
  /// scratch. Identical contents to the by-value overload.
  const std::vector<uint64_t>& PositiveRuleSignatures(
      int entity, SignatureScratch* scratch) const;

  /// Signatures of `entity` for a negative rule: the tagged union across
  /// predicates. If the signature sets of two entities are disjoint, the
  /// pair satisfies the rule.
  std::vector<uint64_t> NegativeRuleSignatures(int entity) const;

  /// Allocation-free variant, same contract as the positive one.
  const std::vector<uint64_t>& NegativeRuleSignatures(
      int entity, SignatureScratch* scratch) const;

  /// True if the positive generator fell back to anchor-only indexing.
  bool anchor_only() const { return anchor_only_; }
  size_t anchor_predicate() const { return anchor_; }

 private:
  /// The size PredicateSignatures(pred_idx, entity) would return, read
  /// off the CSR arena sizes without hashing or allocating. Used by the
  /// constructor's average-count pass (the tuple-vs-anchor decision).
  size_t PredicateSignatureCount(size_t pred_idx, int entity) const;

  const PreparedGroup& pg_;
  const std::vector<Predicate>& predicates_;
  Direction dir_;
  uint64_t rule_tag_;
  SignatureOptions options_;
  std::vector<int> ontology_tau_min_;  ///< per predicate (-1 if not ontology)
  /// Per predicate: true when q-gram prefix filtering gives no guarantee
  /// for SOME entity of the group (its whole string fits in the edit
  /// budget). The decision must be group-global — a per-entity fallback
  /// would be asymmetric and break completeness — so the predicate then
  /// emits one universal signature for every entity.
  std::vector<bool> editsim_universal_;
  std::vector<double> avg_sig_count_;  ///< per predicate
  bool anchor_only_ = false;
  size_t anchor_ = 0;
};

/// 64-bit mixing used to tag signatures; exposed for tests.
uint64_t MixSignature(uint64_t a, uint64_t b);

/// Borrowed run of 64-bit signatures (iterable like a vector).
struct SignatureSpan {
  const uint64_t* ptr = nullptr;
  size_t len = 0;

  SignatureSpan() = default;
  SignatureSpan(const uint64_t* p, size_t n) : ptr(p), len(n) {}
  /// Implicit view of a vector (must outlive the span).
  SignatureSpan(const std::vector<uint64_t>& v)  // NOLINT
      : ptr(v.data()), len(v.size()) {}

  const uint64_t* begin() const { return ptr; }
  const uint64_t* end() const { return ptr + len; }
  size_t size() const { return len; }
  bool empty() const { return len == 0; }
};

/// CSR column of per-entity signature runs — the u64 analogue of
/// RankColumn, with the same owned/borrowed split so the snapshot store
/// can map a serialized column zero-copy.
class SignatureColumn {
 public:
  void Reserve(size_t entities, size_t total) {
    offsets_.reserve(entities + 1);
    arena_.reserve(total);
  }

  /// Appends one entity's signature run. Only valid on an owned column.
  void Append(const std::vector<uint64_t>& sigs) {
    DIME_DCHECK(!borrowed());
    arena_.insert(arena_.end(), sigs.begin(), sigs.end());
    offsets_.push_back(arena_.size());
  }

  /// Points the column at external storage (see RankColumn::BorrowStorage).
  void BorrowStorage(const uint64_t* arena, const uint64_t* offsets,
                     size_t rows) {
    arena_.clear();
    offsets_.clear();
    ext_arena_ = arena;
    ext_offsets_ = offsets;
    ext_rows_ = rows;
  }

  bool borrowed() const { return ext_offsets_ != nullptr; }

  SignatureSpan row(size_t e) const {
    const uint64_t* off = offsets_ptr();
    return SignatureSpan(arena_ptr() + off[e], off[e + 1] - off[e]);
  }

  size_t num_entities() const {
    return borrowed() ? ext_rows_ : offsets_.size() - 1;
  }
  size_t total() const {
    return borrowed() ? ext_offsets_[ext_rows_] : arena_.size();
  }

  const uint64_t* arena_ptr() const {
    return borrowed() ? ext_arena_ : arena_.data();
  }
  const uint64_t* offsets_ptr() const {
    return borrowed() ? ext_offsets_ : offsets_.data();
  }

 private:
  std::vector<uint64_t> arena_;
  std::vector<uint64_t> offsets_{0};
  const uint64_t* ext_arena_ = nullptr;
  const uint64_t* ext_offsets_ = nullptr;
  size_t ext_rows_ = 0;
};

/// Precomputed per-rule filtering state for RunDimePlus: the frozen
/// positive-rule inverted indexes (step 1) and each entity's
/// negative-rule signature runs (step 3). PrepareGroup does not build
/// these — they are an offline product (the snapshot store persists them
/// and maps them back zero-copy), attached via PreparedGroup::artifacts.
/// RunDimePlus uses them only when the rule counts and the signature
/// options they were built under match its own; otherwise it regenerates,
/// so stale artifacts cost time but never correctness.
struct PreparedRuleArtifacts {
  /// SignatureOptions::max_tuple_signatures the artifacts were built with.
  size_t max_tuple_signatures = 0;
  /// One frozen index per positive rule (rule_tag r + 1, Direction::kGe).
  std::vector<InvertedIndex> positive_indexes;
  /// One column per negative rule (rule_tag 0x1000 + r, Direction::kLe).
  std::vector<SignatureColumn> negative_sigs;
};

/// Runs the signature generators now and freezes the result — the offline
/// half of the filter, identical to what RunDimePlus would generate on
/// demand for these rules and options.
std::shared_ptr<const PreparedRuleArtifacts> BuildPreparedRuleArtifacts(
    const PreparedGroup& pg, const std::vector<PositiveRule>& positive,
    const std::vector<NegativeRule>& negative,
    const SignatureOptions& options = SignatureOptions());

}  // namespace dime

#endif  // DIME_CORE_SIGNATURE_H_
