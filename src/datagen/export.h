#ifndef DIME_DATAGEN_EXPORT_H_
#define DIME_DATAGEN_EXPORT_H_

#include <string>
#include <vector>

#include "src/entity/entity.h"

/// \file export.h
/// Materializes the synthetic benchmark suite to a directory so it can be
/// consumed outside this process (dime_cli, other tools, manual
/// inspection):
///
///   <dir>/scholar/page_<i>.tsv      groups with ground-truth column
///   <dir>/scholar/rules.txt         the preset rule set
///   <dir>/scholar/venues.ontology   the built-in venue tree
///   <dir>/amazon/<category>.tsv
///   <dir>/amazon/rules.txt
///   <dir>/amazon/themes.ontology    the LDA theme hierarchy fitted on the
///                                   exported corpus
///
/// Everything round-trips through the TSV / rule-set / ontology codecs, so
/// exporting doubles as an integration test of the serialization layer.

namespace dime {

struct ExportOptions {
  size_t scholar_pages = 4;
  size_t scholar_pubs = 120;
  size_t amazon_categories = 3;
  size_t amazon_products = 100;
  double amazon_error_rate = 0.2;
  uint64_t seed = 1;
};

struct ExportManifest {
  std::vector<std::string> scholar_groups;  ///< written TSV paths
  std::vector<std::string> amazon_groups;
  std::string scholar_rules;
  std::string amazon_rules;
  std::string venue_ontology;
  std::string theme_ontology;
};

/// Writes the suite under `directory` (created if missing). Returns false
/// on any IO failure; `manifest`, if non-null, lists what was written.
bool ExportBenchmarkSuite(const std::string& directory,
                          const ExportOptions& options,
                          ExportManifest* manifest = nullptr);

}  // namespace dime

#endif  // DIME_DATAGEN_EXPORT_H_
