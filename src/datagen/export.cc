#include "src/datagen/export.h"

#include <filesystem>

#include "src/datagen/amazon_gen.h"
#include "src/datagen/names.h"
#include "src/datagen/presets.h"
#include "src/datagen/scholar_gen.h"
#include "src/ontology/builtin.h"
#include "src/rules/rule_io.h"

namespace dime {
namespace {

namespace fs = std::filesystem;

bool EnsureDirectory(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  return !ec;
}

}  // namespace

bool ExportBenchmarkSuite(const std::string& directory,
                          const ExportOptions& options,
                          ExportManifest* manifest) {
  ExportManifest local;
  const std::string scholar_dir = directory + "/scholar";
  const std::string amazon_dir = directory + "/amazon";
  if (!EnsureDirectory(scholar_dir) || !EnsureDirectory(amazon_dir)) {
    return false;
  }

  // --- Scholar pages + preset rules + venue tree. -------------------------
  ScholarSetup scholar = MakeScholarSetup();
  for (size_t i = 0; i < options.scholar_pages; ++i) {
    ScholarGenOptions gen;
    gen.num_correct = options.scholar_pubs;
    gen.seed = options.seed + i;
    Group page = GenerateScholarGroup(
        "Exported Owner " + std::to_string(i), gen);
    std::string path = scholar_dir + "/page_" + std::to_string(i) + ".tsv";
    if (!SaveGroupTsv(page, path)) return false;
    local.scholar_groups.push_back(path);
  }
  local.scholar_rules = scholar_dir + "/rules.txt";
  if (!SaveRuleSet(local.scholar_rules, scholar.schema, scholar.positive,
                   scholar.negative)) {
    return false;
  }
  local.venue_ontology = scholar_dir + "/venues.ontology";
  if (!scholar.venue_tree->SaveToFile(local.venue_ontology)) return false;

  // --- Amazon categories + preset rules + fitted theme tree. --------------
  std::vector<Group> corpus;
  for (size_t i = 0; i < options.amazon_categories; ++i) {
    AmazonGenOptions gen;
    gen.num_correct = options.amazon_products;
    gen.error_rate = options.amazon_error_rate;
    gen.seed = options.seed + 100 + i;
    int category =
        static_cast<int>((options.seed + i * 7) % ProductCategories().size());
    corpus.push_back(GenerateAmazonGroup(category, gen));
  }
  AmazonSetup amazon = MakeAmazonSetup(corpus);
  for (size_t i = 0; i < corpus.size(); ++i) {
    std::string path = amazon_dir + "/" + corpus[i].name + "_" +
                       std::to_string(i) + ".tsv";
    if (!SaveGroupTsv(corpus[i], path)) return false;
    local.amazon_groups.push_back(path);
  }
  local.amazon_rules = amazon_dir + "/rules.txt";
  if (!SaveRuleSet(local.amazon_rules, amazon.schema, amazon.positive,
                   amazon.negative)) {
    return false;
  }
  local.theme_ontology = amazon_dir + "/themes.ontology";
  if (!amazon.theme_tree->SaveToFile(local.theme_ontology)) return false;

  if (manifest != nullptr) *manifest = std::move(local);
  return true;
}

}  // namespace dime
