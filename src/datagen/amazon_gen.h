#ifndef DIME_DATAGEN_AMAZON_GEN_H_
#define DIME_DATAGEN_AMAZON_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/entity/entity.h"

/// \file amazon_gen.h
/// Synthetic Amazon-product generator (the substitute for the McAuley
/// dump; DESIGN.md §3). A group is one product category over the relation
/// (Asin, Title, Brand, Also_bought, Also_viewed, Bought_together,
/// Buy_after_viewing, Description). Correct products reference each other
/// in sliding co-purchase neighborhoods, so the positive rules (shared
/// also-lists, same description theme) connect them into one pivot.
/// Mis-categorized products are injected from sibling categories of the
/// same department at rate e% — their also-lists point at their *home*
/// category's ASINs and their descriptions use the sibling topic
/// vocabulary, exactly the situation negative rules phi_4-/phi_5- target.
/// A contamination knob gives some injected products a few in-category
/// references (cross-category co-views), which is what makes high error
/// rates harder, mirroring the paper's recall dip at e = 40%.

namespace dime {

struct AmazonGenOptions {
  size_t num_correct = 200;        ///< in-category products
  double error_rate = 0.2;         ///< errors / total entities
  size_t list_length = 6;          ///< also_bought / also_viewed entries
  size_t window = 12;              ///< co-purchase neighborhood half-width
  double contamination_rate = 0.15;///< injected products with in-category refs
  /// Correct products with no co-purchase data yet (empty also-lists):
  /// they fall outside the pivot and are the precision cost of the
  /// negative rules.
  double sparse_rate = 0.02;
  size_t desc_words = 10;          ///< topical words per description
  uint64_t seed = 1;
};

Schema AmazonSchema();

inline constexpr int kAmazonAsin = 0;
inline constexpr int kAmazonTitle = 1;
inline constexpr int kAmazonBrand = 2;
inline constexpr int kAmazonAlsoBought = 3;
inline constexpr int kAmazonAlsoViewed = 4;
inline constexpr int kAmazonBoughtTogether = 5;
inline constexpr int kAmazonBuyAfterViewing = 6;
inline constexpr int kAmazonDescription = 7;

/// Generates the group for ProductCategories()[category_index] with
/// injected errors from its sibling categories. Entities are shuffled.
Group GenerateAmazonGroup(int category_index, const AmazonGenOptions& options);

}  // namespace dime

#endif  // DIME_DATAGEN_AMAZON_GEN_H_
