#include "src/datagen/amazon_gen.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/datagen/names.h"

namespace dime {
namespace {

std::string Asin(int category, int index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "B%02d%06d", category, index);
  return std::string(buf);
}

std::string MakeProductTitle(const ProductCategory& cat, Random* rng) {
  std::string title = BrandNames()[rng->Uniform(BrandNames().size())];
  std::vector<std::string> words = cat.title_words;
  rng->Shuffle(&words);
  size_t take = std::min<size_t>(3, words.size());
  for (size_t i = 0; i < take; ++i) {
    title.push_back(' ');
    title += words[i];
  }
  title += " " + std::to_string(100 + rng->Uniform(900));
  return title;
}

std::string MakeDescription(const ProductCategory& cat, size_t topical,
                            Random* rng) {
  std::vector<std::string> words;
  for (size_t i = 0; i < topical; ++i) {
    words.push_back(cat.desc_words[rng->Uniform(cat.desc_words.size())]);
  }
  const auto& fillers = FillerWords();
  words.push_back(fillers[rng->Uniform(fillers.size())]);
  words.push_back(fillers[rng->Uniform(fillers.size())]);
  rng->Shuffle(&words);
  std::string out;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += words[i];
  }
  return out;
}

/// Samples `count` distinct ASINs of `category` from the neighborhood of
/// `center` (excluding `center` itself) among `population` products.
std::vector<std::string> NeighborAsins(int category, int center,
                                       size_t population, size_t window,
                                       size_t count, Random* rng) {
  std::vector<std::string> out;
  if (population < 2) return out;
  int lo = std::max(0, center - static_cast<int>(window));
  int hi = std::min(static_cast<int>(population) - 1,
                    center + static_cast<int>(window));
  std::vector<int> candidates;
  for (int i = lo; i <= hi; ++i) {
    if (i != center) candidates.push_back(i);
  }
  rng->Shuffle(&candidates);
  size_t take = std::min(count, candidates.size());
  for (size_t i = 0; i < take; ++i) {
    out.push_back(Asin(category, candidates[i]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Schema AmazonSchema() {
  return Schema({"Asin", "Title", "Brand", "Also_bought", "Also_viewed",
                 "Bought_together", "Buy_after_viewing", "Description"});
}

Group GenerateAmazonGroup(int category_index,
                          const AmazonGenOptions& options) {
  const auto& categories = ProductCategories();
  DIME_CHECK_GE(category_index, 0);
  DIME_CHECK_LT(static_cast<size_t>(category_index), categories.size());
  const ProductCategory& cat = categories[category_index];

  Random rng(options.seed);
  Group group;
  group.name = cat.name;
  group.schema = AmazonSchema();

  std::vector<std::pair<Entity, uint8_t>> rows;

  auto make_product = [&](int home_category, int index, size_t home_pop) {
    const ProductCategory& home = categories[home_category];
    Entity e;
    e.id = Asin(home_category, index);
    e.values.resize(8);
    e.values[kAmazonAsin] = {e.id};
    e.values[kAmazonTitle] = {MakeProductTitle(home, &rng)};
    e.values[kAmazonBrand] = {BrandNames()[rng.Uniform(BrandNames().size())]};
    e.values[kAmazonAlsoBought] = NeighborAsins(
        home_category, index, home_pop, options.window, options.list_length,
        &rng);
    e.values[kAmazonAlsoViewed] = NeighborAsins(
        home_category, index, home_pop, options.window, options.list_length,
        &rng);
    e.values[kAmazonBoughtTogether] = NeighborAsins(
        home_category, index, home_pop, options.window, 2, &rng);
    e.values[kAmazonBuyAfterViewing] = NeighborAsins(
        home_category, index, home_pop, options.window, 2, &rng);
    e.values[kAmazonDescription] = {
        MakeDescription(home, options.desc_words, &rng)};
    return e;
  };

  // Cross-category co-purchases/co-views: replace one list entry with a
  // product of the *target* category, which defeats the corresponding
  // negative rule for that list.
  auto contaminate = [&](std::vector<std::string>* list, size_t target_pop) {
    std::string foreign =
        Asin(category_index, static_cast<int>(rng.Uniform(target_pop)));
    if (list->empty()) {
      list->push_back(foreign);
    } else {
      (*list)[rng.Uniform(list->size())] = foreign;
    }
    std::sort(list->begin(), list->end());
  };

  // Correct products.
  for (size_t i = 0; i < options.num_correct; ++i) {
    Entity e = make_product(category_index, static_cast<int>(i),
                            options.num_correct);
    if (rng.Bernoulli(options.sparse_rate)) {
      // A new product without co-purchase history: only one
      // bought-together link survives, and the seller-provided blurb is
      // short and generic (which is what makes these the negative rules'
      // false positives).
      e.values[kAmazonAlsoBought].clear();
      e.values[kAmazonAlsoViewed].clear();
      e.values[kAmazonBuyAfterViewing].clear();
      if (e.values[kAmazonBoughtTogether].size() > 1) {
        e.values[kAmazonBoughtTogether].resize(1);
      }
      const auto& fillers = FillerWords();
      std::string blurb = cat.desc_words[rng.Uniform(cat.desc_words.size())];
      for (int w = 0; w < 4; ++w) {
        blurb += " " + fillers[rng.Uniform(fillers.size())];
      }
      e.values[kAmazonDescription] = {blurb};
    }
    rows.emplace_back(std::move(e), 0);
  }

  // Injected errors from sibling categories.
  DIME_CHECK_LT(options.error_rate, 1.0);
  size_t num_errors = static_cast<size_t>(
      options.error_rate / (1.0 - options.error_rate) *
          static_cast<double>(options.num_correct) +
      0.5);
  std::vector<int> siblings = SiblingCategories(category_index);
  DIME_CHECK(!siblings.empty());
  // Errors come in small co-purchase clumps from their home categories:
  // consecutive indices of the same sibling reference each other.
  size_t injected = 0;
  int clump_base = 0;
  while (injected < num_errors) {
    int sibling = siblings[rng.Uniform(siblings.size())];
    size_t clump = 1 + rng.Uniform(3);  // 1-3 products from this sibling
    clump = std::min(clump, num_errors - injected);
    // The clump's home population is just the clump plus surrounding
    // neighbors: use a virtual home population large enough for windows.
    size_t home_pop = clump + options.window;
    // Contamination grows with the error rate — higher-noise injections
    // have buying behaviour closer to the target category, which is what
    // makes them harder to detect (the paper's recall decline at e=40%).
    double c_rate = std::min(
        0.9, options.contamination_rate * (options.error_rate / 0.2));
    for (size_t c = 0; c < clump; ++c) {
      Entity e = make_product(sibling, clump_base + static_cast<int>(c),
                              home_pop);
      if (rng.Bernoulli(c_rate)) {
        contaminate(&e.values[kAmazonAlsoBought], options.num_correct);
      }
      if (rng.Bernoulli(c_rate)) {
        contaminate(&e.values[kAmazonAlsoViewed], options.num_correct);
      }
      rows.emplace_back(std::move(e), 1);
    }
    clump_base += static_cast<int>(clump + options.window + 5);
    injected += clump;
  }

  rng.Shuffle(&rows);
  group.entities.reserve(rows.size());
  group.truth.reserve(rows.size());
  for (auto& [entity, is_error] : rows) {
    group.entities.push_back(std::move(entity));
    group.truth.push_back(is_error);
  }
  return group;
}

}  // namespace dime
