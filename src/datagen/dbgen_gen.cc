#include "src/datagen/dbgen_gen.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace dime {
namespace {

/// Shared vocabulary for core names; tail blocks use disjoint words.
std::string CoreWord(size_t i) { return "word" + std::to_string(i); }
std::string CoreRef(size_t i) { return "ref" + std::to_string(i); }

}  // namespace

Schema DbgenSchema() { return Schema({"Name", "Refs"}); }

Group GenerateDbgenGroup(const DbgenOptions& options) {
  Random rng(options.seed);
  Group group;
  group.name = "Gen(" + std::to_string(options.num_entities) + ")";
  group.schema = DbgenSchema();

  const size_t core = static_cast<size_t>(
      options.core_fraction * static_cast<double>(options.num_entities));

  std::vector<std::pair<Entity, uint8_t>> rows;
  rows.reserve(options.num_entities);

  // Core block: references drawn from a sliding window over a shared token
  // space, names from a slowly-moving vocabulary region. Neighbors share
  // refs (phi_1) and name words (phi_2), chaining everything together.
  for (size_t i = 0; i < core; ++i) {
    Entity e;
    e.id = "g" + std::to_string(i);
    e.values.resize(2);
    std::vector<std::string> name;
    size_t name_base = i / 64;  // 64 consecutive entities share a region
    for (size_t w = 0; w < options.name_words; ++w) {
      name.push_back(CoreWord(name_base * 3 + rng.Uniform(6)));
    }
    e.values[kDbgenName] = {std::string()};
    std::string joined;
    for (size_t w = 0; w < name.size(); ++w) {
      if (w > 0) joined.push_back(' ');
      joined += name[w];
    }
    e.values[kDbgenName] = {joined};

    std::vector<std::string> refs;
    size_t lo = i > options.window ? i - options.window : 0;
    size_t hi = std::min(core - 1, i + options.window);
    for (size_t r = 0; r < options.refs_per_entity; ++r) {
      refs.push_back(CoreRef(lo + rng.Uniform(hi - lo + 1)));
    }
    std::sort(refs.begin(), refs.end());
    refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
    e.values[kDbgenRefs] = std::move(refs);
    rows.emplace_back(std::move(e), 0);
  }

  // Tail: small blocks with private reference tokens and a private
  // vocabulary; these are the "mis-categorized" records at scale.
  size_t produced = core;
  size_t block_id = 0;
  while (produced < options.num_entities) {
    size_t block =
        std::min<size_t>(1 + rng.Uniform(options.small_block_max),
                         options.num_entities - produced);
    std::string block_tag = "blk" + std::to_string(block_id++);
    for (size_t b = 0; b < block; ++b) {
      Entity e;
      e.id = "t" + std::to_string(produced + b);
      e.values.resize(2);
      std::string joined;
      for (size_t w = 0; w < options.name_words; ++w) {
        if (w > 0) joined.push_back(' ');
        joined += block_tag + "w" + std::to_string(rng.Uniform(5));
      }
      e.values[kDbgenName] = {joined};
      std::vector<std::string> refs;
      for (size_t r = 0; r < options.refs_per_entity; ++r) {
        refs.push_back(block_tag + "r" + std::to_string(rng.Uniform(8)));
      }
      std::sort(refs.begin(), refs.end());
      refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
      e.values[kDbgenRefs] = std::move(refs);
      rows.emplace_back(std::move(e), 1);
    }
    produced += block;
  }

  rng.Shuffle(&rows);
  group.entities.reserve(rows.size());
  group.truth.reserve(rows.size());
  for (auto& [entity, is_error] : rows) {
    group.entities.push_back(std::move(entity));
    group.truth.push_back(is_error);
  }
  return group;
}

DbgenOptions DbgenPreset100k(uint64_t seed) {
  DbgenOptions options;
  options.num_entities = 100000;
  options.seed = seed;
  return options;
}

DbgenOptions DbgenPreset1M(uint64_t seed) {
  DbgenOptions options;
  options.num_entities = 1000000;
  options.seed = seed;
  return options;
}

std::vector<PositiveRule> DbgenPositiveRules() {
  Schema schema = DbgenSchema();
  std::vector<PositiveRule> rules(2);
  DIME_CHECK(ParsePositiveRule("overlap(Refs) >= 2", schema, &rules[0]));
  DIME_CHECK(ParsePositiveRule(
      "overlap(Refs) >= 1 ^ jaccard(Name:words) >= 0.5", schema, &rules[1]));
  return rules;
}

std::vector<NegativeRule> DbgenNegativeRules() {
  Schema schema = DbgenSchema();
  std::vector<NegativeRule> rules(2);
  DIME_CHECK(ParseNegativeRule(
      "overlap(Refs) <= 0 ^ jaccard(Name:words) <= 0.2", schema, &rules[0]));
  DIME_CHECK(ParseNegativeRule(
      "overlap(Refs) <= 1 ^ jaccard(Name:words) <= 0.3", schema, &rules[1]));
  return rules;
}

}  // namespace dime
