#include "src/datagen/names.h"

#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace dime {

const std::vector<std::string>& FirstNames() {
  static const auto& kNames = *new std::vector<std::string>{
      "Nan",     "Guoliang", "Jianhua", "Shuang",  "Wei",     "Ming",
      "Xin",     "Jing",     "Yang",    "Li",      "Hao",     "Chen",
      "Anna",    "Boris",    "Carla",   "David",   "Elena",   "Felix",
      "Grace",   "Henry",    "Ivan",    "Julia",   "Kevin",   "Laura",
      "Marco",   "Nina",     "Oscar",   "Paula",   "Quentin", "Rosa",
      "Samuel",  "Tina",     "Victor",  "Wendy",   "Xavier",  "Yvonne",
      "Zoe",     "Ahmed",    "Bianca",  "Carlos",  "Diana",   "Emil",
      "Fatima",  "George",   "Hannah",  "Igor",    "Jasmine", "Karl",
      "Lina",    "Mohamed",  "Noor",    "Olga",    "Pedro",   "Qing",
      "Rahul",   "Sofia",    "Tom",     "Uma",     "Vera",    "Walter"};
  return kNames;
}

const std::vector<std::string>& LastNames() {
  static const auto& kNames = *new std::vector<std::string>{
      "Tang",      "Li",        "Feng",     "Hao",      "Wang",
      "Chen",      "Zhang",     "Liu",      "Yang",     "Huang",
      "Zhao",      "Wu",        "Zhou",     "Xu",       "Sun",
      "Ma",        "Gao",       "Lin",      "Smith",    "Johnson",
      "Williams",  "Brown",     "Jones",    "Garcia",   "Miller",
      "Davis",     "Rodriguez", "Martinez", "Anderson", "Taylor",
      "Thomas",    "Moore",     "Jackson",  "Martin",   "Lee",
      "Thompson",  "White",     "Lopez",    "Gonzalez", "Harris",
      "Clark",     "Lewis",     "Robinson", "Walker",   "Young",
      "Allen",     "King",      "Wright",   "Scott",    "Torres",
      "Nguyen",    "Hill",      "Flores",   "Green",    "Adams",
      "Nelson",    "Baker",     "Hall",     "Rivera",   "Campbell",
      "Mitchell",  "Carter",    "Roberts",  "Gomez",    "Phillips",
      "Evans",     "Turner",    "Diaz",     "Parker",   "Cruz",
      "Edwards",   "Collins",   "Reyes",    "Stewart",  "Morris",
      "Morales",   "Murphy",    "Cook",     "Rogers",   "Peterson"};
  return kNames;
}

std::string RandomFullName(Random* rng) {
  const auto& first = FirstNames();
  const auto& last = LastNames();
  return first[rng->Uniform(first.size())] + " " +
         last[rng->Uniform(last.size())];
}

std::vector<std::string> RandomDistinctNames(Random* rng, size_t count) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> names;
  names.reserve(count);
  size_t guard = 0;
  while (names.size() < count) {
    DIME_CHECK_LT(++guard, count * 1000) << "name pool exhausted";
    std::string name = RandomFullName(rng);
    if (seen.insert(name).second) names.push_back(std::move(name));
  }
  return names;
}

std::string NameVariant(const std::string& full_name, Random* rng) {
  std::vector<std::string> parts = SplitAndTrim(full_name, ' ');
  if (parts.size() < 2) return full_name;
  const std::string& first = parts.front();
  const std::string& last = parts.back();
  switch (rng->Uniform(3)) {
    case 0:  // "N Tang"
      return std::string(1, first[0]) + " " + last;
    case 1: {  // "NJ Tang" (invented middle initial)
      char middle = static_cast<char>('A' + rng->Uniform(26));
      return std::string(1, first[0]) + std::string(1, middle) + " " + last;
    }
    default:  // "N. Tang"
      return std::string(1, first[0]) + ". " + last;
  }
}

const std::vector<std::string>& FillerWords() {
  static const auto& kWords = *new std::vector<std::string>{
      "efficient",  "scalable",   "towards",    "novel",       "robust",
      "adaptive",   "fast",       "effective",  "practical",   "general",
      "framework",  "approach",   "system",     "method",      "analysis",
      "study",      "evaluation", "survey",     "design",      "techniques",
      "via",        "using",      "through",    "based",       "aware",
      "improved",   "unified",    "automatic",  "dynamic",     "incremental",
      "principled", "modular",    "flexible",   "lightweight", "optimal",
      "revisited",  "rethinking", "exploring",  "understanding", "modeling",
      "empirical",  "theoretical","comparative","holistic",    "quantitative",
      "guided",     "driven",     "assisted",   "enhanced",    "accelerated",
      "managing",   "supporting", "enabling",   "exploiting",  "leveraging",
      "reliable",   "resilient",  "portable",   "interactive", "streamlined"};
  return kWords;
}

const std::vector<ProductCategory>& ProductCategories() {
  static const auto& kCategories = *new std::vector<ProductCategory>{
      {"Electronics",
       "Router",
       {"wireless", "router", "band", "gigabit"},
       {"wifi", "wireless", "broadband", "ethernet", "signal", "bandwidth",
        "network", "firewall", "antenna", "coverage", "ports", "dualband",
        "firmware", "lan"}},
      {"Electronics",
       "Adapter",
       {"usb", "adapter", "converter", "hub"},
       {"usb", "adapter", "plug", "converter", "cable", "charging", "port",
        "compatible", "hdmi", "dongle", "connector", "powered", "hub",
        "lan"}},
      {"Electronics",
       "Keyboard",
       {"mechanical", "keyboard", "gaming", "keys"},
       {"keys", "mechanical", "switches", "typing", "backlit", "keycaps",
        "ergonomic", "tactile", "macro", "numpad", "wired", "layout",
        "anti", "ghosting"}},
      {"Electronics",
       "Monitor",
       {"led", "monitor", "display", "screen"},
       {"screen", "display", "resolution", "panel", "inch", "refresh",
        "pixels", "brightness", "contrast", "bezel", "stand", "vesa",
        "color", "gamut"}},
      {"Electronics",
       "Headphones",
       {"noise", "cancelling", "headphones", "audio"},
       {"sound", "audio", "bass", "earcups", "noise", "cancelling",
        "bluetooth", "microphone", "drivers", "comfort", "foldable",
        "stereo", "playback", "pairing"}},
      {"Electronics",
       "Webcam",
       {"hd", "webcam", "camera", "video"},
       {"video", "camera", "streaming", "autofocus", "lens", "recording",
        "tripod", "privacy", "shutter", "conferencing", "facetime", "zoom",
        "mount", "fps"}},
      {"Home & Kitchen",
       "Blender",
       {"countertop", "blender", "smoothie", "pitcher"},
       {"blend", "smoothie", "pitcher", "blades", "crushing", "ice",
        "pulse", "speeds", "jar", "motor", "puree", "frozen", "dishwasher",
        "watts"}},
      {"Home & Kitchen",
       "Toaster",
       {"slice", "toaster", "stainless", "bagel"},
       {"toast", "bread", "slots", "browning", "bagel", "defrost", "crumb",
        "tray", "slice", "lever", "settings", "reheat", "wide", "shade"}},
      {"Home & Kitchen",
       "Cookware",
       {"nonstick", "cookware", "pan", "set"},
       {"pan", "skillet", "nonstick", "saucepan", "induction", "handles",
        "coating", "oven", "simmer", "frying", "lids", "cooking", "pots",
        "ceramic"}},
      {"Home & Kitchen",
       "Vacuum",
       {"cordless", "vacuum", "cleaner", "suction"},
       {"suction", "vacuum", "dust", "filter", "cordless", "carpet",
        "hardwood", "brush", "bin", "allergen", "pet", "hair", "crevice",
        "swivel"}},
      {"Office Products",
       "Printer",
       {"inkjet", "printer", "allinone", "print"},
       {"print", "ink", "cartridge", "duplex", "scanner", "copier",
        "pages", "toner", "tray", "borderless", "dpi", "sheet", "feeder",
        "monochrome"}},
      {"Office Products",
       "Stapler",
       {"desktop", "stapler", "heavy", "duty"},
       {"staples", "sheets", "jam", "desk", "binding", "capacity",
        "ergonomic", "grip", "reload", "compact", "fastening", "spring",
        "documents", "metal"}},
      {"Office Products",
       "Notebook",
       {"ruled", "notebook", "journal", "pages"},
       {"pages", "ruled", "paper", "binding", "hardcover", "journal",
        "writing", "margin", "spiral", "sheets", "bookmark", "pocket",
        "acid", "lined"}},
      {"Office Products",
       "Desk Chair",
       {"ergonomic", "office", "chair", "mesh"},
       {"lumbar", "ergonomic", "swivel", "armrest", "mesh", "cushion",
        "recline", "height", "adjustable", "casters", "posture", "tilt",
        "seat", "backrest"}},
      {"Toys & Games",
       "Board Game",
       {"family", "board", "game", "strategy"},
       {"players", "dice", "cards", "strategy", "turns", "tokens",
        "family", "rules", "rounds", "score", "tiles", "cooperative",
        "playtime", "expansion"}},
      {"Toys & Games",
       "Puzzle",
       {"jigsaw", "puzzle", "piece", "landscape"},
       {"pieces", "jigsaw", "interlocking", "artwork", "poster",
        "landscape", "gradient", "sorting", "finished", "cardboard",
        "reference", "challenge", "collage", "mural"}},
      {"Toys & Games",
       "Action Figure",
       {"collectible", "action", "figure", "articulated"},
       {"articulated", "figure", "collectible", "poseable", "accessories",
        "sculpt", "joints", "diorama", "paint", "packaging", "scale",
        "hero", "villain", "display"}},
      {"Toys & Games",
       "Building Blocks",
       {"creative", "building", "blocks", "bricks"},
       {"bricks", "blocks", "building", "interlocking", "minifigure",
        "instructions", "baseplate", "studs", "creative", "sets", "motor",
        "skills", "colors", "stem"}},
      {"Beauty",
       "Shampoo",
       {"moisturizing", "shampoo", "hair", "care"},
       {"hair", "scalp", "lather", "sulfate", "conditioner", "keratin",
        "hydrating", "shine", "frizz", "botanical", "paraben", "cleanse",
        "volume", "strands"}},
      {"Beauty",
       "Lipstick",
       {"matte", "lipstick", "longwear", "shade"},
       {"shade", "matte", "pigment", "lips", "creamy", "finish",
        "longwear", "swatch", "gloss", "velvet", "smudge", "hydrating",
        "bold", "nude"}},
      {"Beauty",
       "Moisturizer",
       {"daily", "moisturizer", "face", "cream"},
       {"skin", "hydration", "cream", "hyaluronic", "spf", "serum",
        "barrier", "fragrance", "sensitive", "absorbs", "glow",
        "ceramide", "lightweight", "dermatologist"}},
      {"Beauty",
       "Perfume",
       {"eau", "parfum", "fragrance", "spray"},
       {"fragrance", "notes", "citrus", "floral", "musk", "woody",
        "amber", "spray", "lasting", "scent", "vanilla", "bergamot",
        "sillage", "bottle"}},
  };
  return kCategories;
}

std::vector<int> SiblingCategories(int category_index) {
  const auto& cats = ProductCategories();
  DIME_CHECK_GE(category_index, 0);
  DIME_CHECK_LT(static_cast<size_t>(category_index), cats.size());
  std::vector<int> siblings;
  for (size_t i = 0; i < cats.size(); ++i) {
    if (static_cast<int>(i) != category_index &&
        cats[i].department == cats[category_index].department) {
      siblings.push_back(static_cast<int>(i));
    }
  }
  return siblings;
}

const std::vector<std::string>& BrandNames() {
  static const auto& kBrands = *new std::vector<std::string>{
      "Acme",    "Zenith",  "Nimbus",  "Vertex", "Polaris", "Quanta",
      "Helio",   "Borealis","Cascade", "Summit", "Orion",   "Lumen",
      "Pinnacle","Aurora",  "Stratus", "Nova",   "Kinetic", "Apex"};
  return kBrands;
}

}  // namespace dime
