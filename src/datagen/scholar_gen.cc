#include "src/datagen/scholar_gen.h"

#include <algorithm>
#include <cctype>

#include "src/common/logging.h"
#include "src/datagen/names.h"
#include "src/ontology/builtin.h"

namespace dime {
namespace {

/// Indices into ResearchAreas() by broad field.
std::vector<int> AreasOfField(const std::string& field) {
  std::vector<int> out;
  const auto& areas = ResearchAreas();
  for (size_t i = 0; i < areas.size(); ++i) {
    if (areas[i].field == field) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::string MakeTitle(const ResearchArea& area, Random* rng) {
  // 3 subfield keywords + 3 fillers, interleaved.
  const auto& fillers = FillerWords();
  std::vector<std::string> words;
  for (int i = 0; i < 3; ++i) {
    words.push_back(area.keywords[rng->Uniform(area.keywords.size())]);
  }
  for (int i = 0; i < 3; ++i) {
    words.push_back(fillers[rng->Uniform(fillers.size())]);
  }
  rng->Shuffle(&words);
  // Capitalize the first word for looks.
  if (!words[0].empty()) {
    words[0][0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(words[0][0])));
  }
  std::string title;
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) title.push_back(' ');
    title += words[i];
  }
  return title;
}

/// Publishers correlate with the broad field (as on real pages): CS venues
/// are published by ACM/IEEE/Springer, chemistry by RSC/Wiley, and so on.
const std::vector<std::string>& PublishersForField(const std::string& field) {
  static const auto& kCs = *new std::vector<std::string>{
      "ACM", "IEEE", "Springer"};
  static const auto& kChem = *new std::vector<std::string>{
      "RSC", "Wiley", "Elsevier"};
  static const auto& kOther = *new std::vector<std::string>{
      "Elsevier", "Springer", "Wiley"};
  if (field == "Computer Science") return kCs;
  if (field == "Chemical Sciences") return kChem;
  return kOther;
}

Entity MakePub(const std::string& id, const ResearchArea& area,
               std::vector<std::string> authors, Random* rng) {
  Entity e;
  e.id = id;
  e.values.resize(6);
  e.values[kScholarTitle] = {MakeTitle(area, rng)};
  e.values[kScholarAuthors] = std::move(authors);
  e.values[kScholarDate] = {std::to_string(1995 + rng->Uniform(23))};
  e.values[kScholarVenue] = {
      area.venues[rng->Uniform(area.venues.size())] + " " +
      std::to_string(1995 + rng->Uniform(23))};
  int first_page = static_cast<int>(rng->Uniform(900)) + 1;
  e.values[kScholarPages] = {std::to_string(first_page) + "-" +
                             std::to_string(first_page + 8 +
                                            static_cast<int>(rng->Uniform(20)))};
  const auto& publishers = PublishersForField(area.field);
  e.values[kScholarPublisher] = {publishers[rng->Uniform(publishers.size())]};
  return e;
}

}  // namespace

Schema ScholarSchema() {
  return Schema(
      {"Title", "Authors", "Date", "Venue", "Pages", "Publisher"});
}

Group GenerateScholarGroup(const std::string& owner_name,
                           const ScholarGenOptions& options) {
  Random rng(options.seed);
  Group group;
  group.name = owner_name;
  group.schema = ScholarSchema();

  const auto& areas = ResearchAreas();
  std::vector<int> cs_areas = AreasOfField("Computer Science");
  DIME_CHECK_GE(cs_areas.size(), options.primary_subfields + 1);

  // Owner's subfields: a random subset of CS areas.
  rng.Shuffle(&cs_areas);
  std::vector<int> owner_areas(cs_areas.begin(),
                               cs_areas.begin() + options.primary_subfields);
  std::vector<int> foreign_cs_areas(cs_areas.begin() + options.primary_subfields,
                                    cs_areas.end());

  // Collaborator pools: the owner's main pool (with hubs), a small
  // secondary-field pool, and per-namesake pools — all disjoint.
  size_t total_names = options.coauthor_pool + 4 + 6 + 6 + 8;
  std::vector<std::string> names = RandomDistinctNames(&rng, total_names);
  size_t cursor = 0;
  std::vector<std::string> main_pool(names.begin() + cursor,
                                     names.begin() + cursor +
                                         options.coauthor_pool);
  cursor += options.coauthor_pool;
  std::vector<std::string> secondary_pool(names.begin() + cursor,
                                          names.begin() + cursor + 4);
  cursor += 4;
  std::vector<std::string> chem_pool(names.begin() + cursor,
                                     names.begin() + cursor + 6);
  cursor += 6;
  std::vector<std::string> cs_namesake_pool(names.begin() + cursor,
                                            names.begin() + cursor + 6);
  cursor += 6;
  std::vector<std::string> garbage_pool(names.begin() + cursor,
                                        names.begin() + cursor + 8);

  std::vector<std::pair<Entity, uint8_t>> rows;  // entity, is_error
  int next_id = 0;
  auto id = [&next_id]() { return "p" + std::to_string(next_id++); };

  auto sample_coauthors = [&](const std::vector<std::string>& pool,
                              size_t count) {
    std::vector<std::string> out;
    std::vector<size_t> picks =
        rng.SampleWithoutReplacement(pool.size(), std::min(count, pool.size()));
    for (size_t p : picks) out.push_back(pool[p]);
    return out;
  };

  // --- Correct publications of the owner (the pivot's population). -------
  for (size_t i = 0; i < options.num_correct; ++i) {
    // Favor the first subfield, spread the rest.
    size_t which = rng.Bernoulli(0.55)
                       ? 0
                       : 1 + rng.Uniform(owner_areas.size() - 1);
    const ResearchArea& area = areas[owner_areas[which]];

    std::vector<std::string> authors{owner_name};
    for (size_t h = 0; h < options.num_hub_coauthors; ++h) {
      if (rng.Bernoulli(options.hub_probability)) authors.push_back(main_pool[h]);
    }
    size_t extra = options.min_coauthors +
                   rng.Uniform(options.max_coauthors - options.min_coauthors + 1);
    for (const std::string& c : sample_coauthors(
             std::vector<std::string>(main_pool.begin() +
                                          options.num_hub_coauthors,
                                      main_pool.end()),
             extra)) {
      authors.push_back(c);
    }
    rows.emplace_back(MakePub(id(), area, std::move(authors), &rng), 0);
  }

  // --- Correct pubs under a name variant (NR1 false positives). ----------
  for (size_t i = 0; i < options.variant_correct_pubs; ++i) {
    const ResearchArea& area =
        areas[owner_areas[rng.Uniform(owner_areas.size())]];
    std::vector<std::string> authors{NameVariant(owner_name, &rng)};
    // Solo variants share no author with the pivot at all (NR1's false
    // positives); the rest carry one coauthor, which usually reattaches
    // them to the pivot through phi_2.
    if (!rng.Bernoulli(options.solo_variant_probability)) {
      for (const std::string& c : sample_coauthors(
               std::vector<std::string>(main_pool.begin() +
                                            options.num_hub_coauthors,
                                        main_pool.end()),
               1)) {
        authors.push_back(c);
      }
    }
    rows.emplace_back(MakePub(id(), area, std::move(authors), &rng), 0);
  }

  // --- Correct cross-disciplinary pubs (NR2 false positives). ------------
  std::vector<int> bio_areas = AreasOfField("Life Sciences & Earth Sciences");
  DIME_CHECK(!bio_areas.empty());
  for (size_t i = 0; i < options.secondary_field_pubs; ++i) {
    const ResearchArea& area = areas[bio_areas[rng.Uniform(bio_areas.size())]];
    std::vector<std::string> authors{owner_name};
    for (const std::string& c : sample_coauthors(secondary_pool, 2)) {
      authors.push_back(c);
    }
    rows.emplace_back(MakePub(id(), area, std::move(authors), &rng), 0);
  }

  // --- Errors: exact-name namesake in a different broad field. -----------
  std::vector<int> chem_areas = AreasOfField("Chemical Sciences");
  DIME_CHECK(!chem_areas.empty());
  int chem_area = chem_areas[rng.Uniform(chem_areas.size())];
  for (size_t i = 0; i < options.chem_namesake_pubs; ++i) {
    std::vector<std::string> authors{owner_name};
    for (const std::string& c : sample_coauthors(chem_pool, 3)) {
      authors.push_back(c);
    }
    rows.emplace_back(MakePub(id(), areas[chem_area], std::move(authors), &rng),
                      1);
  }

  // --- Correct side-interest pubs in an untouched CS subfield (NR3 false
  // --- positives: venue similarity to the pivot stays at 0.5, title
  // --- similarity drops below the NR3 cut). -------------------------------
  DIME_CHECK_GE(foreign_cs_areas.size(), 2u);
  int side_area = foreign_cs_areas[0];
  for (size_t i = 0; i < options.side_interest_pubs; ++i) {
    std::vector<std::string> authors{owner_name};
    for (const std::string& c : sample_coauthors(secondary_pool, 1)) {
      authors.push_back(c);
    }
    rows.emplace_back(MakePub(id(), areas[side_area], std::move(authors), &rng),
                      0);
  }

  // --- Errors: exact-name namesake in a different CS subfield. -----------
  int foreign_cs =
      foreign_cs_areas[1 + rng.Uniform(foreign_cs_areas.size() - 1)];
  for (size_t i = 0; i < options.cs_namesake_pubs; ++i) {
    std::vector<std::string> authors{owner_name};
    // Namesakes in big-lab subfields have longer author lists, which keeps
    // their Jaccard(Authors) with the owner's publications low.
    for (const std::string& c : sample_coauthors(cs_namesake_pool, 5)) {
      authors.push_back(c);
    }
    rows.emplace_back(
        MakePub(id(), areas[foreign_cs], std::move(authors), &rng), 1);
  }

  // --- Errors: garbage entries with no shared author. Many of them sit in
  // --- the owner's own subfields (Scholar mis-assignments cluster around
  // --- similar venues), which is exactly what forces positive rules to
  // --- stay author-guarded: a venue-only rule would pull these into the
  // --- pivot. ------------------------------------------------------------
  for (size_t i = 0; i < options.garbage_pubs; ++i) {
    const ResearchArea& venue_area =
        rng.Bernoulli(0.6)
            ? areas[owner_areas[rng.Uniform(owner_areas.size())]]
            : areas[rng.Uniform(areas.size())];
    std::vector<std::string> authors = sample_coauthors(garbage_pool, 3);
    Entity pub = MakePub(id(), venue_area, std::move(authors), &rng);
    // The title of a mis-assigned entry is usually off-topic even when the
    // venue looks plausible.
    const ResearchArea& title_area = areas[rng.Uniform(areas.size())];
    pub.values[kScholarTitle] = {MakeTitle(title_area, &rng)};
    rows.emplace_back(std::move(pub), 1);
  }

  rng.Shuffle(&rows);
  group.entities.reserve(rows.size());
  group.truth.reserve(rows.size());
  for (auto& [entity, is_error] : rows) {
    group.entities.push_back(std::move(entity));
    group.truth.push_back(is_error);
  }
  return group;
}

}  // namespace dime
