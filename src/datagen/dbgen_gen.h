#ifndef DIME_DATAGEN_DBGEN_GEN_H_
#define DIME_DATAGEN_DBGEN_GEN_H_

#include <cstdint>

#include "src/entity/entity.h"
#include "src/rules/rule.h"

/// \file dbgen_gen.h
/// DBGen-style large-group generator for the scale experiment (the
/// Gen(20k)..Gen(100k) table in Section VI-B). The paper uses the UT
/// Austin "DBGen/Riddle" record generator; we synthesize groups with the
/// same structure the experiment needs: one dominant block of records
/// connected through shared reference tokens and overlapping name words,
/// plus a tail of small blocks that play the mis-categorized role. Two
/// positive and two negative matching rules are provided, matching the
/// experiment's setup ("two positive entity matching rules and two
/// negative entity matching rules").

namespace dime {

struct DbgenOptions {
  size_t num_entities = 20000;
  double core_fraction = 0.85;  ///< entities in the dominant block
  size_t window = 20;           ///< reference-sharing neighborhood
  size_t refs_per_entity = 5;
  size_t name_words = 4;
  size_t small_block_max = 6;   ///< max size of tail blocks
  uint64_t seed = 1;
};

Schema DbgenSchema();

inline constexpr int kDbgenName = 0;
inline constexpr int kDbgenRefs = 1;

/// Generates the group (truth marks the tail blocks as errors).
Group GenerateDbgenGroup(const DbgenOptions& options);

/// Presets for the sharded-engine scale experiments (DESIGN.md §7.9).
/// Per-entity structure (window, refs, name words) is the 20k default, so
/// signature-list lengths stay bounded and the candidate volume grows
/// linearly with n — the regime where the engine's near-linear multicore
/// scaling is measurable. These are the canonical definitions shared by
/// bench_fig9_efficiency --only dbgen, the ctest `scale` smoke, and CI's
/// bench-scale job; keep them in sync with EXPERIMENTS.md.
DbgenOptions DbgenPreset100k(uint64_t seed = 1);
DbgenOptions DbgenPreset1M(uint64_t seed = 1);

/// The two positive and two negative rules used by the scale experiment.
std::vector<PositiveRule> DbgenPositiveRules();
std::vector<NegativeRule> DbgenNegativeRules();

}  // namespace dime

#endif  // DIME_DATAGEN_DBGEN_GEN_H_
