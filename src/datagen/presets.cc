#include "src/datagen/presets.h"

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/datagen/amazon_gen.h"
#include "src/datagen/scholar_gen.h"
#include "src/ontology/builtin.h"
#include "src/text/tokenizer.h"

namespace dime {

ScholarSetup MakeScholarSetup() {
  ScholarSetup setup;
  setup.schema = ScholarSchema();
  setup.venue_tree = std::make_unique<Ontology>(BuildVenueOntology());
  setup.context.ontologies.push_back(
      OntologyRef{setup.venue_tree.get(), MapMode::kExactName});
  setup.context.ontologies.push_back(
      OntologyRef{setup.venue_tree.get(), MapMode::kKeyword});

  setup.positive.resize(2);
  DIME_CHECK(ParsePositiveRule("overlap(Authors) >= 2", setup.schema,
                               &setup.positive[0]));
  DIME_CHECK(ParsePositiveRule(
      "overlap(Authors) >= 1 ^ ontology(Venue) >= 0.75", setup.schema,
      &setup.positive[1]));

  setup.negative.resize(3);
  DIME_CHECK(ParseNegativeRule("overlap(Authors) <= 0", setup.schema,
                               &setup.negative[0]));
  DIME_CHECK(ParseNegativeRule(
      "overlap(Authors) <= 1 ^ ontology(Venue) <= 0.25", setup.schema,
      &setup.negative[1]));
  DIME_CHECK(ParseNegativeRule(
      "overlap(Authors) <= 1 ^ ontology(Title:words@1) <= 0.7", setup.schema,
      &setup.negative[2]));

  auto feature = [&](int attr, SimFunc func, TokenMode mode,
                     int ontology_index) {
    FeatureSpec s;
    s.attr = attr;
    s.func = func;
    s.mode = mode;
    s.ontology_index = ontology_index;
    setup.features.push_back(s);
  };
  feature(kScholarAuthors, SimFunc::kOverlap, TokenMode::kValueList, 0);
  feature(kScholarAuthors, SimFunc::kJaccard, TokenMode::kValueList, 0);
  feature(kScholarTitle, SimFunc::kJaccard, TokenMode::kWords, 0);
  feature(kScholarVenue, SimFunc::kOntology, TokenMode::kValueList, 0);
  feature(kScholarTitle, SimFunc::kOntology, TokenMode::kWords, 1);
  feature(kScholarPublisher, SimFunc::kJaccard, TokenMode::kWords, 0);

  setup.rulegen_features = setup.features;
  auto rg = [&](int attr, SimFunc func, TokenMode mode, int ontology_index) {
    FeatureSpec s;
    s.attr = attr;
    s.func = func;
    s.mode = mode;
    s.ontology_index = ontology_index;
    setup.rulegen_features.push_back(s);
  };
  // Noise features (Date and Pages carry no categorization signal): part
  // of what separates learners that resist overfitting from those that
  // don't (Fig. 10's DecisionTree discussion).
  rg(kScholarDate, SimFunc::kJaccard, TokenMode::kWords, 0);
  rg(kScholarPages, SimFunc::kJaccard, TokenMode::kWords, 0);
  rg(kScholarAuthors, SimFunc::kDice, TokenMode::kValueList, 0);
  rg(kScholarAuthors, SimFunc::kCosine, TokenMode::kValueList, 0);
  rg(kScholarTitle, SimFunc::kOverlap, TokenMode::kWords, 0);
  rg(kScholarTitle, SimFunc::kDice, TokenMode::kWords, 0);
  rg(kScholarTitle, SimFunc::kCosine, TokenMode::kWords, 0);
  rg(kScholarTitle, SimFunc::kEditSim, TokenMode::kValueList, 0);
  rg(kScholarVenue, SimFunc::kJaccard, TokenMode::kWords, 0);
  rg(kScholarVenue, SimFunc::kEditSim, TokenMode::kValueList, 0);
  rg(kScholarPages, SimFunc::kEditSim, TokenMode::kValueList, 0);
  rg(kScholarDate, SimFunc::kEditSim, TokenMode::kValueList, 0);

  setup.cr.attribute_attrs = {kScholarTitle, kScholarVenue};
  setup.cr.reference_attrs = {kScholarAuthors};
  setup.cr.alpha = 0.4;
  setup.cr.candidate_thresholds = {0.06, 0.1, 0.15};

  // SIFI expert structure over the feature library above:
  // match iff ov(Authors) >= t0, or ov(Authors) >= t1 ^ on(Venue) >= t2.
  setup.sifi.conjunctions = {{0}, {0, 3}};
  return setup;
}

AmazonSetup MakeAmazonSetup(const std::vector<Group>& corpus,
                            const HierarchyOptions& hierarchy) {
  AmazonSetup setup;
  setup.schema = AmazonSchema();

  // Fit the LDA theme hierarchy on every description in the corpus.
  std::vector<std::vector<std::string>> docs;
  for (const Group& g : corpus) {
    for (const Entity& e : g.entities) {
      std::string joined;
      for (const std::string& v : e.value(kAmazonDescription)) {
        joined += v;
        joined.push_back(' ');
      }
      docs.push_back(WordTokenize(joined));
    }
  }
  setup.theme_tree =
      std::make_unique<Ontology>(BuildThemeHierarchy(docs, hierarchy));
  setup.context.ontologies.push_back(
      OntologyRef{setup.theme_tree.get(), MapMode::kKeyword});

  setup.positive.resize(3);
  DIME_CHECK(ParsePositiveRule(
      "overlap(Also_bought) >= 2 ^ overlap(Also_viewed) >= 2", setup.schema,
      &setup.positive[0]));
  DIME_CHECK(ParsePositiveRule(
      "overlap(Bought_together) >= 1 ^ ontology(Description:words) >= 0.75",
      setup.schema, &setup.positive[1]));
  DIME_CHECK(ParsePositiveRule(
      "overlap(Buy_after_viewing) >= 1 ^ ontology(Description:words) >= 0.75",
      setup.schema, &setup.positive[2]));

  setup.negative.resize(2);
  DIME_CHECK(ParseNegativeRule(
      "overlap(Also_bought) <= 0 ^ ontology(Description:words) <= 0.5",
      setup.schema, &setup.negative[0]));
  DIME_CHECK(ParseNegativeRule(
      "overlap(Also_viewed) <= 0 ^ ontology(Description:words) <= 0.5",
      setup.schema, &setup.negative[1]));

  auto feature = [&](int attr, SimFunc func, TokenMode mode,
                     int ontology_index) {
    FeatureSpec s;
    s.attr = attr;
    s.func = func;
    s.mode = mode;
    s.ontology_index = ontology_index;
    setup.features.push_back(s);
  };
  feature(kAmazonAlsoBought, SimFunc::kOverlap, TokenMode::kValueList, 0);
  feature(kAmazonAlsoViewed, SimFunc::kOverlap, TokenMode::kValueList, 0);
  feature(kAmazonBoughtTogether, SimFunc::kOverlap, TokenMode::kValueList, 0);
  feature(kAmazonBuyAfterViewing, SimFunc::kOverlap, TokenMode::kValueList, 0);
  feature(kAmazonDescription, SimFunc::kOntology, TokenMode::kWords, 0);
  feature(kAmazonTitle, SimFunc::kJaccard, TokenMode::kWords, 0);

  setup.rulegen_features = setup.features;
  auto rg = [&](int attr, SimFunc func, TokenMode mode, int ontology_index) {
    FeatureSpec s;
    s.attr = attr;
    s.func = func;
    s.mode = mode;
    s.ontology_index = ontology_index;
    setup.rulegen_features.push_back(s);
  };
  // Noise feature: Brand is uncorrelated with the category.
  rg(kAmazonBrand, SimFunc::kJaccard, TokenMode::kWords, 0);
  rg(kAmazonAlsoBought, SimFunc::kJaccard, TokenMode::kValueList, 0);
  rg(kAmazonAlsoViewed, SimFunc::kJaccard, TokenMode::kValueList, 0);
  rg(kAmazonBoughtTogether, SimFunc::kJaccard, TokenMode::kValueList, 0);
  rg(kAmazonBuyAfterViewing, SimFunc::kJaccard, TokenMode::kValueList, 0);
  rg(kAmazonDescription, SimFunc::kJaccard, TokenMode::kWords, 0);
  rg(kAmazonDescription, SimFunc::kDice, TokenMode::kWords, 0);
  rg(kAmazonDescription, SimFunc::kCosine, TokenMode::kWords, 0);
  rg(kAmazonTitle, SimFunc::kDice, TokenMode::kWords, 0);
  rg(kAmazonTitle, SimFunc::kEditSim, TokenMode::kValueList, 0);
  rg(kAmazonBrand, SimFunc::kEditSim, TokenMode::kValueList, 0);

  setup.cr.attribute_attrs = {kAmazonTitle, kAmazonDescription};
  setup.cr.reference_attrs = {kAmazonAlsoBought, kAmazonAlsoViewed};
  setup.cr.alpha = 0.4;
  setup.cr.candidate_thresholds = {0.08, 0.15, 0.2};

  // match iff ov(Also_bought) >= t0 ^ ov(Also_viewed) >= t1,
  //        or ov(Bought_together) >= t2 ^ on(Description) >= t3.
  setup.sifi.conjunctions = {{0, 1}, {2, 4}};
  return setup;
}

std::vector<ExamplePair> SampleExamplePairs(const std::vector<Group>& groups,
                                            size_t positives_per_group,
                                            size_t negatives_per_group,
                                            uint64_t seed) {
  Random rng(seed);
  std::vector<ExamplePair> examples;
  for (size_t g = 0; g < groups.size(); ++g) {
    const Group& group = groups[g];
    DIME_CHECK(group.has_truth());
    std::vector<int> correct, errors;
    for (size_t e = 0; e < group.size(); ++e) {
      (group.truth[e] ? errors : correct).push_back(static_cast<int>(e));
    }
    if (correct.size() >= 2) {
      for (size_t i = 0; i < positives_per_group; ++i) {
        int a = correct[rng.Uniform(correct.size())];
        int b = correct[rng.Uniform(correct.size())];
        if (a == b) continue;
        examples.push_back(
            ExamplePair{static_cast<int>(g), a, b, /*positive=*/true});
      }
    }
    if (!errors.empty() && !correct.empty()) {
      for (size_t i = 0; i < negatives_per_group; ++i) {
        int a = errors[rng.Uniform(errors.size())];
        int b = correct[rng.Uniform(correct.size())];
        examples.push_back(
            ExamplePair{static_cast<int>(g), a, b, /*positive=*/false});
      }
    }
  }
  return examples;
}

}  // namespace dime
