#ifndef DIME_DATAGEN_NAMES_H_
#define DIME_DATAGEN_NAMES_H_

#include <string>
#include <vector>

#include "src/common/random.h"

/// \file names.h
/// Deterministic vocabulary pools backing the synthetic dataset generators
/// (the substitution for the paper's crawled Google Scholar pages and the
/// McAuley Amazon dump; see DESIGN.md §3).

namespace dime {

/// First/last name pools for author-name synthesis.
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();

/// A full name "First Last" drawn uniformly.
std::string RandomFullName(Random* rng);

/// `count` distinct full names.
std::vector<std::string> RandomDistinctNames(Random* rng, size_t count);

/// A plausible "G. Scholar"-style variant of a full name: initials of the
/// first name fused with the last name ("Nan Tang" -> "N Tang" or
/// "NJ Tang"). Used to model the name-spelling variants that break the
/// Authors-overlap rules.
std::string NameVariant(const std::string& full_name, Random* rng);

/// Generic title/description filler words (connectives, hype words).
const std::vector<std::string>& FillerWords();

/// One product category of the Amazon-like generator.
struct ProductCategory {
  std::string department;              ///< e.g. "Electronics"
  std::string name;                    ///< e.g. "Router"
  std::vector<std::string> title_words;
  std::vector<std::string> desc_words; ///< topical description vocabulary
};

/// The full category table (several departments, ~20 categories).
const std::vector<ProductCategory>& ProductCategories();

/// Indices of the categories sharing `department` (sibling categories are
/// the source of injected mis-categorized products).
std::vector<int> SiblingCategories(int category_index);

/// Brand names for product titles.
const std::vector<std::string>& BrandNames();

}  // namespace dime

#endif  // DIME_DATAGEN_NAMES_H_
