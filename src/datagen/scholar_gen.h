#ifndef DIME_DATAGEN_SCHOLAR_GEN_H_
#define DIME_DATAGEN_SCHOLAR_GEN_H_

#include <cstdint>
#include <string>

#include "src/entity/entity.h"

/// \file scholar_gen.h
/// Synthetic Google-Scholar-page generator (the substitute for the paper's
/// 200 crawled PC-member pages; DESIGN.md §3). A page is one Group over
/// the relation (Title, Authors, Date, Venue, Pages, Publisher) whose
/// population mirrors the failure modes the paper's rules target:
///
///  * correct publications of the page owner, spanning a few CS subfields,
///    connected through the owner's name, recurring "hub" collaborators
///    and same-subfield venues — these form the pivot partition;
///  * correct publications written under a name VARIANT ("NJ Tang") with
///    few coauthors: they can fall outside the pivot and are the false
///    positives of negative rule NR1 (no author overlap);
///  * correct cross-disciplinary publications in another broad field with
///    a separate small collaborator pool: false positives of NR2;
///  * mis-categorized publications of an exact-name namesake in a
///    different broad field (the paper's chemistry Nan Tang): caught by
///    NR2 via the venue ontology;
///  * mis-categorized publications of an exact-name namesake in a
///    different *CS* subfield: venue similarity stays at 0.5, so only the
///    title-ontology rule NR3 catches them;
///  * garbage entries sharing no author with the page: caught by NR1.

namespace dime {

struct ScholarGenOptions {
  size_t num_correct = 320;        ///< owner publications
  size_t primary_subfields = 3;    ///< CS subfields the owner publishes in
  size_t coauthor_pool = 36;
  size_t num_hub_coauthors = 4;    ///< frequent collaborators gluing the pivot
  size_t min_coauthors = 1;
  size_t max_coauthors = 4;
  double hub_probability = 0.6;    ///< chance each hub joins a publication

  size_t variant_correct_pubs = 2;    ///< owner-name-variant correct pubs
  double solo_variant_probability = 0.35;  ///< variant pubs with no coauthor
  size_t secondary_field_pubs = 1;    ///< cross-disciplinary correct pubs
  /// Correct pubs in a CS subfield the owner otherwise never touches
  /// (side interests): same-broad-field venue keeps NR2 quiet, but the
  /// off-subfield title makes them NR3 false positives.
  size_t side_interest_pubs = 1;
  size_t chem_namesake_pubs = 4;      ///< errors: other-broad-field namesake
  size_t cs_namesake_pubs = 3;        ///< errors: other-CS-subfield namesake
  size_t garbage_pubs = 6;            ///< errors: no shared author at all

  uint64_t seed = 1;
};

/// The schema used by the generator (shared with the presets).
Schema ScholarSchema();

/// Attribute indices in ScholarSchema().
inline constexpr int kScholarTitle = 0;
inline constexpr int kScholarAuthors = 1;
inline constexpr int kScholarDate = 2;
inline constexpr int kScholarVenue = 3;
inline constexpr int kScholarPages = 4;
inline constexpr int kScholarPublisher = 5;

/// Generates one page for `owner_name` with ground truth filled in.
/// Entities are shuffled so errors are not clustered at the end.
Group GenerateScholarGroup(const std::string& owner_name,
                           const ScholarGenOptions& options);

}  // namespace dime

#endif  // DIME_DATAGEN_SCHOLAR_GEN_H_
