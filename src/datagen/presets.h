#ifndef DIME_DATAGEN_PRESETS_H_
#define DIME_DATAGEN_PRESETS_H_

#include <memory>
#include <vector>

#include "src/baselines/cr.h"
#include "src/baselines/sifi.h"
#include "src/core/preprocess.h"
#include "src/rulegen/candidates.h"
#include "src/rules/rule.h"
#include "src/topicmodel/hierarchy_builder.h"

/// \file presets.h
/// Ready-made experiment configurations: the rule sets of Section VI-A,
/// the evaluation contexts (ontologies + mapping modes), the feature
/// libraries used by rule generation and the ML baselines, the CR
/// configurations, and the SIFI expert structures. Benches and examples
/// build on these instead of re-declaring rules.

namespace dime {

/// Configuration for Google-Scholar-style groups.
struct ScholarSetup {
  Schema schema;
  std::unique_ptr<Ontology> venue_tree;
  /// context.ontologies[0] = venue tree, exact-name mapping (Venue);
  /// context.ontologies[1] = venue tree, keyword mapping (Title).
  DimeContext context;
  /// phi_1+: overlap(Authors) >= 2
  /// phi_2+: overlap(Authors) >= 1 ^ ontology(Venue) >= 0.75
  std::vector<PositiveRule> positive;
  /// NR1: overlap(Authors) <= 0
  /// NR2: overlap(Authors) <= 1 ^ ontology(Venue) <= 0.25
  /// NR3: overlap(Authors) <= 1 ^ ontology(Title) <= 0.7
  ///
  /// (The paper states NR3 with threshold 0.25; our title hierarchy maps
  /// titles to depth-3 subfield nodes where "different subfield" is 2/3,
  /// so the equivalent cut sits at 0.7 — see EXPERIMENTS.md.)
  std::vector<NegativeRule> negative;
  /// Feature library for rule generation / SVM / DecisionTree / SIFI.
  std::vector<FeatureSpec> features;
  /// Extended library for the rule-generation study (Fig. 10): every
  /// set-based function on every plausible attribute plus character-based
  /// similarity. The larger option space is what separates the learners —
  /// "DecisionTree failed to find the optimal similarity functions ...
  /// when there were a lot of options" (Exp-6).
  std::vector<FeatureSpec> rulegen_features;
  CrConfig cr;
  SifiStructure sifi;
};

ScholarSetup MakeScholarSetup();

/// Configuration for Amazon-style groups. The Description ontology is an
/// LDA theme hierarchy fitted on the given corpus (Section VI-A:
/// "we utilized LDA to learn a theme hierarchy structure").
struct AmazonSetup {
  Schema schema;
  std::unique_ptr<Ontology> theme_tree;
  /// context.ontologies[0] = theme tree, keyword mapping (Description).
  DimeContext context;
  /// phi_3+: ov(Also_bought) >= 2 ^ ov(Also_viewed) >= 2
  /// phi_4+: ov(Bought_together) >= 1 ^ on(Description) >= 0.75
  /// phi_5+: ov(Buy_after_viewing) >= 1 ^ on(Description) >= 0.75
  std::vector<PositiveRule> positive;
  /// phi_4-: ov(Also_bought) <= 0 ^ on(Description) <= 0.5
  /// phi_5-: ov(Also_viewed) <= 0 ^ on(Description) <= 0.5
  std::vector<NegativeRule> negative;
  std::vector<FeatureSpec> features;
  /// Extended library for the rule-generation study (see ScholarSetup).
  std::vector<FeatureSpec> rulegen_features;
  CrConfig cr;
  SifiStructure sifi;
};

AmazonSetup MakeAmazonSetup(const std::vector<Group>& corpus,
                            const HierarchyOptions& hierarchy = {});

/// Samples training example pairs from groups with ground truth: positive
/// examples pair two correct entities, negative examples pair an error
/// with a correct entity ("mis-categorized entities can be paired with any
/// other correctly categorized entities as good examples", Section V).
std::vector<ExamplePair> SampleExamplePairs(const std::vector<Group>& groups,
                                            size_t positives_per_group,
                                            size_t negatives_per_group,
                                            uint64_t seed);

}  // namespace dime

#endif  // DIME_DATAGEN_PRESETS_H_
