#ifndef DIME_COMMON_THREADS_H_
#define DIME_COMMON_THREADS_H_

/// \file threads.h
/// The single thread-count resolution rule for the whole tree. Every
/// binary and engine that used to call std::thread::hardware_concurrency()
/// its own way routes through ResolveThreadCount so the precedence is the
/// same everywhere:
///
///   1. an explicit request (a --threads flag, an options field) wins;
///   2. otherwise the DIME_THREADS environment variable, if set to a
///      positive integer;
///   3. otherwise std::thread::hardware_concurrency();
///   4. never less than 1.

namespace dime {

/// Resolves a requested thread count (0 = "pick for me") to a concrete
/// positive count using the precedence above.
unsigned ResolveThreadCount(unsigned requested);

}  // namespace dime

#endif  // DIME_COMMON_THREADS_H_
