#include "src/common/checksum.h"

#include <array>
#include <cstring>

namespace dime {
namespace {

// Slice-by-8 tables for the reflected IEEE polynomial 0xEDB88320.
// kCrcTables[0] is the classic byte-at-a-time table; table k folds a byte
// that sits k positions further into the stream. Built once at
// static-init time (constexpr, so actually at compile time).
constexpr std::array<std::array<uint32_t, 256>, 8> MakeCrc32Tables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    tables[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[k][i] =
          (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xFFu];
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kCrcTables =
    MakeCrc32Tables();

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  // Slice-by-8 main loop: consume two little-endian 32-bit words per
  // iteration (~1 GB/s vs ~300 MB/s bytewise — the snapshot loader
  // checksums every section on warm start, so this is on the cold-start
  // critical path after all). The word-folding trick is only valid for
  // little-endian loads; big-endian hosts take the bytewise tail loop.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (len >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = kCrcTables[7][lo & 0xFFu] ^ kCrcTables[6][(lo >> 8) & 0xFFu] ^
          kCrcTables[5][(lo >> 16) & 0xFFu] ^ kCrcTables[4][lo >> 24] ^
          kCrcTables[3][hi & 0xFFu] ^ kCrcTables[2][(hi >> 8) & 0xFFu] ^
          kCrcTables[1][(hi >> 16) & 0xFFu] ^ kCrcTables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
#endif
  for (size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kCrcTables[0][(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace dime
