#ifndef DIME_COMMON_CHECK_H_
#define DIME_COMMON_CHECK_H_

#include "src/common/logging.h"
#include "src/common/mutex.h"

/// \file check.h
/// Debug-only invariant checks. DIME_CHECK (logging.h) fires in every
/// build; the DIME_DCHECK family compiles to nothing under NDEBUG — the
/// condition is type-checked but never evaluated, so it may be
/// arbitrarily expensive (full scrollbar-monotonicity scans at engine
/// phase boundaries, say) without taxing release binaries.
///
/// Usage:
///   DIME_DCHECK(pivot < n) << "pivot out of range: " << pivot;
///   DIME_DCHECK_LE(prev.size(), cur.size());
///   DIME_DCHECK_HELD(mu_);   // static: tells Clang TSA the lock is held
///
/// DIME_DCHECK aborts with the streamed message in debug builds (it is
/// DIME_CHECK there); in release it is dead code the optimizer deletes.

#ifndef NDEBUG
#define DIME_DCHECK(condition) DIME_CHECK(condition)
#else
// `while (false)` keeps the condition and any streamed operands compiling
// (no unused-variable warnings, no #ifdef at call sites) while guaranteeing
// zero evaluations at runtime.
#define DIME_DCHECK(condition) \
  while (false) DIME_CHECK(condition)
#endif

#define DIME_DCHECK_EQ(a, b) DIME_DCHECK((a) == (b))
#define DIME_DCHECK_NE(a, b) DIME_DCHECK((a) != (b))
#define DIME_DCHECK_LT(a, b) DIME_DCHECK((a) < (b))
#define DIME_DCHECK_LE(a, b) DIME_DCHECK((a) <= (b))
#define DIME_DCHECK_GT(a, b) DIME_DCHECK((a) > (b))
#define DIME_DCHECK_GE(a, b) DIME_DCHECK((a) >= (b))

/// Asserts to the thread-safety analysis that `mu` (a dime::Mutex) is
/// held by the current thread. Purely static in every build — std::mutex
/// cannot report its holder at runtime — but under Clang it makes a
/// missing-lock path a compile error rather than a race. Use at the top
/// of private helpers that a locked caller invokes.
#define DIME_DCHECK_HELD(mu) (mu).AssertHeld()

#endif  // DIME_COMMON_CHECK_H_
