#ifndef DIME_COMMON_DEADLINE_H_
#define DIME_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <limits>

#include "src/common/status.h"

/// \file deadline.h
/// Monotonic deadlines and cooperative cancellation for the engines.
///
/// A production service cannot let one pathological group monopolize a
/// worker: RunDime / RunDimePlus / RunDimeParallel accept a RunControl and
/// check it at partition / rule-prefix boundaries, returning the partial
/// (but still monotone) scrollbar computed so far together with a
/// DEADLINE_EXCEEDED or CANCELLED status.
///
/// Deadlines are measured on std::chrono::steady_clock so wall-clock
/// adjustments cannot fire or starve them.

namespace dime {

/// A point on the monotonic clock after which work should stop. Default
/// constructed deadlines are infinite (never expire), so threading a
/// Deadline through a call chain costs nothing when unused.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite: never expires.
  Deadline() : when_(Clock::time_point::max()), infinite_(true) {}

  explicit Deadline(Clock::time_point when) : when_(when), infinite_(false) {}

  /// A deadline `duration` from now.
  template <typename Rep, typename Period>
  static Deadline After(std::chrono::duration<Rep, Period> duration) {
    return Deadline(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       duration));
  }

  static Deadline AfterMillis(int64_t millis) {
    return After(std::chrono::milliseconds(millis));
  }

  /// Already expired (useful in tests: forces immediate truncation).
  static Deadline Expired() { return Deadline(Clock::time_point::min()); }

  static Deadline Infinite() { return Deadline(); }

  bool is_infinite() const { return infinite_; }

  bool HasExpired() const { return !infinite_ && Clock::now() >= when_; }

  Clock::time_point time() const { return when_; }

 private:
  Clock::time_point when_;
  bool infinite_;
};

/// Cooperative cancellation: one writer flips the flag, any number of
/// workers poll it. Copyable handles are not provided — share by pointer
/// (the engines take `const CancellationToken*`, nullptr = never).
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Everything an engine needs to decide whether to keep going. Default
/// constructed = run to completion (the existing call sites).
struct RunControl {
  Deadline deadline;
  const CancellationToken* cancel = nullptr;

  /// Non-OK when the run should stop: CANCELLED dominates (an explicit
  /// user action beats a timer), then DEADLINE_EXCEEDED. The `where`
  /// argument lands in the message so truncation points are identifiable.
  Status Check(const char* where) const {
    if (cancel != nullptr && cancel->IsCancelled()) {
      return CancelledError(std::string("cancelled at ") + where);
    }
    if (deadline.HasExpired()) {
      return DeadlineExceededError(std::string("deadline expired at ") +
                                   where);
    }
    return OkStatus();
  }

  /// True when no deadline and no token are set — lets hot loops skip the
  /// clock read entirely.
  bool IsUnbounded() const {
    return deadline.is_infinite() && cancel == nullptr;
  }
};

}  // namespace dime

#endif  // DIME_COMMON_DEADLINE_H_
