#include "src/common/fault_injection.h"

#include <unordered_map>

#include "src/common/check.h"
#include "src/common/mutex.h"

namespace dime {
namespace {

struct Failpoint {
  int count = 0;  ///< firing hits left
  int skip = 0;   ///< hits to let pass before firing
};

/// All failpoint configuration lives behind one mutex; the armed_count_
/// atomic is only a fast-path hint (see the comment on it below).
struct Registry {
  Mutex mu;
  std::unordered_map<std::string, Failpoint> armed DIME_GUARDED_BY(mu);
};

Registry& Reg() {
  static Registry& r = *new Registry();  // leaked: safe at any exit order
  return r;
}

}  // namespace

std::atomic<int> FaultInjection::armed_count_{0};

// Memory-order note (the hint/config pairing): Arm/Disarm write the
// Failpoint config inside Reg().mu and then publish the new registry size
// to armed_count_ with a RELEASE store; AnyArmed() reads it with an
// ACQUIRE load. The acquire/release pair guarantees that a thread whose
// fast path observes count > 0 also observes the config write that made
// it non-zero once it takes the mutex — previously the store/load were
// both relaxed, so the hint could in principle be reordered ahead of the
// (mutex-guarded) config write and a concurrently-armed failpoint be
// missed or observed half-published. The slow path (Triggered) is still
// fully serialized by Reg().mu; the atomic is never the source of truth.
// A fast path that reads a stale 0 is acceptable by design: arming a
// failpoint is only guaranteed to be visible to threads started (or
// otherwise synchronized-with) after Arm() returns.

void FaultInjection::Arm(const std::string& name, int count, int skip) {
  Registry& r = Reg();
  MutexLock lock(&r.mu);
  if (count <= 0) {
    r.armed.erase(name);
  } else {
    r.armed[name] = Failpoint{count, skip < 0 ? 0 : skip};
  }
  armed_count_.store(static_cast<int>(r.armed.size()),
                     std::memory_order_release);
}

void FaultInjection::Disarm(const std::string& name) {
  Registry& r = Reg();
  MutexLock lock(&r.mu);
  r.armed.erase(name);
  armed_count_.store(static_cast<int>(r.armed.size()),
                     std::memory_order_release);
}

void FaultInjection::DisarmAll() {
  Registry& r = Reg();
  MutexLock lock(&r.mu);
  r.armed.clear();
  armed_count_.store(0, std::memory_order_release);
}

bool FaultInjection::Triggered(const char* name) {
  Registry& r = Reg();
  MutexLock lock(&r.mu);
  auto it = r.armed.find(name);
  if (it == r.armed.end()) return false;
  if (it->second.skip > 0) {
    --it->second.skip;
    return false;
  }
  DIME_DCHECK_GT(it->second.count, 0);
  if (--it->second.count <= 0) {
    r.armed.erase(it);
    armed_count_.store(static_cast<int>(r.armed.size()),
                       std::memory_order_release);
  }
  return true;
}

int FaultInjection::Remaining(const std::string& name) {
  Registry& r = Reg();
  MutexLock lock(&r.mu);
  auto it = r.armed.find(name);
  return it == r.armed.end() ? 0 : it->second.count;
}

}  // namespace dime
