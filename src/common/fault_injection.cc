#include "src/common/fault_injection.h"

#include <mutex>
#include <unordered_map>

namespace dime {
namespace {

struct Failpoint {
  int count = 0;  ///< firing hits left
  int skip = 0;   ///< hits to let pass before firing
};

std::mutex& Mutex() {
  static std::mutex& m = *new std::mutex();
  return m;
}

std::unordered_map<std::string, Failpoint>& Armed() {
  static auto& map = *new std::unordered_map<std::string, Failpoint>();
  return map;
}

}  // namespace

std::atomic<int> FaultInjection::armed_count_{0};

void FaultInjection::Arm(const std::string& name, int count, int skip) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (count <= 0) {
    Armed().erase(name);
  } else {
    Armed()[name] = Failpoint{count, skip < 0 ? 0 : skip};
  }
  armed_count_.store(static_cast<int>(Armed().size()),
                     std::memory_order_relaxed);
}

void FaultInjection::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  Armed().erase(name);
  armed_count_.store(static_cast<int>(Armed().size()),
                     std::memory_order_relaxed);
}

void FaultInjection::DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  Armed().clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjection::Triggered(const char* name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Armed().find(name);
  if (it == Armed().end()) return false;
  if (it->second.skip > 0) {
    --it->second.skip;
    return false;
  }
  if (--it->second.count <= 0) {
    Armed().erase(it);
    armed_count_.store(static_cast<int>(Armed().size()),
                       std::memory_order_relaxed);
  }
  return true;
}

int FaultInjection::Remaining(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Armed().find(name);
  return it == Armed().end() ? 0 : it->second.count;
}

}  // namespace dime
