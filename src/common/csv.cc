#include "src/common/csv.h"

#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace dime {

bool ReadTsvFile(const std::string& path, std::vector<TsvRow>* rows) {
  rows->clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows->push_back(Split(line, '\t'));
  }
  return true;
}

std::vector<TsvRow> ParseTsv(const std::string& content) {
  std::vector<TsvRow> rows;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(Split(line, '\t'));
  }
  return rows;
}

bool WriteTsvFile(const std::string& path, const std::vector<TsvRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  out << FormatTsv(rows);
  return static_cast<bool>(out);
}

std::string FormatTsv(const std::vector<TsvRow>& rows) {
  std::string out;
  for (const TsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back('\t');
      out.append(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<std::string> SplitMultiValue(const std::string& cell) {
  return SplitAndTrim(cell, '|');
}

std::string JoinMultiValue(const std::vector<std::string>& values) {
  return Join(values, "|");
}

}  // namespace dime
