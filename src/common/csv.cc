#include "src/common/csv.h"

#include <fstream>
#include <sstream>
#include <string_view>

#include "src/common/fault_injection.h"
#include "src/common/string_util.h"

namespace dime {
namespace {

/// Delimiter-separated parsing with RFC 4180-style quoting, shared by
/// ReadTsv and ParseTsv. A cell that *begins* with '"' is quoted: it runs
/// to the matching closing quote, `""` inside is an escaped quote, and
/// delimiters/CR/LF inside are literal data (so a quoted field may span
/// physical lines). Unquoted cells are taken verbatim — a quote in the
/// middle of a cell is just a character. Rows end at LF or CRLF (or a
/// lone CR at end-of-file, matching the old getline-based reader); blank
/// lines are skipped. An unterminated quote is lenient: the cell runs to
/// end of input.
std::vector<TsvRow> ParseDelimited(std::string_view content, char delim) {
  std::vector<TsvRow> rows;
  TsvRow row;
  std::string cell;
  bool row_has_structure = false;  // saw a delimiter or a quoted cell
  size_t i = 0;
  const size_t n = content.size();
  auto flush_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  auto flush_row = [&] {
    flush_cell();
    // Blank-line skip: only a row that is a single empty unquoted cell.
    // "a\t" still yields {"a", ""} and "" (quoted empty) yields {""}.
    if (row.size() > 1 || !row[0].empty() || row_has_structure) {
      rows.push_back(std::move(row));
    }
    row.clear();
    row_has_structure = false;
  };
  while (i < n) {
    if (content[i] == '"' && cell.empty()) {
      row_has_structure = true;
      ++i;  // opening quote
      while (i < n) {
        if (content[i] == '"') {
          if (i + 1 < n && content[i + 1] == '"') {
            cell.push_back('"');
            i += 2;
          } else {
            ++i;  // closing quote
            break;
          }
        } else {
          cell.push_back(content[i++]);
        }
      }
      continue;  // stray text after the closing quote appends literally
    }
    char c = content[i];
    if (c == delim) {
      row_has_structure = true;
      flush_cell();
      ++i;
    } else if (c == '\n') {
      flush_row();
      ++i;
    } else if (c == '\r' && (i + 1 == n || content[i + 1] == '\n')) {
      flush_row();
      i += (i + 1 < n) ? 2 : 1;
    } else {
      cell.push_back(c);
      ++i;
    }
  }
  // Final row without a trailing newline.
  if (!cell.empty() || !row.empty() || row_has_structure) flush_row();
  return rows;
}

/// True when `cell` cannot be written verbatim: it contains the delimiter,
/// CR or LF, or starts with a quote (which the reader would interpret as
/// an opening quote).
bool NeedsQuoting(const std::string& cell, char delim) {
  if (!cell.empty() && cell.front() == '"') return true;
  for (char c : cell) {
    if (c == delim || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendCell(std::string* out, const std::string& cell, char delim) {
  if (!NeedsQuoting(cell, delim)) {
    out->append(cell);
    return;
  }
  out->push_back('"');
  for (char c : cell) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

StatusOr<std::vector<TsvRow>> ReadTsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError(path + ": cannot open");
  if (DIME_FAULT_POINT(failpoints::kIoRead)) {
    return IoError(path + ": injected read fault");
  }
  // Slurp the whole file: quoted fields may span physical lines, so the
  // parser needs the full byte stream, not a line at a time.
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return IoError(path + ": read failed");
  return ParseDelimited(buf.str(), '\t');
}

bool ReadTsvFile(const std::string& path, std::vector<TsvRow>* rows) {
  rows->clear();
  StatusOr<std::vector<TsvRow>> read = ReadTsv(path);
  if (!read.ok()) return false;
  *rows = std::move(read).value();
  return true;
}

std::vector<TsvRow> ParseTsv(const std::string& content) {
  return ParseDelimited(content, '\t');
}

Status WriteTsv(const std::string& path, const std::vector<TsvRow>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return NotFoundError(path + ": cannot create");
  out << FormatTsv(rows);
  out.flush();
  if (!out) return IoError(path + ": write failed");
  return OkStatus();
}

bool WriteTsvFile(const std::string& path, const std::vector<TsvRow>& rows) {
  return WriteTsv(path, rows).ok();
}

std::string FormatTsv(const std::vector<TsvRow>& rows) {
  std::string out;
  for (const TsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back('\t');
      AppendCell(&out, row[i], '\t');
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<std::string> SplitMultiValue(const std::string& cell) {
  return SplitAndTrim(cell, '|');
}

std::string JoinMultiValue(const std::vector<std::string>& values) {
  return Join(values, "|");
}

}  // namespace dime
