#include "src/common/csv.h"

#include <fstream>
#include <sstream>

#include "src/common/fault_injection.h"
#include "src/common/string_util.h"

namespace dime {

StatusOr<std::vector<TsvRow>> ReadTsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError(path + ": cannot open");
  if (DIME_FAULT_POINT("io/read")) {
    return IoError(path + ": injected read fault");
  }
  std::vector<TsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(Split(line, '\t'));
  }
  // getline sets failbit at EOF; only badbit marks a real read failure.
  if (in.bad()) return IoError(path + ": read failed");
  return rows;
}

bool ReadTsvFile(const std::string& path, std::vector<TsvRow>* rows) {
  rows->clear();
  StatusOr<std::vector<TsvRow>> read = ReadTsv(path);
  if (!read.ok()) return false;
  *rows = std::move(read).value();
  return true;
}

std::vector<TsvRow> ParseTsv(const std::string& content) {
  std::vector<TsvRow> rows;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(Split(line, '\t'));
  }
  return rows;
}

Status WriteTsv(const std::string& path, const std::vector<TsvRow>& rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return NotFoundError(path + ": cannot create");
  out << FormatTsv(rows);
  out.flush();
  if (!out) return IoError(path + ": write failed");
  return OkStatus();
}

bool WriteTsvFile(const std::string& path, const std::vector<TsvRow>& rows) {
  return WriteTsv(path, rows).ok();
}

std::string FormatTsv(const std::vector<TsvRow>& rows) {
  std::string out;
  for (const TsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back('\t');
      out.append(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<std::string> SplitMultiValue(const std::string& cell) {
  return SplitAndTrim(cell, '|');
}

std::string JoinMultiValue(const std::vector<std::string>& values) {
  return Join(values, "|");
}

}  // namespace dime
