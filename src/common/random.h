#ifndef DIME_COMMON_RANDOM_H_
#define DIME_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

/// \file random.h
/// Deterministic pseudo-random number generation used throughout the
/// synthetic data generators and randomized algorithms. All experiments are
/// reproducible because every component takes an explicit seed.

namespace dime {

/// A small, fast SplitMix64/xoshiro-style PRNG. Deterministic across
/// platforms (unlike std::mt19937 + distributions, whose outputs differ
/// between standard library implementations).
class Random {
 public:
  explicit Random(uint64_t seed = 42) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  /// Returns the next raw 64-bit value (SplitMix64).
  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return NextUint64() % bound; }

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Returns a uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Returns true with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Returns an integer in [0, n) drawn from a Zipf-like distribution with
  /// exponent `s` (rank-frequency skew, used to mimic token frequencies).
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_;
};

inline uint64_t Random::Zipf(uint64_t n, double s) {
  // Inverse-CDF sampling over the first n ranks; fine for generator use.
  if (n == 0) return 0;
  double u = UniformDouble();
  double norm = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i), s);
  }
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), s) / norm;
    if (u <= sum) return i - 1;
  }
  return n - 1;
}

inline std::vector<size_t> Random::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  Shuffle(&all);
  if (k < n) all.resize(k);
  return all;
}

}  // namespace dime

#endif  // DIME_COMMON_RANDOM_H_
