#ifndef DIME_COMMON_CHECKSUM_H_
#define DIME_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file checksum.h
/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over byte ranges. The
/// snapshot store checksums every section payload and the footer with it;
/// a mismatch on load is reported as DATA_LOSS rather than handing the
/// engines silently corrupted arenas. Software slice-by-8 implementation
/// (~1 GB/s): the loader checksums the whole file on warm start, so CRC
/// throughput is a direct term in the cold-start numbers
/// (BENCH_snapshot.json).

namespace dime {

/// CRC-32 of `len` bytes starting at `data`, seeded with `seed` (pass the
/// previous call's return value to checksum a discontiguous range; the
/// default seed checksums a standalone range).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace dime

#endif  // DIME_COMMON_CHECKSUM_H_
