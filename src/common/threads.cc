#include "src/common/threads.h"

#include <cstdlib>
#include <thread>

namespace dime {

unsigned ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("DIME_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace dime
