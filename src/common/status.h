#ifndef DIME_COMMON_STATUS_H_
#define DIME_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

/// \file status.h
/// Structured error propagation (glog-free, exception-free): a `Status`
/// carries a machine-readable code plus a human-readable message, and
/// `StatusOr<T>` is either a value or a non-OK Status. This is the error
/// vocabulary of the whole library: ingestion distinguishes a missing file
/// from a malformed one, the engines report deadline truncation, and the
/// parallel driver surfaces captured worker faults — instead of aborting.
///
/// Usage:
///   Status DoWork() {
///     DIME_RETURN_IF_ERROR(Prepare());
///     DIME_ASSIGN_OR_RETURN(std::vector<TsvRow> rows, ReadTsv(path));
///     ...
///     return OkStatus();
///   }

namespace dime {

/// Error codes, loosely following absl/gRPC canonical codes but restricted
/// to what the library actually needs. Values are stable (serialized in
/// logs / CLI exit paths); append only.
enum class StatusCode : int {
  kOk = 0,
  /// The caller passed something invalid (empty training set, bad rule).
  kInvalidArgument = 1,
  /// A referenced resource does not exist (file not found / unopenable).
  kNotFound = 2,
  /// An IO operation failed after the resource was found (read/write).
  kIoError = 3,
  /// Input was read but is not syntactically valid (bad TSV header).
  kParseError = 4,
  /// Input parsed but disagrees with the expected schema (row width).
  kSchemaMismatch = 5,
  /// A deadline expired before the computation finished; partial results
  /// may accompany this code.
  kDeadlineExceeded = 6,
  /// The caller cancelled the computation via a CancellationToken.
  kCancelled = 7,
  /// An internal invariant failed (captured worker-thread fault).
  kInternal = 8,
  /// A bounded resource is full and the request was shed rather than
  /// queued (serving-layer admission control; retry later).
  kResourceExhausted = 9,
  /// The service is shutting down (or not yet started) and cannot take
  /// new work; unlike RESOURCE_EXHAUSTED, retrying will not help.
  kUnavailable = 10,
  /// Stored data is unrecoverably damaged: a checksum mismatch or an
  /// internally inconsistent snapshot section. Unlike PARSE_ERROR (the
  /// bytes never were valid), DATA_LOSS means valid data was written and
  /// has since been corrupted; re-create the artifact from its source.
  kDataLoss = 11,
};

/// Human-readable name of a code ("NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName: true and sets *code when `name` is a known
/// code name ("OK", "RESOURCE_EXHAUSTED", ...). Used by wire clients that
/// must reconstruct a Status from its serialized name.
bool StatusCodeFromName(std::string_view name, StatusCode* code);

/// Marked [[nodiscard]] at class level: every function returning a Status
/// (or StatusOr) by value is compiler-enforced checked at every call site,
/// in every build, without annotating each declaration. The only sanctioned
/// discard is an explicit `(void)` cast carrying a
/// `// lint: unchecked-status-ok(<reason>)` waiver — `dime_lint` flags a
/// bare cast (see tools/lint/).
class [[nodiscard]] Status {
 public:
  /// Default: OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE_NAME>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
inline Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
inline Status SchemaMismatchError(std::string message) {
  return Status(StatusCode::kSchemaMismatch, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

/// Either a T or a non-OK Status. Accessing the value of a non-OK
/// StatusOr is a programming error (asserted in debug; undefined in
/// release — always check ok() or use DIME_ASSIGN_OR_RETURN).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value (mirrors absl::StatusOr ergonomics).
  StatusOr(T value) : value_(std::move(value)) {}
  /// Implicit from a non-OK status. Constructing from OkStatus() is
  /// nonsensical and normalized to kInternal.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// The value, or `fallback` when non-OK.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace dime

/// Propagates a non-OK Status to the caller.
#define DIME_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::dime::Status dime_status_ = (expr);          \
    if (!dime_status_.ok()) return dime_status_;   \
  } while (0)

#define DIME_STATUS_CONCAT_INNER_(a, b) a##b
#define DIME_STATUS_CONCAT_(a, b) DIME_STATUS_CONCAT_INNER_(a, b)

/// Evaluates a StatusOr expression; on success binds the value to `lhs`,
/// otherwise returns the error Status to the caller.
#define DIME_ASSIGN_OR_RETURN(lhs, expr)                             \
  DIME_ASSIGN_OR_RETURN_IMPL_(                                       \
      DIME_STATUS_CONCAT_(dime_statusor_, __LINE__), lhs, expr)

#define DIME_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // DIME_COMMON_STATUS_H_
