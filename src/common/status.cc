#include "src/common/status.h"

namespace dime {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kSchemaMismatch:
      return "SCHEMA_MISMATCH";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

bool StatusCodeFromName(std::string_view name, StatusCode* code) {
  // Iterate the enum range instead of string-matching by hand so a code
  // added to StatusCodeName is automatically parseable.
  for (int c = static_cast<int>(StatusCode::kOk);
       c <= static_cast<int>(StatusCode::kDataLoss); ++c) {
    StatusCode candidate = static_cast<StatusCode>(c);
    if (name == StatusCodeName(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dime
