#ifndef DIME_COMMON_STRING_UTIL_H_
#define DIME_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers shared by the tokenizers, dataset IO and rule
/// parsing. All functions are pure and allocation-explicit.

namespace dime {

/// Returns `s` with ASCII letters lower-cased.
std::string ToLower(std::string_view s);

/// Returns `s` without leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits `s` on `delim`. Empty pieces are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on `delim`, trimming each piece and dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns true if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Returns true if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Formats `v` with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

}  // namespace dime

#endif  // DIME_COMMON_STRING_UTIL_H_
