#ifndef DIME_COMMON_THREAD_ANNOTATIONS_H_
#define DIME_COMMON_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Macros wrapping Clang's Thread Safety Analysis attributes
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). They let the
/// compiler prove, at build time, that every access to a shared field
/// happens with the right lock held:
///
///   class Account {
///    public:
///     void Deposit(int amount) DIME_EXCLUDES(mu_) {
///       MutexLock lock(&mu_);
///       balance_ += amount;
///     }
///    private:
///     Mutex mu_;
///     int balance_ DIME_GUARDED_BY(mu_) = 0;
///   };
///
/// Under Clang, the analysis runs when the build enables -Wthread-safety
/// (the top-level CMakeLists does, with -Werror=thread-safety, whenever
/// the compiler is Clang). Under GCC and MSVC every macro expands to
/// nothing, so the annotations are pure documentation there — zero cost
/// in all configurations.

#if defined(__clang__) && !defined(SWIG)
#define DIME_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define DIME_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a class to be a lockable capability ("mutex" by convention).
#define DIME_CAPABILITY(x) DIME_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class whose lifetime scopes a capability.
#define DIME_SCOPED_CAPABILITY \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member may only be accessed while holding `x`.
#define DIME_GUARDED_BY(x) DIME_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member: the *pointed-to* data may only be accessed holding `x`.
#define DIME_PT_GUARDED_BY(x) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock prevention).
#define DIME_ACQUIRED_BEFORE(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define DIME_ACQUIRED_AFTER(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively / shared) on entry.
#define DIME_REQUIRES(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define DIME_REQUIRES_SHARED(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define DIME_ACQUIRE(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define DIME_ACQUIRE_SHARED(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define DIME_RELEASE(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define DIME_RELEASE_SHARED(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define DIME_RELEASE_GENERIC(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `...` (usually true).
#define DIME_TRY_ACQUIRE(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define DIME_TRY_ACQUIRE_SHARED(...)        \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(      \
      try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (prevents self-deadlock).
#define DIME_EXCLUDES(...) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis, not at runtime) that the capability is held.
#define DIME_ASSERT_CAPABILITY(x) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define DIME_ASSERT_SHARED_CAPABILITY(x) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// Function returns a reference to the capability guarding its result.
#define DIME_RETURN_CAPABILITY(x) \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the analysis cannot see the invariant.
#define DIME_NO_THREAD_SAFETY_ANALYSIS \
  DIME_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // DIME_COMMON_THREAD_ANNOTATIONS_H_
