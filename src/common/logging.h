#ifndef DIME_COMMON_LOGGING_H_
#define DIME_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

/// \file logging.h
/// Minimal logging and assertion facilities in the spirit of glog.
///
/// Usage:
///   DIME_LOG(INFO) << "built index with " << n << " entries";
///   DIME_CHECK(x > 0) << "x must be positive, got " << x;
///   DIME_CHECK_EQ(a, b);

namespace dime {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns the process-wide minimum level that is actually emitted.
LogLevel MinLogLevel();

/// Sets the process-wide minimum emitted level (default: kInfo).
void SetMinLogLevel(LogLevel level);

/// Redirects the log sink to `stream` (nullptr restores std::cerr) and
/// returns the previous override (nullptr when the sink was std::cerr).
/// The sink is mutex-guarded: concurrent DIME_LOG lines never interleave
/// mid-line, and a SetLogStream cannot race an in-flight flush. The
/// caller keeps ownership of `stream` and must keep it alive until the
/// override is replaced.
std::ostream* SetLogStream(std::ostream* stream);

namespace internal {

/// Accumulates one log line and flushes it (with a level prefix) on
/// destruction. Fatal messages abort the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed expression into void so CHECK can live in a ternary
/// (the classic glog trick; '&' binds looser than '<<').
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace dime

#define DIME_LOG_DEBUG ::dime::LogLevel::kDebug
#define DIME_LOG_INFO ::dime::LogLevel::kInfo
#define DIME_LOG_WARNING ::dime::LogLevel::kWarning
#define DIME_LOG_ERROR ::dime::LogLevel::kError
#define DIME_LOG_FATAL ::dime::LogLevel::kFatal

#define DIME_LOG(severity) \
  ::dime::internal::LogMessage(DIME_LOG_##severity, __FILE__, __LINE__).stream()

#define DIME_CHECK(condition)                                              \
  (condition) ? (void)0                                                    \
              : ::dime::internal::Voidify() &                              \
                    ::dime::internal::LogMessage(::dime::LogLevel::kFatal, \
                                                 __FILE__, __LINE__)       \
                            .stream()                                      \
                        << "Check failed: " #condition " "

#define DIME_CHECK_EQ(a, b) DIME_CHECK((a) == (b))
#define DIME_CHECK_NE(a, b) DIME_CHECK((a) != (b))
#define DIME_CHECK_LT(a, b) DIME_CHECK((a) < (b))
#define DIME_CHECK_LE(a, b) DIME_CHECK((a) <= (b))
#define DIME_CHECK_GT(a, b) DIME_CHECK((a) > (b))
#define DIME_CHECK_GE(a, b) DIME_CHECK((a) >= (b))

#endif  // DIME_COMMON_LOGGING_H_
