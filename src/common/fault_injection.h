#ifndef DIME_COMMON_FAULT_INJECTION_H_
#define DIME_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <string>

/// \file fault_injection.h
/// Named failpoints for testing degradation paths. Production code marks
/// the places where the outside world can fail (an IO read, a worker
/// thread, deadline pressure) with DIME_FAULT_POINT("name"); tests arm a
/// failpoint for a bounded number of hits and assert the failure surfaces
/// as a Status instead of a crash.
///
/// When nothing is armed — always, outside tests — a failpoint costs one
/// acquire atomic load (uncontended; free on x86).
///
/// Failpoint registry (every name in the tree, machine-checked):
///   "io/read"                TSV/file reads fail with IO_ERROR
///   "parallel/worker-fault"  a RunDimeParallel worker throws
///   "engine/deadline"        engines behave as if the deadline expired
///   "store/mmap"             snapshot loads take the read() fallback
///   "store/swap"             ReloadFromSnapshot fails (UNAVAILABLE)
///                            before anything is installed
///   "store/delta-corrupt"    the next delta-log record fails its CRC
///                            check (DATA_LOSS degradation path)
///   "epoch/unmap-delay"      a retiring epoch sleeps before unmapping,
///                            widening the swap/serve race for tests
///   "stress/churn"           test-only: drives the arm/trigger churn in
///                            the thread-safety stress harness
///   "exec/task-fault"        a task spawned on the exec scheduler throws
///
/// Usage (in a test):
///   ScopedFailpoint fp(failpoints::kIoRead);   // arm for 1 hit
///   EXPECT_EQ(LoadGroup(path, "g").status().code(), StatusCode::kIoError);

namespace dime {
namespace failpoints {

/// The single source of truth for failpoint names. Arm/trigger call sites
/// must name one of these constants — never a string literal — so a typo
/// cannot silently arm (or probe) a failpoint that no code path checks.
/// `dime_lint`'s failpoint-registry rule enforces all three legs:
/// call sites reference a constant, every constant fires in at least one
/// test, and the doc list above matches this block exactly.
inline constexpr char kIoRead[] = "io/read";
inline constexpr char kParallelWorkerFault[] = "parallel/worker-fault";
inline constexpr char kEngineDeadline[] = "engine/deadline";
inline constexpr char kStoreMmap[] = "store/mmap";
inline constexpr char kStoreSwap[] = "store/swap";
inline constexpr char kStoreDeltaCorrupt[] = "store/delta-corrupt";
inline constexpr char kEpochUnmapDelay[] = "epoch/unmap-delay";
inline constexpr char kStressChurn[] = "stress/churn";
inline constexpr char kExecTaskFault[] = "exec/task-fault";

}  // namespace failpoints

class FaultInjection {
 public:
  /// Arms `name` to fire on the next `count` hits, after letting the
  /// first `skip` hits pass — `skip` positions a deterministic failure
  /// mid-run (e.g. "survive step 1, fail at the second partition of
  /// step 3"). Re-arming replaces the previous state.
  static void Arm(const std::string& name, int count = 1, int skip = 0);

  /// Disarms `name` (no-op if not armed).
  static void Disarm(const std::string& name);

  /// Disarms everything (test teardown safety net).
  static void DisarmAll();

  /// True iff `name` is armed and a trigger remains; consumes one trigger.
  /// Thread-safe: concurrent hits consume distinct triggers.
  static bool Triggered(const char* name);

  /// Remaining triggers for `name` (0 if not armed).
  static int Remaining(const std::string& name);

  /// Fast path: true iff any failpoint is armed anywhere. Acquire pairs
  /// with the release store in Arm/Disarm so an observed non-zero count
  /// implies the arming write is visible (full rationale in the .cc).
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_acquire) > 0;
  }

 private:
  static std::atomic<int> armed_count_;
};

/// RAII armer: arms on construction, disarms on destruction — a test
/// that throws or fails mid-way cannot leak an armed failpoint into the
/// next test.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string name, int count = 1, int skip = 0)
      : name_(std::move(name)) {
    FaultInjection::Arm(name_, count, skip);
  }
  ~ScopedFailpoint() { FaultInjection::Disarm(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace dime

/// True when the named failpoint fires. Evaluates to false with a single
/// acquire atomic load unless a test armed something.
#define DIME_FAULT_POINT(name)              \
  (::dime::FaultInjection::AnyArmed() &&    \
   ::dime::FaultInjection::Triggered(name))

#endif  // DIME_COMMON_FAULT_INJECTION_H_
