#include "src/common/exit_code.h"

#include <cstdio>

namespace dime {

int ExitWithStatus(const Status& status, const char* context) {
  if (!status.ok()) {
    // lint: banned-functions-ok(exit-path reporter; single-threaded final write)
    std::fprintf(stderr, "%s: %s\n", context, status.ToString().c_str());
  }
  return ExitCodeForStatus(status);
}

}  // namespace dime
