#include "src/common/logging.h"

#include <atomic>

#include "src/common/mutex.h"

namespace dime {
namespace {

// The minimum level is a single word read on every DIME_LOG statement:
// an atomic (not the sink mutex) so the common filtered-out case costs
// one relaxed load and no lock. Relaxed is enough — the level is a
// monotone-ish tuning knob, not a synchronization edge; no other data is
// published through it.
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// The sink, by contrast, is multi-step state (pointer swap + stream
// write + flush) shared by every logging thread, so it is a Mutex with
// DIME_GUARDED_BY — the convention documented in mutex.h.
struct Sink {
  Mutex mu;
  /// Test override; nullptr = std::cerr. (std::cerr itself cannot be
  /// stored here at static-init time without ordering hazards.)
  std::ostream* override_stream DIME_GUARDED_BY(mu) = nullptr;
};

Sink& LogSink() {
  static Sink& s = *new Sink();  // leaked: usable during static destruction
  return s;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::ostream* SetLogStream(std::ostream* stream) {
  Sink& sink = LogSink();
  MutexLock lock(&sink.mu);
  std::ostream* previous = sink.override_stream;
  sink.override_stream = stream;
  return previous;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    // One locked write per emitted line: lines from concurrent threads
    // come out whole, never interleaved character-by-character.
    Sink& sink = LogSink();
    MutexLock lock(&sink.mu);
    std::ostream& out =
        sink.override_stream != nullptr ? *sink.override_stream : std::cerr;
    out << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace dime
