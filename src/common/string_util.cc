#include "src/common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace dime {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s, char delim) {
  std::vector<std::string> out;
  for (const std::string& piece : Split(s, delim)) {
    std::string_view trimmed = Trim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ >= 11.
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

}  // namespace dime
