#ifndef DIME_COMMON_MUTEX_H_
#define DIME_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

/// \file mutex.h
/// Capability-annotated synchronization primitives. `Mutex`, `MutexLock`,
/// and `CondVar` are zero-cost wrappers over the std:: equivalents whose
/// only addition is the Clang Thread Safety attributes from
/// thread_annotations.h: pairing a field declared
/// `DIME_GUARDED_BY(mu_)` with these wrappers makes unlocked access a
/// compile error under Clang (-Werror=thread-safety) instead of a latent
/// data race.
///
/// Convention (see DESIGN.md "Concurrency correctness"):
///   - multi-word shared state (maps, vectors, Status, exception_ptr)
///     → a Mutex plus DIME_GUARDED_BY on every field it protects;
///   - single-word monotone flags and counters read on hot paths
///     → std::atomic with an explicit memory_order and a comment
///       justifying the order.

namespace dime {

class CondVar;

/// A std::mutex declared as a Clang TSA capability. Non-reentrant.
class DIME_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DIME_ACQUIRE() { mu_.lock(); }
  void Unlock() DIME_RELEASE() { mu_.unlock(); }

  /// Returns true (and holds the lock) iff the mutex was free.
  bool TryLock() DIME_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the static analysis the lock is held without acquiring it.
  /// A pure compile-time assertion — no runtime effect (std::mutex cannot
  /// report its holder). Used by DIME_DCHECK_HELD at function boundaries
  /// the analysis cannot see through.
  void AssertHeld() const DIME_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex; the scoped-capability annotation lets the
/// analysis treat the guard's lifetime as the critical section.
class DIME_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DIME_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DIME_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable usable with Mutex. Wait() requires the caller to
/// hold the mutex (enforced by the analysis) and re-holds it on return.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and blocks until notified; re-acquires *mu
  /// before returning. Spurious wakeups are possible — wait in a loop.
  void Wait(Mutex* mu) DIME_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Ownership stays with the caller's critical section.
  }

  /// Like Wait, but gives up after `timeout`. Returns false on timeout,
  /// true when notified (either way *mu is held again on return).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      DIME_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    bool notified = cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dime

#endif  // DIME_COMMON_MUTEX_H_
