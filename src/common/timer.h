#ifndef DIME_COMMON_TIMER_H_
#define DIME_COMMON_TIMER_H_

#include <chrono>

/// \file timer.h
/// Wall-clock timing used by the benchmark harnesses (Fig. 9, DBGen table).

namespace dime {

/// A simple wall-clock stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Returns elapsed seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns elapsed milliseconds since construction / last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dime

#endif  // DIME_COMMON_TIMER_H_
