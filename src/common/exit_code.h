#ifndef DIME_COMMON_EXIT_CODE_H_
#define DIME_COMMON_EXIT_CODE_H_

#include "src/common/status.h"

/// \file exit_code.h
/// The single place where a Status becomes a process exit code. Every
/// binary in this repo (dime_cli, dime_server, the examples) reports
/// failure through this mapping instead of ad-hoc `return 1`, so shell
/// scripts and CI can branch on *which* failure occurred:
///
///   exit code | StatusCode          | typical cause
///   ----------+---------------------+------------------------------------
///        0    | OK                  | success
///        1    | (none)              | reserved: failure without a Status
///        2    | INVALID_ARGUMENT    | bad flag / malformed rule
///        3    | NOT_FOUND           | missing file / unknown group name
///        4    | IO_ERROR            | read or write failed mid-stream
///        5    | PARSE_ERROR         | malformed TSV / JSON request
///        6    | SCHEMA_MISMATCH     | row width or schema disagreement
///        7    | DEADLINE_EXCEEDED   | run truncated by a deadline
///        8    | CANCELLED           | run stopped by a cancellation token
///        9    | INTERNAL            | captured fault / invariant failure
///       10    | RESOURCE_EXHAUSTED  | server queue full (load shed)
///       11    | UNAVAILABLE         | server shutting down / unreachable
///       12    | DATA_LOSS           | corrupt snapshot (checksum mismatch)
///
/// The scheme is `static_cast<int>(code) + 1`, which stays stable because
/// StatusCode values are append-only. Exit code 2 for usage errors matches
/// the long-standing CLI convention (and getopt's).

namespace dime {

/// Exit code 1: a failure that never produced a Status (reserved — the
/// binaries in this repo should not be able to reach it).
inline constexpr int kExitCodeNoStatus = 1;

/// Maps a StatusCode to its process exit code (see the table above).
inline constexpr int ExitCodeForStatusCode(StatusCode code) {
  return code == StatusCode::kOk ? 0 : static_cast<int>(code) + 1;
}

/// Convenience overload for a whole Status.
inline int ExitCodeForStatus(const Status& status) {
  return ExitCodeForStatusCode(status.code());
}

/// Prints `context: <status>` to stderr (when non-OK) and returns the
/// status's exit code — the one-liner for `return` statements in main().
int ExitWithStatus(const Status& status, const char* context);

}  // namespace dime

#endif  // DIME_COMMON_EXIT_CODE_H_
