#ifndef DIME_COMMON_CSV_H_
#define DIME_COMMON_CSV_H_

#include <string>
#include <vector>

#include "src/common/status.h"

/// \file csv.h
/// Tab-separated dataset IO. Entities are serialized one per line with
/// attribute values separated by tabs; multi-valued attributes use '|'
/// between values (e.g., author lists). This mirrors the flat-file dumps of
/// the paper's crawled datasets.
///
/// Cells follow RFC 4180-style quoting: a cell beginning with '"' runs to
/// the matching closing quote ("" escapes a literal quote), and tabs, CR,
/// and LF inside a quoted cell are data, not structure — so quoted fields
/// may span physical lines. FormatTsv/WriteTsv quote symmetrically, only
/// when a cell needs it.
///
/// The Status APIs are the source of truth; the bool forms are thin shims
/// kept for existing call sites and cannot distinguish a missing file from
/// an IO error from an empty file.

namespace dime {

/// One parsed row: a list of cells.
using TsvRow = std::vector<std::string>;

/// Reads all rows of a TSV file. An empty file is OK (and yields zero
/// rows); an unopenable file is NOT_FOUND; a read failure after opening is
/// IO_ERROR. Failpoint: "io/read".
StatusOr<std::vector<TsvRow>> ReadTsv(const std::string& path);

/// Shim over ReadTsv: returns false (and leaves `rows` empty) on any
/// non-OK status.
bool ReadTsvFile(const std::string& path, std::vector<TsvRow>* rows);

/// Parses TSV content from a string (used by tests and embedded fixtures).
/// Handles CRLF line endings and a trailing line without '\n'; blank lines
/// are skipped.
std::vector<TsvRow> ParseTsv(const std::string& content);

/// Writes rows to a TSV file. NOT_FOUND when the file cannot be created,
/// IO_ERROR when writing fails.
Status WriteTsv(const std::string& path, const std::vector<TsvRow>& rows);

/// Shim over WriteTsv. Returns false on IO error.
bool WriteTsvFile(const std::string& path, const std::vector<TsvRow>& rows);

/// Serializes rows into TSV text.
std::string FormatTsv(const std::vector<TsvRow>& rows);

/// Splits a multi-valued cell on '|' (trimming pieces, dropping empties).
std::vector<std::string> SplitMultiValue(const std::string& cell);

/// Joins values into a multi-valued cell with '|'.
std::string JoinMultiValue(const std::vector<std::string>& values);

}  // namespace dime

#endif  // DIME_COMMON_CSV_H_
