#ifndef DIME_COMMON_CSV_H_
#define DIME_COMMON_CSV_H_

#include <string>
#include <vector>

/// \file csv.h
/// Tab-separated dataset IO. Entities are serialized one per line with
/// attribute values separated by tabs; multi-valued attributes use '|'
/// between values (e.g., author lists). This mirrors the flat-file dumps of
/// the paper's crawled datasets.

namespace dime {

/// One parsed row: a list of cells.
using TsvRow = std::vector<std::string>;

/// Reads all rows of a TSV file. Returns false (and leaves `rows` empty) if
/// the file could not be opened.
bool ReadTsvFile(const std::string& path, std::vector<TsvRow>* rows);

/// Parses TSV content from a string (used by tests and embedded fixtures).
std::vector<TsvRow> ParseTsv(const std::string& content);

/// Writes rows to a TSV file. Returns false on IO error.
bool WriteTsvFile(const std::string& path, const std::vector<TsvRow>& rows);

/// Serializes rows into TSV text.
std::string FormatTsv(const std::vector<TsvRow>& rows);

/// Splits a multi-valued cell on '|' (trimming pieces, dropping empties).
std::vector<std::string> SplitMultiValue(const std::string& cell);

/// Joins values into a multi-valued cell with '|'.
std::string JoinMultiValue(const std::vector<std::string>& values);

}  // namespace dime

#endif  // DIME_COMMON_CSV_H_
