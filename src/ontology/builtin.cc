#include "src/ontology/builtin.h"

namespace dime {

const std::vector<ResearchArea>& ResearchAreas() {
  static const auto& kAreas = *new std::vector<ResearchArea>{
      {"Computer Science",
       "Database",
       {"SIGMOD", "VLDB", "ICDE", "PODS", "EDBT", "CIKM", "TODS", "VLDB Journal"},
       {"query", "index", "transaction", "join", "schema", "sql", "tuple",
        "relational", "database", "cleaning", "integration", "crowdsourcing",
        "deduplication", "olap", "warehouse"}},
      {"Computer Science",
       "System",
       {"ICPADS", "SOSP", "OSDI", "EuroSys", "ATC", "FAST", "NSDI"},
       {"operating", "kernel", "distributed", "filesystem", "scheduler",
        "virtualization", "cluster", "parallel", "placement", "replication",
        "consistency", "latency", "throughput", "cache", "storage"}},
      {"Computer Science",
       "Data Mining",
       {"KDD", "ICDM", "WSDM", "SDM", "PKDD"},
       {"mining", "pattern", "frequent", "outlier", "anomaly", "stream",
        "graph", "community", "itemset", "association", "clustering",
        "classification", "embedding", "recommendation", "prediction"}},
      {"Computer Science",
       "Artificial Intelligence",
       {"AAAI", "IJCAI", "NeurIPS", "ICML", "UAI"},
       {"learning", "neural", "network", "reinforcement", "bayesian",
        "inference", "agent", "planning", "representation", "optimization",
        "gradient", "supervised", "generative", "probabilistic", "model"}},
      {"Computer Science",
       "Natural Language Processing",
       {"ACL", "EMNLP", "NAACL", "COLING", "EACL"},
       {"language", "translation", "parsing", "sentiment", "corpus",
        "semantic", "syntactic", "entity", "discourse", "summarization",
        "dialogue", "lexical", "topic", "word", "text"}},
      {"Computer Science",
       "Information Retrieval",
       {"SIGIR", "WWW", "ECIR", "TREC"},
       {"retrieval", "ranking", "search", "relevance", "web", "document",
        "indexing", "crawler", "click", "personalization", "news",
        "social", "feedback", "evaluation", "snippet"}},
      {"Computer Science",
       "Computer Vision",
       {"CVPR", "ICCV", "ECCV", "BMVC"},
       {"image", "vision", "segmentation", "detection", "recognition",
        "tracking", "stereo", "pixel", "convolutional", "scene", "pose",
        "optical", "video", "depth", "feature"}},
      {"Computer Science",
       "Theory",
       {"STOC", "FOCS", "SODA", "ICALP"},
       {"complexity", "approximation", "algorithm", "bound", "hardness",
        "randomized", "combinatorial", "polynomial", "proof", "lattice",
        "sampling", "streaming", "sketch", "lower", "upper"}},
      {"Chemical Sciences",
       "Chemical Sciences (general)",
       {"RSC Advances", "Chemical Science", "ACS Omega", "Chem Comm"},
       {"oxidative", "desulfurization", "polyethylene", "glycol", "catalyst",
        "synthesis", "reaction", "solvent", "extraction", "oxidation",
        "compound", "molecular", "yield", "aqueous", "ionic"}},
      {"Chemical Sciences",
       "Organic Chemistry",
       {"Journal of Organic Chemistry", "Organic Letters", "Tetrahedron"},
       {"organic", "alkene", "amine", "carbonyl", "stereoselective",
        "cyclization", "ligand", "substituent", "aryl", "ester",
        "asymmetric", "enantioselective", "bond", "ring", "acid"}},
      {"Chemical Sciences",
       "Analytical Chemistry",
       {"Anal Chem", "Talanta", "Analyst"},
       {"spectrometry", "chromatography", "detection", "assay", "sensor",
        "electrochemical", "fluorescence", "sample", "trace", "calibration",
        "quantification", "electrode", "mass", "spectroscopy", "analyte"}},
      {"Physics & Mathematics",
       "Condensed Matter Physics",
       {"Physical Review B", "Nature Physics", "PRL"},
       {"quantum", "lattice", "superconductivity", "magnetic", "phonon",
        "electron", "spin", "crystal", "topological", "insulator",
        "temperature", "phase", "transition", "fermion", "band"}},
      {"Physics & Mathematics",
       "Applied Mathematics",
       {"SIAM Journal", "Applied Mathematics Letters", "JCAM"},
       {"equation", "differential", "numerical", "convergence", "stability",
        "operator", "nonlinear", "boundary", "finite", "element",
        "solution", "estimate", "asymptotic", "spectral", "iterative"}},
      {"Life Sciences & Earth Sciences",
       "Bioinformatics",
       {"Oxford Bioinformatics", "Genome Research", "BMC Bioinformatics"},
       {"gene", "genome", "protein", "sequence", "expression", "alignment",
        "variant", "transcriptome", "annotation", "phylogenetic", "cell",
        "regulatory", "pathway", "mutation", "sequencing"}},
      {"Life Sciences & Earth Sciences",
       "Environmental Sciences",
       {"Environmental Science & Technology", "Water Research"},
       {"water", "soil", "pollution", "emission", "climate", "carbon",
        "nitrogen", "treatment", "wastewater", "ecosystem", "degradation",
        "contaminant", "atmospheric", "sediment", "toxicity"}},
      {"Social Sciences",
       "Economics",
       {"American Economic Review", "Econometrica", "QJE"},
       {"market", "price", "equilibrium", "auction", "incentive", "policy",
        "welfare", "labor", "trade", "demand", "supply", "consumer",
        "taxation", "growth", "inequality"}},
  };
  return kAreas;
}

Ontology BuildVenueOntology() {
  Ontology tree;
  int root = tree.AddRoot("Venue");
  std::vector<std::pair<std::string, int>> fields;  // field name -> node id
  for (const ResearchArea& area : ResearchAreas()) {
    int field_node = kNoNode;
    for (const auto& [name, id] : fields) {
      if (name == area.field) {
        field_node = id;
        break;
      }
    }
    if (field_node == kNoNode) {
      field_node = tree.AddNode(area.field, root);
      fields.emplace_back(area.field, field_node);
    }
    int sub_node = tree.AddNode(area.subfield, field_node);
    for (const std::string& venue : area.venues) {
      tree.AddNode(venue, sub_node);
    }
    for (const std::string& keyword : area.keywords) {
      tree.AddKeyword(keyword, sub_node);
    }
  }
  return tree;
}

const Ontology& VenueOntology() {
  static const Ontology& kTree = *new Ontology(BuildVenueOntology());
  return kTree;
}

Ontology BuildFig4Ontology() {
  Ontology tree;
  int root = tree.AddRoot("Venue");
  int cs = tree.AddNode("Computer Science", root);
  int chem = tree.AddNode("Chemical Sciences", root);
  int db = tree.AddNode("Database", cs);
  int sys = tree.AddNode("System", cs);
  int chem_gen = tree.AddNode("Chemical Sciences (general)", chem);
  tree.AddNode("SIGMOD", db);
  tree.AddNode("VLDB", db);
  tree.AddNode("ICDE", db);
  tree.AddNode("ICPADS", sys);
  tree.AddNode("SOSP", sys);
  tree.AddNode("RSC Advances", chem_gen);
  return tree;
}

}  // namespace dime
