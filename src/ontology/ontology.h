#ifndef DIME_ONTOLOGY_ONTOLOGY_H_
#define DIME_ONTOLOGY_ONTOLOGY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file ontology.h
/// Tree-structured ontologies for the ontology-based similarity function
/// (Section II). Depth of the root is 1 and the similarity of two mapped
/// nodes n, n' is 2|LCA(n, n')| / (|n| + |n'|) where |n| is the depth.
///
/// Entities are mapped to nodes either by exact name lookup (e.g. a Venue
/// string is a leaf of the Google-Scholar-Metrics-style tree of Fig. 4) or
/// by keyword voting (e.g. a Title or Description maps to the node whose
/// registered keywords it mentions most often); see MapMode in
/// core/preprocess.h.

namespace dime {

/// Sentinel id for "no node".
inline constexpr int kNoNode = -1;

class Ontology {
 public:
  Ontology() = default;

  /// Adds the root node. Must be called exactly once, before AddNode.
  /// Returns the root's id (always 0).
  int AddRoot(std::string_view name);

  /// Adds a child of `parent` (which must already exist). Node names are
  /// case-insensitive and must be unique within the tree. Returns the new
  /// node's id.
  int AddNode(std::string_view name, int parent);

  /// Registers `keyword` (lower-cased) as voting for `node` in keyword
  /// mapping. A keyword may vote for only one node; later registrations of
  /// the same keyword are ignored.
  void AddKeyword(std::string_view keyword, int node);

  /// Exact (case-insensitive) name lookup. Returns kNoNode if absent.
  int FindByName(std::string_view name) const;

  /// Maps tokenized text to the node with the most keyword votes. Votes for
  /// a node are counted per occurrence. Returns kNoNode when no token is a
  /// registered keyword. Ties are broken toward the deeper node, then the
  /// smaller id (deterministic).
  int MapByKeywords(const std::vector<std::string>& tokens) const;

  int NumNodes() const { return static_cast<int>(parent_.size()); }
  int Parent(int node) const { return parent_[node]; }
  /// Depth with root = 1 (the paper's convention).
  int Depth(int node) const { return depth_[node]; }
  const std::string& Name(int node) const { return name_[node]; }
  int MaxDepth() const { return max_depth_; }

  /// Lowest common ancestor of two nodes.
  int Lca(int a, int b) const;

  /// Ontology similarity 2|LCA| / (|a| + |b|). Returns 0 if either node is
  /// kNoNode.
  double Similarity(int a, int b) const;

  /// The ancestor of `node` at depth `depth` (<= Depth(node)); the node
  /// itself if depth == Depth(node).
  int AncestorAtDepth(int node, int depth) const;

  /// The signature depth tau_n = ceil(theta * |n| / (2 - theta)) from
  /// Section IV-B, clamped to [1, depth].
  static int TauDepth(int depth, double theta);

  /// Serializes the tree to a line-based text format:
  ///   root<TAB><root name>
  ///   node<TAB><parent name><TAB><node name>     (pre-order)
  ///   keyword<TAB><word><TAB><node name>
  std::string ToText() const;

  /// Parses ToText() output. Returns false on malformed input (out is
  /// left in an unspecified state).
  static bool FromText(std::string_view text, Ontology* out);

  /// File wrappers around the text codec.
  bool SaveToFile(const std::string& path) const;
  static bool LoadFromFile(const std::string& path, Ontology* out);

 private:
  std::vector<int> parent_;
  std::vector<int> depth_;
  std::vector<std::string> name_;
  std::unordered_map<std::string, int> by_name_;
  std::unordered_map<std::string, int> keyword_to_node_;
  int max_depth_ = 0;
};

}  // namespace dime

#endif  // DIME_ONTOLOGY_ONTOLOGY_H_
