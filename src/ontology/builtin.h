#ifndef DIME_ONTOLOGY_BUILTIN_H_
#define DIME_ONTOLOGY_BUILTIN_H_

#include <string>
#include <vector>

#include "src/ontology/ontology.h"

/// \file builtin.h
/// The built-in venue ontology mirroring Google Scholar Metrics (Fig. 4 of
/// the paper): root -> broad field -> subfield -> venue, with root depth 1
/// and venues at depth 4. Two venues of the same subfield therefore have
/// ontology similarity 2*3/(4+4) = 0.75 (the threshold used by rule
/// phi_2+), venues of sibling subfields 0.5, and venues of different broad
/// fields 0.25.
///
/// Each subfield also registers topic keywords so that free text (paper
/// titles, product descriptions) can be mapped into the tree by keyword
/// voting — this powers the fon(Title) predicate of negative rule phi_3-.

namespace dime {

/// One subfield row of the vocabulary table.
struct ResearchArea {
  std::string field;                  ///< depth-2 node, e.g. "Computer Science"
  std::string subfield;               ///< depth-3 node, e.g. "Database"
  std::vector<std::string> venues;    ///< depth-4 leaves, e.g. "SIGMOD"
  std::vector<std::string> keywords;  ///< title/description topic words
};

/// The full vocabulary table backing the built-in ontology and the
/// synthetic data generators.
const std::vector<ResearchArea>& ResearchAreas();

/// Builds a fresh copy of the venue ontology (with keywords registered on
/// the subfield nodes).
Ontology BuildVenueOntology();

/// Shared immutable instance of BuildVenueOntology().
const Ontology& VenueOntology();

/// The exact miniature ontology of Fig. 4, used by unit tests and the
/// quickstart example: Venue -> {Computer Science -> {Database -> {SIGMOD,
/// VLDB, ICDE}, System -> {ICPADS, SOSP}}, Chemical Sciences -> {Chemical
/// Sciences (general) -> {RSC Advances}}}.
Ontology BuildFig4Ontology();

}  // namespace dime

#endif  // DIME_ONTOLOGY_BUILTIN_H_
