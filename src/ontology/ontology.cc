#include "src/ontology/ontology.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace dime {

int Ontology::AddRoot(std::string_view name) {
  DIME_CHECK(parent_.empty()) << "root already added";
  parent_.push_back(kNoNode);
  depth_.push_back(1);
  name_.emplace_back(name);
  by_name_[ToLower(name)] = 0;
  max_depth_ = 1;
  return 0;
}

int Ontology::AddNode(std::string_view name, int parent) {
  DIME_CHECK(!parent_.empty()) << "add a root first";
  DIME_CHECK_GE(parent, 0);
  DIME_CHECK_LT(parent, NumNodes());
  std::string key = ToLower(name);
  DIME_CHECK(by_name_.find(key) == by_name_.end())
      << "duplicate node name: " << name;
  int id = NumNodes();
  parent_.push_back(parent);
  depth_.push_back(depth_[parent] + 1);
  name_.emplace_back(name);
  by_name_[key] = id;
  max_depth_ = std::max(max_depth_, depth_[id]);
  return id;
}

void Ontology::AddKeyword(std::string_view keyword, int node) {
  DIME_CHECK_GE(node, 0);
  DIME_CHECK_LT(node, NumNodes());
  keyword_to_node_.emplace(ToLower(keyword), node);
}

int Ontology::FindByName(std::string_view name) const {
  auto it = by_name_.find(ToLower(name));
  return it == by_name_.end() ? kNoNode : it->second;
}

int Ontology::MapByKeywords(const std::vector<std::string>& tokens) const {
  std::unordered_map<int, int> votes;
  for (const std::string& t : tokens) {
    auto it = keyword_to_node_.find(ToLower(t));
    if (it != keyword_to_node_.end()) ++votes[it->second];
  }
  int best = kNoNode;
  int best_votes = 0;
  for (const auto& [node, count] : votes) {
    bool better = count > best_votes;
    if (count == best_votes && best != kNoNode) {
      if (depth_[node] != depth_[best]) {
        better = depth_[node] > depth_[best];
      } else {
        better = node < best;
      }
    }
    if (best == kNoNode || better) {
      best = node;
      best_votes = count;
    }
  }
  return best;
}

int Ontology::Lca(int a, int b) const {
  DIME_CHECK_GE(a, 0);
  DIME_CHECK_GE(b, 0);
  while (a != b) {
    if (depth_[a] >= depth_[b]) {
      a = parent_[a];
    } else {
      b = parent_[b];
    }
  }
  return a;
}

double Ontology::Similarity(int a, int b) const {
  if (a == kNoNode || b == kNoNode) return 0.0;
  int lca = Lca(a, b);
  return 2.0 * static_cast<double>(depth_[lca]) /
         static_cast<double>(depth_[a] + depth_[b]);
}

int Ontology::AncestorAtDepth(int node, int depth) const {
  DIME_CHECK_GE(depth, 1);
  DIME_CHECK_LE(depth, depth_[node]);
  while (depth_[node] > depth) node = parent_[node];
  return node;
}

std::string Ontology::ToText() const {
  std::string out;
  if (parent_.empty()) return out;
  out += "root\t" + name_[0] + "\n";
  // Nodes were added parent-first, so id order is a valid topological
  // order for reconstruction.
  for (int n = 1; n < NumNodes(); ++n) {
    out += "node\t" + name_[parent_[n]] + "\t" + name_[n] + "\n";
  }
  // Deterministic keyword order: sort by (node, word).
  std::vector<std::pair<int, std::string>> keywords;
  keywords.reserve(keyword_to_node_.size());
  for (const auto& [word, node] : keyword_to_node_) {
    keywords.emplace_back(node, word);
  }
  std::sort(keywords.begin(), keywords.end());
  for (const auto& [node, word] : keywords) {
    out += "keyword\t" + word + "\t" + name_[node] + "\n";
  }
  return out;
}

bool Ontology::FromText(std::string_view text, Ontology* out) {
  *out = Ontology();
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(std::string(line), '\t');
    if (fields[0] == "root") {
      if (fields.size() != 2 || out->NumNodes() != 0) return false;
      out->AddRoot(fields[1]);
    } else if (fields[0] == "node") {
      if (fields.size() != 3) return false;
      int parent = out->FindByName(fields[1]);
      if (parent == kNoNode || out->FindByName(fields[2]) != kNoNode) {
        return false;
      }
      out->AddNode(fields[2], parent);
    } else if (fields[0] == "keyword") {
      if (fields.size() != 3) return false;
      int node = out->FindByName(fields[2]);
      if (node == kNoNode) return false;
      out->AddKeyword(fields[1], node);
    } else {
      return false;
    }
  }
  return out->NumNodes() > 0;
}

bool Ontology::SaveToFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << ToText();
  return static_cast<bool>(f);
}

bool Ontology::LoadFromFile(const std::string& path, Ontology* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  return FromText(buf.str(), out);
}

int Ontology::TauDepth(int depth, double theta) {
  double tau = std::ceil(theta * static_cast<double>(depth) / (2.0 - theta) -
                         1e-9);
  int t = static_cast<int>(tau);
  return std::clamp(t, 1, depth);
}

}  // namespace dime
