#ifndef DIME_EXEC_POOL_H_
#define DIME_EXEC_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

/// \file pool.h
/// The work-stealing task scheduler of the sharded execution engine
/// (DESIGN.md §7.9). A WorkStealingPool owns a fixed set of worker
/// threads; engines spawn chunky tasks (thousands of pair verifications
/// each) into a TaskGroup and then Wait(), which makes the calling thread
/// the pool's n-th executor — so a pool built for `num_threads = 1` has
/// zero worker threads and runs every task inline on the caller, giving
/// an honest single-thread baseline and fully deterministic `--threads 1`
/// execution.
///
/// Scheduling: each worker owns a deque; it pops its own bottom (LIFO,
/// cache-warm), drains the shared injection queue next, and steals from
/// the top of sibling deques (FIFO, oldest-first) when idle. External
/// threads (engines, the serving workers) submit to the injection queue.
///
/// Failure model: a task that throws never escapes the pool. The first
/// exception is captured on its TaskGroup, the group is cancelled
/// (unstarted tasks are skipped), and the engine maps the captured
/// exception to its documented degradation path (serial fallback or an
/// INTERNAL status). Deadlines/cancellation are cooperative: task bodies
/// poll their RunControl and call TaskGroup::RecordControl, which also
/// cancels the group. The "exec/task-fault" failpoint fires inside the
/// task runner so every engine built on the pool inherits a tested
/// fault path.

namespace dime {
namespace exec {

struct PoolOptions {
  /// Total executor count including the caller participating via
  /// TaskGroup::Wait(); 0 resolves through ResolveThreadCount (the
  /// --threads / DIME_THREADS / hardware_concurrency precedence).
  unsigned num_threads = 0;
};

/// The one thread-count rule, re-exported at the scheduler boundary so
/// binaries configure pools without reaching into src/common directly.
/// Delegates to dime::ResolveThreadCount.
unsigned ResolveThreadCount(unsigned requested);

class TaskGroup;

class WorkStealingPool {
 public:
  explicit WorkStealingPool(const PoolOptions& options = {});
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Executors available to a waiting TaskGroup: worker threads + 1 for
  /// the caller. Engines size their task decomposition off this.
  unsigned thread_count() const { return num_threads_; }

 private:
  friend class TaskGroup;

  struct Task {
    TaskGroup* group = nullptr;
    std::function<void()> fn;
  };

  /// One worker's deque; own pops take the back (LIFO), steals take the
  /// front (FIFO), both under the per-worker mutex — stealing is rare
  /// with chunky tasks, so a striped mutex beats a lock-free deque here
  /// on simplicity with no measurable cost.
  struct alignas(64) WorkerQueue {
    Mutex mu;
    std::deque<Task> tasks DIME_GUARDED_BY(mu);
  };

  void Submit(Task task);
  /// Pops and runs one task from anywhere in the pool (injection queue
  /// first for external callers, own deque first for workers). Returns
  /// false when no task was found.
  bool TryRunOneTask();
  bool PopTask(Task* out);
  void WorkerLoop(unsigned index);
  static void Execute(Task& task);

  unsigned num_threads_ = 1;  // workers + caller
  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  Mutex inject_mu_;
  std::deque<Task> injected_ DIME_GUARDED_BY(inject_mu_);

  /// Sleep/wake: idle workers wait on `wake_cv_`; every Submit bumps
  /// `work_epoch_` under `wake_mu_` and signals, so a worker that saw a
  /// stale epoch before deciding to sleep re-scans instead of waiting.
  Mutex wake_mu_;
  CondVar wake_cv_;
  uint64_t work_epoch_ DIME_GUARDED_BY(wake_mu_) = 0;
  /// Monotone shutdown flag (relaxed: workers re-check after every wake
  /// and at every scan; a stale read only delays exit by one scan).
  std::atomic<bool> stop_{false};

  std::vector<std::thread> workers_;
};

/// A batch of tasks awaited together, carrying the batch's failure state.
/// Groups are cheap; engines create one per phase. Multiple groups may
/// share one pool concurrently (the serving path does).
class TaskGroup {
 public:
  explicit TaskGroup(WorkStealingPool* pool) : pool_(pool) {}
  /// Waits for all spawned tasks (cancelling first), so a group can never
  /// outlive work that references it.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn`. May be called from inside another task of the same
  /// pool (the task graph and dynamic per-partition spawning do this).
  void Spawn(std::function<void()> fn);

  /// Marks the group cancelled: tasks not yet started are skipped (their
  /// completion is still counted, so Wait() terminates). Idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel/RecordException/RecordControl ran. Monotone flag,
  /// acquire-read so a true implies the recorded failure is visible.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Records the first non-OK control status (deadline/cancellation) and
  /// cancels the group.
  void RecordControl(Status st) DIME_EXCLUDES(mu_);

  /// Records the first task exception and cancels the group.
  void RecordException(std::exception_ptr e) DIME_EXCLUDES(mu_);

  /// Blocks until every spawned task has finished or been skipped. The
  /// calling thread executes pool tasks while it waits (it is the n-th
  /// executor). After Wait(), exception() / control_status() are stable.
  void Wait() DIME_EXCLUDES(mu_);

  /// First captured task exception (null if none). Call after Wait().
  std::exception_ptr exception() const DIME_EXCLUDES(mu_);

  /// First recorded control failure (OK if none). Call after Wait().
  Status control_status() const DIME_EXCLUDES(mu_);

 private:
  friend class WorkStealingPool;

  void TaskDone() DIME_EXCLUDES(mu_);

  WorkStealingPool* pool_;
  std::atomic<bool> cancelled_{false};
  mutable Mutex mu_;
  CondVar done_cv_;
  size_t pending_ DIME_GUARDED_BY(mu_) = 0;
  std::exception_ptr exception_ DIME_GUARDED_BY(mu_);
  Status control_status_ DIME_GUARDED_BY(mu_);
};

}  // namespace exec
}  // namespace dime

#endif  // DIME_EXEC_POOL_H_
