#ifndef DIME_EXEC_SHARD_H_
#define DIME_EXEC_SHARD_H_

#include <cstddef>
#include <vector>

#include "src/core/preprocess.h"
#include "src/rules/rule.h"

/// \file shard.h
/// Signature-locality sharding of a PreparedGroup's entities (DESIGN.md
/// §7.9). The sharded engine decomposes the all-pairs space into
/// intra-shard and shard-pair tasks; any partition of the entities is
/// correct (every unordered pair lands in exactly one task), so the
/// layout is chosen for locality: entities are keyed by the first global
/// rank of the first set-based predicate of the first positive rule — the
/// same document-frequency order prefix filtering uses — and consecutive
/// key runs land in one shard. Entities likely to share rare signatures
/// (and thus to merge) then meet in intra-shard tasks, where the
/// concurrent union-find is warm.
///
/// The plan is deterministic: keys come from the precomputed rank
/// columns, ties break on entity id, and block cuts depend only on n and
/// `target_shard_size`.

namespace dime {
namespace exec {

struct ShardPlan {
  /// Entity ids in signature-locality order.
  std::vector<int> order;
  /// Shard s spans order[starts[s] .. starts[s+1]); starts has
  /// num_shards() + 1 entries.
  std::vector<size_t> starts;

  size_t num_shards() const { return starts.empty() ? 0 : starts.size() - 1; }
  size_t shard_size(size_t s) const { return starts[s + 1] - starts[s]; }
};

/// Builds the plan for `pg`: ceil(n / target_shard_size) near-equal
/// blocks in key order. `target_shard_size` is clamped to at least 1.
ShardPlan BuildSignatureShardPlan(const PreparedGroup& pg,
                                  const std::vector<PositiveRule>& positive,
                                  size_t target_shard_size);

}  // namespace exec
}  // namespace dime

#endif  // DIME_EXEC_SHARD_H_
