#include "src/exec/sharded_dime.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/fault_injection.h"
#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/core/dime_plus_internal.h"
#include "src/exec/parallel_sort.h"
#include "src/exec/shard.h"
#include "src/exec/task_graph.h"
#include "src/index/inverted_index.h"
#include "src/index/striped_union_find.h"
#include "src/sim/set_similarity.h"

namespace dime {
namespace exec {
namespace {

/// Resolves the pool to run on: the borrowed one, or a private pool built
/// for this call and torn down with it.
struct PoolRef {
  WorkStealingPool* pool;
  std::unique_ptr<WorkStealingPool> owned;

  explicit PoolRef(const ShardedOptions& options) {
    if (options.pool != nullptr) {
      pool = options.pool;
    } else {
      owned = std::make_unique<WorkStealingPool>(
          PoolOptions{options.num_threads});
      pool = owned.get();
    }
  }
};

/// Rethrows the group's first task exception, if any. The engines call
/// this right after Wait(); the catch site at the top level maps the
/// exception to the documented degradation path (serial fallback or
/// INTERNAL), exactly as the historical fork-join engine did.
void RethrowTaskFault(const TaskGroup& group) {
  std::exception_ptr e = group.exception();
  if (e != nullptr) std::rethrow_exception(e);
}

std::string FaultText(const std::exception* e) {
  return e != nullptr ? e->what() : "worker thread failed";
}

/// Step-1 truncation / worker-fault result: no partitions (half-merged
/// components are not valid output), empty scrollbar, explaining status.
DimeResult AbandonedResult(size_t num_negative, Status st) {
  DimeResult out;
  out.flagged_by_prefix.assign(num_negative, {});
  out.status = std::move(st);
  return out;
}

/// Chunky-task sizing: elements per task so every executor gets several
/// tasks (for stealing to balance) without drowning in scheduling noise.
size_t ChunkSize(size_t total, unsigned threads, size_t floor_size) {
  const size_t chunks = static_cast<size_t>(threads) * 4;
  return std::max(floor_size, (total + chunks - 1) / chunks);
}

// ---------------------------------------------------------------------------
// RunDimeSharded: the naive quadratic framework (Algorithm 1) as a task
// graph of shard blocks.
// ---------------------------------------------------------------------------

DimeResult RunDimeShardedInner(const PreparedGroup& pg,
                               const std::vector<PositiveRule>& positive,
                               const std::vector<NegativeRule>& negative,
                               const ShardedOptions& options,
                               const RunControl& control,
                               WorkStealingPool* pool) {
  DimeResult result;
  const int n = static_cast<int>(pg.size());
  const unsigned threads = pool->thread_count();

  size_t target = options.target_shard_size;
  if (target == 0) {
    // Auto: ~4 shards per executor keeps every intra-shard node chunky
    // while leaving the (quadratically many) pair nodes to balance load.
    target = ChunkSize(static_cast<size_t>(n), threads, 64);
  }
  const ShardPlan plan = BuildSignatureShardPlan(pg, positive, target);
  const size_t num_shards = plan.num_shards();

  // ---- Step 1: intra-shard nodes unlock shard-pair nodes. ----------------
  StripedUnionFind uf(static_cast<size_t>(n));
  std::atomic<size_t> pos_checks{0};
  std::atomic<uint64_t> kernel_exits{0};
  TaskGroup group(pool);
  {
    TaskGraph graph(&group);

    // Scans every unordered pair with one entity in shard s1 and one in
    // s2 (s1 == s2: the shard's internal pairs). Pair membership depends
    // only on the deterministic plan, so every pair is evaluated exactly
    // once regardless of schedule — positive_pair_checks stays equal to
    // the serial engine's (the naive framework has no skip path).
    auto scan_block = [&pg, &positive, &plan, &uf, &control, &group,
                       &pos_checks, &kernel_exits](size_t s1, size_t s2) {
      if (DIME_FAULT_POINT(failpoints::kParallelWorkerFault)) {
        throw std::runtime_error("injected worker fault (step 1)");
      }
      const uint64_t exits_before = KernelEarlyExits();
      size_t local_checks = 0;
      const size_t b1 = plan.starts[s1], e1 = plan.starts[s1 + 1];
      const size_t b2 = plan.starts[s2], e2 = plan.starts[s2 + 1];
      for (size_t i = b1; i < e1; ++i) {
        Status st =
            internal::CheckRunControl(control, "dime_parallel/positive-row");
        if (!st.ok()) {
          group.RecordControl(std::move(st));
          break;
        }
        const int a = plan.order[i];
        const size_t j_begin = (s1 == s2) ? i + 1 : b2;
        for (size_t j = j_begin; j < e2; ++j) {
          int x = a, y = plan.order[j];
          if (x > y) std::swap(x, y);
          for (const PositiveRule& rule : positive) {
            ++local_checks;
            if (EvalPositiveRule(pg, rule, x, y)) {
              uf.Union(x, y);
              break;
            }
          }
        }
      }
      pos_checks.fetch_add(local_checks, std::memory_order_relaxed);
      kernel_exits.fetch_add(KernelEarlyExits() - exits_before,
                             std::memory_order_relaxed);
    };

    // Streaming topology: pair node (s1, s2) unlocks when both inputs
    // finished their intra-shard pass, while other shards still run.
    std::vector<int> intra(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      intra[s] = graph.AddNode([&scan_block, s] { scan_block(s, s); });
    }
    for (size_t s1 = 0; s1 < num_shards; ++s1) {
      for (size_t s2 = s1 + 1; s2 < num_shards; ++s2) {
        const int id =
            graph.AddNode([&scan_block, s1, s2] { scan_block(s1, s2); });
        graph.AddEdge(intra[s1], id);
        graph.AddEdge(intra[s2], id);
      }
    }
    graph.Run();
    group.Wait();
  }
  RethrowTaskFault(group);
  if (!group.control_status().ok()) {
    return AbandonedResult(negative.size(), group.control_status());
  }
  result.stats.positive_pair_checks = pos_checks.load();
  result.partitions = uf.Components();

  // ---- Step 2. -----------------------------------------------------------
  result.pivot = internal::PickPivot(result.partitions);
  DIME_DCHECK(result.partitions.empty() || result.pivot >= 0)
      << "non-empty group must yield a pivot";

  // ---- Step 3: one non-pivot partition per task. -------------------------
  std::vector<int> first_flagging(result.partitions.size(), -1);
  if (result.pivot >= 0 && !negative.empty()) {
    const std::vector<int>& pivot_entities = result.partitions[result.pivot];
    std::atomic<size_t> neg_checks{0};
    TaskGroup flag_group(pool);
    for (size_t p = 0; p < result.partitions.size(); ++p) {
      if (static_cast<int>(p) == result.pivot) continue;
      flag_group.Spawn([&pg, &negative, &result, &control, &flag_group,
                        &pivot_entities, &first_flagging, &neg_checks,
                        &kernel_exits, p] {
        if (DIME_FAULT_POINT(failpoints::kParallelWorkerFault)) {
          throw std::runtime_error("injected worker fault (step 3)");
        }
        Status st = internal::CheckRunControl(
            control, "dime_parallel/negative-partition");
        if (!st.ok()) {
          flag_group.RecordControl(std::move(st));
          return;
        }
        const uint64_t exits_before = KernelEarlyExits();
        size_t local_checks = 0;
        int flag = -1;
        for (size_t r = 0; r < negative.size() && flag < 0; ++r) {
          for (int e : result.partitions[p]) {
            bool all_dissimilar = true;
            for (int e_star : pivot_entities) {
              ++local_checks;
              if (!EvalNegativeRule(pg, negative[r], e, e_star)) {
                all_dissimilar = false;
                break;
              }
            }
            if (all_dissimilar) {
              flag = static_cast<int>(r);
              break;
            }
          }
        }
        first_flagging[p] = flag;
        neg_checks.fetch_add(local_checks, std::memory_order_relaxed);
        kernel_exits.fetch_add(KernelEarlyExits() - exits_before,
                               std::memory_order_relaxed);
      });
    }
    flag_group.Wait();
    RethrowTaskFault(flag_group);
    // Deadline during step 3: the partitions whose tasks ran keep their
    // flags (a subset of the full run's — monotone scrollbar), skipped
    // ones stay unflagged, and the status reports the truncation.
    if (!flag_group.control_status().ok()) {
      result.status = flag_group.control_status();
    }
    result.stats.negative_pair_checks = neg_checks.load();
  }
  result.first_flagging_rule = first_flagging;
  result.flagged_by_prefix = internal::BuildScrollbar(
      result.partitions, result.pivot, first_flagging, negative.size());
  result.stats.kernel_early_exits = kernel_exits.load();
  internal::DcheckResultInvariants(result, pg.size(), negative.size());
  return result;
}

// ---------------------------------------------------------------------------
// RunDimePlusSharded: Algorithm 2 — parallel signature postings, pooled
// sort into inverted lists, volume-balanced verification, prebuilt
// negative contexts, one partition scan per task.
// ---------------------------------------------------------------------------

/// A slice of one inverted list to verify: rows [row_begin, row_end) of
/// `list` against every later element. Slicing rows keeps a stop-word
/// flood list (one signature on every entity) from serializing the run.
struct VerifySlice {
  size_t rule = 0;
  const int* list = nullptr;
  size_t len = 0;
  size_t row_begin = 0;
  size_t row_end = 0;

  size_t volume() const {
    // sum over rows i of (len - 1 - i)
    const size_t rows = row_end - row_begin;
    const size_t first = len - 1 - row_begin;
    const size_t last = len - row_end;
    return rows * (first + last) / 2;
  }
};

/// Per-run freelist of negative-phase scratches. Tasks borrow one for a
/// partition scan and return it; Wait()-helping callers can interleave
/// tasks of unrelated concurrent runs, so scratches are keyed by
/// acquisition, never by worker index.
struct ScratchFreeList {
  Mutex mu;
  std::vector<std::unique_ptr<internal::NegativeScratch>> all
      DIME_GUARDED_BY(mu);
  std::vector<internal::NegativeScratch*> free_list DIME_GUARDED_BY(mu);

  internal::NegativeScratch* Acquire() DIME_EXCLUDES(mu) {
    MutexLock lock(&mu);
    if (!free_list.empty()) {
      internal::NegativeScratch* s = free_list.back();
      free_list.pop_back();
      return s;
    }
    all.push_back(std::make_unique<internal::NegativeScratch>());
    return all.back().get();
  }
  void Release(internal::NegativeScratch* s) DIME_EXCLUDES(mu) {
    MutexLock lock(&mu);
    free_list.push_back(s);
  }
};

/// One positive rule's inverted lists, from either source: borrowed
/// frozen artifact arrays, or postings generated and sorted this run.
struct RuleLists {
  // Frozen artifact path.
  const uint64_t* list_starts = nullptr;
  size_t num_lists = 0;
  const int* list_entities = nullptr;
  // Generated path: entity arena in (signature, entity) sorted order,
  // run r spanning entities[run_starts[r] .. run_starts[r + 1]).
  std::vector<int> entities;
  std::vector<size_t> run_starts;
};

DimeResult RunDimePlusShardedInner(const PreparedGroup& pg,
                                   const std::vector<PositiveRule>& positive,
                                   const std::vector<NegativeRule>& negative,
                                   const ShardedOptions& options,
                                   const RunControl& control,
                                   WorkStealingPool* pool) {
  DimeResult result;
  const int n = static_cast<int>(pg.size());
  const unsigned threads = pool->thread_count();
  const DimePlusOptions& plus = options.plus;

  // Same artifact-compatibility gate as the serial engine: stale
  // artifacts cost time, never correctness.
  const PreparedRuleArtifacts* artifacts = pg.artifacts.get();
  if (artifacts != nullptr &&
      (artifacts->positive_indexes.size() != positive.size() ||
       artifacts->negative_sigs.size() != negative.size() ||
       artifacts->max_tuple_signatures !=
           plus.signatures.max_tuple_signatures)) {
    DIME_LOG(WARNING) << "prepared rule artifacts do not match the rule "
                         "set/options of this run; regenerating signatures";
    artifacts = nullptr;
  }

  std::atomic<uint64_t> kernel_exits{0};

  // ---- Step 1a: per-rule inverted lists. ---------------------------------
  // Artifact path: freeze on the coordinator (idempotent sort) and borrow
  // the arrays. On-demand path: per-chunk tasks generate (sig, entity)
  // postings with private scratches; the pool then sorts each rule's
  // postings into lists. The sort key (sig, entity) reproduces exactly
  // the runs InvertedIndex's stable freeze builds from ascending Add()s.
  std::vector<RuleLists> lists(positive.size());
  {
    std::vector<std::unique_ptr<SignatureGenerator>> gens(positive.size());
    std::vector<std::vector<std::vector<std::pair<uint64_t, int>>>> chunks(
        positive.size());
    const size_t chunk = ChunkSize(static_cast<size_t>(n), threads, 512);
    const size_t num_chunks = (static_cast<size_t>(n) + chunk - 1) / chunk;
    TaskGroup gen_group(pool);
    for (size_t r = 0; r < positive.size(); ++r) {
      if (artifacts != nullptr) {
        InvertedIndex::FrozenView fv =
            artifacts->positive_indexes[r].FrozenData();
        lists[r].list_starts = fv.list_starts;
        lists[r].num_lists = fv.list_starts_len - 1;
        lists[r].list_entities = fv.entities;
        continue;
      }
      gens[r] = std::make_unique<SignatureGenerator>(
          pg, positive[r].predicates, Direction::kGe,
          /*rule_tag=*/r + 1, plus.signatures);
      chunks[r].resize(num_chunks);
      for (size_t c = 0; c < num_chunks; ++c) {
        gen_group.Spawn([&pg, &gens, &chunks, &control, &gen_group, chunk, r,
                         c, n] {
          Status st =
              internal::CheckRunControl(control, "dime_plus/index-rule");
          if (!st.ok()) {
            gen_group.RecordControl(std::move(st));
            return;
          }
          SignatureScratch scratch;
          std::vector<std::pair<uint64_t, int>>& out = chunks[r][c];
          const size_t end =
              std::min(static_cast<size_t>(n), (c + 1) * chunk);
          for (size_t e = c * chunk; e < end; ++e) {
            const std::vector<uint64_t>& sigs = gens[r]->PositiveRuleSignatures(
                static_cast<int>(e), &scratch);
            for (uint64_t s : sigs) {
              out.emplace_back(s, static_cast<int>(e));
            }
          }
        });
      }
    }
    gen_group.Wait();
    RethrowTaskFault(gen_group);
    if (!gen_group.control_status().ok()) {
      return AbandonedResult(negative.size(), gen_group.control_status());
    }
    for (size_t r = 0; r < positive.size(); ++r) {
      if (artifacts != nullptr) continue;
      std::vector<std::pair<uint64_t, int>> postings;
      size_t total = 0;
      for (const auto& c : chunks[r]) total += c.size();
      postings.reserve(total);
      for (auto& c : chunks[r]) {
        postings.insert(postings.end(), c.begin(), c.end());
        c.clear();
        c.shrink_to_fit();
      }
      ParallelSort(pool, &postings,
                   std::less<std::pair<uint64_t, int>>());
      // Collapse sorted postings into the entity arena + run table.
      RuleLists& rl = lists[r];
      rl.entities.resize(postings.size());
      for (size_t i = 0; i < postings.size(); ++i) {
        rl.entities[i] = postings[i].second;
        if (i == 0 || postings[i].first != postings[i - 1].first) {
          rl.run_starts.push_back(i);
        }
      }
      rl.run_starts.push_back(postings.size());
    }
  }

  // ---- Step 1b: volume-balanced candidate verification. ------------------
  StripedUnionFind uf(static_cast<size_t>(n));
  std::atomic<size_t> pos_checks{0};
  std::atomic<size_t> trans_skips{0};
  size_t candidate_volume = 0;
  {
    // Collect every list (len >= 2) as one or more row slices, then pack
    // slices into near-equal-volume tasks.
    std::vector<VerifySlice> slices;
    size_t total_volume = 0;
    auto add_list = [&](size_t rule, const int* list, size_t len) {
      candidate_volume += len * (len - 1) / 2;
      if (len < 2) return;
      total_volume += len * (len - 1) / 2;
      slices.push_back(VerifySlice{rule, list, len, 0, len});
    };
    for (size_t r = 0; r < positive.size(); ++r) {
      const RuleLists& rl = lists[r];
      if (rl.list_starts != nullptr) {
        for (size_t l = 0; l < rl.num_lists; ++l) {
          add_list(r, rl.list_entities + rl.list_starts[l],
                   static_cast<size_t>(rl.list_starts[l + 1] -
                                       rl.list_starts[l]));
        }
      } else {
        for (size_t l = 0; l + 1 < rl.run_starts.size(); ++l) {
          add_list(r, rl.entities.data() + rl.run_starts[l],
                   rl.run_starts[l + 1] - rl.run_starts[l]);
        }
      }
    }
    result.stats.candidate_pairs = candidate_volume;

    const size_t target_volume =
        std::max<size_t>(1 << 12, ChunkSize(total_volume, threads, 1));
    // Split oversized lists (the stop-word flood) by rows so no single
    // slice dominates the schedule.
    std::vector<VerifySlice> balanced;
    balanced.reserve(slices.size());
    for (const VerifySlice& s : slices) {
      if (s.volume() <= 2 * target_volume) {
        balanced.push_back(s);
        continue;
      }
      size_t row = 0;
      while (row < s.len) {
        VerifySlice part = s;
        part.row_begin = row;
        size_t vol = 0;
        while (row < s.len && vol < target_volume) {
          vol += s.len - 1 - row;
          ++row;
        }
        part.row_end = row;
        balanced.push_back(part);
      }
    }

    TaskGroup verify_group(pool);
    size_t batch_begin = 0, batch_volume = 0;
    auto spawn_batch = [&](size_t batch_end) {
      if (batch_end == batch_begin) return;
      verify_group.Spawn([&pg, &positive, &plus, &uf, &control, &verify_group,
                          &balanced, &pos_checks, &trans_skips, &kernel_exits,
                          batch_begin, batch_end] {
        if (DIME_FAULT_POINT(failpoints::kParallelWorkerFault)) {
          throw std::runtime_error("injected worker fault (step 1)");
        }
        const uint64_t exits_before = KernelEarlyExits();
        size_t local_checks = 0, local_skips = 0;
        constexpr size_t kCheckStride = 256;
        size_t until_check = kCheckStride;
        for (size_t b = batch_begin; b < batch_end; ++b) {
          const VerifySlice& s = balanced[b];
          // Whole-list transitivity skip, valid only when the slice
          // covers the full list. Connected() never reports falsely
          // true, so a concurrent merge can only turn a pair skip into
          // a (redundant but harmless) verification.
          if (plus.transitivity_skip && s.row_begin == 0 &&
              s.row_end == s.len) {
            bool all_connected = true;
            for (size_t i = 1; i < s.len; ++i) {
              if (!uf.Connected(s.list[0], s.list[i])) {
                all_connected = false;
                break;
              }
            }
            if (all_connected) {
              local_skips += s.len * (s.len - 1) / 2;
              continue;
            }
          }
          for (size_t i = s.row_begin; i < s.row_end; ++i) {
            for (size_t j = i + 1; j < s.len; ++j) {
              int e1 = s.list[i], e2 = s.list[j];
              if (e1 == e2) continue;
              if (e1 > e2) std::swap(e1, e2);
              if (--until_check == 0) {
                until_check = kCheckStride;
                Status st = internal::CheckRunControl(
                    control, "dime_plus/verify-candidates");
                if (!st.ok()) {
                  verify_group.RecordControl(std::move(st));
                  pos_checks.fetch_add(local_checks,
                                       std::memory_order_relaxed);
                  trans_skips.fetch_add(local_skips,
                                        std::memory_order_relaxed);
                  kernel_exits.fetch_add(KernelEarlyExits() - exits_before,
                                         std::memory_order_relaxed);
                  return;
                }
              }
              if (plus.transitivity_skip && uf.Connected(e1, e2)) {
                ++local_skips;
                continue;
              }
              ++local_checks;
              if (EvalPositiveRule(pg, positive[s.rule], e1, e2)) {
                uf.Union(e1, e2);
              }
            }
          }
        }
        pos_checks.fetch_add(local_checks, std::memory_order_relaxed);
        trans_skips.fetch_add(local_skips, std::memory_order_relaxed);
        kernel_exits.fetch_add(KernelEarlyExits() - exits_before,
                               std::memory_order_relaxed);
      });
      batch_begin = batch_end;
      batch_volume = 0;
    };
    for (size_t b = 0; b < balanced.size(); ++b) {
      batch_volume += balanced[b].volume();
      if (batch_volume >= target_volume) spawn_batch(b + 1);
    }
    spawn_batch(balanced.size());
    verify_group.Wait();
    RethrowTaskFault(verify_group);
    if (!verify_group.control_status().ok()) {
      return AbandonedResult(negative.size(),
                             verify_group.control_status());
    }
  }
  result.stats.positive_pair_checks = pos_checks.load();
  result.stats.pairs_skipped_by_transitivity = trans_skips.load();
  result.partitions = uf.Components();

  // ---- Step 2. -----------------------------------------------------------
  result.pivot = internal::PickPivot(result.partitions);

  // ---- Step 3: prebuilt rule contexts, one partition scan per task. ------
  std::vector<int> first_flagging(result.partitions.size(), -1);
  if (result.pivot >= 0 && !negative.empty()) {
    const std::vector<int>& pivot_entities = result.partitions[result.pivot];

    // Build every rule's context eagerly (pivot signatures in chunk
    // tasks, map entries pool-sorted): the serial engine builds lazily
    // because a rule may never be consulted, but here the partition
    // scans run concurrently and all share the read-only contexts.
    std::vector<internal::NegativeRuleContext> contexts(negative.size());
    bool contexts_ready = true;
    {
      TaskGroup ctx_group(pool);
      const size_t chunk = ChunkSize(pivot_entities.size(), threads, 256);
      for (size_t r = 0; r < negative.size(); ++r) {
        internal::NegativeRuleContext& ctx = contexts[r];
        internal::EnsureNegativeGenerator(pg, negative[r], r, artifacts,
                                          plus.signatures, &ctx);
        if (artifacts == nullptr) {
          ctx.pivot_sigs_owned.resize(pivot_entities.size());
        }
        ctx.pivot_sigs.resize(pivot_entities.size());
        for (size_t b = 0; b < pivot_entities.size(); b += chunk) {
          const size_t e = std::min(pivot_entities.size(), b + chunk);
          ctx_group.Spawn([&control, &ctx_group, &pivot_entities, &ctx,
                           artifacts, r, b, e] {
            Status st = internal::CheckRunControl(
                control, "dime_plus/negative-partition");
            if (!st.ok()) {
              ctx_group.RecordControl(std::move(st));
              return;
            }
            SignatureScratch scratch;
            internal::GeneratePivotSignatures(artifacts, r, pivot_entities,
                                              b, e, &scratch, &ctx);
          });
        }
      }
      ctx_group.Wait();
      RethrowTaskFault(ctx_group);
      if (!ctx_group.control_status().ok()) {
        // Contract of a step-3 truncation: partitions kept, nothing
        // flagged yet, status explains.
        result.status = ctx_group.control_status();
        contexts_ready = false;
      }
    }
    if (contexts_ready) {
      for (size_t r = 0; r < negative.size(); ++r) {
        std::vector<internal::PivotSigMap::Entry> entries;
        size_t total = 0;
        for (const SignatureSpan& span : contexts[r].pivot_sigs) {
          total += span.size();
        }
        entries.reserve(total);
        for (size_t i = 0; i < contexts[r].pivot_sigs.size(); ++i) {
          for (uint64_t s : contexts[r].pivot_sigs[i]) {
            entries.emplace_back(s, static_cast<uint32_t>(i));
          }
        }
        ParallelSort(pool, &entries,
                     std::less<internal::PivotSigMap::Entry>());
        contexts[r].pivot_map.AdoptSorted(std::move(entries));
        contexts[r].ready = true;
      }

      auto rule_context =
          [&contexts](size_t r) -> const internal::NegativeRuleContext& {
        return contexts[r];
      };
      std::atomic<size_t> neg_checks{0};
      std::atomic<size_t> pruned{0};
      ScratchFreeList scratches;
      TaskGroup flag_group(pool);
      for (size_t p = 0; p < result.partitions.size(); ++p) {
        if (static_cast<int>(p) == result.pivot) continue;
        flag_group.Spawn([&pg, &negative, &plus, &result, &control,
                          &flag_group, &pivot_entities, &first_flagging,
                          &rule_context, &scratches, &neg_checks, &pruned,
                          &kernel_exits, artifacts, p] {
          if (DIME_FAULT_POINT(failpoints::kParallelWorkerFault)) {
            throw std::runtime_error("injected worker fault (step 3)");
          }
          Status st = internal::CheckRunControl(
              control, "dime_plus/negative-partition");
          if (!st.ok()) {
            flag_group.RecordControl(std::move(st));
            return;
          }
          const uint64_t exits_before = KernelEarlyExits();
          internal::NegativeScratch* scratch = scratches.Acquire();
          internal::NegativePhaseStats local;
          first_flagging[p] = internal::FlagPartitionAgainstPivot(
              pg, negative, artifacts, plus.benefit_order, pivot_entities,
              result.partitions[p], rule_context, scratch, &local);
          scratches.Release(scratch);
          neg_checks.fetch_add(local.negative_pair_checks,
                               std::memory_order_relaxed);
          pruned.fetch_add(local.partitions_pruned_by_filter,
                           std::memory_order_relaxed);
          kernel_exits.fetch_add(KernelEarlyExits() - exits_before,
                                 std::memory_order_relaxed);
        });
      }
      flag_group.Wait();
      RethrowTaskFault(flag_group);
      if (!flag_group.control_status().ok()) {
        result.status = flag_group.control_status();
      }
      result.stats.negative_pair_checks = neg_checks.load();
      result.stats.partitions_pruned_by_filter = pruned.load();
    }
  }
  result.first_flagging_rule = first_flagging;
  result.flagged_by_prefix = internal::BuildScrollbar(
      result.partitions, result.pivot, first_flagging, negative.size());
  result.stats.kernel_early_exits = kernel_exits.load();
  internal::DcheckResultInvariants(result, pg.size(), negative.size());
  return result;
}

/// Shared top level: empty-group short circuit, pool resolution, and the
/// historical fault contract (serial fallback with a WARNING, or an
/// INTERNAL status carrying the task's message).
template <typename Inner, typename SerialFn>
DimeResult RunWithFaultContract(const PreparedGroup& pg,
                                const std::vector<NegativeRule>& negative,
                                const ShardedOptions& options,
                                const char* engine_name, const Inner& inner,
                                const SerialFn& serial) {
  if (pg.size() == 0) {
    DimeResult result;
    result.flagged_by_prefix.assign(negative.size(), {});
    return result;
  }
  PoolRef ref(options);
  try {
    return inner(ref.pool);
  } catch (const std::exception& e) {
    if (options.serial_fallback) {
      DIME_LOG(WARNING) << engine_name << " worker fault (" << e.what()
                        << "); falling back to the serial engine";
      return serial();
    }
    return AbandonedResult(negative.size(),
                           InternalError(std::string("worker thread fault: ") +
                                         FaultText(&e)));
  } catch (...) {
    if (options.serial_fallback) {
      DIME_LOG(WARNING) << engine_name
                        << " worker fault; falling back to the serial engine";
      return serial();
    }
    return AbandonedResult(
        negative.size(),
        InternalError("worker thread fault: worker thread failed"));
  }
}

}  // namespace

DimeResult RunDimeSharded(const PreparedGroup& pg,
                          const std::vector<PositiveRule>& positive,
                          const std::vector<NegativeRule>& negative,
                          const ShardedOptions& options,
                          const RunControl& control) {
  return RunWithFaultContract(
      pg, negative, options, "RunDimeSharded",
      [&](WorkStealingPool* pool) {
        return RunDimeShardedInner(pg, positive, negative, options, control,
                                   pool);
      },
      [&] { return RunDime(pg, positive, negative, control); });
}

DimeResult RunDimeSharded(const PreparedGroup& pg,
                          const std::vector<PositiveRule>& positive,
                          const std::vector<NegativeRule>& negative,
                          const ShardedOptions& options) {
  return RunDimeSharded(pg, positive, negative, options, RunControl{});
}

DimeResult RunDimePlusSharded(const PreparedGroup& pg,
                              const std::vector<PositiveRule>& positive,
                              const std::vector<NegativeRule>& negative,
                              const ShardedOptions& options,
                              const RunControl& control) {
  return RunWithFaultContract(
      pg, negative, options, "RunDimePlusSharded",
      [&](WorkStealingPool* pool) {
        return RunDimePlusShardedInner(pg, positive, negative, options,
                                       control, pool);
      },
      [&] { return RunDimePlus(pg, positive, negative, options.plus, control); });
}

DimeResult RunDimePlusSharded(const PreparedGroup& pg,
                              const std::vector<PositiveRule>& positive,
                              const std::vector<NegativeRule>& negative,
                              const ShardedOptions& options) {
  return RunDimePlusSharded(pg, positive, negative, options, RunControl{});
}

}  // namespace exec
}  // namespace dime
