#ifndef DIME_EXEC_SHARDED_DIME_H_
#define DIME_EXEC_SHARDED_DIME_H_

#include "src/core/dime.h"
#include "src/core/dime_plus.h"
#include "src/exec/pool.h"

/// \file sharded_dime.h
/// The sharded streaming execution engine (DESIGN.md §7.9): DIME and
/// DIME+ decomposed into chunky tasks on a WorkStealingPool, with the
/// positive-phase merges going through a striped concurrent union-find.
/// Decisions (partitions, pivot, flags) are bit-identical to the serial
/// engines for any thread count — the partitions are the transitive
/// closure of the verified positive edges, which no schedule can change,
/// and the negative phase is per-partition deterministic. Step-1 effort
/// stats (pair checks / transitivity skips) are schedule-dependent for
/// the DIME+ path; their sum with skips equals the deterministic
/// candidate volume.
///
/// Failure contract (same as the historical RunDimeParallel):
///  * a task that throws → serial fallback (bit-identical result) or,
///    with serial_fallback = false, an INTERNAL status and no partitions;
///  * deadline/cancellation during step 1 → no partitions, empty
///    scrollbar, explaining status;
///  * during step 3 → partitions kept, the flags computed so far kept
///    (a subset of the full run's; monotone), explaining status.

namespace dime {
namespace exec {

struct ShardedOptions {
  /// Total executors when `pool` is null (0 = ResolveThreadCount). With
  /// a borrowed pool the pool's size wins.
  unsigned num_threads = 0;
  /// Borrowed scheduler; null = build a pool for this call. DimeService
  /// shares one pool across its serving workers through this.
  WorkStealingPool* pool = nullptr;
  /// When a task throws, rerun the group serially and return that
  /// result; when false, surface INTERNAL instead.
  bool serial_fallback = true;
  /// DIME+ options for RunDimePlusSharded (signatures, negative-phase
  /// benefit order, transitivity skip). The positive phase always
  /// streams lists; exact_benefit_cap is not consulted.
  DimePlusOptions plus;
  /// Entities per shard for RunDimeSharded's block decomposition
  /// (0 = auto: keep roughly 4 shards per executor).
  size_t target_shard_size = 0;
};

/// Sharded counterpart of RunDime: all-pairs positive phase decomposed
/// into intra-shard and shard-pair task-graph nodes (a pair node unlocks
/// when its two input shards finish), full pivot-vs-member negative
/// phase as one task per partition. Replaces the historical fork-join
/// RunDimeParallel, which routes here.
DimeResult RunDimeSharded(const PreparedGroup& pg,
                          const std::vector<PositiveRule>& positive,
                          const std::vector<NegativeRule>& negative,
                          const ShardedOptions& options,
                          const RunControl& control);

DimeResult RunDimeSharded(const PreparedGroup& pg,
                          const std::vector<PositiveRule>& positive,
                          const std::vector<NegativeRule>& negative,
                          const ShardedOptions& options = {});

/// Sharded counterpart of RunDimePlus: parallel signature generation,
/// pool-sorted postings (the inverted lists), volume-balanced candidate
/// verification into the striped union-find, then the extracted
/// negative-phase scan (core/dime_plus_internal.h) one partition per
/// task against prebuilt per-rule contexts. This is the path that takes
/// dbgen-100k .. 1M groups (see bench_fig9_efficiency --only dbgen).
DimeResult RunDimePlusSharded(const PreparedGroup& pg,
                              const std::vector<PositiveRule>& positive,
                              const std::vector<NegativeRule>& negative,
                              const ShardedOptions& options,
                              const RunControl& control);

DimeResult RunDimePlusSharded(const PreparedGroup& pg,
                              const std::vector<PositiveRule>& positive,
                              const std::vector<NegativeRule>& negative,
                              const ShardedOptions& options = {});

}  // namespace exec
}  // namespace dime

#endif  // DIME_EXEC_SHARDED_DIME_H_
