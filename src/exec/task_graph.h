#ifndef DIME_EXEC_TASK_GRAPH_H_
#define DIME_EXEC_TASK_GRAPH_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "src/exec/pool.h"

/// \file task_graph.h
/// Dependency-counted task graph over a TaskGroup. The sharded engine
/// uses it to stream verification instead of erecting phase barriers: a
/// cross-shard pair node unlocks the moment its two input shards finish
/// their intra-shard clustering, while unrelated shards are still being
/// processed.
///
/// Unlock rule (DESIGN.md §7.9): a node is submitted to the pool when its
/// last unmet dependency completes; the decrement-and-submit runs in the
/// finishing node's task, so readiness propagates without any
/// coordinator involvement. Roots (no dependencies) are submitted by
/// Run().
///
/// Cancellation: the group skips the bodies of tasks that were already
/// submitted, and a skipped body never submits its dependents — the
/// untouched tail of the graph is simply abandoned. TaskGroup::Wait()
/// counts only submitted tasks, so abandonment cannot deadlock the wait.

namespace dime {
namespace exec {

class TaskGraph {
 public:
  explicit TaskGraph(TaskGroup* group) : group_(group) {}

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a node; returns its id. Topology is frozen by Run().
  int AddNode(std::function<void()> fn);

  /// Declares that `to` cannot start before `from` completed.
  void AddEdge(int from, int to);

  /// Submits every root node. Call once; then Wait() on the group.
  void Run();

 private:
  struct Node {
    std::function<void()> fn;
    /// Dependencies not yet completed; the task that decrements it to 0
    /// submits the node. Release/acquire so the submitting task sees all
    /// writes of every dependency.
    std::atomic<int> unmet{0};
    /// Static in-degree, written only before Run(). Run() submits nodes
    /// with indegree == 0 — it must NOT read `unmet`, which workers may
    /// have already decremented to zero (and submitted) for non-root
    /// nodes while Run() is still looping; reading it would submit those
    /// nodes a second time.
    int indegree = 0;
    std::vector<int> dependents;
  };

  void SubmitNode(int id);

  TaskGroup* group_;
  /// unique_ptr keeps nodes at stable addresses (std::atomic is neither
  /// movable nor copyable).
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;
};

}  // namespace exec
}  // namespace dime

#endif  // DIME_EXEC_TASK_GRAPH_H_
