#ifndef DIME_EXEC_PARALLEL_SORT_H_
#define DIME_EXEC_PARALLEL_SORT_H_

#include <algorithm>
#include <vector>

#include "src/exec/pool.h"

/// \file parallel_sort.h
/// Deterministic parallel sort for the sharded engine's postings arrays
/// (the (signature, entity) pairs that become inverted lists). Chunked
/// std::sort followed by log2(chunks) rounds of pairwise
/// std::inplace_merge; the output is the fully sorted array regardless of
/// scheduling, so everything downstream of it stays bit-stable.
///
/// On a single-executor pool (or small inputs) this is exactly one
/// std::sort — no task or merge overhead on the serial baseline.

namespace dime {
namespace exec {

template <typename T, typename Compare>
void ParallelSort(WorkStealingPool* pool, std::vector<T>* v, Compare cmp) {
  const size_t n = v->size();
  const unsigned threads = pool->thread_count();
  if (threads <= 1 || n < (1u << 15)) {
    std::sort(v->begin(), v->end(), cmp);
    return;
  }
  // Power-of-two chunk count so the merge rounds pair up evenly.
  size_t chunks = 1;
  while (chunks < 2 * static_cast<size_t>(threads)) chunks *= 2;
  if (chunks > n) chunks = 1;
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;

  {
    TaskGroup group(pool);
    for (size_t c = 0; c < chunks; ++c) {
      group.Spawn([v, &bounds, c, cmp]() {
        std::sort(v->begin() + bounds[c], v->begin() + bounds[c + 1], cmp);
      });
    }
    group.Wait();
    if (group.exception() != nullptr) {
      std::rethrow_exception(group.exception());
    }
  }
  for (size_t width = 1; width < chunks; width *= 2) {
    TaskGroup group(pool);
    for (size_t c = 0; c + width < chunks; c += 2 * width) {
      const size_t lo = bounds[c];
      const size_t mid = bounds[c + width];
      const size_t hi = bounds[std::min(c + 2 * width, chunks)];
      group.Spawn([v, lo, mid, hi, cmp]() {
        std::inplace_merge(v->begin() + lo, v->begin() + mid,
                           v->begin() + hi, cmp);
      });
    }
    group.Wait();
    if (group.exception() != nullptr) {
      std::rethrow_exception(group.exception());
    }
  }
}

}  // namespace exec
}  // namespace dime

#endif  // DIME_EXEC_PARALLEL_SORT_H_
