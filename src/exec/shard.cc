#include "src/exec/shard.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

namespace dime {
namespace exec {
namespace {

/// Locality key of an entity: the first (lowest) global rank of the first
/// rank-columned predicate of the first positive rule — the rarest token
/// prefix filtering would index first. Entities without ranks sort last.
std::vector<uint32_t> ShardKeys(const PreparedGroup& pg,
                                const std::vector<PositiveRule>& positive) {
  const size_t n = pg.size();
  std::vector<uint32_t> keys(n, std::numeric_limits<uint32_t>::max());
  const RankColumn* ranks = nullptr;
  for (const PositiveRule& rule : positive) {
    RulePlan plan = BuildRulePlan(pg, rule.predicates, Direction::kGe);
    for (const PredicatePlan& p : plan) {
      if (p.ranks != nullptr && p.ranks->num_entities() == n) {
        ranks = p.ranks;
        break;
      }
    }
    if (ranks != nullptr) break;
  }
  if (ranks != nullptr) {
    for (size_t e = 0; e < n; ++e) {
      RankSpan span = ranks->view(e);
      if (span.len > 0) keys[e] = span.ptr[0];
    }
  }
  return keys;
}

}  // namespace

ShardPlan BuildSignatureShardPlan(const PreparedGroup& pg,
                                  const std::vector<PositiveRule>& positive,
                                  size_t target_shard_size) {
  ShardPlan plan;
  const size_t n = pg.size();
  plan.order.resize(n);
  std::iota(plan.order.begin(), plan.order.end(), 0);
  if (n == 0) {
    plan.starts = {0};
    return plan;
  }
  std::vector<uint32_t> keys = ShardKeys(pg, positive);
  std::sort(plan.order.begin(), plan.order.end(), [&keys](int a, int b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  if (target_shard_size == 0) target_shard_size = 1;
  const size_t shards = (n + target_shard_size - 1) / target_shard_size;
  plan.starts.resize(shards + 1);
  for (size_t s = 0; s <= shards; ++s) plan.starts[s] = n * s / shards;
  return plan;
}

}  // namespace exec
}  // namespace dime
