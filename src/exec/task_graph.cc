#include "src/exec/task_graph.h"

#include <utility>

#include "src/common/check.h"

namespace dime {
namespace exec {

int TaskGraph::AddNode(std::function<void()> fn) {
  DIME_DCHECK(!started_) << "TaskGraph topology is frozen after Run()";
  auto node = std::make_unique<Node>();
  node->fn = std::move(fn);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void TaskGraph::AddEdge(int from, int to) {
  DIME_DCHECK(!started_) << "TaskGraph topology is frozen after Run()";
  DIME_DCHECK(from >= 0 && from < static_cast<int>(nodes_.size()));
  DIME_DCHECK(to >= 0 && to < static_cast<int>(nodes_.size()));
  nodes_[from]->dependents.push_back(to);
  nodes_[to]->unmet.fetch_add(1, std::memory_order_relaxed);
  ++nodes_[to]->indegree;
}

void TaskGraph::SubmitNode(int id) {
  Node* node = nodes_[id].get();
  group_->Spawn([this, node]() {
    node->fn();
    for (int d : node->dependents) {
      if (nodes_[d]->unmet.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        SubmitNode(d);
      }
    }
  });
}

void TaskGraph::Run() {
  DIME_DCHECK(!started_);
  started_ = true;
  // Submit the static roots only. A dependent node's `unmet` can reach
  // zero concurrently (fast workers finishing its inputs mid-loop), but
  // the decrement-to-zero path already submits it — re-submitting here
  // would run the node twice.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->indegree == 0) {
      SubmitNode(static_cast<int>(i));
    }
  }
}

}  // namespace exec
}  // namespace dime
