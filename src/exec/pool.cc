#include "src/exec/pool.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/common/fault_injection.h"
#include "src/common/threads.h"

namespace dime {
namespace exec {
namespace {

/// Identifies the current thread inside a pool: null for external
/// threads, else the pool and worker index, set for the worker's
/// lifetime. Lets Spawn route to the worker's own deque and TryRunOneTask
/// prefer it.
struct WorkerTls {
  WorkStealingPool* pool = nullptr;
  unsigned index = 0;
};
thread_local WorkerTls g_worker_tls;

}  // namespace

unsigned ResolveThreadCount(unsigned requested) {
  return dime::ResolveThreadCount(requested);
}

WorkStealingPool::WorkStealingPool(const PoolOptions& options) {
  num_threads_ = ResolveThreadCount(options.num_threads);
  const unsigned workers = num_threads_ > 0 ? num_threads_ - 1 : 0;
  queues_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  stop_.store(true, std::memory_order_relaxed);
  {
    MutexLock lock(&wake_mu_);
    ++work_epoch_;
  }
  wake_cv_.SignalAll();
  for (std::thread& w : workers_) w.join();
}

void WorkStealingPool::Submit(Task task) {
  WorkerTls& tls = g_worker_tls;
  if (tls.pool == this) {
    MutexLock lock(&queues_[tls.index]->mu);
    queues_[tls.index]->tasks.push_back(std::move(task));
  } else {
    MutexLock lock(&inject_mu_);
    injected_.push_back(std::move(task));
  }
  {
    MutexLock lock(&wake_mu_);
    ++work_epoch_;
  }
  wake_cv_.Signal();
}

bool WorkStealingPool::PopTask(Task* out) {
  WorkerTls& tls = g_worker_tls;
  const bool is_worker = tls.pool == this;
  // Own deque first (LIFO: the freshest task is the cache-warm one).
  if (is_worker) {
    MutexLock lock(&queues_[tls.index]->mu);
    if (!queues_[tls.index]->tasks.empty()) {
      *out = std::move(queues_[tls.index]->tasks.back());
      queues_[tls.index]->tasks.pop_back();
      return true;
    }
  }
  // Injection queue (external submissions), FIFO.
  {
    MutexLock lock(&inject_mu_);
    if (!injected_.empty()) {
      *out = std::move(injected_.front());
      injected_.pop_front();
      return true;
    }
  }
  // Steal oldest-first from siblings, scanning round-robin from the
  // thread's successor so victims spread out.
  const size_t start = is_worker ? tls.index + 1 : 0;
  for (size_t k = 0; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(start + k) % queues_.size()];
    MutexLock lock(&q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

bool WorkStealingPool::TryRunOneTask() {
  Task task;
  if (!PopTask(&task)) return false;
  Execute(task);
  return true;
}

void WorkStealingPool::Execute(Task& task) {
  TaskGroup* group = task.group;
  if (!group->cancelled()) {
    try {
      if (DIME_FAULT_POINT(failpoints::kExecTaskFault)) {
        throw std::runtime_error("injected exec task fault");
      }
      task.fn();
    } catch (...) {
      group->RecordException(std::current_exception());
    }
  }
  group->TaskDone();
}

void WorkStealingPool::WorkerLoop(unsigned index) {
  g_worker_tls.pool = this;
  g_worker_tls.index = index;
  while (true) {
    uint64_t seen;
    {
      MutexLock lock(&wake_mu_);
      seen = work_epoch_;
    }
    if (TryRunOneTask()) continue;
    if (stop_.load(std::memory_order_relaxed)) break;
    MutexLock lock(&wake_mu_);
    if (work_epoch_ == seen && !stop_.load(std::memory_order_relaxed)) {
      // The timeout is a liveness belt: correctness never depends on it
      // (the epoch check above closes the lost-wakeup race).
      wake_cv_.WaitFor(&wake_mu_, std::chrono::milliseconds(50));
    }
  }
  g_worker_tls.pool = nullptr;
}

TaskGroup::~TaskGroup() {
  Cancel();
  Wait();
}

void TaskGroup::Spawn(std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    ++pending_;
  }
  pool_->Submit(WorkStealingPool::Task{this, std::move(fn)});
}

void TaskGroup::RecordControl(Status st) {
  {
    MutexLock lock(&mu_);
    if (control_status_.ok()) control_status_ = std::move(st);
  }
  Cancel();
}

void TaskGroup::RecordException(std::exception_ptr e) {
  {
    MutexLock lock(&mu_);
    if (exception_ == nullptr) exception_ = std::move(e);
  }
  Cancel();
}

void TaskGroup::TaskDone() {
  MutexLock lock(&mu_);
  --pending_;
  if (pending_ == 0) done_cv_.SignalAll();
}

void TaskGroup::Wait() {
  while (true) {
    if (pool_->TryRunOneTask()) continue;
    MutexLock lock(&mu_);
    if (pending_ == 0) return;
    // Tasks may still be executing on workers (or new ones may be spawned
    // by running tasks); poll with a short timed wait so a completion
    // signal race costs at most one tick.
    done_cv_.WaitFor(&mu_, std::chrono::milliseconds(1));
  }
}

std::exception_ptr TaskGroup::exception() const {
  MutexLock lock(&mu_);
  return exception_;
}

Status TaskGroup::control_status() const {
  MutexLock lock(&mu_);
  return control_status_;
}

}  // namespace exec
}  // namespace dime
