#include "src/core/dime_parallel.h"

#include "src/exec/sharded_dime.h"

/// \file dime_parallel.cc
/// RunDimeParallel, routed through the sharded execution engine. The
/// declaration stays in src/core/dime_parallel.h for the historical API;
/// the definition lives here because core cannot depend on exec (the
/// include-layering DAG points the other way).

namespace dime {

DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options,
                           const RunControl& control) {
  exec::ShardedOptions sharded;
  sharded.num_threads = options.num_threads;
  sharded.pool = options.pool;
  sharded.serial_fallback = options.serial_fallback;
  return exec::RunDimeSharded(pg, positive, negative, sharded, control);
}

DimeResult RunDimeParallel(const PreparedGroup& pg,
                           const std::vector<PositiveRule>& positive,
                           const std::vector<NegativeRule>& negative,
                           const ParallelOptions& options) {
  return RunDimeParallel(pg, positive, negative, options, RunControl{});
}

}  // namespace dime
