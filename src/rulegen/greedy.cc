#include "src/rulegen/greedy.h"

#include <algorithm>
#include <limits>

namespace dime {
namespace {

/// Objective of a single rule restricted to the active pair subset:
/// covered positives - covered negatives (sign flipped for negative
/// rules). `bad` reports how many wrong-class examples the rule covers,
/// which drives conservative tie-breaking.
int SingleRuleObjective(const LearnedRule& rule,
                        const std::vector<LabeledPair>& pairs,
                        const std::vector<int>& active, Direction dir,
                        int* bad) {
  int score = 0;
  *bad = 0;
  for (int idx : active) {
    const LabeledPair& p = pairs[idx];
    bool sat = dir == Direction::kGe ? rule.SatisfiedGe(p.features)
                                     : rule.SatisfiedLe(p.features);
    if (!sat) continue;
    bool good = dir == Direction::kGe ? p.positive : !p.positive;
    if (good) {
      ++score;
    } else {
      --score;
      ++*bad;
    }
  }
  return score;
}

bool RuleContainsSpec(const LearnedRule& rule, int spec) {
  for (const CandidatePredicate& p : rule.predicates) {
    if (p.spec == spec) return true;
  }
  return false;
}

/// Grows one conjunction greedily on the active pairs (Section V-C inner
/// loop). Returns an empty rule when nothing with positive objective
/// exists.
LearnedRule GenerateOneRule(const std::vector<LabeledPair>& pairs,
                            const std::vector<int>& active,
                            const std::vector<CandidatePredicate>& candidates,
                            Direction dir, const GreedyOptions& options) {
  LearnedRule rule;
  int current = 0;
  int current_bad = 0;
  while (rule.predicates.size() < options.max_predicates_per_rule) {
    bool seeding = rule.predicates.empty();
    bool found = false;
    int best_obj = 0, best_bad = 0, best_good = 0;
    int best_candidate = -1;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (RuleContainsSpec(rule, candidates[c].spec)) continue;
      LearnedRule trial = rule;
      trial.predicates.push_back(candidates[c]);
      int bad = 0;
      int obj = SingleRuleObjective(trial, pairs, active, dir, &bad);
      int good = obj + bad;  // right-class examples covered
      bool better;
      if (seeding) {
        // Seed with the highest-objective predicate; break ties toward the
        // broader predicate (more right-class coverage) so conjunction has
        // something to refine.
        better = !found || obj > best_obj ||
                 (obj == best_obj && good > best_good);
      } else {
        // Extend only if the objective improves, or stays equal while
        // shedding wrong-class coverage (a strictly cleaner rule).
        better = (obj > current || (obj == current && bad < current_bad)) &&
                 (!found || obj > best_obj ||
                  (obj == best_obj && bad < best_bad));
      }
      if (better) {
        found = true;
        best_obj = obj;
        best_bad = bad;
        best_good = good;
        best_candidate = static_cast<int>(c);
      }
    }
    if (!found) break;
    rule.predicates.push_back(candidates[best_candidate]);
    current = best_obj;
    current_bad = best_bad;
  }
  if (current <= 0) return LearnedRule{};
  return rule;
}

RuleGenResult GenerateRules(const std::vector<LabeledPair>& pairs,
                            size_t num_specs, Direction dir,
                            const GreedyOptions& options) {
  std::vector<CandidatePredicate> candidates =
      dir == Direction::kGe ? GeneratePositiveCandidates(pairs, num_specs)
                            : GenerateNegativeCandidates(pairs, num_specs);

  RuleGenResult result;
  std::vector<int> active(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) active[i] = static_cast<int>(i);

  auto objective = [&](const std::vector<LearnedRule>& rules) {
    return dir == Direction::kGe ? PositiveObjective(rules, pairs)
                                 : NegativeObjective(rules, pairs);
  };

  int best = 0;  // empty rule set scores 0
  while (result.rules.size() < options.max_rules && !active.empty()) {
    LearnedRule rule =
        GenerateOneRule(pairs, active, candidates, dir, options);
    if (rule.predicates.empty()) break;

    std::vector<LearnedRule> trial = result.rules;
    trial.push_back(rule);
    int obj = objective(trial);
    if (obj <= best) break;
    result.rules = std::move(trial);
    best = obj;

    // Remove the examples this rule covers; the next rule is judged on the
    // remainder (Section V-C: "update the example set ... by removing the
    // examples that satisfy phi+").
    std::vector<int> remaining;
    remaining.reserve(active.size());
    for (int idx : active) {
      bool sat = dir == Direction::kGe
                     ? rule.SatisfiedGe(pairs[idx].features)
                     : rule.SatisfiedLe(pairs[idx].features);
      if (!sat) remaining.push_back(idx);
    }
    active = std::move(remaining);
  }
  result.objective = best;
  return result;
}

}  // namespace

RuleGenResult GreedyPositiveRules(const std::vector<LabeledPair>& pairs,
                                  size_t num_specs,
                                  const GreedyOptions& options) {
  return GenerateRules(pairs, num_specs, Direction::kGe, options);
}

RuleGenResult GreedyNegativeRules(const std::vector<LabeledPair>& pairs,
                                  size_t num_specs,
                                  const GreedyOptions& options) {
  return GenerateRules(pairs, num_specs, Direction::kLe, options);
}

}  // namespace dime
