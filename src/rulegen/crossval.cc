#include "src/rulegen/crossval.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/core/metrics.h"
#include "src/rulegen/greedy.h"

namespace dime {

CrossValResult KFoldCrossValidate(const std::vector<LabeledPair>& pairs,
                                  int folds, const PairLearner& learner,
                                  uint64_t seed) {
  DIME_CHECK_GE(folds, 2);
  DIME_CHECK_GE(pairs.size(), static_cast<size_t>(folds));

  std::vector<size_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Random rng(seed);
  rng.Shuffle(&order);

  CrossValResult result;
  double sum_p = 0, sum_r = 0, sum_f = 0;
  for (int fold = 0; fold < folds; ++fold) {
    std::vector<LabeledPair> train, test;
    for (size_t i = 0; i < order.size(); ++i) {
      if (static_cast<int>(i % static_cast<size_t>(folds)) == fold) {
        test.push_back(pairs[order[i]]);
      } else {
        train.push_back(pairs[order[i]]);
      }
    }
    PairClassifier classify = learner(train);
    size_t tp = 0, fp = 0, fn = 0;
    for (const LabeledPair& p : test) {
      bool predicted = classify(p.features);
      if (predicted && p.positive) ++tp;
      if (predicted && !p.positive) ++fp;
      if (!predicted && p.positive) ++fn;
    }
    Prf prf = PrfFromCounts(tp, fp, fn);
    sum_p += prf.precision;
    sum_r += prf.recall;
    sum_f += prf.f1;
    result.fold_f1.push_back(prf.f1);
  }
  result.mean_precision = sum_p / folds;
  result.mean_recall = sum_r / folds;
  result.mean_f1 = sum_f / folds;
  return result;
}

PairLearner MakeDimeRuleLearner(size_t num_specs) {
  return [num_specs](const std::vector<LabeledPair>& train) -> PairClassifier {
    RuleGenResult learned = GreedyPositiveRules(train, num_specs);
    std::vector<LearnedRule> rules = learned.rules;
    return [rules](const std::vector<double>& features) {
      for (const LearnedRule& r : rules) {
        if (r.SatisfiedGe(features)) return true;
      }
      return false;
    };
  };
}

}  // namespace dime
