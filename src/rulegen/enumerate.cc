#include "src/rulegen/enumerate.h"

#include <algorithm>

namespace dime {
namespace {

/// Recursively builds all rules with 0-1 predicate per spec (Section V-B),
/// at most `max_preds` conjuncts, stopping at the cap.
void BuildRules(const std::vector<std::vector<double>>& thresholds_by_spec,
                size_t spec, size_t max_preds, size_t cap, LearnedRule* current,
                std::vector<LearnedRule>* out) {
  if (out->size() >= cap) return;
  if (spec == thresholds_by_spec.size()) {
    if (!current->predicates.empty()) out->push_back(*current);
    return;
  }
  // Skip this spec.
  BuildRules(thresholds_by_spec, spec + 1, max_preds, cap, current, out);
  if (current->predicates.size() >= max_preds) return;
  // Or take each candidate threshold for it.
  for (double t : thresholds_by_spec[spec]) {
    current->predicates.push_back(
        CandidatePredicate{static_cast<int>(spec), t});
    BuildRules(thresholds_by_spec, spec + 1, max_preds, cap, current, out);
    current->predicates.pop_back();
    if (out->size() >= cap) return;
  }
}

RuleGenResult EnumerateImpl(const std::vector<LabeledPair>& pairs,
                            size_t num_specs, Direction dir,
                            const EnumerateOptions& options) {
  std::vector<CandidatePredicate> candidates =
      dir == Direction::kGe ? GeneratePositiveCandidates(pairs, num_specs)
                            : GenerateNegativeCandidates(pairs, num_specs);
  std::vector<std::vector<double>> thresholds_by_spec(num_specs);
  for (const CandidatePredicate& c : candidates) {
    thresholds_by_spec[c.spec].push_back(c.threshold);
  }

  std::vector<LearnedRule> all_rules;
  LearnedRule scratch;
  BuildRules(thresholds_by_spec, 0, options.max_predicates_per_rule,
             options.max_candidate_rules, &scratch, &all_rules);

  auto objective = [&](const std::vector<LearnedRule>& rules) {
    return dir == Direction::kGe ? PositiveObjective(rules, pairs)
                                 : NegativeObjective(rules, pairs);
  };

  // Keep subset enumeration tractable: prune to the strongest singles.
  constexpr size_t kMaxForSubsets = 300;
  if (all_rules.size() > kMaxForSubsets) {
    std::stable_sort(all_rules.begin(), all_rules.end(),
                     [&](const LearnedRule& a, const LearnedRule& b) {
                       return objective({a}) > objective({b});
                     });
    all_rules.resize(kMaxForSubsets);
  }

  RuleGenResult best;
  best.objective = 0;  // the empty rule set

  // Enumerate subsets up to max_rules_in_set by recursive combination.
  std::vector<LearnedRule> current;
  auto search = [&](auto&& self, size_t start) -> void {
    if (!current.empty()) {
      int obj = objective(current);
      if (obj > best.objective) {
        best.objective = obj;
        best.rules = current;
      }
    }
    if (current.size() >= options.max_rules_in_set) return;
    for (size_t i = start; i < all_rules.size(); ++i) {
      current.push_back(all_rules[i]);
      self(self, i + 1);
      current.pop_back();
    }
  };
  search(search, 0);
  return best;
}

}  // namespace

RuleGenResult EnumeratePositiveRules(const std::vector<LabeledPair>& pairs,
                                     size_t num_specs,
                                     const EnumerateOptions& options) {
  return EnumerateImpl(pairs, num_specs, Direction::kGe, options);
}

RuleGenResult EnumerateNegativeRules(const std::vector<LabeledPair>& pairs,
                                     size_t num_specs,
                                     const EnumerateOptions& options) {
  return EnumerateImpl(pairs, num_specs, Direction::kLe, options);
}

}  // namespace dime
