#include "src/rulegen/candidates.h"

#include <algorithm>
#include <set>

#include "src/common/logging.h"

namespace dime {
namespace {

constexpr double kEps = 1e-9;

}  // namespace

std::string FeatureSpec::ToString(const Schema& schema) const {
  std::string out = SimFuncName(func);
  out += "(";
  out += schema.AttributeName(attr);
  if (IsSetBased(func) && mode == TokenMode::kWords) out += ":words";
  if (func == SimFunc::kOntology && ontology_index != 0) {
    out += "@" + std::to_string(ontology_index);
  }
  out += ")";
  return out;
}

std::vector<LabeledPair> ComputeFeatures(
    const std::vector<Group>& groups, const std::vector<ExamplePair>& examples,
    const std::vector<FeatureSpec>& specs, const DimeContext& context) {
  // Prepare each group once, for the union of spec predicates.
  std::vector<Predicate> preds;
  preds.reserve(specs.size());
  for (const FeatureSpec& s : specs) preds.push_back(s.WithThreshold(0.0));

  std::vector<PreparedGroup> prepared;
  prepared.reserve(groups.size());
  for (const Group& g : groups) {
    prepared.push_back(PrepareGroupForPredicates(g, preds, context));
  }

  std::vector<LabeledPair> out;
  out.reserve(examples.size());
  for (const ExamplePair& ex : examples) {
    DIME_CHECK_GE(ex.group, 0);
    DIME_CHECK_LT(static_cast<size_t>(ex.group), groups.size());
    LabeledPair lp;
    lp.positive = ex.positive;
    lp.features.reserve(specs.size());
    for (size_t s = 0; s < specs.size(); ++s) {
      lp.features.push_back(PredicateSimilarity(
          prepared[ex.group], preds[s], ex.e1, ex.e2));
    }
    out.push_back(std::move(lp));
  }
  return out;
}

std::vector<CandidatePredicate> GeneratePositiveCandidates(
    const std::vector<LabeledPair>& pairs, size_t num_specs) {
  std::vector<CandidatePredicate> candidates;
  for (size_t s = 0; s < num_specs; ++s) {
    std::set<double> values;
    for (const LabeledPair& p : pairs) {
      if (p.positive) values.insert(p.features[s]);
    }
    for (double v : values) {
      if (v <= kEps) continue;  // any pair satisfies f >= 0: vacuous
      candidates.push_back(CandidatePredicate{static_cast<int>(s), v});
    }
  }
  return candidates;
}

std::vector<CandidatePredicate> GenerateNegativeCandidates(
    const std::vector<LabeledPair>& pairs, size_t num_specs) {
  std::vector<CandidatePredicate> candidates;
  for (size_t s = 0; s < num_specs; ++s) {
    std::set<double> values;
    double max_any = 0.0;
    for (const LabeledPair& p : pairs) {
      max_any = std::max(max_any, p.features[s]);
      if (!p.positive) values.insert(p.features[s]);
    }
    for (double v : values) {
      if (v >= max_any - kEps) continue;  // every pair satisfies: vacuous
      candidates.push_back(CandidatePredicate{static_cast<int>(s), v});
    }
  }
  return candidates;
}

bool LearnedRule::SatisfiedGe(const std::vector<double>& features) const {
  for (const CandidatePredicate& p : predicates) {
    if (features[p.spec] < p.threshold - kEps) return false;
  }
  return true;
}

bool LearnedRule::SatisfiedLe(const std::vector<double>& features) const {
  for (const CandidatePredicate& p : predicates) {
    if (features[p.spec] > p.threshold + kEps) return false;
  }
  return true;
}

int PositiveObjective(const std::vector<LearnedRule>& rules,
                      const std::vector<LabeledPair>& pairs) {
  int score = 0;
  for (const LabeledPair& pair : pairs) {
    for (const LearnedRule& rule : rules) {
      if (rule.SatisfiedGe(pair.features)) {
        score += pair.positive ? 1 : -1;
        break;
      }
    }
  }
  return score;
}

int NegativeObjective(const std::vector<LearnedRule>& rules,
                      const std::vector<LabeledPair>& pairs) {
  int score = 0;
  for (const LabeledPair& pair : pairs) {
    for (const LearnedRule& rule : rules) {
      if (rule.SatisfiedLe(pair.features)) {
        score += pair.positive ? -1 : 1;
        break;
      }
    }
  }
  return score;
}

PositiveRule ToPositiveRule(const LearnedRule& rule,
                            const std::vector<FeatureSpec>& specs) {
  PositiveRule out;
  for (const CandidatePredicate& p : rule.predicates) {
    out.predicates.push_back(specs[p.spec].WithThreshold(p.threshold));
  }
  return out;
}

NegativeRule ToNegativeRule(const LearnedRule& rule,
                            const std::vector<FeatureSpec>& specs) {
  NegativeRule out;
  for (const CandidatePredicate& p : rule.predicates) {
    out.predicates.push_back(specs[p.spec].WithThreshold(p.threshold));
  }
  return out;
}

}  // namespace dime
