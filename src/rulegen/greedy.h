#ifndef DIME_RULEGEN_GREEDY_H_
#define DIME_RULEGEN_GREEDY_H_

#include <vector>

#include "src/rulegen/candidates.h"

/// \file greedy.h
/// The greedy rule-generation algorithm of Section V-C (rule generation is
/// NP-hard, Theorem 4, so the exact enumeration of enumerate.h only scales
/// to toy instances). Rules are built predicate-by-predicate: start from
/// the single best candidate predicate, keep conjoining the predicate that
/// most improves the objective on the still-satisfying examples, and keep
/// emitting rules (removing covered examples after each) while the overall
/// objective improves. Negative rules are generated symmetrically
/// (Section V-D) and are meant to be applied in generation order — the
/// scrollbar order.

namespace dime {

struct GreedyOptions {
  /// Maximum conjuncts per rule (m attributes is the natural bound).
  size_t max_predicates_per_rule = 4;
  /// Maximum rules emitted.
  size_t max_rules = 8;
};

struct RuleGenResult {
  std::vector<LearnedRule> rules;
  int objective = 0;  ///< final F(Sigma, S+, S-) on the training pairs
};

/// Learns a set of positive rules maximizing |E ∩ S+| - |E ∩ S-|.
RuleGenResult GreedyPositiveRules(const std::vector<LabeledPair>& pairs,
                                  size_t num_specs,
                                  const GreedyOptions& options = {});

/// Learns a sequence of negative rules maximizing |E ∩ S-| - |E ∩ S+|,
/// in scrollbar order (each rule maximizes the marginal objective).
RuleGenResult GreedyNegativeRules(const std::vector<LabeledPair>& pairs,
                                  size_t num_specs,
                                  const GreedyOptions& options = {});

}  // namespace dime

#endif  // DIME_RULEGEN_GREEDY_H_
