#ifndef DIME_RULEGEN_CROSSVAL_H_
#define DIME_RULEGEN_CROSSVAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/rulegen/candidates.h"

/// \file crossval.h
/// k-fold cross-validation over example pairs (the harness behind Fig. 10).
/// A Learner trains on feature-space pairs and returns a PairClassifier
/// predicting whether a pair belongs to the same category; the fold score
/// is the F-measure of the "match" class on the held-out pairs. DIME-Rule,
/// DecisionTree and SIFI all plug in through this interface.

namespace dime {

/// Predicts "same category" from a pair's feature vector.
using PairClassifier = std::function<bool(const std::vector<double>&)>;

/// Trains a classifier on labeled pairs.
using PairLearner =
    std::function<PairClassifier(const std::vector<LabeledPair>&)>;

struct CrossValResult {
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  double mean_f1 = 0.0;
  std::vector<double> fold_f1;
};

/// Shuffles pairs with `seed`, splits into `folds` folds, trains on k-1 and
/// scores on the held-out fold.
CrossValResult KFoldCrossValidate(const std::vector<LabeledPair>& pairs,
                                  int folds, const PairLearner& learner,
                                  uint64_t seed = 17);

/// The paper's learner (DIME-Rule): greedy positive rules; a pair is
/// predicted "same category" iff some learned positive rule fires.
PairLearner MakeDimeRuleLearner(size_t num_specs);

}  // namespace dime

#endif  // DIME_RULEGEN_CROSSVAL_H_
