#ifndef DIME_RULEGEN_ENUMERATE_H_
#define DIME_RULEGEN_ENUMERATE_H_

#include <vector>

#include "src/rulegen/candidates.h"
#include "src/rulegen/greedy.h"

/// \file enumerate.h
/// The exact enumeration algorithm of Section V-B: build all possible
/// rules (0-1 candidate predicate per attribute spec), then search rule
/// subsets for the one maximizing the objective. The search space is
/// O(2^(|F| m |S+| m)), so this is only usable on toy instances — the
/// greedy algorithm (greedy.h) is the practical path; tests use this as
/// the ground-truth optimum on small inputs (and Theorem 4 explains why
/// nothing better than enumeration is expected in the worst case).

namespace dime {

struct EnumerateOptions {
  size_t max_predicates_per_rule = 2;
  size_t max_rules_in_set = 2;
  /// Hard cap on enumerated single rules; exceeding it aborts with the best
  /// effort so tests can't explode.
  size_t max_candidate_rules = 4096;
};

/// Exhaustively finds the best positive rule set (`Direction::kGe`).
RuleGenResult EnumeratePositiveRules(const std::vector<LabeledPair>& pairs,
                                     size_t num_specs,
                                     const EnumerateOptions& options = {});

/// Exhaustively finds the best negative rule set (`Direction::kLe`).
RuleGenResult EnumerateNegativeRules(const std::vector<LabeledPair>& pairs,
                                     size_t num_specs,
                                     const EnumerateOptions& options = {});

}  // namespace dime

#endif  // DIME_RULEGEN_ENUMERATE_H_
