#ifndef DIME_RULEGEN_CANDIDATES_H_
#define DIME_RULEGEN_CANDIDATES_H_

#include <string>
#include <vector>

#include "src/core/preprocess.h"
#include "src/rules/rule.h"

/// \file candidates.h
/// Rule generation from examples (Section V). A positive/negative example
/// is a pair of entities that are / are not in the same category. Rule
/// generation works in "feature space": every example pair is scored by a
/// library of (attribute, similarity function) features, and Theorem 3
/// restricts the infinitely many thresholds to the finitely many observed
/// feature values, one candidate predicate per value.

namespace dime {

/// One feature of the library: a similarity function applied to an
/// attribute (threshold left open).
struct FeatureSpec {
  int attr = 0;
  SimFunc func = SimFunc::kOverlap;
  TokenMode mode = TokenMode::kValueList;
  int ontology_index = 0;

  Predicate WithThreshold(double threshold) const {
    Predicate p;
    p.attr = attr;
    p.func = func;
    p.mode = mode;
    p.threshold = threshold;
    p.ontology_index = ontology_index;
    return p;
  }

  std::string ToString(const Schema& schema) const;
};

/// An example pair with its feature vector (parallel to the spec library).
struct LabeledPair {
  std::vector<double> features;
  bool positive = false;  ///< true: same category; false: different
};

/// An example: entities e1, e2 of groups[group] (do/don't) belong together.
struct ExamplePair {
  int group = 0;
  int e1 = 0;
  int e2 = 0;
  bool positive = false;
};

/// Computes feature vectors for example pairs drawn from `groups`.
std::vector<LabeledPair> ComputeFeatures(
    const std::vector<Group>& groups, const std::vector<ExamplePair>& examples,
    const std::vector<FeatureSpec>& specs, const DimeContext& context);

/// A candidate predicate in feature space.
struct CandidatePredicate {
  int spec = 0;
  double threshold = 0.0;
};

/// Candidate `f(A) >= theta` predicates: one per distinct feature value
/// observed on a positive example (Theorem 3). Vacuous thresholds that any
/// pair satisfies (overlap < 1, normalized <= 0) are dropped.
std::vector<CandidatePredicate> GeneratePositiveCandidates(
    const std::vector<LabeledPair>& pairs, size_t num_specs);

/// Candidate `f(A) <= sigma` predicates: one per distinct feature value
/// observed on a negative example (Section V-D). Vacuous thresholds that
/// any pair satisfies (sigma >= max observed value) are kept out.
std::vector<CandidatePredicate> GenerateNegativeCandidates(
    const std::vector<LabeledPair>& pairs, size_t num_specs);

/// A learned rule: a conjunction over distinct specs.
struct LearnedRule {
  std::vector<CandidatePredicate> predicates;

  bool SatisfiedGe(const std::vector<double>& features) const;
  bool SatisfiedLe(const std::vector<double>& features) const;
};

/// Objective F(Sigma, S+, S-) = |E ∩ S+| - |E ∩ S-| for positive rule sets
/// (pairs satisfying ANY rule), per Section V-A.
int PositiveObjective(const std::vector<LearnedRule>& rules,
                      const std::vector<LabeledPair>& pairs);

/// Objective |E ∩ S-| - |E ∩ S+| for negative rule sets.
int NegativeObjective(const std::vector<LearnedRule>& rules,
                      const std::vector<LabeledPair>& pairs);

/// Converts learned rules back to engine rules.
PositiveRule ToPositiveRule(const LearnedRule& rule,
                            const std::vector<FeatureSpec>& specs);
NegativeRule ToNegativeRule(const LearnedRule& rule,
                            const std::vector<FeatureSpec>& specs);

}  // namespace dime

#endif  // DIME_RULEGEN_CANDIDATES_H_
