#include "src/entity/entity.h"

#include <fstream>
#include <sstream>

#include "src/common/csv.h"
#include "src/common/fault_injection.h"
#include "src/common/logging.h"

namespace dime {

Schema::Schema(std::vector<std::string> attribute_names)
    : attribute_names_(std::move(attribute_names)) {}

int Schema::AttributeIndex(std::string_view name) const {
  for (size_t i = 0; i < attribute_names_.size(); ++i) {
    if (attribute_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Group::TrueErrorIndices() const {
  DIME_CHECK(has_truth());
  std::vector<int> errors;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i]) errors.push_back(static_cast<int>(i));
  }
  return errors;
}

namespace {

/// TSV cells cannot contain the structural characters; values are
/// sanitized on write (tab/newline -> space, '|' -> '/') so every written
/// file parses back.
std::string SanitizeCell(const std::string& value) {
  std::string out = value;
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    if (c == '|') c = '/';
  }
  return out;
}

}  // namespace

std::string GroupToTsv(const Group& group) {
  std::vector<TsvRow> rows;
  TsvRow header;
  header.push_back("_id");
  for (const std::string& attr : group.schema.attribute_names()) {
    header.push_back(SanitizeCell(attr));
  }
  if (group.has_truth()) header.push_back("_error");
  rows.push_back(std::move(header));

  for (size_t i = 0; i < group.entities.size(); ++i) {
    const Entity& e = group.entities[i];
    TsvRow row;
    row.push_back(SanitizeCell(e.id));
    for (const AttributeValue& v : e.values) {
      std::vector<std::string> sanitized;
      sanitized.reserve(v.size());
      for (const std::string& piece : v) {
        sanitized.push_back(SanitizeCell(piece));
      }
      row.push_back(JoinMultiValue(sanitized));
    }
    if (group.has_truth()) row.push_back(group.truth[i] ? "1" : "0");
    rows.push_back(std::move(row));
  }
  return FormatTsv(rows);
}

Status ParseGroupTsv(const std::string& tsv, std::string_view name,
                     Group* out) {
  *out = Group();
  std::vector<TsvRow> rows = ParseTsv(tsv);
  if (rows.empty()) {
    return ParseError("empty input: expected a header row starting with _id");
  }
  const TsvRow& header = rows[0];
  if (header.empty() || header[0] != "_id") {
    return ParseError("header must start with _id, got \"" +
                      (header.empty() ? std::string() : header[0]) + "\"");
  }

  bool has_truth = header.back() == "_error";
  size_t num_attrs = header.size() - 1 - (has_truth ? 1 : 0);
  std::vector<std::string> attrs(header.begin() + 1,
                                 header.begin() + 1 + num_attrs);
  out->name = std::string(name);
  out->schema = Schema(std::move(attrs));

  for (size_t r = 1; r < rows.size(); ++r) {
    const TsvRow& row = rows[r];
    if (row.size() != header.size()) {
      Status error = SchemaMismatchError(
          "row " + std::to_string(r + 1) + " has " +
          std::to_string(row.size()) + " cells but the header has " +
          std::to_string(header.size()));
      *out = Group();
      return error;
    }
    Entity e;
    e.id = row[0];
    for (size_t a = 0; a < num_attrs; ++a) {
      e.values.push_back(SplitMultiValue(row[1 + a]));
    }
    out->entities.push_back(std::move(e));
    if (has_truth) out->truth.push_back(row.back() == "1" ? 1 : 0);
  }
  return OkStatus();
}

bool GroupFromTsv(const std::string& tsv, std::string_view name, Group* out) {
  return ParseGroupTsv(tsv, name, out).ok();
}

Status SaveGroup(const Group& group, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return NotFoundError(path + ": cannot create");
  f << GroupToTsv(group);
  f.flush();
  if (!f) return IoError(path + ": write failed");
  return OkStatus();
}

Status LoadGroup(const std::string& path, std::string_view name, Group* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return NotFoundError(path + ": cannot open");
  if (DIME_FAULT_POINT(failpoints::kIoRead)) {
    return IoError(path + ": injected read fault");
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  if (f.bad()) return IoError(path + ": read failed");
  return ParseGroupTsv(buf.str(), name, out);
}

bool SaveGroupTsv(const Group& group, const std::string& path) {
  return SaveGroup(group, path).ok();
}

bool LoadGroupTsv(const std::string& path, std::string_view name, Group* out) {
  return LoadGroup(path, name, out).ok();
}

}  // namespace dime
