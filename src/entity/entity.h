#ifndef DIME_ENTITY_ENTITY_H_
#define DIME_ENTITY_ENTITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

/// \file entity.h
/// The data model of Section II: entities are defined over a multi-valued
/// relation R(A1, ..., Am); each attribute of an entity takes a *list* of
/// values (e.g. e[Authors] = {"Xu Chu", "John Morcos", ...}). A group G is
/// a set of entities that some upstream categorizer placed together.

namespace dime {

/// One attribute value: a list of strings (possibly a singleton).
using AttributeValue = std::vector<std::string>;

/// The multi-valued relation R(A1, ..., Am).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attribute_names);

  /// Index of `name` or -1 if absent.
  int AttributeIndex(std::string_view name) const;

  const std::string& AttributeName(int index) const {
    return attribute_names_[index];
  }

  size_t size() const { return attribute_names_.size(); }

  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }

 private:
  std::vector<std::string> attribute_names_;
};

/// One entity. `values` is parallel to the schema's attributes.
struct Entity {
  std::string id;
  std::vector<AttributeValue> values;

  const AttributeValue& value(int attr) const { return values[attr]; }
};

/// A group of entities categorized together, with optional ground truth.
struct Group {
  std::string name;
  Schema schema;
  std::vector<Entity> entities;

  /// Ground truth: truth[i] == 1 iff entities[i] is mis-categorized. Empty
  /// when unknown.
  std::vector<uint8_t> truth;

  size_t size() const { return entities.size(); }
  bool has_truth() const { return truth.size() == entities.size(); }

  /// Indices of the truly mis-categorized entities (requires truth).
  std::vector<int> TrueErrorIndices() const;
};

/// Serializes a group to TSV: one header row of attribute names (plus a
/// final "_error" column when ground truth is present), then one row per
/// entity (id first). Multi-valued cells join values with '|'.
std::string GroupToTsv(const Group& group);

/// Parses GroupToTsv output. Error codes distinguish the failure modes:
///   PARSE_ERROR      empty input or a header that does not start with _id
///   SCHEMA_MISMATCH  an entity row whose cell count disagrees with the
///                    header
/// On error `out` is left cleared (empty schema, no entities).
Status ParseGroupTsv(const std::string& tsv, std::string_view name,
                     Group* out);

/// Shim over ParseGroupTsv. Returns false on malformed input.
bool GroupFromTsv(const std::string& tsv, std::string_view name, Group* out);

/// File wrappers around the TSV codec. LoadGroup adds the IO failure
/// modes: NOT_FOUND (unopenable file, distinct from an empty one, which
/// parses as PARSE_ERROR for lack of a header) and IO_ERROR (read failed
/// mid-stream; failpoint "io/read").
Status SaveGroup(const Group& group, const std::string& path);
Status LoadGroup(const std::string& path, std::string_view name, Group* out);

/// Bool shims over SaveGroup / LoadGroup.
bool SaveGroupTsv(const Group& group, const std::string& path);
bool LoadGroupTsv(const std::string& path, std::string_view name, Group* out);

}  // namespace dime

#endif  // DIME_ENTITY_ENTITY_H_
