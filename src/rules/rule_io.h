#ifndef DIME_RULES_RULE_IO_H_
#define DIME_RULES_RULE_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/rules/rule.h"

/// \file rule_io.h
/// Rule-set files: a line-based text format so learned or hand-written
/// rule sets can be stored next to the data and fed to dime_cli.
///
///   # comment / blank lines ignored
///   positive: overlap(Authors) >= 2
///   positive: overlap(Authors) >= 1 ^ ontology(Venue) >= 0.75
///   negative: overlap(Authors) <= 0
///
/// Negative rules keep file order — it is the scrollbar order.

namespace dime {

/// Serializes a rule set.
std::string RuleSetToText(const Schema& schema,
                          const std::vector<PositiveRule>& positive,
                          const std::vector<NegativeRule>& negative);

/// Parses RuleSetToText output. On failure returns false and, if
/// `error` is non-null, stores a human-readable reason; outputs are left
/// in an unspecified state.
bool RuleSetFromText(std::string_view text, const Schema& schema,
                     std::vector<PositiveRule>* positive,
                     std::vector<NegativeRule>* negative,
                     std::string* error = nullptr);

/// File wrappers.
bool SaveRuleSet(const std::string& path, const Schema& schema,
                 const std::vector<PositiveRule>& positive,
                 const std::vector<NegativeRule>& negative);
bool LoadRuleSet(const std::string& path, const Schema& schema,
                 std::vector<PositiveRule>* positive,
                 std::vector<NegativeRule>* negative,
                 std::string* error = nullptr);

}  // namespace dime

#endif  // DIME_RULES_RULE_IO_H_
