#include "src/rules/rule_io.h"

#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace dime {

std::string RuleSetToText(const Schema& schema,
                          const std::vector<PositiveRule>& positive,
                          const std::vector<NegativeRule>& negative) {
  std::string out;
  out += "# DIME rule set (positive rules are a disjunction; negative\n";
  out += "# rules apply in file order — the scrollbar order)\n";
  for (const PositiveRule& rule : positive) {
    out += "positive: " + rule.ToString(schema) + "\n";
  }
  for (const NegativeRule& rule : negative) {
    out += "negative: " + rule.ToString(schema) + "\n";
  }
  return out;
}

bool RuleSetFromText(std::string_view text, const Schema& schema,
                     std::vector<PositiveRule>* positive,
                     std::vector<NegativeRule>* negative,
                     std::string* error) {
  positive->clear();
  negative->clear();
  size_t line_number = 0;
  size_t start = 0;
  auto fail = [&](const std::string& reason) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + reason;
    }
    return false;
  };
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (StartsWith(line, "positive:")) {
      PositiveRule rule;
      if (!ParsePositiveRule(line.substr(9), schema, &rule)) {
        return fail("bad positive rule '" + std::string(line.substr(9)) +
                    "'");
      }
      positive->push_back(std::move(rule));
    } else if (StartsWith(line, "negative:")) {
      NegativeRule rule;
      if (!ParseNegativeRule(line.substr(9), schema, &rule)) {
        return fail("bad negative rule '" + std::string(line.substr(9)) +
                    "'");
      }
      negative->push_back(std::move(rule));
    } else {
      return fail("expected 'positive:' or 'negative:'");
    }
  }
  return true;
}

bool SaveRuleSet(const std::string& path, const Schema& schema,
                 const std::vector<PositiveRule>& positive,
                 const std::vector<NegativeRule>& negative) {
  std::ofstream f(path);
  if (!f) return false;
  f << RuleSetToText(schema, positive, negative);
  return static_cast<bool>(f);
}

bool LoadRuleSet(const std::string& path, const Schema& schema,
                 std::vector<PositiveRule>* positive,
                 std::vector<NegativeRule>* negative, std::string* error) {
  std::ifstream f(path);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return RuleSetFromText(buf.str(), schema, positive, negative, error);
}

}  // namespace dime
