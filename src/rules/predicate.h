#ifndef DIME_RULES_PREDICATE_H_
#define DIME_RULES_PREDICATE_H_

#include <string>

#include "src/entity/entity.h"
#include "src/sim/similarity.h"

/// \file predicate.h
/// A predicate is one conjunct of a rule: `f(A) >= theta` in a positive
/// rule or `f(A) <= sigma` in a negative rule (Section II). The comparison
/// direction is owned by the rule type, not the predicate, so the same
/// predicate structure serves both.

namespace dime {

/// Comparison direction applied by the owning rule.
enum class Direction : int {
  kGe = 0,  ///< similarity >= threshold (positive rules)
  kLe = 1,  ///< similarity <= threshold (negative rules)
};

struct Predicate {
  int attr = 0;                             ///< attribute index in the schema
  SimFunc func = SimFunc::kOverlap;         ///< similarity function f
  TokenMode mode = TokenMode::kValueList;   ///< tokenization for set funcs
  double threshold = 0.0;                   ///< theta (>=) or sigma (<=)
  int ontology_index = 0;                   ///< which context ontology (kOntology)

  /// True iff `sim` satisfies this predicate under `dir`.
  bool Compare(double sim, Direction dir) const {
    constexpr double kEps = 1e-9;
    return dir == Direction::kGe ? sim >= threshold - kEps
                                 : sim <= threshold + kEps;
  }

  /// Renders e.g. "overlap(Authors) >= 2" / "ontology(Venue) <= 0.25".
  std::string ToString(const Schema& schema, Direction dir) const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.attr == b.attr && a.func == b.func && a.mode == b.mode &&
           a.threshold == b.threshold && a.ontology_index == b.ontology_index;
  }
};

}  // namespace dime

#endif  // DIME_RULES_PREDICATE_H_
