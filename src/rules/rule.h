#ifndef DIME_RULES_RULE_H_
#define DIME_RULES_RULE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/rules/predicate.h"

/// \file rule.h
/// Positive and negative rules (Section II). A positive rule is a
/// conjunction of `f(A) >= theta` predicates: true means the two entities
/// should be categorized together; false means "don't know". A negative
/// rule is a conjunction of `f(A) <= sigma` predicates: true means the two
/// entities should *not* be categorized together; false means "don't
/// know". Positive rules are applied as one disjunction; negative rules
/// are applied incrementally in sequence (the scrollbar of Fig. 3).

namespace dime {

struct PositiveRule {
  std::vector<Predicate> predicates;

  static constexpr Direction kDirection = Direction::kGe;

  /// Renders e.g. "overlap(Authors) >= 1 ^ ontology(Venue) >= 0.75".
  std::string ToString(const Schema& schema) const;
};

struct NegativeRule {
  std::vector<Predicate> predicates;

  static constexpr Direction kDirection = Direction::kLe;

  std::string ToString(const Schema& schema) const;
};

/// Parses one rule from the textual syntax produced by ToString:
///
///   rule      := predicate (" ^ " predicate)*
///   predicate := func "(" attr [":words"] ["@" ontology] ")" op number
///   func      := overlap | jaccard | dice | cosine | editsim | ontology
///   op        := ">=" (positive rules) | "<=" (negative rules)
///
/// Returns false (and leaves `out` untouched) on syntax errors, unknown
/// attributes, or the wrong comparison operator for the rule type.
bool ParsePositiveRule(std::string_view text, const Schema& schema,
                       PositiveRule* out);
bool ParseNegativeRule(std::string_view text, const Schema& schema,
                       NegativeRule* out);

}  // namespace dime

#endif  // DIME_RULES_RULE_H_
