#include "src/rules/rule.h"

#include <sstream>

#include "src/common/string_util.h"

namespace dime {
namespace {

std::string RuleToString(const std::vector<Predicate>& predicates,
                         const Schema& schema, Direction dir) {
  std::ostringstream out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) out << " ^ ";
    out << predicates[i].ToString(schema, dir);
  }
  return out.str();
}

/// Parses a single "func(attr[:words][@k]) op number" conjunct.
bool ParsePredicate(std::string_view text, const Schema& schema,
                    Direction expected_dir, Predicate* out) {
  text = Trim(text);
  size_t open = text.find('(');
  size_t close = text.find(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return false;
  }
  SimFunc func;
  if (!SimFuncFromName(Trim(text.substr(0, open)), &func)) return false;

  std::string_view inner = Trim(text.substr(open + 1, close - open - 1));
  TokenMode mode = TokenMode::kValueList;
  int ontology_index = 0;
  size_t at = inner.rfind('@');
  if (at != std::string_view::npos) {
    double idx;
    if (!ParseDouble(inner.substr(at + 1), &idx)) return false;
    ontology_index = static_cast<int>(idx);
    inner = Trim(inner.substr(0, at));
  }
  if (EndsWith(inner, ":words")) {
    // Tokenization only matters for (weighted) set functions; ignore the
    // suffix elsewhere so predicates stay canonical under round trips.
    if (IsSetBased(func) || IsWeightedSetBased(func)) {
      mode = TokenMode::kWords;
    }
    inner = Trim(inner.substr(0, inner.size() - 6));
  }
  int attr = schema.AttributeIndex(inner);
  if (attr < 0) return false;

  std::string_view rest = Trim(text.substr(close + 1));
  Direction dir;
  if (StartsWith(rest, ">=")) {
    dir = Direction::kGe;
  } else if (StartsWith(rest, "<=")) {
    dir = Direction::kLe;
  } else {
    return false;
  }
  if (dir != expected_dir) return false;
  double threshold;
  if (!ParseDouble(rest.substr(2), &threshold)) return false;

  out->attr = attr;
  out->func = func;
  out->mode = mode;
  out->threshold = threshold;
  out->ontology_index = ontology_index;
  return true;
}

bool ParseConjunction(std::string_view text, const Schema& schema,
                      Direction dir, std::vector<Predicate>* out) {
  std::vector<Predicate> predicates;
  for (const std::string& piece : SplitAndTrim(std::string(text), '^')) {
    Predicate p;
    if (!ParsePredicate(piece, schema, dir, &p)) return false;
    predicates.push_back(p);
  }
  if (predicates.empty()) return false;
  *out = std::move(predicates);
  return true;
}

}  // namespace

std::string PositiveRule::ToString(const Schema& schema) const {
  return RuleToString(predicates, schema, kDirection);
}

std::string NegativeRule::ToString(const Schema& schema) const {
  return RuleToString(predicates, schema, kDirection);
}

bool ParsePositiveRule(std::string_view text, const Schema& schema,
                       PositiveRule* out) {
  std::vector<Predicate> predicates;
  if (!ParseConjunction(text, schema, Direction::kGe, &predicates)) {
    return false;
  }
  out->predicates = std::move(predicates);
  return true;
}

bool ParseNegativeRule(std::string_view text, const Schema& schema,
                       NegativeRule* out) {
  std::vector<Predicate> predicates;
  if (!ParseConjunction(text, schema, Direction::kLe, &predicates)) {
    return false;
  }
  out->predicates = std::move(predicates);
  return true;
}

}  // namespace dime
