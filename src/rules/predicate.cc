#include "src/rules/predicate.h"

#include <sstream>

#include "src/common/string_util.h"

namespace dime {

std::string Predicate::ToString(const Schema& schema, Direction dir) const {
  std::ostringstream out;
  out << SimFuncName(func) << "(" << schema.AttributeName(attr);
  if ((IsSetBased(func) || IsWeightedSetBased(func)) &&
      mode == TokenMode::kWords) {
    out << ":words";
  }
  if (func == SimFunc::kOntology && ontology_index != 0) {
    out << "@" << ontology_index;
  }
  out << ") " << (dir == Direction::kGe ? ">=" : "<=") << " ";
  // Print counts without a decimal point, fractions with 2-4 digits.
  if (threshold == static_cast<double>(static_cast<long long>(threshold))) {
    out << static_cast<long long>(threshold);
  } else {
    std::string s = FormatDouble(threshold, 4);
    while (s.size() > 4 && s.back() == '0') s.pop_back();
    out << s;
  }
  return out.str();
}

}  // namespace dime
