#include "src/index/inverted_index.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/sim/rank_span.h"
#include "src/sim/set_similarity.h"

namespace dime {
namespace {

// Borrowed rank-span view over one frozen list. Entity ids are checked
// non-negative on Add, so the int run reinterprets losslessly as the
// uint32 ranks the sim kernels take.
RankSpan ListSpan(const int* ents, const uint64_t* starts, size_t l) {
  const int* begin = ents + starts[l];
  const size_t len = static_cast<size_t>(starts[l + 1] - starts[l]);
#ifndef NDEBUG
  for (size_t i = 1; i < len; ++i) {
    DIME_CHECK_LT(begin[i - 1], begin[i])
        << "ListOverlap on a non-ascending list (entities must be Add()ed "
        << "in ascending id order)";
  }
#endif
  return RankSpan(reinterpret_cast<const uint32_t*>(begin), len);
}

}  // namespace

void InvertedIndex::Add(int entity, const std::vector<uint64_t>& sigs) {
  DIME_CHECK(!frozen_) << "InvertedIndex::Add after first query";
  DIME_CHECK_GE(entity, 0);
  for (uint64_t sig : sigs) postings_.emplace_back(sig, entity);
  if (static_cast<size_t>(entity) >= sig_counts_.size()) {
    sig_counts_.resize(static_cast<size_t>(entity) + 1, 0);
  }
  sig_counts_[entity] += static_cast<uint32_t>(sigs.size());
}

void InvertedIndex::EnsureFrozen() const {
  if (frozen_) return;
  frozen_ = true;
  // Stable: postings with the same signature keep insertion order, i.e.
  // each run reads exactly like the per-list append order of a hash-map
  // build. Determinism here is what makes a dumped frozen index
  // re-adoptable bit-for-bit.
  std::stable_sort(postings_.begin(), postings_.end(),
                   [](const std::pair<uint64_t, int>& a,
                      const std::pair<uint64_t, int>& b) {
                     return a.first < b.first;
                   });
  entities_.reserve(postings_.size());
  list_starts_.push_back(0);
  for (size_t i = 0; i < postings_.size(); ++i) {
    if (i > 0 && postings_[i].first != postings_[i - 1].first) {
      list_starts_.push_back(i);
    }
    entities_.push_back(postings_[i].second);
  }
  if (!postings_.empty()) list_starts_.push_back(postings_.size());
  postings_.clear();
  postings_.shrink_to_fit();
}

InvertedIndex::FrozenView InvertedIndex::FrozenData() const {
  EnsureFrozen();
  if (ext_.list_starts) return ext_;
  FrozenView view;
  view.sig_counts = sig_counts_.data();
  view.sig_counts_len = sig_counts_.size();
  view.list_starts = list_starts_.data();
  view.list_starts_len = list_starts_.size();
  view.entities = entities_.data();
  view.entities_len = entities_.size();
  return view;
}

void InvertedIndex::AdoptFrozen(const FrozenView& view) {
  DIME_CHECK_GE(view.list_starts_len, 1u);
  postings_.clear();
  postings_.shrink_to_fit();
  sig_counts_.clear();
  entities_.clear();
  list_starts_.clear();
  ext_ = view;
  frozen_ = true;
}

std::vector<uint32_t> InvertedIndex::EnumerationOrder(
    bool short_lists_first) const {
  const uint64_t* starts = frozen_starts();
  const int* ents = frozen_entities();
  std::vector<uint32_t> order;
  const size_t num = frozen_num_lists();
  for (size_t l = 0; l < num; ++l) {
    if (starts[l + 1] - starts[l] > 1) {
      order.push_back(static_cast<uint32_t>(l));
    }
  }
  if (short_lists_first) {
    std::sort(order.begin(), order.end(),
              [starts, ents](uint32_t a, uint32_t b) {
                uint64_t la = starts[a + 1] - starts[a];
                uint64_t lb = starts[b + 1] - starts[b];
                if (la != lb) return la < lb;
                int fa = ents[starts[a]];
                int fb = ents[starts[b]];
                if (fa != fb) return fa < fb;  // deterministic tie-break
                return a < b;  // then signature-sorted position
              });
  }
  return order;
}

std::vector<InvertedIndex::CandidatePair> InvertedIndex::CandidatePairs()
    const {
  EnsureFrozen();
  const uint64_t* starts = frozen_starts();
  const int* ents = frozen_entities();
  // Materialize every co-occurrence as an (e1 << 32 | e2) key, then sort
  // and run-length encode: the keys come out grouped per pair and ordered
  // by (e1, e2) in one shot.
  std::vector<uint64_t> keys;
  for (uint32_t l : EnumerationOrder(/*short_lists_first=*/false)) {
    const size_t begin = starts[l], end = starts[l + 1];
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i + 1; j < end; ++j) {
        int a = ents[i], b = ents[j];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        keys.push_back((static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                       static_cast<uint32_t>(b));
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  std::vector<CandidatePair> pairs;
  for (size_t i = 0; i < keys.size();) {
    size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    CandidatePair p;
    p.e1 = static_cast<int>(keys[i] >> 32);
    p.e2 = static_cast<int>(keys[i] & 0xFFFFFFFFULL);
    p.shared = static_cast<uint32_t>(j - i);
    pairs.push_back(p);
    i = j;
  }
  return pairs;
}

void InvertedIndex::ForEachCandidate(
    bool short_lists_first,
    const std::function<bool(int, int)>& callback) const {
  EnsureFrozen();
  const uint64_t* starts = frozen_starts();
  const int* ents = frozen_entities();
  for (uint32_t l : EnumerationOrder(short_lists_first)) {
    const size_t begin = starts[l], end = starts[l + 1];
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i + 1; j < end; ++j) {
        int a = ents[i], b = ents[j];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        if (!callback(a, b)) return;
      }
    }
  }
}

void InvertedIndex::ForEachList(
    bool short_lists_first,
    const std::function<bool(const int*, size_t)>& callback) const {
  EnsureFrozen();
  const uint64_t* starts = frozen_starts();
  const int* ents = frozen_entities();
  for (uint32_t l : EnumerationOrder(short_lists_first)) {
    const size_t begin = starts[l], end = starts[l + 1];
    if (!callback(ents + begin, end - begin)) return;
  }
}

size_t InvertedIndex::CandidateVolume() const {
  EnsureFrozen();
  const uint64_t* starts = frozen_starts();
  size_t volume = 0;
  const size_t num = frozen_num_lists();
  for (size_t l = 0; l < num; ++l) {
    size_t len = starts[l + 1] - starts[l];
    volume += len * (len - 1) / 2;
  }
  return volume;
}

size_t InvertedIndex::ListOverlap(size_t l1, size_t l2) const {
  EnsureFrozen();
  DIME_CHECK_LT(l1, frozen_num_lists());
  DIME_CHECK_LT(l2, frozen_num_lists());
  const uint64_t* starts = frozen_starts();
  const int* ents = frozen_entities();
  return IntersectionSize(ListSpan(ents, starts, l1),
                          ListSpan(ents, starts, l2));
}

bool InvertedIndex::ListsShareAtLeast(size_t l1, size_t l2,
                                      size_t required) const {
  EnsureFrozen();
  DIME_CHECK_LT(l1, frozen_num_lists());
  DIME_CHECK_LT(l2, frozen_num_lists());
  const uint64_t* starts = frozen_starts();
  const int* ents = frozen_entities();
  return IntersectionAtLeast(ListSpan(ents, starts, l1),
                             ListSpan(ents, starts, l2), required);
}

size_t InvertedIndex::SignatureCount(int entity) const {
  const uint32_t* counts = ext_.sig_counts ? ext_.sig_counts
                                           : sig_counts_.data();
  const size_t n = ext_.sig_counts ? ext_.sig_counts_len : sig_counts_.size();
  if (entity < 0 || static_cast<size_t>(entity) >= n) return 0;
  return counts[entity];
}

size_t InvertedIndex::num_lists() const {
  EnsureFrozen();
  return frozen_num_lists();
}

}  // namespace dime
