#include "src/index/inverted_index.h"

#include <algorithm>

namespace dime {

void InvertedIndex::Add(int entity, const std::vector<uint64_t>& sigs) {
  for (uint64_t sig : sigs) lists_[sig].push_back(entity);
  sig_counts_[entity] += sigs.size();
}

std::vector<InvertedIndex::CandidatePair> InvertedIndex::CandidatePairs()
    const {
  // Count co-occurrences across lists.
  std::unordered_map<uint64_t, uint32_t> counts;
  for (const auto& [sig, list] : lists_) {
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        int a = list[i], b = list[j];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                       static_cast<uint32_t>(b);
        ++counts[key];
      }
    }
  }
  std::vector<CandidatePair> pairs;
  pairs.reserve(counts.size());
  for (const auto& [key, shared] : counts) {
    CandidatePair p;
    p.e1 = static_cast<int>(key >> 32);
    p.e2 = static_cast<int>(key & 0xFFFFFFFFULL);
    p.shared = shared;
    pairs.push_back(p);
  }
  // Deterministic order for downstream sorting.
  std::sort(pairs.begin(), pairs.end(),
            [](const CandidatePair& a, const CandidatePair& b) {
              if (a.e1 != b.e1) return a.e1 < b.e1;
              return a.e2 < b.e2;
            });
  return pairs;
}

void InvertedIndex::ForEachCandidate(
    bool short_lists_first,
    const std::function<bool(int, int)>& callback) const {
  std::vector<const std::vector<int>*> ordered;
  ordered.reserve(lists_.size());
  for (const auto& [sig, list] : lists_) {
    if (list.size() > 1) ordered.push_back(&list);
  }
  if (short_lists_first) {
    std::sort(ordered.begin(), ordered.end(),
              [](const std::vector<int>* a, const std::vector<int>* b) {
                if (a->size() != b->size()) return a->size() < b->size();
                return (*a)[0] < (*b)[0];  // deterministic tie-break
              });
  }
  for (const std::vector<int>* list : ordered) {
    for (size_t i = 0; i < list->size(); ++i) {
      for (size_t j = i + 1; j < list->size(); ++j) {
        int a = (*list)[i], b = (*list)[j];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        if (!callback(a, b)) return;
      }
    }
  }
}

size_t InvertedIndex::CandidateVolume() const {
  size_t volume = 0;
  for (const auto& [sig, list] : lists_) {
    volume += list.size() * (list.size() - 1) / 2;
  }
  return volume;
}

size_t InvertedIndex::SignatureCount(int entity) const {
  auto it = sig_counts_.find(entity);
  return it == sig_counts_.end() ? 0 : it->second;
}

}  // namespace dime
