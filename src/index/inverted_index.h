#ifndef DIME_INDEX_INVERTED_INDEX_H_
#define DIME_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

/// \file inverted_index.h
/// Signature -> entity inverted index (Section IV-A). Every pair of
/// entities on the same list is a candidate; the number of lists a pair
/// co-occurs on is its shared-signature count, which approximates the
/// similar probability used by benefit-ordered verification.

namespace dime {

class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds `entity` to the list of every signature in `sigs` and records
  /// |sigs| as the entity's signature count.
  void Add(int entity, const std::vector<uint64_t>& sigs);

  /// Enumerates candidate pairs (e1 < e2) and their shared-signature
  /// counts. Quadratic in the longest list, which is what the signature
  /// schemes keep short.
  struct CandidatePair {
    int e1;
    int e2;
    uint32_t shared;
  };
  std::vector<CandidatePair> CandidatePairs() const;

  /// Streams candidate pairs (e1 < e2) without materializing them: every
  /// pair of entities on the same list is emitted, a pair once per shared
  /// list. With `short_lists_first`, lists are visited in ascending length
  /// order — pairs sharing rare signatures (likely similar) come first,
  /// which is the streaming stand-in for benefit-ordered verification.
  /// The callback returns false to stop the enumeration early.
  void ForEachCandidate(bool short_lists_first,
                        const std::function<bool(int, int)>& callback) const;

  /// Total candidate-pair instances (sum over lists of |list| choose 2).
  size_t CandidateVolume() const;

  /// Signature count of an entity previously Add()ed (0 otherwise).
  size_t SignatureCount(int entity) const;

  size_t num_lists() const { return lists_.size(); }

 private:
  std::unordered_map<uint64_t, std::vector<int>> lists_;
  std::unordered_map<int, size_t> sig_counts_;
};

}  // namespace dime

#endif  // DIME_INDEX_INVERTED_INDEX_H_
