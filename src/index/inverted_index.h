#ifndef DIME_INDEX_INVERTED_INDEX_H_
#define DIME_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

/// \file inverted_index.h
/// Signature -> entity inverted index (Section IV-A). Every pair of
/// entities on the same list is a candidate; the number of lists a pair
/// co-occurs on is its shared-signature count, which approximates the
/// similar probability used by benefit-ordered verification.
///
/// Postings are kept in one flat (signature, entity) arena. Add() appends;
/// the first query freezes the index by stable-sorting the arena by
/// signature, after which each list is a contiguous run enumerated with
/// sequential reads — no hash-map nodes, no per-list allocations. The
/// stable sort preserves insertion order within each list. Add() after a
/// query is a programming error (checked).

namespace dime {

class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds `entity` to the list of every signature in `sigs` and records
  /// |sigs| as the entity's signature count. Entities must be >= 0.
  void Add(int entity, const std::vector<uint64_t>& sigs);

  /// Enumerates candidate pairs (e1 < e2) and their shared-signature
  /// counts, ordered by (e1, e2). Quadratic in the longest list, which is
  /// what the signature schemes keep short.
  struct CandidatePair {
    int e1;
    int e2;
    uint32_t shared;
  };
  std::vector<CandidatePair> CandidatePairs() const;

  /// Streams candidate pairs (e1 < e2) without materializing them: every
  /// pair of entities on the same list is emitted, a pair once per shared
  /// list. With `short_lists_first`, lists are visited in ascending length
  /// order — pairs sharing rare signatures (likely similar) come first,
  /// which is the streaming stand-in for benefit-ordered verification.
  /// The callback returns false to stop the enumeration early.
  void ForEachCandidate(bool short_lists_first,
                        const std::function<bool(int, int)>& callback) const;

  /// Streams whole posting lists (only those with >= 2 entries) in the
  /// order ForEachCandidate would visit them, handing the caller the
  /// contiguous entity run of each list. Lets callers that can decide a
  /// list wholesale (e.g. every member already in one partition) skip its
  /// |l|(|l|-1)/2 pairs in O(|l|). The callback returns false to stop.
  void ForEachList(
      bool short_lists_first,
      const std::function<bool(const int*, size_t)>& callback) const;

  /// Total candidate-pair instances (sum over lists of |list| choose 2).
  size_t CandidateVolume() const;

  /// Signature count of an entity previously Add()ed (0 otherwise).
  size_t SignatureCount(int entity) const;

  /// Number of distinct signatures (lists of any length).
  size_t num_lists() const;

 private:
  /// Sorts the arena into per-signature runs; idempotent.
  void EnsureFrozen() const;
  /// Indexes (into the frozen run table) of lists with >= 2 entries, in
  /// enumeration order.
  std::vector<uint32_t> EnumerationOrder(bool short_lists_first) const;

  // Build side: (signature, entity) in insertion order. Cleared on freeze.
  mutable std::vector<std::pair<uint64_t, int>> postings_;
  std::vector<uint32_t> sig_counts_;  // indexed by entity id

  // Frozen side: entities_ holds the concatenated lists; list i spans
  // entities_[list_starts_[i] .. list_starts_[i + 1]).
  mutable bool frozen_ = false;
  mutable std::vector<int> entities_;
  mutable std::vector<size_t> list_starts_;
};

}  // namespace dime

#endif  // DIME_INDEX_INVERTED_INDEX_H_
