#ifndef DIME_INDEX_INVERTED_INDEX_H_
#define DIME_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

/// \file inverted_index.h
/// Signature -> entity inverted index (Section IV-A). Every pair of
/// entities on the same list is a candidate; the number of lists a pair
/// co-occurs on is its shared-signature count, which approximates the
/// similar probability used by benefit-ordered verification.
///
/// Postings are kept in one flat (signature, entity) arena. Add() appends;
/// the first query freezes the index by stable-sorting the arena by
/// signature, after which each list is a contiguous run enumerated with
/// sequential reads — no hash-map nodes, no per-list allocations. The
/// stable sort preserves insertion order within each list. Add() after a
/// query is a programming error (checked).
///
/// The frozen side can also be *borrowed*: AdoptFrozen() points the index
/// at externally owned arrays (the snapshot store maps a previously
/// frozen index straight off disk, zero-copy). Because freezing is a
/// deterministic stable sort, dumping FrozenData() and adopting it back
/// reproduces the exact enumeration order of the original build.

namespace dime {

class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds `entity` to the list of every signature in `sigs` and records
  /// |sigs| as the entity's signature count. Entities must be >= 0.
  void Add(int entity, const std::vector<uint64_t>& sigs);

  /// Enumerates candidate pairs (e1 < e2) and their shared-signature
  /// counts, ordered by (e1, e2). Quadratic in the longest list, which is
  /// what the signature schemes keep short.
  struct CandidatePair {
    int e1;
    int e2;
    uint32_t shared;
  };
  std::vector<CandidatePair> CandidatePairs() const;

  /// Streams candidate pairs (e1 < e2) without materializing them: every
  /// pair of entities on the same list is emitted, a pair once per shared
  /// list. With `short_lists_first`, lists are visited in ascending length
  /// order — pairs sharing rare signatures (likely similar) come first,
  /// which is the streaming stand-in for benefit-ordered verification.
  /// The callback returns false to stop the enumeration early.
  void ForEachCandidate(bool short_lists_first,
                        const std::function<bool(int, int)>& callback) const;

  /// Streams whole posting lists (only those with >= 2 entries) in the
  /// order ForEachCandidate would visit them, handing the caller the
  /// contiguous entity run of each list. Lets callers that can decide a
  /// list wholesale (e.g. every member already in one partition) skip its
  /// |l|(|l|-1)/2 pairs in O(|l|). The callback returns false to stop.
  void ForEachList(
      bool short_lists_first,
      const std::function<bool(const int*, size_t)>& callback) const;

  /// Total candidate-pair instances (sum over lists of |list| choose 2).
  size_t CandidateVolume() const;

  /// Intersection size of frozen lists `l1` and `l2` (indexes into the
  /// run table, < num_lists()), computed with the sim layer's dispatching
  /// set kernel (AVX2 block intersection on dense lists, scalar merge
  /// otherwise). Lists must be strictly ascending, which holds whenever
  /// entities were Add()ed in ascending id order — the PrepareGroup /
  /// artifact build order (checked in debug builds).
  size_t ListOverlap(size_t l1, size_t l2) const;

  /// Threshold-aware twin: true iff lists `l1` and `l2` share at least
  /// `required` entities, early-exiting through IntersectionAtLeast
  /// (cannot-reach / cannot-miss, galloping on skewed lengths). Decision
  /// is identical to `ListOverlap(l1, l2) >= required`.
  bool ListsShareAtLeast(size_t l1, size_t l2, size_t required) const;

  /// Signature count of an entity previously Add()ed (0 otherwise).
  size_t SignatureCount(int entity) const;

  /// Number of distinct signatures (lists of any length).
  size_t num_lists() const;

  /// Borrowed view of the frozen state, for serialization. `list_starts`
  /// always has num_lists + 1 entries (a single 0 for an empty index);
  /// list i spans entities[list_starts[i] .. list_starts[i + 1]).
  /// Pointers are owned by the index (or by whatever AdoptFrozen borrowed
  /// from) and are stable until the index is destroyed.
  struct FrozenView {
    const uint32_t* sig_counts = nullptr;  // indexed by entity id
    size_t sig_counts_len = 0;
    const uint64_t* list_starts = nullptr;
    size_t list_starts_len = 0;  // num_lists + 1, always >= 1
    const int* entities = nullptr;
    size_t entities_len = 0;
  };

  /// Freezes (if not already) and exposes the frozen arrays.
  FrozenView FrozenData() const;

  /// Points the frozen side at externally owned arrays (snapshot load).
  /// Requires view.list_starts_len >= 1 and the backing to outlive the
  /// index. Replaces any built state; Add() afterwards is an error.
  void AdoptFrozen(const FrozenView& view);

 private:
  /// Sorts the arena into per-signature runs; idempotent.
  void EnsureFrozen() const;
  /// Indexes (into the frozen run table) of lists with >= 2 entries, in
  /// enumeration order.
  std::vector<uint32_t> EnumerationOrder(bool short_lists_first) const;

  // Frozen-side accessors, mode-independent. Callers must EnsureFrozen()
  // first.
  const int* frozen_entities() const {
    return ext_.entities ? ext_.entities : entities_.data();
  }
  const uint64_t* frozen_starts() const {
    return ext_.list_starts ? ext_.list_starts : list_starts_.data();
  }
  size_t frozen_num_lists() const {
    if (ext_.list_starts) return ext_.list_starts_len - 1;
    return list_starts_.empty() ? 0 : list_starts_.size() - 1;
  }

  // Build side: (signature, entity) in insertion order. Cleared on freeze.
  mutable std::vector<std::pair<uint64_t, int>> postings_;
  std::vector<uint32_t> sig_counts_;  // indexed by entity id

  // Frozen side, owned mode: entities_ holds the concatenated lists; list
  // i spans entities_[list_starts_[i] .. list_starts_[i + 1]).
  mutable bool frozen_ = false;
  mutable std::vector<int> entities_;
  mutable std::vector<uint64_t> list_starts_;
  // Frozen side, borrowed mode (pointers null when owned).
  FrozenView ext_;
};

}  // namespace dime

#endif  // DIME_INDEX_INVERTED_INDEX_H_
