#ifndef DIME_INDEX_SIGNATURE_H_
#define DIME_INDEX_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "src/core/preprocess.h"
#include "src/rules/predicate.h"

/// \file signature.h
/// Signature generation (Section IV-B). For every similarity class there is
/// a scheme such that two values satisfying `f >= theta` must share a
/// signature:
///
///  * set-based:  the first |v| - o + 1 tokens of the rank-sorted value,
///                where o is the minimum qualifying overlap (prefix
///                filtering on the document-frequency global order);
///  * char-based: the first q*d + 1 rank-sorted q-grams, where d is the
///                largest edit distance compatible with the threshold;
///  * ontology:   the ancestor at depth tau_min (the node signature of
///                Lemma 4.2), where tau_min is the smallest tau_n over the
///                group.
///
/// For negative rules the same schemes run with the effective threshold
/// "just above" sigma, giving the dual guarantee: if two entities share no
/// signature for ANY predicate, every predicate similarity is <= sigma and
/// the pair must satisfy the rule.
///
/// Degenerate predicates that any pair satisfies (e.g. `jaccard >= 0`)
/// would break prefix filtering, so they emit a single universal signature
/// shared by all entities — completeness is preserved and the pairs fall
/// through to verification.

namespace dime {

struct SignatureOptions {
  /// Cap on tuple signatures per entity for a positive rule. When the
  /// expected cross-product across predicates exceeds the cap, the
  /// generator falls back to indexing only the most selective predicate
  /// (smallest average signature count), which is still complete.
  size_t max_tuple_signatures = 64;
};

/// Generates signatures for one rule (its predicate list + direction) over
/// a prepared group.
class SignatureGenerator {
 public:
  SignatureGenerator(const PreparedGroup& pg,
                     const std::vector<Predicate>& predicates, Direction dir,
                     uint64_t rule_tag,
                     const SignatureOptions& options = SignatureOptions());

  /// Per-predicate signatures of `entity` (tagged with the predicate index
  /// and `rule_tag`). Empty when the entity cannot reach the effective
  /// threshold with any partner.
  std::vector<uint64_t> PredicateSignatures(size_t pred_idx, int entity) const;

  /// Signatures of `entity` for a positive rule: the (capped)
  /// cross-product combination across predicates. Two entities satisfying
  /// the rule must share one. Empty when some predicate is unsatisfiable
  /// for this entity.
  std::vector<uint64_t> PositiveRuleSignatures(int entity) const;

  /// Signatures of `entity` for a negative rule: the tagged union across
  /// predicates. If the signature sets of two entities are disjoint, the
  /// pair satisfies the rule.
  std::vector<uint64_t> NegativeRuleSignatures(int entity) const;

  /// True if the positive generator fell back to anchor-only indexing.
  bool anchor_only() const { return anchor_only_; }
  size_t anchor_predicate() const { return anchor_; }

 private:
  const PreparedGroup& pg_;
  const std::vector<Predicate>& predicates_;
  Direction dir_;
  uint64_t rule_tag_;
  SignatureOptions options_;
  std::vector<int> ontology_tau_min_;  ///< per predicate (-1 if not ontology)
  /// Per predicate: true when q-gram prefix filtering gives no guarantee
  /// for SOME entity of the group (its whole string fits in the edit
  /// budget). The decision must be group-global — a per-entity fallback
  /// would be asymmetric and break completeness — so the predicate then
  /// emits one universal signature for every entity.
  std::vector<bool> editsim_universal_;
  std::vector<double> avg_sig_count_;  ///< per predicate
  bool anchor_only_ = false;
  size_t anchor_ = 0;
};

/// 64-bit mixing used to tag signatures; exposed for tests.
uint64_t MixSignature(uint64_t a, uint64_t b);

}  // namespace dime

#endif  // DIME_INDEX_SIGNATURE_H_
