#ifndef DIME_INDEX_UNION_FIND_H_
#define DIME_INDEX_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

/// \file union_find.h
/// Disjoint-set forest with union by size and path compression. This is the
/// "partition ID" bookkeeping of Section IV-C: when a candidate pair is
/// verified to satisfy a positive rule its two components are merged, and
/// candidates that already share a component are skipped (the transitivity
/// short-circuit).

namespace dime {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of `x`'s component (with path compression).
  int Find(int x) {
    int root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      int next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// True iff x and y are already in the same component.
  bool Connected(int x, int y) { return Find(x) == Find(y); }

  /// Merges the components of x and y. Returns false if they were already
  /// connected.
  bool Union(int x, int y) {
    int rx = Find(x), ry = Find(y);
    if (rx == ry) return false;
    if (size_[rx] < size_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    size_[rx] += size_[ry];
    return true;
  }

  /// Size of the component containing `x`.
  size_t ComponentSize(int x) { return size_[Find(x)]; }

  /// Appends a new singleton element and returns its index (used by the
  /// incremental engine as entities arrive).
  int Add() {
    int id = static_cast<int>(parent_.size());
    parent_.push_back(id);
    size_.push_back(1);
    return id;
  }

  size_t size() const { return parent_.size(); }

  /// Materializes the components as entity-index lists. Each component's
  /// members are ascending; components are ordered by their smallest
  /// member (deterministic).
  std::vector<std::vector<int>> Components();

 private:
  std::vector<int> parent_;
  std::vector<size_t> size_;
};

inline std::vector<std::vector<int>> UnionFind::Components() {
  std::vector<int> root_to_slot(parent_.size(), -1);
  std::vector<std::vector<int>> components;
  for (size_t i = 0; i < parent_.size(); ++i) {
    int root = Find(static_cast<int>(i));
    if (root_to_slot[root] < 0) {
      root_to_slot[root] = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[root_to_slot[root]].push_back(static_cast<int>(i));
  }
  return components;
}

}  // namespace dime

#endif  // DIME_INDEX_UNION_FIND_H_
