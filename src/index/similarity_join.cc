#include "src/index/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/sim/set_similarity.h"

namespace dime {
namespace {

/// True when the threshold admits every pair (prefix filtering can't help).
bool Unfilterable(SimFunc func, double threshold) {
  if (func == SimFunc::kOverlap) return threshold < 1.0;
  return threshold <= 0.0;
}

}  // namespace

size_t MinQualifyingSize(SimFunc func, size_t size, double threshold) {
  double bound = 0.0;
  switch (func) {
    case SimFunc::kOverlap:
      bound = threshold;
      break;
    case SimFunc::kJaccard:
      bound = threshold * static_cast<double>(size);
      break;
    case SimFunc::kDice:
      bound = threshold * static_cast<double>(size) / (2.0 - threshold);
      break;
    case SimFunc::kCosine:
      bound = threshold * threshold * static_cast<double>(size);
      break;
    default:
      DIME_LOG(FATAL) << "MinQualifyingSize: non-set function";
  }
  return static_cast<size_t>(std::ceil(bound - 1e-9));
}

std::vector<JoinPair> SetSimilaritySelfJoin(
    const std::vector<std::vector<uint32_t>>& records, SimFunc func,
    double threshold, JoinStats* stats) {
  DIME_CHECK(IsSetBased(func));
  JoinStats local;
  std::vector<JoinPair> results;
  const int n = static_cast<int>(records.size());

  if (Unfilterable(func, threshold)) {
    // Degenerate threshold: every pair qualifies a priori for overlap<1 /
    // normalized<=0 only when both nonempty etc. — just verify all pairs.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        ++local.candidates;
        ++local.verifications;
        double sim = SetSimilarity(func, records[i], records[j]);
        if (sim >= threshold - 1e-9) {
          results.push_back(JoinPair{i, j, sim});
          ++local.results;
        }
      }
    }
    if (stats != nullptr) *stats = local;
    return results;
  }

  // Process records in ascending size order so the length filter is a
  // simple lower bound against already-indexed (smaller) records.
  std::vector<int> order(records.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&records](int a, int b) {
    return records[a].size() < records[b].size();
  });

  std::unordered_map<uint32_t, std::vector<int>> prefix_index;
  std::vector<int> stamp(records.size(), -1);
  std::vector<int> candidates;

  for (size_t pos = 0; pos < order.size(); ++pos) {
    int r = order[pos];
    const std::vector<uint32_t>& rec = records[r];
    size_t prefix = SetPrefixLength(func, rec.size(), threshold);
    size_t min_size = MinQualifyingSize(func, rec.size(), threshold);

    candidates.clear();
    for (size_t i = 0; i < prefix; ++i) {
      auto it = prefix_index.find(rec[i]);
      if (it == prefix_index.end()) continue;
      for (int s : it->second) {
        if (records[s].size() < min_size) continue;  // length filter
        if (stamp[s] == static_cast<int>(pos)) continue;  // already seen
        stamp[s] = static_cast<int>(pos);
        candidates.push_back(s);
      }
    }
    local.candidates += candidates.size();
    for (int s : candidates) {
      ++local.verifications;
      // Decide first through the threshold-aware kernel — rejected
      // candidates early-exit (cannot-reach, galloping) without a full
      // merge; only accepted pairs pay for the exact value the result
      // carries. Same epsilon (kSimCompareEps), so the accepted set is
      // exactly the `sim >= threshold - 1e-9` set this replaced.
      if (!SetSimilarityAtLeast(func, records[s], rec, threshold)) continue;
      double sim = SetSimilarity(func, records[s], rec);
      results.push_back(JoinPair{std::min(r, s), std::max(r, s), sim});
      ++local.results;
    }
    for (size_t i = 0; i < prefix; ++i) {
      prefix_index[rec[i]].push_back(r);
    }
  }

  std::sort(results.begin(), results.end(),
            [](const JoinPair& x, const JoinPair& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace dime
