#ifndef DIME_INDEX_SIMILARITY_JOIN_H_
#define DIME_INDEX_SIMILARITY_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/sim/similarity.h"

/// \file similarity_join.h
/// A prefix-filtering set-similarity self-join (AllPairs/PPJoin family —
/// the machinery surveyed in the paper's reference [14], "String
/// similarity joins: an experimental evaluation"). Given records as
/// rank-sorted token sets (rarest token first, the TokenDictionary order),
/// finds every pair with similarity >= threshold.
///
/// This is the batch counterpart of the per-rule signature index: DIME+
/// indexes prefixes per rule and verifies candidates lazily; the join
/// materializes all qualifying pairs. It is used by the ablation bench to
/// compare candidate-generation strategies and is generally useful for
/// building match graphs outside the rule engines.

namespace dime {

struct JoinPair {
  int a = 0;  ///< record indices, a < b
  int b = 0;
  double similarity = 0.0;
};

struct JoinStats {
  size_t candidates = 0;      ///< pairs surviving prefix + length filters
  size_t verifications = 0;   ///< exact similarity computations
  size_t results = 0;
};

/// Self-joins `records` under the set-based `func` (overlap threshold is a
/// count; the others are in (0, 1]). Records must each be strictly
/// ascending. Returns pairs ordered by (a, b). `stats` is optional.
std::vector<JoinPair> SetSimilaritySelfJoin(
    const std::vector<std::vector<uint32_t>>& records, SimFunc func,
    double threshold, JoinStats* stats = nullptr);

/// The smallest partner size that can still reach `threshold` against a
/// record of size `size` (the length filter). Exposed for tests.
size_t MinQualifyingSize(SimFunc func, size_t size, double threshold);

}  // namespace dime

#endif  // DIME_INDEX_SIMILARITY_JOIN_H_
