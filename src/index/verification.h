#ifndef DIME_INDEX_VERIFICATION_H_
#define DIME_INDEX_VERIFICATION_H_

#include <cstddef>

/// \file verification.h
/// The benefit model of Sections IV-C and IV-D. Verification order matters:
/// for positive rules, verifying likely-similar cheap pairs first lets the
/// transitivity short-circuit skip the most later work, so pairs are sorted
/// by B = P / C descending; for negative rules one satisfied pair settles a
/// whole partition, so likely-DISsimilar cheap pairs go first and
/// B = 1 / (P * C).

namespace dime {

/// Approximates the probability that a candidate pair satisfies the rule:
/// the ratio of shared signatures to the average signature count
/// (Section IV-C, "Similar Probability").
double SimilarProbability(size_t shared, size_t sig_count1, size_t sig_count2);

/// Benefit of verifying a candidate for a positive rule.
double PositiveBenefit(double probability, double cost);

/// Benefit of verifying a candidate for a negative rule.
double NegativeBenefit(double probability, double cost);

}  // namespace dime

#endif  // DIME_INDEX_VERIFICATION_H_
