#ifndef DIME_INDEX_STRIPED_UNION_FIND_H_
#define DIME_INDEX_STRIPED_UNION_FIND_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "src/common/check.h"
#include "src/common/mutex.h"
#include "src/index/union_find.h"

/// \file striped_union_find.h
/// Concurrent disjoint-set forest for the sharded execution engine
/// (src/exec/). Many tasks union verified positive edges into one
/// structure at once; the final components are the transitive closure of
/// the unioned edges, which does not depend on the interleaving — so a
/// quiescent Components() call is bit-identical to feeding the same edges
/// to the serial UnionFind in any order.
///
/// Design:
///  * parents are std::atomic<int>; Find is lock-free and compresses with
///    path halving (a CAS that may lose races harmlessly — compression is
///    an optimization, never a correctness requirement);
///  * Union takes the stripe locks of the two current roots in ascending
///    stripe-index order (the documented stripe-lock order; see DESIGN.md
///    §7.9), re-checks both are still roots under the locks, and links
///    the larger root index under the smaller. Root indices along any
///    parent chain are therefore strictly decreasing, which makes cycles
///    impossible without a global lock;
///  * there is no union-by-size — maintaining sizes atomically would cost
///    more than the slightly deeper trees, and path halving keeps chains
///    short in practice.
///
/// Connected() may return a stale `false` under concurrent unions (the
/// caller then just does redundant work — in the engines, one extra rule
/// verification); a `true` is always genuine because merges are monotone.

namespace dime {

class StripedUnionFind {
 public:
  /// `stripes` is rounded up to at least 1; more stripes = less Union
  /// contention. The default suits a handful of worker threads.
  explicit StripedUnionFind(size_t n, size_t stripes = 64)
      : parent_(n), stripes_(stripes == 0 ? 1 : stripes) {
    for (size_t i = 0; i < n; ++i) {
      parent_[i].store(static_cast<int>(i), std::memory_order_relaxed);
    }
  }

  size_t size() const { return parent_.size(); }

  /// Representative of `x`'s component. Lock-free; concurrent unions may
  /// move the root, so two calls can disagree — callers that need a firm
  /// answer (Union) re-verify under the stripe locks.
  int Find(int x) const {
    int cur = x;
    while (true) {
      int p = parent_[cur].load(std::memory_order_acquire);
      if (p == cur) return cur;
      int gp = parent_[p].load(std::memory_order_acquire);
      if (gp != p) {
        // Path halving: point cur at its grandparent. A lost CAS means
        // someone else already re-pointed it; either way progress holds.
        parent_[cur].compare_exchange_weak(p, gp, std::memory_order_release,
                                           std::memory_order_relaxed);
      }
      cur = gp;
    }
  }

  /// True iff x and y are observed in one component. Never falsely true;
  /// may be falsely false while unions are in flight (see file comment).
  bool Connected(int x, int y) const { return Find(x) == Find(y); }

  /// Merges the components of x and y; returns false iff they were
  /// already connected at linearization time.
  ///
  /// The analysis cannot follow locks chosen from runtime data (the two
  /// roots' stripes), so this method opts out; the invariant it cannot
  /// see is: both stripe mutexes are acquired in ascending stripe-index
  /// order and released before returning.
  bool Union(int x, int y) DIME_NO_THREAD_SAFETY_ANALYSIS {
    while (true) {
      int rx = Find(x);
      int ry = Find(y);
      if (rx == ry) return false;
      // Deterministic link direction: larger root index goes under
      // smaller, so parent chains strictly decrease and cannot cycle.
      if (rx > ry) std::swap(rx, ry);
      // Ascending stripe order (equal stripes lock once).
      const size_t sx = StripeOf(rx), sy = StripeOf(ry);
      Mutex* first = &stripe(sx < sy ? sx : sy).mu;
      Mutex* second = &stripe(sx < sy ? sy : sx).mu;
      first->Lock();
      if (second != first) second->Lock();
      bool linked = false;
      if (parent_[rx].load(std::memory_order_relaxed) == rx &&
          parent_[ry].load(std::memory_order_relaxed) == ry) {
        parent_[ry].store(rx, std::memory_order_release);
        linked = true;
      }
      if (second != first) second->Unlock();
      first->Unlock();
      if (linked) return true;
      // One of the roots moved under us; retry from fresh Finds.
    }
  }

  /// Materializes components exactly like UnionFind::Components(): each
  /// component's members ascending, components ordered by smallest
  /// member. Only valid when no Union is concurrently running (the
  /// engines call it after the task group that produced the edges has
  /// been awaited).
  std::vector<std::vector<int>> Components() const {
    std::vector<int> root_to_slot(parent_.size(), -1);
    std::vector<std::vector<int>> components;
    for (size_t i = 0; i < parent_.size(); ++i) {
      int root = Find(static_cast<int>(i));
      if (root_to_slot[root] < 0) {
        root_to_slot[root] = static_cast<int>(components.size());
        components.emplace_back();
      }
      components[root_to_slot[root]].push_back(static_cast<int>(i));
    }
    return components;
  }

 private:
  /// One cache line per stripe so neighboring locks do not false-share.
  struct alignas(64) Stripe {
    // Stripe locks guard dynamically chosen roots of the parent forest,
    // so no field can carry a static annotation.
    // lint: raw-concurrency-ok(guards runtime-chosen parent-forest roots)
    Mutex mu;
  };

  size_t StripeOf(int root) const {
    return static_cast<size_t>(root) % stripes_.size();
  }
  Stripe& stripe(size_t s) const { return stripes_[s]; }

  /// mutable: const Find() performs path halving, which rewrites parent
  /// pointers without changing any component — a logical no-op.
  mutable std::vector<std::atomic<int>> parent_;
  mutable std::vector<Stripe> stripes_;
};

}  // namespace dime

#endif  // DIME_INDEX_STRIPED_UNION_FIND_H_
