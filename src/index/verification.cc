#include "src/index/verification.h"

#include <algorithm>

namespace dime {

double SimilarProbability(size_t shared, size_t sig_count1,
                          size_t sig_count2) {
  double avg = (static_cast<double>(sig_count1) +
                static_cast<double>(sig_count2)) /
               2.0;
  if (avg <= 0.0) return 0.0;
  return std::min(1.0, static_cast<double>(shared) / avg);
}

double PositiveBenefit(double probability, double cost) {
  return probability / std::max(cost, 1e-9);
}

double NegativeBenefit(double probability, double cost) {
  return 1.0 / (std::max(probability, 1e-6) * std::max(cost, 1e-9));
}

}  // namespace dime
