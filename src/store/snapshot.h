#ifndef DIME_STORE_SNAPSHOT_H_
#define DIME_STORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/entity/entity.h"
#include "src/core/preprocess.h"
#include "src/core/signature.h"
#include "src/rules/rule.h"

/// \file snapshot.h
/// Versioned binary corpus snapshots: the offline/online split for
/// serving. `WriteSnapshot` runs full preparation (rank columns, masses,
/// signatures, frozen inverted indexes) once and persists the result;
/// `LoadSnapshot` maps it back with the big arrays *borrowed* from the
/// mapping — a warm start does no tokenization, no sorting, no index
/// build, and shares its read-only pages with every other process
/// serving the same snapshot. See snapshot_format.h for the layout and
/// DESIGN.md §7.4 for lifetime rules.
///
/// Error taxonomy on load:
///   NOT_FOUND    the file cannot be opened
///   IO_ERROR     open succeeded, reading/mapping failed
///   PARSE_ERROR  not a snapshot (bad magic), truncated, endianness
///                mismatch, or a format version newer than this binary
///   DATA_LOSS    checksum mismatch or internally inconsistent section —
///                the file was a valid snapshot once and is damaged now
/// Loaders never crash on hostile bytes: every section parse is
/// bounds-checked, and nothing is trusted before its CRC passes.

namespace dime {

/// What to persist. Pointers are borrowed for the duration of the call.
struct SnapshotWriteRequest {
  const std::vector<Group>* groups = nullptr;
  const std::vector<PositiveRule>* positive = nullptr;
  const std::vector<NegativeRule>* negative = nullptr;
  /// Evaluation context; ontology pointers must be live during the call.
  const DimeContext* context = nullptr;
  /// Options the per-group rule artifacts are generated under (must match
  /// the serving configuration for RunDimePlus to consume them).
  SignatureOptions signature_options;
  /// Also persist the token dictionaries (needed only by consumers that
  /// extend a loaded group, e.g. the incremental engine; the serving path
  /// never touches them). Costs file size.
  bool include_dictionaries = true;
};

/// Serializes the fully prepared corpus into an in-memory snapshot image.
StatusOr<std::string> SerializeSnapshot(const SnapshotWriteRequest& request);

/// SerializeSnapshot + atomic-ish write to `path` (write then flush; no
/// rename dance — snapshots are build artifacts, not live-updated state).
Status WriteSnapshot(const SnapshotWriteRequest& request,
                     const std::string& path);

struct SnapshotLoadOptions {
  /// Prefer mmap; the read()-into-buffer fallback is automatic when mmap
  /// is unavailable (failpoint "store/mmap" forces it).
  bool prefer_mmap = true;
  /// Restore token dictionaries when the snapshot carries them. Off by
  /// default: the serving path never reads them, and skipping the restore
  /// keeps warm starts cheap.
  bool load_dictionaries = false;
};

/// A loaded snapshot. `prepared[i]` is parallel to `groups[i]` and
/// borrows its arenas from `backing` — keep the whole struct (or at
/// least `backing`, `groups` and `owned_trees`) alive for as long as any
/// engine touches the prepared groups. The struct is movable; moving
/// preserves all internal pointers (vector storage moves wholesale), but
/// `groups` must not be resized afterwards.
struct LoadedSnapshot {
  Schema schema;
  std::vector<PositiveRule> positive;
  std::vector<NegativeRule> negative;
  /// Context with ontology refs pointing into `owned_trees`.
  DimeContext context;
  std::vector<std::shared_ptr<const Ontology>> owned_trees;
  std::vector<Group> groups;
  /// Fully prepared groups with artifacts attached, arenas borrowed from
  /// `backing`; prepared[i]->group == &groups[i].
  std::vector<std::shared_ptr<const PreparedGroup>> prepared;
  /// Content fingerprint from the snapshot tail (128-bit FNV-1a over the
  /// section payloads) — fold into any cache key derived from this data.
  uint64_t fingerprint_lo = 0;
  uint64_t fingerprint_hi = 0;
  /// True when served from an mmap (false on the read() fallback).
  bool mapped = false;
  /// Keep-alive for the bytes everything above borrows from.
  std::shared_ptr<const void> backing;
};

/// Opens, checks (magic, version, CRCs) and fully parses a snapshot.
StatusOr<LoadedSnapshot> LoadSnapshot(
    const std::string& path,
    const SnapshotLoadOptions& options = SnapshotLoadOptions());

/// Directory-level metadata for `dime_snapshot inspect`: validates the
/// header, tail and table (including tail_crc) but does not checksum or
/// parse section payloads.
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t file_size = 0;
  uint64_t fingerprint_lo = 0;
  uint64_t fingerprint_hi = 0;
  struct Section {
    uint32_t id = 0;
    uint32_t index = 0;  ///< group ordinal for per-group sections
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc32 = 0;
  };
  std::vector<Section> sections;
};
StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path);

/// Integrity check: verifies every section CRC and fully parses the file
/// (everything LoadSnapshot would reject, this rejects). With `deep`, it
/// additionally re-prepares every group from its embedded TSV and
/// requires the freshly serialized prepared/artifact sections to be
/// byte-identical to the stored ones — a behavioral round-trip proof.
Status VerifySnapshot(const std::string& path, bool deep = false);

}  // namespace dime

#endif  // DIME_STORE_SNAPSHOT_H_
