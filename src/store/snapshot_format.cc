#include "src/store/snapshot_format.h"

namespace dime {

const char* SnapshotSectionIdName(uint32_t id) {
  switch (static_cast<SnapshotSectionId>(id)) {
    case SnapshotSectionId::kMeta:
      return "meta";
    case SnapshotSectionId::kRules:
      return "rules";
    case SnapshotSectionId::kOntologies:
      return "ontologies";
    case SnapshotSectionId::kGroup:
      return "group";
    case SnapshotSectionId::kPrepared:
      return "prepared";
    case SnapshotSectionId::kArtifacts:
      return "artifacts";
    case SnapshotSectionId::kDictionaries:
      return "dictionaries";
  }
  return "unknown";
}

}  // namespace dime
