// dime_snapshot: build, inspect, and verify versioned binary corpus
// snapshots (src/store/snapshot.h). A snapshot front-loads the entire
// preparation pipeline — tokenization, rank columns, masses, signatures,
// frozen inverted indexes — so `dime_server --snapshot` and
// `dime_cli --snapshot` warm-start by mmap instead of re-ingesting TSV.
//
// Usage:
//   dime_snapshot build --output corpus.snap
//       --demo [--demo-pages N]                   # generated Scholar corpus
//     | --preset scholar-2999 | --preset amazon-10000
//     | --group page.tsv [--group ...] --rules rules.txt
//       [--venue-ontology]
//       [--ontology tree.txt --ontology-mode exact|keyword]
//     [--no-dictionaries]
//   dime_snapshot inspect corpus.snap
//   dime_snapshot verify corpus.snap [--deep]
//
// Exit codes follow src/common/exit_code.h (0 OK; DATA_LOSS => 12, ...).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/exit_code.h"
#include "src/datagen/amazon_gen.h"
#include "src/datagen/presets.h"
#include "src/datagen/scholar_gen.h"
#include "src/ontology/builtin.h"
#include "src/rules/rule_io.h"
#include "src/store/snapshot.h"
#include "src/store/snapshot_format.h"

namespace {

using namespace dime;

int Usage(const char* msg) {
  std::fprintf(stderr, "dime_snapshot: %s (run with --help for usage)\n",
               msg);
  return ExitCodeForStatusCode(StatusCode::kInvalidArgument);
}

void PrintHelp() {
  std::printf(
      "dime_snapshot build --output <file>\n"
      "    --demo [--demo-pages N] | --preset scholar-2999|amazon-10000 |\n"
      "    --group <tsv>... --rules <file> [--venue-ontology]\n"
      "    [--ontology <tree> --ontology-mode exact|keyword]\n"
      "    [--no-dictionaries]\n"
      "dime_snapshot inspect <file>\n"
      "dime_snapshot verify <file> [--deep]\n");
}

/// The corpus dime_server --demo serves, reproduced exactly so a demo
/// snapshot serves byte-identical replies (the CI round-trip check
/// depends on this).
struct BuiltCorpus {
  Schema schema;
  std::vector<PositiveRule> positive;
  std::vector<NegativeRule> negative;
  DimeContext context;
  std::vector<std::unique_ptr<Ontology>> owned_trees;
  std::vector<Group> groups;
};

BuiltCorpus MakeDemoCorpus(size_t pages) {
  ScholarSetup setup = MakeScholarSetup();
  BuiltCorpus corpus;
  corpus.schema = setup.schema;
  corpus.positive = std::move(setup.positive);
  corpus.negative = std::move(setup.negative);
  corpus.context = setup.context;
  corpus.owned_trees.push_back(std::move(setup.venue_tree));
  for (size_t i = 0; i < pages; ++i) {
    ScholarGenOptions gen;
    gen.num_correct = 120;
    gen.seed = 1000 + i * 17;
    gen.garbage_pubs = 3 + i % 4;
    gen.chem_namesake_pubs = 2 + i % 3;
    Group page = GenerateScholarGroup("Demo Owner " + std::to_string(i), gen);
    page.name = "page_" + std::to_string(i);
    corpus.groups.push_back(std::move(page));
  }
  return corpus;
}

/// The bench corpora (bench_snapshot_load / BENCH_snapshot.json).
BuiltCorpus MakeScholar2999() {
  ScholarSetup setup = MakeScholarSetup();
  BuiltCorpus corpus;
  corpus.schema = setup.schema;
  corpus.positive = std::move(setup.positive);
  corpus.negative = std::move(setup.negative);
  corpus.context = setup.context;
  corpus.owned_trees.push_back(std::move(setup.venue_tree));
  ScholarGenOptions gen;
  gen.num_correct = 2982;
  gen.coauthor_pool = 190;
  gen.seed = 6000;
  Group page = GenerateScholarGroup("Big Page", gen);
  corpus.groups.push_back(std::move(page));
  return corpus;
}

BuiltCorpus MakeAmazon10000() {
  AmazonGenOptions gen;
  gen.error_rate = 0.4;
  gen.num_correct = 6000;
  gen.window = 12;
  gen.seed = 14000;
  Group group = GenerateAmazonGroup(5, gen);
  AmazonSetup setup = MakeAmazonSetup({group});
  BuiltCorpus corpus;
  corpus.schema = setup.schema;
  corpus.positive = std::move(setup.positive);
  corpus.negative = std::move(setup.negative);
  corpus.context = setup.context;
  corpus.owned_trees.push_back(std::move(setup.theme_tree));
  corpus.groups.push_back(std::move(group));
  return corpus;
}

int RunBuild(int argc, char** argv) {
  std::string output;
  bool demo = false;
  size_t demo_pages = 4;
  std::string preset;
  std::vector<std::string> group_paths;
  std::string rules_path;
  bool use_venue_ontology = false;
  std::vector<std::string> ontology_paths;
  std::vector<std::string> ontology_modes;
  bool include_dictionaries = true;

  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(ExitCodeForStatusCode(StatusCode::kInvalidArgument));
      }
      return argv[++i];
    };
    if (arg == "--output") {
      output = next();
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--demo-pages") {
      demo_pages = static_cast<size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--preset") {
      preset = next();
    } else if (arg == "--group") {
      group_paths.push_back(next());
    } else if (arg == "--rules") {
      rules_path = next();
    } else if (arg == "--venue-ontology") {
      use_venue_ontology = true;
    } else if (arg == "--ontology") {
      ontology_paths.push_back(next());
      ontology_modes.push_back("exact");
    } else if (arg == "--ontology-mode") {
      if (ontology_modes.empty()) {
        return Usage("--ontology-mode needs a preceding --ontology");
      }
      ontology_modes.back() = next();
    } else if (arg == "--no-dictionaries") {
      include_dictionaries = false;
    } else if (arg == "--help") {
      PrintHelp();
      return 0;
    } else {
      return Usage(("unknown flag: " + arg).c_str());
    }
  }
  if (output.empty()) return Usage("build needs --output");
  const int sources = (demo ? 1 : 0) + (preset.empty() ? 0 : 1) +
                      (group_paths.empty() ? 0 : 1);
  if (sources != 1) {
    return Usage("build needs exactly one of --demo, --preset, --group");
  }

  BuiltCorpus corpus;
  if (demo) {
    corpus = MakeDemoCorpus(demo_pages);
  } else if (!preset.empty()) {
    if (preset == "scholar-2999") {
      corpus = MakeScholar2999();
    } else if (preset == "amazon-10000") {
      corpus = MakeAmazon10000();
    } else {
      return Usage("--preset must be scholar-2999 or amazon-10000");
    }
  } else {
    if (rules_path.empty()) return Usage("need --rules with --group");
    for (const std::string& path : group_paths) {
      Group group;
      Status loaded = LoadGroup(path, path, &group);
      if (!loaded.ok()) {
        return ExitWithStatus(loaded, ("loading " + path).c_str());
      }
      if (group.name.empty()) group.name = path;
      corpus.groups.push_back(std::move(group));
    }
    corpus.schema = corpus.groups.front().schema;
    if (use_venue_ontology) {
      corpus.context.ontologies.push_back(
          OntologyRef{&VenueOntology(), MapMode::kExactName});
      corpus.context.ontologies.push_back(
          OntologyRef{&VenueOntology(), MapMode::kKeyword});
    }
    for (size_t i = 0; i < ontology_paths.size(); ++i) {
      auto tree = std::make_unique<Ontology>();
      if (!Ontology::LoadFromFile(ontology_paths[i], tree.get())) {
        return ExitWithStatus(
            NotFoundError("cannot load ontology " + ontology_paths[i]),
            "build");
      }
      MapMode mode = ontology_modes[i] == "keyword" ? MapMode::kKeyword
                                                    : MapMode::kExactName;
      corpus.context.ontologies.push_back(OntologyRef{tree.get(), mode});
      corpus.owned_trees.push_back(std::move(tree));
    }
    std::string error;
    if (!LoadRuleSet(rules_path, corpus.schema, &corpus.positive,
                     &corpus.negative, &error)) {
      return ExitWithStatus(
          ParseError("cannot load rules from " + rules_path + ": " + error),
          "build");
    }
  }

  SnapshotWriteRequest request;
  request.groups = &corpus.groups;
  request.positive = &corpus.positive;
  request.negative = &corpus.negative;
  request.context = &corpus.context;
  request.include_dictionaries = include_dictionaries;
  Status written = WriteSnapshot(request, output);
  if (!written.ok()) return ExitWithStatus(written, "build");

  StatusOr<SnapshotInfo> info = InspectSnapshot(output);
  if (!info.ok()) return ExitWithStatus(info.status(), "build");
  std::printf(
      "dime_snapshot: wrote %s (v%u, %llu bytes, %zu sections, %zu "
      "group(s), fingerprint %016llx%016llx)\n",
      output.c_str(), info->version,
      static_cast<unsigned long long>(info->file_size),
      info->sections.size(), corpus.groups.size(),
      static_cast<unsigned long long>(info->fingerprint_hi),
      static_cast<unsigned long long>(info->fingerprint_lo));
  return 0;
}

int RunInspect(int argc, char** argv) {
  std::string path;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help") {
      PrintHelp();
      return 0;
    }
    if (!path.empty()) return Usage("inspect takes exactly one file");
    path = arg;
  }
  if (path.empty()) return Usage("inspect needs a snapshot file");
  StatusOr<SnapshotInfo> info = InspectSnapshot(path);
  if (!info.ok()) return ExitWithStatus(info.status(), "inspect");
  std::printf("%s: DIME snapshot v%u, %llu bytes\n", path.c_str(),
              info->version,
              static_cast<unsigned long long>(info->file_size));
  std::printf("fingerprint: %016llx%016llx\n",
              static_cast<unsigned long long>(info->fingerprint_hi),
              static_cast<unsigned long long>(info->fingerprint_lo));
  std::printf("%-14s %6s %12s %12s %10s\n", "section", "index", "offset",
              "length", "crc32");
  for (const SnapshotInfo::Section& sec : info->sections) {
    std::printf("%-14s %6u %12llu %12llu   %08x\n",
                SnapshotSectionIdName(sec.id), sec.index,
                static_cast<unsigned long long>(sec.offset),
                static_cast<unsigned long long>(sec.length), sec.crc32);
  }
  return 0;
}

int RunVerify(int argc, char** argv) {
  std::string path;
  bool deep = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--deep") {
      deep = true;
    } else if (arg == "--help") {
      PrintHelp();
      return 0;
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage("verify takes exactly one file");
    }
  }
  if (path.empty()) return Usage("verify needs a snapshot file");
  Status verified = VerifySnapshot(path, deep);
  if (!verified.ok()) return ExitWithStatus(verified, "verify");
  std::printf("%s: OK%s\n", path.c_str(), deep ? " (deep)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage("need a sub-command: build, inspect, verify");
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    PrintHelp();
    return 0;
  }
  if (cmd == "build") return RunBuild(argc - 2, argv + 2);
  if (cmd == "inspect") return RunInspect(argc - 2, argv + 2);
  if (cmd == "verify") return RunVerify(argc - 2, argv + 2);
  return Usage(("unknown sub-command: " + cmd).c_str());
}
