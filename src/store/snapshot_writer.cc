#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/checksum.h"
#include "src/core/preprocess.h"
#include "src/core/signature.h"
#include "src/rules/rule_io.h"
#include "src/store/bytes.h"
#include "src/store/snapshot.h"
#include "src/store/snapshot_format.h"
#include "src/store/snapshot_internal.h"

namespace dime {
namespace snapshot_internal {
namespace {

static_assert(sizeof(int) == 4,
              "snapshot layout assumes 32-bit int entity ids");

void SerializeRankColumn(ByteSink* sink, const RankColumn& col) {
  const uint64_t rows = col.num_entities();
  sink->U64(rows);
  sink->Array(col.offsets_ptr(), rows + 1);
  sink->Array(col.arena_ptr(), col.total_ranks());
}

void SerializeDoubles(ByteSink* sink, const std::vector<double>& v) {
  sink->Array(v.data(), v.size());
}

uint32_t AttrFlags(const PreparedAttr& attr) {
  return (attr.has_value_list ? 1u : 0u) | (attr.has_words ? 2u : 0u) |
         (attr.has_text ? 4u : 0u);
}

void SerializeDictionary(ByteSink* sink, const TokenDictionary& dict) {
  const uint64_t n = dict.size();
  sink->U64(n);
  for (TokenId id = 0; id < n; ++id) sink->String(dict.Token(id));
  sink->Align8();
  std::vector<uint32_t> df(n);
  for (TokenId id = 0; id < n; ++id) df[id] = dict.DocumentFrequency(id);
  sink->Array(df.data(), df.size());
}

}  // namespace

std::string SerializePreparedSection(const PreparedGroup& pg) {
  ByteSink sink;
  const uint64_t n = pg.size();
  sink.U64(n);
  sink.U64(pg.attrs.size());
  for (const PreparedAttr& attr : pg.attrs) {
    sink.U32(AttrFlags(attr));
    sink.U32(0);
    if (attr.has_value_list) {
      SerializeRankColumn(&sink, attr.value_ranks);
      SerializeDoubles(&sink, attr.value_weights);
      SerializeDoubles(&sink, attr.value_mass);
      SerializeDoubles(&sink, attr.value_sqnorm);
    }
    if (attr.has_words) {
      SerializeRankColumn(&sink, attr.word_ranks);
      SerializeDoubles(&sink, attr.word_weights);
      SerializeDoubles(&sink, attr.word_mass);
      SerializeDoubles(&sink, attr.word_sqnorm);
    }
    if (attr.has_text) {
      sink.U64(attr.text.size());
      for (const std::string& t : attr.text) sink.String(t);
      sink.Align8();
      SerializeRankColumn(&sink, attr.qgram_ranks);
    }
    // Ontology node maps, sorted by ontology index: unordered_map order
    // is not deterministic and these bytes are fingerprinted.
    std::vector<int> keys;
    keys.reserve(attr.nodes.size());
    for (const auto& entry : attr.nodes) keys.push_back(entry.first);
    std::sort(keys.begin(), keys.end());
    sink.U64(keys.size());
    for (int key : keys) {
      const std::vector<int>& nodes = attr.nodes.at(key);
      sink.U64(static_cast<uint64_t>(key));
      sink.Array(nodes.data(), nodes.size());
    }
  }
  return sink.Take();
}

std::string SerializeArtifactsSection(const PreparedRuleArtifacts& artifacts) {
  ByteSink sink;
  sink.U64(artifacts.positive_indexes.size());
  sink.U64(artifacts.negative_sigs.size());
  for (const InvertedIndex& index : artifacts.positive_indexes) {
    InvertedIndex::FrozenView view = index.FrozenData();
    sink.Array(view.sig_counts, view.sig_counts_len);
    sink.Array(view.list_starts, view.list_starts_len);
    sink.Array(view.entities, view.entities_len);
  }
  for (const SignatureColumn& column : artifacts.negative_sigs) {
    const uint64_t rows = column.num_entities();
    sink.U64(rows);
    sink.Array(column.offsets_ptr(), rows + 1);
    sink.Array(column.arena_ptr(), column.total());
  }
  return sink.Take();
}

std::string SerializeDictionariesSection(const PreparedGroup& pg) {
  ByteSink sink;
  sink.U64(pg.attrs.size());
  for (const PreparedAttr& attr : pg.attrs) {
    sink.U32(AttrFlags(attr));
    sink.U32(0);
    if (attr.has_value_list) SerializeDictionary(&sink, attr.value_dict);
    if (attr.has_words) SerializeDictionary(&sink, attr.word_dict);
    if (attr.has_text) SerializeDictionary(&sink, attr.qgram_dict);
  }
  return sink.Take();
}

}  // namespace snapshot_internal

namespace {

using snapshot_internal::SerializeArtifactsSection;
using snapshot_internal::SerializeDictionariesSection;
using snapshot_internal::SerializePreparedSection;

struct PendingSection {
  uint32_t id;
  uint32_t index;
  std::string payload;
};

}  // namespace

StatusOr<std::string> SerializeSnapshot(const SnapshotWriteRequest& request) {
  if (request.groups == nullptr || request.positive == nullptr ||
      request.negative == nullptr || request.context == nullptr) {
    return InvalidArgumentError("SnapshotWriteRequest has null fields");
  }
  const std::vector<Group>& groups = *request.groups;
  if (groups.empty()) {
    return InvalidArgumentError("snapshot needs at least one group");
  }
  const Schema& schema = groups[0].schema;
  for (const Group& g : groups) {
    if (g.schema.attribute_names() != schema.attribute_names()) {
      return InvalidArgumentError("group '" + g.name +
                                  "' disagrees with the corpus schema");
    }
  }
  for (const OntologyRef& ref : request.context->ontologies) {
    if (ref.tree == nullptr) {
      return InvalidArgumentError("context has a null ontology tree");
    }
  }
  std::string validation = ValidateRules(schema, *request.positive,
                                         *request.negative, *request.context);
  if (!validation.empty()) {
    return InvalidArgumentError("invalid rule set: " + validation);
  }

  std::vector<PendingSection> sections;
  auto add = [&](SnapshotSectionId id, uint32_t index, std::string payload) {
    sections.push_back(
        {static_cast<uint32_t>(id), index, std::move(payload)});
  };

  {
    ByteSink meta;
    meta.U32(static_cast<uint32_t>(request.context->qgram_q));
    meta.U32(request.include_dictionaries ? 1 : 0);
    meta.U64(groups.size());
    meta.U64(request.signature_options.max_tuple_signatures);
    meta.U64(schema.size());
    for (const std::string& name : schema.attribute_names()) {
      meta.String(name);
    }
    add(SnapshotSectionId::kMeta, 0, meta.Take());
  }
  add(SnapshotSectionId::kRules, 0,
      RuleSetToText(schema, *request.positive, *request.negative));
  {
    ByteSink onto;
    onto.U64(request.context->ontologies.size());
    for (const OntologyRef& ref : request.context->ontologies) {
      onto.U32(static_cast<uint32_t>(ref.mode));
      onto.U32(0);
      onto.String(ref.tree->ToText());
    }
    add(SnapshotSectionId::kOntologies, 0, onto.Take());
  }

  for (size_t i = 0; i < groups.size(); ++i) {
    const uint32_t index = static_cast<uint32_t>(i);
    {
      // Binary entity framing, NOT TSV: re-parsing TSV text at load used
      // to dominate the warm-start time (half the cold-path cost on
      // amazon-10000); length-prefixed pre-split values decode in a few
      // milliseconds.
      const Group& g = groups[i];
      ByteSink sec;
      sec.String(g.name);
      sec.U64(g.schema.size());
      for (const std::string& attr_name : g.schema.attribute_names()) {
        sec.String(attr_name);
      }
      sec.U32(g.has_truth() ? 1 : 0);
      sec.U32(0);
      sec.U64(g.entities.size());
      for (const Entity& e : g.entities) {
        if (e.values.size() != g.schema.size()) {
          return InvalidArgumentError("group '" + g.name +
                                      "' has an entity whose value list "
                                      "disagrees with the schema");
        }
        sec.String(e.id);
        for (const AttributeValue& value : e.values) {
          sec.U64(value.size());
          for (const std::string& s : value) sec.String(s);
        }
      }
      if (g.has_truth()) sec.Array(g.truth.data(), g.truth.size());
      add(SnapshotSectionId::kGroup, index, sec.Take());
    }
    // The expensive part — full preparation plus the offline signature
    // pass — happens here, once, so load never has to.
    PreparedGroup pg = PrepareGroup(groups[i], *request.positive,
                                    *request.negative, *request.context);
    std::shared_ptr<const PreparedRuleArtifacts> artifacts =
        BuildPreparedRuleArtifacts(pg, *request.positive, *request.negative,
                                   request.signature_options);
    add(SnapshotSectionId::kPrepared, index, SerializePreparedSection(pg));
    add(SnapshotSectionId::kArtifacts, index,
        SerializeArtifactsSection(*artifacts));
    if (request.include_dictionaries) {
      add(SnapshotSectionId::kDictionaries, index,
          SerializeDictionariesSection(pg));
    }
  }

  // Assemble: header, 8-aligned payloads, table, tail.
  ByteSink file;
  file.Raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  file.U32(kSnapshotFormatVersion);
  const uint8_t endian_and_pad[4] = {SnapshotNativeEndianMarker(), 0, 0, 0};
  file.Raw(endian_and_pad, sizeof(endian_and_pad));

  SnapshotFingerprint fingerprint;
  struct TableEntry {
    uint32_t id, index;
    uint64_t offset, length;
    uint32_t crc;
  };
  std::vector<TableEntry> table;
  table.reserve(sections.size());
  for (const PendingSection& sec : sections) {
    file.Align8();
    TableEntry entry;
    entry.id = sec.id;
    entry.index = sec.index;
    entry.offset = file.size();
    entry.length = sec.payload.size();
    entry.crc = Crc32(sec.payload);
    table.push_back(entry);
    fingerprint.Update(sec.payload.data(), sec.payload.size());
    file.Raw(sec.payload.data(), sec.payload.size());
  }

  file.Align8();
  const uint64_t table_offset = file.size();
  for (const TableEntry& entry : table) {
    file.U32(entry.id);
    file.U32(entry.index);
    file.U64(entry.offset);
    file.U64(entry.length);
    file.U32(entry.crc);
    file.U32(0);
  }

  file.U64(table_offset);
  file.U32(static_cast<uint32_t>(table.size()));
  file.U32(kSnapshotFormatVersion);
  file.U64(fingerprint.lo);
  file.U64(fingerprint.hi);
  // tail_crc seals the directory: table bytes plus the tail fields above.
  const uint32_t tail_crc =
      Crc32(file.str().data() + table_offset, file.size() - table_offset);
  file.U32(tail_crc);
  file.U32(0);
  file.U64(kSnapshotTailMagic);
  return file.Take();
}

Status WriteSnapshot(const SnapshotWriteRequest& request,
                     const std::string& path) {
  StatusOr<std::string> image = SerializeSnapshot(request);
  if (!image.ok()) return image.status();
  std::ofstream out(path, std::ios::binary);
  if (!out) return NotFoundError(path + ": cannot create");
  out.write(image->data(), static_cast<std::streamsize>(image->size()));
  out.flush();
  if (!out) return IoError(path + ": write failed");
  return OkStatus();
}

}  // namespace dime
