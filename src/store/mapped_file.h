#ifndef DIME_STORE_MAPPED_FILE_H_
#define DIME_STORE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"

/// \file mapped_file.h
/// Read-only whole-file views. Prefers mmap (PROT_READ, MAP_SHARED): the
/// snapshot loader then serves arenas straight off page cache, the pages
/// are shared across every process mapping the same snapshot, and
/// untouched sections are never faulted in at all. Falls back to a plain
/// read()-into-buffer when mmap is unavailable (or refused), keeping the
/// same 8-byte-aligned `data()` contract so the zero-copy loader works
/// identically on both paths.
///
/// Failpoint "store/mmap": forces the read() fallback (tests cover both
/// paths without platform tricks).

namespace dime {

class MappedFile {
 public:
  struct Options {
    /// When false, skip mmap and read the file into an owned buffer.
    bool prefer_mmap = true;
  };

  /// Opens and maps (or reads) `path`. NOT_FOUND when the file cannot be
  /// opened, IO_ERROR when stat/map/read fails afterwards. An empty file
  /// yields size() == 0 with a non-null data() contract not guaranteed.
  static StatusOr<MappedFile> Open(const std::string& path,
                                   const Options& options);
  static StatusOr<MappedFile> Open(const std::string& path) {
    return Open(path, Options());
  }

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// 8-byte-aligned view of the file contents.
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when backed by mmap, false on the read() fallback.
  bool mapped() const { return mapped_; }

 private:
  /// Unmaps / frees the current contents, leaving an empty file.
  void Reset();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  /// Fallback storage (uint64_t granularity keeps data() 8-aligned).
  std::unique_ptr<uint64_t[]> owned_;
};

}  // namespace dime

#endif  // DIME_STORE_MAPPED_FILE_H_
