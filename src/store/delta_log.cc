#include "src/store/delta_log.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/checksum.h"
#include "src/common/fault_injection.h"
#include "src/store/bytes.h"
#include "src/store/snapshot_format.h"

namespace dime {
namespace {

std::string HeaderBytes() {
  std::string header(kDeltaLogMagic, sizeof(kDeltaLogMagic));
  ByteSink sink;
  sink.U32(kDeltaLogFormatVersion);
  header += sink.str();
  header += static_cast<char>(SnapshotNativeEndianMarker());
  header.append(3, '\0');
  return header;
}

Status ValidateHeader(const char* data, size_t size) {
  if (size < kDeltaLogHeaderSize) {
    return ParseError("delta log shorter than its 16-byte header");
  }
  if (std::memcmp(data, kDeltaLogMagic, sizeof(kDeltaLogMagic)) != 0) {
    return ParseError("not a delta log (bad magic)");
  }
  uint32_t version;
  std::memcpy(&version, data + 8, sizeof(version));
  if (version > kDeltaLogFormatVersion) {
    return ParseError("delta log format version " + std::to_string(version) +
                      " is newer than supported (" +
                      std::to_string(kDeltaLogFormatVersion) + ")");
  }
  if (static_cast<uint8_t>(data[12]) != SnapshotNativeEndianMarker()) {
    return ParseError("delta log endianness does not match this machine");
  }
  return OkStatus();
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open delta log " + path + ": " +
                         std::strerror(errno));
  }
  std::string bytes;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return IoError("reading delta log " + path + " failed");
  return bytes;
}

/// Parses one record payload. False on structural damage.
bool DecodePayload(const char* data, size_t size, DeltaRecord* record) {
  ByteReader reader(data, size);
  uint32_t op;
  if (!reader.U32(&op)) return false;
  if (op < 1 || op > 3) return false;
  record->op = static_cast<DeltaRecord::Op>(op);
  if (!reader.String(&record->group)) return false;
  if (!reader.String(&record->entity_id)) return false;
  uint64_t value_count;
  if (!reader.U64(&value_count)) return false;
  if (value_count > size) return false;  // cheap sanity bound
  record->values.clear();
  record->values.reserve(static_cast<size_t>(value_count));
  for (uint64_t v = 0; v < value_count; ++v) {
    uint64_t item_count;
    if (!reader.U64(&item_count)) return false;
    if (item_count > size) return false;
    AttributeValue value;
    value.reserve(static_cast<size_t>(item_count));
    for (uint64_t i = 0; i < item_count; ++i) {
      std::string item;
      if (!reader.String(&item)) return false;
      value.push_back(std::move(item));
    }
    record->values.push_back(std::move(value));
  }
  return reader.done();
}

/// Index of the entity with `id` in `group`, or -1.
int FindEntity(const Group& group, std::string_view id) {
  for (size_t i = 0; i < group.entities.size(); ++i) {
    if (group.entities[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const char* DeltaOpName(DeltaRecord::Op op) {
  switch (op) {
    case DeltaRecord::Op::kAdd:
      return "add";
    case DeltaRecord::Op::kRemove:
      return "remove";
    case DeltaRecord::Op::kEdit:
      return "edit";
  }
  return "unknown";
}

bool DeltaOpFromName(std::string_view name, DeltaRecord::Op* op) {
  if (name == "add") {
    *op = DeltaRecord::Op::kAdd;
  } else if (name == "remove") {
    *op = DeltaRecord::Op::kRemove;
  } else if (name == "edit") {
    *op = DeltaRecord::Op::kEdit;
  } else {
    return false;
  }
  return true;
}

std::string EncodeDeltaPayload(const DeltaRecord& record) {
  ByteSink sink;
  sink.U32(static_cast<uint32_t>(record.op));
  sink.String(record.group);
  sink.String(record.entity_id);
  sink.U64(record.values.size());
  for (const AttributeValue& value : record.values) {
    sink.U64(value.size());
    for (const std::string& item : value) sink.String(item);
  }
  return sink.Take();
}

StatusOr<DeltaLogWriter> DeltaLogWriter::Open(const std::string& path) {
  // Validate an existing non-empty file before appending to it: appending
  // records to something that is not a delta log only manufactures
  // corruption for the eventual reader.
  {
    std::FILE* existing = std::fopen(path.c_str(), "rb");
    if (existing != nullptr) {
      char header[kDeltaLogHeaderSize];
      size_t n = std::fread(header, 1, sizeof(header), existing);
      std::fclose(existing);
      if (n > 0) {
        Status valid = ValidateHeader(header, n);
        if (!valid.ok()) return valid;
      }
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return IoError("cannot open delta log " + path + " for append: " +
                   std::strerror(errno));
  }
  DeltaLogWriter writer(file);
  long pos = std::ftell(file);
  if (pos == 0) {
    std::string header = HeaderBytes();
    if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
        std::fflush(file) != 0) {
      return IoError("cannot write delta log header to " + path);
    }
  }
  return writer;
}

DeltaLogWriter::~DeltaLogWriter() = default;

Status DeltaLogWriter::Append(const DeltaRecord& record) {
  if (file_ == nullptr) {
    return InternalError("DeltaLogWriter used after move");
  }
  std::string payload = EncodeDeltaPayload(record);
  if (payload.size() > kDeltaMaxRecordBytes) {
    return InvalidArgumentError("delta record exceeds the 64 MiB bound");
  }
  ByteSink frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  frame.Raw(payload.data(), payload.size());
  const std::string& bytes = frame.str();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_.get()) !=
          bytes.size() ||
      std::fflush(file_.get()) != 0) {
    return IoError(std::string("appending delta record failed: ") +
                   std::strerror(errno));
  }
  ++records_appended_;
  return OkStatus();
}

StatusOr<DeltaLogContents> ReadDeltaLog(const std::string& path) {
  StatusOr<std::string> bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();
  Status header = ValidateHeader(bytes->data(), bytes->size());
  if (!header.ok()) return header;

  DeltaLogContents contents;
  size_t pos = kDeltaLogHeaderSize;
  contents.valid_bytes = pos;
  while (pos < bytes->size()) {
    if (bytes->size() - pos < 8) {
      contents.torn_tail = true;  // frame header cut off mid-append
      break;
    }
    uint32_t length, crc;
    std::memcpy(&length, bytes->data() + pos, sizeof(length));
    std::memcpy(&crc, bytes->data() + pos + 4, sizeof(crc));
    size_t record_index = contents.records.size();
    if (length > kDeltaMaxRecordBytes) {
      return DataLossError("delta log " + path + ": record " +
                           std::to_string(record_index) +
                           " claims an impossible length " +
                           std::to_string(length));
    }
    if (bytes->size() - pos - 8 < length) {
      contents.torn_tail = true;  // payload cut off mid-append
      break;
    }
    const char* payload = bytes->data() + pos + 8;
    uint32_t actual = Crc32(payload, length);
    if (DIME_FAULT_POINT("store/delta-corrupt")) actual = ~actual;
    if (actual != crc) {
      return DataLossError("delta log " + path + ": record " +
                           std::to_string(record_index) +
                           " failed its CRC check (acknowledged data is "
                           "damaged)");
    }
    DeltaRecord record;
    if (!DecodePayload(payload, length, &record)) {
      return DataLossError("delta log " + path + ": record " +
                           std::to_string(record_index) +
                           " passed its CRC but does not parse");
    }
    contents.records.push_back(std::move(record));
    pos += 8 + length;
    contents.valid_bytes = pos;
  }
  return contents;
}

Status ApplyDeltaRecords(const std::vector<DeltaRecord>& records,
                         Group* group, size_t* applied) {
  size_t touched = 0;
  for (size_t r = 0; r < records.size(); ++r) {
    const DeltaRecord& record = records[r];
    if (record.group != group->name) continue;
    std::string where =
        "delta record " + std::to_string(r) + " (" +
        std::string(DeltaOpName(record.op)) + " '" + record.entity_id + "')";
    int index = FindEntity(*group, record.entity_id);
    switch (record.op) {
      case DeltaRecord::Op::kAdd: {
        if (index >= 0) {
          return InvalidArgumentError(where + ": entity id already present");
        }
        if (record.values.size() != group->schema.size()) {
          return SchemaMismatchError(
              where + ": " + std::to_string(record.values.size()) +
              " values against a " + std::to_string(group->schema.size()) +
              "-attribute schema");
        }
        Entity entity;
        entity.id = record.entity_id;
        entity.values = record.values;
        group->entities.push_back(std::move(entity));
        if (!group->truth.empty()) group->truth.push_back(0);
        break;
      }
      case DeltaRecord::Op::kRemove: {
        if (index < 0) return NotFoundError(where + ": no such entity");
        group->entities.erase(group->entities.begin() + index);
        if (!group->truth.empty()) {
          group->truth.erase(group->truth.begin() + index);
        }
        break;
      }
      case DeltaRecord::Op::kEdit: {
        if (index < 0) return NotFoundError(where + ": no such entity");
        if (record.values.size() != group->schema.size()) {
          return SchemaMismatchError(
              where + ": " + std::to_string(record.values.size()) +
              " values against a " + std::to_string(group->schema.size()) +
              "-attribute schema");
        }
        group->entities[index].values = record.values;
        break;
      }
    }
    ++touched;
  }
  if (applied != nullptr) *applied = touched;
  return OkStatus();
}

bool DeltaIsAppendOnly(const std::vector<DeltaRecord>& records,
                       std::string_view group_name) {
  for (const DeltaRecord& record : records) {
    if (record.group == group_name && record.op != DeltaRecord::Op::kAdd) {
      return false;
    }
  }
  return true;
}

StatusOr<std::unique_ptr<IncrementalDime>> ReplayDeltaThroughIncremental(
    const Group& base, const std::vector<DeltaRecord>& records,
    const std::vector<PositiveRule>& positive,
    const std::vector<NegativeRule>& negative, const DimeContext& context) {
  auto engine = std::make_unique<IncrementalDime>(base.schema, positive,
                                                  negative, context);
  engine->AddGroup(base);
  // `merged` shadows the engine's group so a remove/edit (which union-find
  // cannot absorb) can rebuild from the merged state.
  Group merged = base;
  for (size_t r = 0; r < records.size(); ++r) {
    const DeltaRecord& record = records[r];
    if (record.group != merged.name) continue;
    std::vector<DeltaRecord> one{record};
    Status applied = ApplyDeltaRecords(one, &merged);
    if (!applied.ok()) {
      return Status(applied.code(),
                    "replay stopped at record " + std::to_string(r) + ": " +
                        applied.message());
    }
    if (record.op == DeltaRecord::Op::kAdd) {
      engine->AddEntity(merged.entities.back());
    } else {
      // The slow path the header documents: one rebuild per non-append.
      engine = std::make_unique<IncrementalDime>(base.schema, positive,
                                                 negative, context);
      engine->AddGroup(merged);
    }
  }
  return engine;
}

}  // namespace dime
