#include "src/store/delta_log.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/checksum.h"
#include "src/common/fault_injection.h"
#include "src/store/bytes.h"
#include "src/store/snapshot_format.h"

namespace dime {
namespace {

std::string HeaderBytes() {
  std::string header(kDeltaLogMagic, sizeof(kDeltaLogMagic));
  ByteSink sink;
  sink.U32(kDeltaLogFormatVersion);
  header += sink.str();
  header += static_cast<char>(SnapshotNativeEndianMarker());
  header.append(3, '\0');
  return header;
}

Status ValidateHeader(const char* data, size_t size) {
  if (size < kDeltaLogHeaderSize) {
    return ParseError("delta log shorter than its 16-byte header");
  }
  if (std::memcmp(data, kDeltaLogMagic, sizeof(kDeltaLogMagic)) != 0) {
    return ParseError("not a delta log (bad magic)");
  }
  uint32_t version;
  std::memcpy(&version, data + 8, sizeof(version));
  if (version > kDeltaLogFormatVersion) {
    return ParseError("delta log format version " + std::to_string(version) +
                      " is newer than supported (" +
                      std::to_string(kDeltaLogFormatVersion) + ")");
  }
  if (static_cast<uint8_t>(data[12]) != SnapshotNativeEndianMarker()) {
    return ParseError("delta log endianness does not match this machine");
  }
  return OkStatus();
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open delta log " + path + ": " +
                         std::strerror(errno));
  }
  std::string bytes;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return IoError("reading delta log " + path + " failed");
  return bytes;
}

/// Parses one record payload. False on structural damage.
bool DecodePayload(const char* data, size_t size, DeltaRecord* record) {
  ByteReader reader(data, size);
  uint32_t op;
  if (!reader.U32(&op)) return false;
  if (op < 1 || op > 3) return false;
  record->op = static_cast<DeltaRecord::Op>(op);
  if (!reader.String(&record->group)) return false;
  if (!reader.String(&record->entity_id)) return false;
  uint64_t value_count;
  if (!reader.U64(&value_count)) return false;
  if (value_count > size) return false;  // cheap sanity bound
  record->values.clear();
  record->values.reserve(static_cast<size_t>(value_count));
  for (uint64_t v = 0; v < value_count; ++v) {
    uint64_t item_count;
    if (!reader.U64(&item_count)) return false;
    if (item_count > size) return false;
    AttributeValue value;
    value.reserve(static_cast<size_t>(item_count));
    for (uint64_t i = 0; i < item_count; ++i) {
      std::string item;
      if (!reader.String(&item)) return false;
      value.push_back(std::move(item));
    }
    record->values.push_back(std::move(value));
  }
  return reader.done();
}

/// Index of the entity with `id` in `group`, or -1.
int FindEntity(const Group& group, std::string_view id) {
  for (size_t i = 0; i < group.entities.size(); ++i) {
    if (group.entities[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

/// Opens (creating if needed) the log at `path` for append with its
/// exclusive flock HELD, writing the 16-byte header iff the file is
/// empty and validating it otherwise. Whether to write the header is
/// decided from fstat on the locked descriptor — never ftell on an
/// append stream, whose initial position is implementation-defined
/// (C11 7.21.5.3). The caller releases the lock.
StatusOr<std::FILE*> OpenLogLocked(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return IoError("cannot open delta log " + path + " for append: " +
                   std::strerror(errno));
  }
  auto fail = [fd](Status status) -> StatusOr<std::FILE*> {
    ::flock(fd, LOCK_UN);
    ::close(fd);
    return status;
  };
  if (::flock(fd, LOCK_EX) != 0) {
    return fail(IoError("cannot lock delta log " + path + ": " +
                        std::strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return fail(IoError("cannot stat delta log " + path + ": " +
                        std::strerror(errno)));
  }
  if (st.st_size == 0) {
    std::string header = HeaderBytes();
    size_t written = 0;
    while (written < header.size()) {
      ssize_t n = ::write(fd, header.data() + written,
                          header.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return fail(IoError("cannot write delta log header to " + path +
                            ": " + std::strerror(errno)));
      }
      written += static_cast<size_t>(n);
    }
  } else {
    // Appending records to something that is not a delta log only
    // manufactures corruption for the eventual reader.
    char header[kDeltaLogHeaderSize];
    ssize_t n = ::pread(fd, header, sizeof(header), 0);
    if (n < 0) {
      return fail(IoError("cannot read delta log header of " + path + ": " +
                          std::strerror(errno)));
    }
    Status valid = ValidateHeader(header, static_cast<size_t>(n));
    if (!valid.ok()) return fail(valid);
  }
  std::FILE* file = ::fdopen(fd, "ab");
  if (file == nullptr) {
    return fail(IoError("cannot wrap delta log " + path + " for append: " +
                        std::strerror(errno)));
  }
  return file;
}

}  // namespace

const char* DeltaOpName(DeltaRecord::Op op) {
  switch (op) {
    case DeltaRecord::Op::kAdd:
      return "add";
    case DeltaRecord::Op::kRemove:
      return "remove";
    case DeltaRecord::Op::kEdit:
      return "edit";
  }
  return "unknown";
}

bool DeltaOpFromName(std::string_view name, DeltaRecord::Op* op) {
  if (name == "add") {
    *op = DeltaRecord::Op::kAdd;
  } else if (name == "remove") {
    *op = DeltaRecord::Op::kRemove;
  } else if (name == "edit") {
    *op = DeltaRecord::Op::kEdit;
  } else {
    return false;
  }
  return true;
}

std::string EncodeDeltaPayload(const DeltaRecord& record) {
  ByteSink sink;
  sink.U32(static_cast<uint32_t>(record.op));
  sink.String(record.group);
  sink.String(record.entity_id);
  sink.U64(record.values.size());
  for (const AttributeValue& value : record.values) {
    sink.U64(value.size());
    for (const std::string& item : value) sink.String(item);
  }
  return sink.Take();
}

StatusOr<DeltaLogWriter> DeltaLogWriter::Open(const std::string& path) {
  StatusOr<std::FILE*> file = OpenLogLocked(path);
  if (!file.ok()) return file.status();
  ::flock(fileno(*file), LOCK_UN);
  return DeltaLogWriter(path, *file);
}

DeltaLogWriter::~DeltaLogWriter() = default;

Status DeltaLogWriter::LockCurrentLog() {
  // Bounded only as a safety net: each retrip needs a merge to have
  // rotated the log in the window between our reopen and relock.
  for (int attempt = 0; attempt < 16; ++attempt) {
    int fd = fileno(file_.get());
    if (::flock(fd, LOCK_EX) != 0) {
      return IoError("cannot lock delta log " + path_ + ": " +
                     std::strerror(errno));
    }
    struct stat ours;
    if (::fstat(fd, &ours) != 0) {
      ::flock(fd, LOCK_UN);
      return IoError("cannot stat delta log " + path_ + ": " +
                     std::strerror(errno));
    }
    struct stat on_disk;
    if (::stat(path_.c_str(), &on_disk) == 0 &&
        on_disk.st_dev == ours.st_dev && on_disk.st_ino == ours.st_ino) {
      return OkStatus();
    }
    // The merge rotated the log aside while we held an open descriptor:
    // appending to the old inode would write records nothing ever reads.
    // Reopen a fresh log at the path and re-verify — the fresh log can
    // itself be rotated between the open and the lock.
    ::flock(fd, LOCK_UN);
    StatusOr<std::FILE*> fresh = OpenLogLocked(path_);
    if (!fresh.ok()) return fresh.status();
    file_.reset(*fresh);  // closes the stale stream
    // Loop re-verifies; flock on the already-locked fd is a no-op.
  }
  return IoError("delta log " + path_ + " kept rotating mid-append");
}

Status DeltaLogWriter::Append(const DeltaRecord& record) {
  if (file_ == nullptr) {
    return InternalError("DeltaLogWriter used after move");
  }
  std::string payload = EncodeDeltaPayload(record);
  if (payload.size() > kDeltaMaxRecordBytes) {
    return InvalidArgumentError("delta record exceeds the 64 MiB bound");
  }
  ByteSink frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  frame.Raw(payload.data(), payload.size());
  const std::string& bytes = frame.str();
  // The whole frame lands under the log's flock: producers never
  // interleave mid-frame, and a concurrent merge-and-rotate either sees
  // this record in full or rotates before it (after which LockCurrentLog
  // has redirected us to a fresh log).
  Status locked = LockCurrentLog();
  if (!locked.ok()) return locked;
  int fd = fileno(file_.get());
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_.get()) !=
          bytes.size() ||
      std::fflush(file_.get()) != 0) {
    Status failed = IoError(std::string("appending delta record failed: ") +
                            std::strerror(errno));
    ::flock(fd, LOCK_UN);
    return failed;
  }
  ::flock(fd, LOCK_UN);
  ++records_appended_;
  return OkStatus();
}

Status DeltaLogLock::Acquire(const std::string& path) {
  Release();
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    std::string msg =
        "cannot open delta log " + path + ": " + std::strerror(errno);
    return errno == ENOENT ? NotFoundError(msg) : IoError(msg);
  }
  if (::flock(fd, LOCK_EX) != 0) {
    Status failed = IoError("cannot lock delta log " + path + ": " +
                            std::strerror(errno));
    ::close(fd);
    return failed;
  }
  fd_ = fd;
  path_ = path;
  return OkStatus();
}

StatusOr<uint64_t> DeltaLogLock::SizeNow() const {
  struct stat st;
  if (fd_ < 0 || ::fstat(fd_, &st) != 0) {
    return IoError("cannot stat locked delta log " + path_);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status DeltaLogLock::RotateTo(const std::string& rotated_path) {
  if (fd_ < 0) return InternalError("RotateTo without a held lock");
  if (std::rename(path_.c_str(), rotated_path.c_str()) == 0) {
    return OkStatus();
  }
  std::string rename_error = std::strerror(errno);
  // Fallback so applied records can never be applied twice: empty the log
  // in place. Producers blocked on the flock resume against the same
  // inode (O_APPEND writes land at the new end of file).
  if (::ftruncate(fd_, static_cast<off_t>(kDeltaLogHeaderSize)) == 0) {
    return IoError("cannot rotate applied delta log " + path_ + " to " +
                   rotated_path + " (" + rename_error +
                   "); truncated it to empty instead");
  }
  return DataLossError("cannot rotate applied delta log " + path_ + " (" +
                       rename_error +
                       ") nor truncate it: its records would be applied "
                       "twice on the next merge");
}

void DeltaLogLock::Release() {
  if (fd_ < 0) return;
  ::flock(fd_, LOCK_UN);
  ::close(fd_);
  fd_ = -1;
}

StatusOr<DeltaLogContents> ReadDeltaLog(const std::string& path) {
  StatusOr<std::string> bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();
  Status header = ValidateHeader(bytes->data(), bytes->size());
  if (!header.ok()) return header;

  DeltaLogContents contents;
  contents.file_bytes = bytes->size();
  size_t pos = kDeltaLogHeaderSize;
  contents.valid_bytes = pos;
  while (pos < bytes->size()) {
    if (bytes->size() - pos < 8) {
      contents.torn_tail = true;  // frame header cut off mid-append
      break;
    }
    uint32_t length, crc;
    std::memcpy(&length, bytes->data() + pos, sizeof(length));
    std::memcpy(&crc, bytes->data() + pos + 4, sizeof(crc));
    size_t record_index = contents.records.size();
    if (length > kDeltaMaxRecordBytes) {
      return DataLossError("delta log " + path + ": record " +
                           std::to_string(record_index) +
                           " claims an impossible length " +
                           std::to_string(length));
    }
    if (bytes->size() - pos - 8 < length) {
      contents.torn_tail = true;  // payload cut off mid-append
      break;
    }
    const char* payload = bytes->data() + pos + 8;
    uint32_t actual = Crc32(payload, length);
    if (DIME_FAULT_POINT(failpoints::kStoreDeltaCorrupt)) actual = ~actual;
    if (actual != crc) {
      return DataLossError("delta log " + path + ": record " +
                           std::to_string(record_index) +
                           " failed its CRC check (acknowledged data is "
                           "damaged)");
    }
    DeltaRecord record;
    if (!DecodePayload(payload, length, &record)) {
      return DataLossError("delta log " + path + ": record " +
                           std::to_string(record_index) +
                           " passed its CRC but does not parse");
    }
    contents.records.push_back(std::move(record));
    pos += 8 + length;
    contents.valid_bytes = pos;
  }
  return contents;
}

Status ApplyDeltaRecords(const std::vector<DeltaRecord>& records,
                         Group* group, size_t* applied) {
  size_t touched = 0;
  for (size_t r = 0; r < records.size(); ++r) {
    const DeltaRecord& record = records[r];
    if (record.group != group->name) continue;
    std::string where =
        "delta record " + std::to_string(r) + " (" +
        std::string(DeltaOpName(record.op)) + " '" + record.entity_id + "')";
    int index = FindEntity(*group, record.entity_id);
    switch (record.op) {
      case DeltaRecord::Op::kAdd: {
        if (index >= 0) {
          return InvalidArgumentError(where + ": entity id already present");
        }
        if (record.values.size() != group->schema.size()) {
          return SchemaMismatchError(
              where + ": " + std::to_string(record.values.size()) +
              " values against a " + std::to_string(group->schema.size()) +
              "-attribute schema");
        }
        Entity entity;
        entity.id = record.entity_id;
        entity.values = record.values;
        group->entities.push_back(std::move(entity));
        if (!group->truth.empty()) group->truth.push_back(0);
        break;
      }
      case DeltaRecord::Op::kRemove: {
        if (index < 0) return NotFoundError(where + ": no such entity");
        group->entities.erase(group->entities.begin() + index);
        if (!group->truth.empty()) {
          group->truth.erase(group->truth.begin() + index);
        }
        break;
      }
      case DeltaRecord::Op::kEdit: {
        if (index < 0) return NotFoundError(where + ": no such entity");
        if (record.values.size() != group->schema.size()) {
          return SchemaMismatchError(
              where + ": " + std::to_string(record.values.size()) +
              " values against a " + std::to_string(group->schema.size()) +
              "-attribute schema");
        }
        group->entities[index].values = record.values;
        break;
      }
    }
    ++touched;
  }
  if (applied != nullptr) *applied = touched;
  return OkStatus();
}

bool DeltaIsAppendOnly(const std::vector<DeltaRecord>& records,
                       std::string_view group_name) {
  for (const DeltaRecord& record : records) {
    if (record.group == group_name && record.op != DeltaRecord::Op::kAdd) {
      return false;
    }
  }
  return true;
}

StatusOr<std::unique_ptr<IncrementalDime>> ReplayDeltaThroughIncremental(
    const Group& base, const std::vector<DeltaRecord>& records,
    const std::vector<PositiveRule>& positive,
    const std::vector<NegativeRule>& negative, const DimeContext& context) {
  auto engine = std::make_unique<IncrementalDime>(base.schema, positive,
                                                  negative, context);
  engine->AddGroup(base);
  // `merged` shadows the engine's group so a remove/edit (which union-find
  // cannot absorb) can rebuild from the merged state.
  Group merged = base;
  for (size_t r = 0; r < records.size(); ++r) {
    const DeltaRecord& record = records[r];
    if (record.group != merged.name) continue;
    std::vector<DeltaRecord> one{record};
    Status applied = ApplyDeltaRecords(one, &merged);
    if (!applied.ok()) {
      return Status(applied.code(),
                    "replay stopped at record " + std::to_string(r) + ": " +
                        applied.message());
    }
    if (record.op == DeltaRecord::Op::kAdd) {
      engine->AddEntity(merged.entities.back());
    } else {
      // The slow path the header documents: one rebuild per non-append.
      engine = std::make_unique<IncrementalDime>(base.schema, positive,
                                                 negative, context);
      engine->AddGroup(merged);
    }
  }
  return engine;
}

}  // namespace dime
