#ifndef DIME_STORE_BYTES_H_
#define DIME_STORE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

/// \file bytes.h
/// Byte-level encode/decode helpers for the snapshot format. Values are
/// written native-endian via memcpy (the file header carries an
/// endianness marker; a mismatched file is rejected at load rather than
/// byte-swapped — the zero-copy loader could not swap in place anyway).
///
/// The writer keeps every multi-byte array 8-byte aligned *relative to
/// the file start*; since mmap returns page-aligned bases and the
/// read() fallback allocates 8-aligned buffers, a relative offset that
/// is 8-aligned yields an absolutely aligned pointer — which is what
/// lets the loader hand arenas to the engines without a fixup pass.

namespace dime {

/// Append-only byte buffer with alignment control.
class ByteSink {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Raw(const void* data, size_t len) {
    out_.append(static_cast<const char*>(data), len);
  }
  /// u64 length + bytes (caller aligns afterwards if needed).
  void String(std::string_view s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  /// Zero-pads to the next 8-byte boundary.
  void Align8() { out_.append((8 - out_.size() % 8) % 8, '\0'); }

  /// u64 count + elements + pad. The element type must be trivially
  /// copyable; the count is in elements, not bytes.
  template <typename T>
  void Array(const T* data, size_t count) {
    U64(count);
    Align8();
    Raw(data, count * sizeof(T));
    Align8();
  }

  size_t size() const { return out_.size(); }
  const std::string& str() const { return out_; }
  std::string&& Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a borrowed byte range. Every accessor
/// returns false (leaving outputs untouched) instead of reading past the
/// end, so a structurally inconsistent section degrades to a clean error
/// instead of undefined behavior. `base` must be 8-aligned for the
/// aligned Claim/ReadArray accessors to guarantee aligned pointers.
class ByteReader {
 public:
  ByteReader(const void* base, size_t size)
      : base_(static_cast<const uint8_t*>(base)), size_(size) {}

  bool U32(uint32_t* v) { return Fixed(v); }
  bool U64(uint64_t* v) { return Fixed(v); }
  bool F64(double* v) { return Fixed(v); }

  bool String(std::string* s) {
    uint64_t len;
    if (!U64(&len)) return false;
    if (len > size_ - pos_) return false;
    s->assign(reinterpret_cast<const char*>(base_ + pos_),
              static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return true;
  }

  bool Align8() {
    size_t target = (pos_ + 7) & ~size_t{7};
    if (target > size_) return false;
    pos_ = target;
    return true;
  }

  /// Borrows `count` elements of T written by ByteSink::Array-style
  /// layout minus the count (see ReadArrayHeader): advances past
  /// count * sizeof(T) bytes and returns an aligned pointer into the
  /// underlying buffer, or null on bounds/alignment violation.
  template <typename T>
  const T* Claim(size_t count) {
    if (!Align8()) return nullptr;
    size_t bytes = count * sizeof(T);
    if (count > size_ / sizeof(T) || bytes > size_ - pos_) return nullptr;
    const uint8_t* p = base_ + pos_;
    if (reinterpret_cast<uintptr_t>(p) % alignof(T) != 0) return nullptr;
    pos_ += bytes;
    if (!Align8()) return nullptr;
    return reinterpret_cast<const T*>(p);
  }

  /// Counterpart of ByteSink::Array: u64 count + aligned elements. On
  /// success `*out` points into the buffer (zero-copy) and `*count` holds
  /// the element count.
  template <typename T>
  bool BorrowArray(const T** out, uint64_t* count) {
    uint64_t n;
    if (!U64(&n)) return false;
    const T* p = Claim<T>(static_cast<size_t>(n));
    if (p == nullptr && n > 0) return false;
    *out = p;
    *count = n;
    return true;
  }

  /// Copying counterpart of ByteSink::Array for small arrays that the
  /// loaded structures own (weights, node lists).
  template <typename T>
  bool ReadArray(std::vector<T>* out) {
    const T* p = nullptr;
    uint64_t n = 0;
    if (!BorrowArray(&p, &n)) return false;
    out->assign(p, p + n);
    return true;
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  template <typename T>
  bool Fixed(T* v) {
    if (sizeof(T) > size_ - pos_) return false;
    std::memcpy(v, base_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  const uint8_t* base_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace dime

#endif  // DIME_STORE_BYTES_H_
