#ifndef DIME_STORE_SNAPSHOT_FORMAT_H_
#define DIME_STORE_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <cstring>

/// \file snapshot_format.h
/// On-disk layout of DIME corpus snapshots (shared by the writer and the
/// loader; see DESIGN.md §7.4 for the rationale):
///
///   +--------------------------------------------------------------+
///   | header (16 B): magic "DIMESNP\n" | u32 version | u8 endian |0|
///   +--------------------------------------------------------------+
///   | section payloads, each starting on an 8-byte file offset     |
///   |   kMeta, kRules, kOntologies,                                |
///   |   then per group i: kGroup[i], kPrepared[i], kArtifacts[i],  |
///   |   optionally kDictionaries[i]                                |
///   +--------------------------------------------------------------+
///   | section table: section_count x 32 B entries                  |
///   |   u32 id | u32 index | u64 offset | u64 length | u32 crc32   |
///   |   | u32 zero                                                 |
///   +--------------------------------------------------------------+
///   | tail (48 B): u64 table_offset | u32 section_count |          |
///   |   u32 version | u64 fingerprint_lo | u64 fingerprint_hi |    |
///   |   u32 tail_crc | u32 zero | u64 tail_magic "DIMETAIL"        |
///   +--------------------------------------------------------------+
///
/// Every section payload carries its own CRC-32 in the table; `tail_crc`
/// covers the table plus the tail fields before it, so a truncated or
/// patched directory is caught before any section is trusted. The
/// fingerprint is a 128-bit FNV-1a over the concatenated section
/// payloads in table order — the content identity that the serving layer
/// folds into its result-cache keys.
///
/// Versioning policy: `version` bumps on any layout change; a loader
/// rejects versions above its own (PARSE_ERROR, "newer than supported")
/// and may keep read-side support for older ones. Integers are stored
/// native-endian with an explicit marker byte; a marker mismatch is
/// rejected rather than swapped, because the mmap zero-copy path cannot
/// byte-swap read-only pages.

namespace dime {

inline constexpr char kSnapshotMagic[8] = {'D', 'I', 'M', 'E',
                                           'S', 'N', 'P', '\n'};
inline constexpr uint64_t kSnapshotTailMagic =
    0x4C494154454D4944ULL;  // "DIMETAIL" little-endian
inline constexpr uint32_t kSnapshotFormatVersion = 1;

inline constexpr size_t kSnapshotHeaderSize = 16;
inline constexpr size_t kSnapshotTailSize = 48;
inline constexpr size_t kSnapshotSectionEntrySize = 32;

/// Section ids (append-only; unknown ids are skipped by loaders, giving
/// forward room for same-version additive sections).
enum class SnapshotSectionId : uint32_t {
  kMeta = 1,          ///< counts, qgram_q, signature options, schema
  kRules = 2,         ///< RuleSetToText of the rule set
  kOntologies = 3,    ///< per ontology: map mode + Ontology::ToText
  kGroup = 4,         ///< per group: name + schema + framed entities
  kPrepared = 5,      ///< per group: PreparedAttr columns (zero-copy)
  kArtifacts = 6,     ///< per group: frozen indexes + negative signatures
  kDictionaries = 7,  ///< per group: token dictionaries (optional)
};

const char* SnapshotSectionIdName(uint32_t id);

/// The byte the header's endian marker must hold on this machine.
inline uint8_t SnapshotNativeEndianMarker() {
  const uint16_t probe = 1;
  uint8_t first;
  std::memcpy(&first, &probe, 1);
  return first == 1 ? 1 : 2;  // 1 = little, 2 = big
}

/// 128-bit FNV-1a streamed over byte ranges (the snapshot content
/// fingerprint). Independent of the serving layer's request fingerprint;
/// only stability matters.
struct SnapshotFingerprint {
  uint64_t lo = 0xcbf29ce484222325ULL;
  uint64_t hi = 0x6c62272e07bb0142ULL;

  void Update(const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      lo = (lo ^ p[i]) * 0x100000001b3ULL;
      hi = (hi ^ p[i]) * 0x10000000233ULL;
    }
  }
};

}  // namespace dime

#endif  // DIME_STORE_SNAPSHOT_FORMAT_H_
