#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/checksum.h"
#include "src/entity/entity.h"
#include "src/core/preprocess.h"
#include "src/core/signature.h"
#include "src/ontology/ontology.h"
#include "src/rules/rule_io.h"
#include "src/store/bytes.h"
#include "src/store/snapshot.h"
#include "src/store/snapshot_format.h"
#include "src/store/snapshot_internal.h"

namespace dime {
namespace snapshot_internal {
namespace {

using Section = SnapshotInfo::Section;

std::string SectionLabel(const Section& sec) {
  std::string label = SnapshotSectionIdName(sec.id);
  label += "[";
  label += std::to_string(sec.index);
  label += "]";
  return label;
}

Status Malformed(const Section& sec, const char* what) {
  return DataLossError("snapshot section " + SectionLabel(sec) +
                       " is inconsistent: " + what);
}

/// Validates that a borrowed CSR offsets array is usable as-is: starts at
/// zero, never decreases, and ends exactly at the arena length. Without
/// this a crafted (or bit-rotted but CRC-colliding) file could make
/// view() read out of bounds.
bool OffsetsWellFormed(const uint64_t* offsets, uint64_t rows,
                       uint64_t arena_len) {
  if (offsets == nullptr) return false;
  if (offsets[0] != 0 || offsets[rows] != arena_len) return false;
  for (uint64_t e = 0; e < rows; ++e) {
    if (offsets[e] > offsets[e + 1]) return false;
  }
  return true;
}

Status ParseRankColumn(ByteReader* reader, const Section& sec, uint64_t rows,
                       RankColumn* out) {
  uint64_t stored_rows;
  if (!reader->U64(&stored_rows)) return Malformed(sec, "truncated column");
  if (stored_rows != rows) return Malformed(sec, "column row count");
  const uint64_t* offsets = nullptr;
  uint64_t offsets_len = 0;
  const uint32_t* arena = nullptr;
  uint64_t arena_len = 0;
  if (!reader->BorrowArray(&offsets, &offsets_len) ||
      !reader->BorrowArray(&arena, &arena_len)) {
    return Malformed(sec, "truncated column arrays");
  }
  if (offsets_len != rows + 1 ||
      !OffsetsWellFormed(offsets, rows, arena_len)) {
    return Malformed(sec, "column offsets");
  }
  out->BorrowStorage(arena, offsets, rows);
  return OkStatus();
}

Status ParseSignatureColumn(ByteReader* reader, const Section& sec,
                            uint64_t rows, SignatureColumn* out) {
  uint64_t stored_rows;
  if (!reader->U64(&stored_rows)) return Malformed(sec, "truncated column");
  if (stored_rows != rows) return Malformed(sec, "column row count");
  const uint64_t* offsets = nullptr;
  uint64_t offsets_len = 0;
  const uint64_t* arena = nullptr;
  uint64_t arena_len = 0;
  if (!reader->BorrowArray(&offsets, &offsets_len) ||
      !reader->BorrowArray(&arena, &arena_len)) {
    return Malformed(sec, "truncated column arrays");
  }
  if (offsets_len != rows + 1 ||
      !OffsetsWellFormed(offsets, rows, arena_len)) {
    return Malformed(sec, "column offsets");
  }
  out->BorrowStorage(arena, offsets, rows);
  return OkStatus();
}

Status ParseDoubles(ByteReader* reader, const Section& sec,
                    std::vector<double>* out) {
  if (!reader->ReadArray(out)) return Malformed(sec, "truncated doubles");
  return OkStatus();
}

/// kPrepared: everything but the group pointer, context and dictionaries.
Status ParsePreparedSection(const Section& sec, ByteReader reader,
                            uint64_t expected_entities, size_t schema_size,
                            size_t num_ontologies, PreparedGroup* pg) {
  uint64_t n, n_attrs;
  if (!reader.U64(&n) || !reader.U64(&n_attrs)) {
    return Malformed(sec, "truncated header");
  }
  if (n != expected_entities) return Malformed(sec, "entity count");
  if (n_attrs != schema_size) return Malformed(sec, "attribute count");
  pg->attrs.resize(n_attrs);
  for (PreparedAttr& attr : pg->attrs) {
    uint32_t flags, pad;
    if (!reader.U32(&flags) || !reader.U32(&pad)) {
      return Malformed(sec, "truncated attribute flags");
    }
    attr.has_value_list = (flags & 1) != 0;
    attr.has_words = (flags & 2) != 0;
    attr.has_text = (flags & 4) != 0;
    if (attr.has_value_list) {
      DIME_RETURN_IF_ERROR(
          ParseRankColumn(&reader, sec, n, &attr.value_ranks));
      DIME_RETURN_IF_ERROR(ParseDoubles(&reader, sec, &attr.value_weights));
      DIME_RETURN_IF_ERROR(ParseDoubles(&reader, sec, &attr.value_mass));
      DIME_RETURN_IF_ERROR(ParseDoubles(&reader, sec, &attr.value_sqnorm));
      if (attr.value_mass.size() != n || attr.value_sqnorm.size() != n) {
        return Malformed(sec, "mass array size");
      }
    }
    if (attr.has_words) {
      DIME_RETURN_IF_ERROR(ParseRankColumn(&reader, sec, n, &attr.word_ranks));
      DIME_RETURN_IF_ERROR(ParseDoubles(&reader, sec, &attr.word_weights));
      DIME_RETURN_IF_ERROR(ParseDoubles(&reader, sec, &attr.word_mass));
      DIME_RETURN_IF_ERROR(ParseDoubles(&reader, sec, &attr.word_sqnorm));
      if (attr.word_mass.size() != n || attr.word_sqnorm.size() != n) {
        return Malformed(sec, "mass array size");
      }
    }
    if (attr.has_text) {
      uint64_t n_text;
      if (!reader.U64(&n_text)) return Malformed(sec, "truncated text");
      if (n_text != n) return Malformed(sec, "text count");
      attr.text.resize(n_text);
      for (std::string& t : attr.text) {
        if (!reader.String(&t)) return Malformed(sec, "truncated text");
      }
      if (!reader.Align8()) return Malformed(sec, "truncated text padding");
      DIME_RETURN_IF_ERROR(
          ParseRankColumn(&reader, sec, n, &attr.qgram_ranks));
    }
    uint64_t n_nodes;
    if (!reader.U64(&n_nodes)) return Malformed(sec, "truncated node maps");
    for (uint64_t k = 0; k < n_nodes; ++k) {
      uint64_t onto_index;
      if (!reader.U64(&onto_index)) return Malformed(sec, "truncated nodes");
      if (onto_index >= num_ontologies) {
        return Malformed(sec, "ontology index out of range");
      }
      std::vector<int> nodes;
      if (!reader.ReadArray(&nodes)) return Malformed(sec, "truncated nodes");
      if (nodes.size() != n) return Malformed(sec, "node list size");
      attr.nodes.emplace(static_cast<int>(onto_index), std::move(nodes));
    }
  }
  if (!reader.done()) return Malformed(sec, "trailing bytes");
  return OkStatus();
}

Status ParseArtifactsSection(const Section& sec, ByteReader reader,
                             uint64_t n_entities, size_t n_positive,
                             size_t n_negative, size_t max_tuple_signatures,
                             PreparedRuleArtifacts* artifacts) {
  uint64_t stored_pos, stored_neg;
  if (!reader.U64(&stored_pos) || !reader.U64(&stored_neg)) {
    return Malformed(sec, "truncated header");
  }
  if (stored_pos != n_positive || stored_neg != n_negative) {
    return Malformed(sec, "rule counts disagree with the rules section");
  }
  artifacts->max_tuple_signatures = max_tuple_signatures;
  artifacts->positive_indexes.resize(n_positive);
  for (InvertedIndex& index : artifacts->positive_indexes) {
    InvertedIndex::FrozenView view;
    const uint32_t* sig_counts = nullptr;
    const uint64_t* list_starts = nullptr;
    const int* entities = nullptr;
    uint64_t n_counts = 0, n_starts = 0, n_ents = 0;
    if (!reader.BorrowArray(&sig_counts, &n_counts) ||
        !reader.BorrowArray(&list_starts, &n_starts) ||
        !reader.BorrowArray(&entities, &n_ents)) {
      return Malformed(sec, "truncated frozen index");
    }
    if (n_starts < 1 || n_counts > n_entities) {
      return Malformed(sec, "frozen index shape");
    }
    if (list_starts[0] != 0 || list_starts[n_starts - 1] != n_ents) {
      return Malformed(sec, "frozen index list starts");
    }
    for (uint64_t l = 0; l + 1 < n_starts; ++l) {
      if (list_starts[l] > list_starts[l + 1]) {
        return Malformed(sec, "frozen index list starts");
      }
    }
    // Entity ids feed UnionFind and partition arrays untrusted otherwise.
    for (uint64_t i = 0; i < n_ents; ++i) {
      if (entities[i] < 0 ||
          static_cast<uint64_t>(entities[i]) >= n_entities) {
        return Malformed(sec, "frozen index entity out of range");
      }
    }
    view.sig_counts = sig_counts;
    view.sig_counts_len = n_counts;
    view.list_starts = list_starts;
    view.list_starts_len = n_starts;
    view.entities = entities;
    view.entities_len = n_ents;
    index.AdoptFrozen(view);
  }
  artifacts->negative_sigs.resize(n_negative);
  for (SignatureColumn& column : artifacts->negative_sigs) {
    DIME_RETURN_IF_ERROR(
        ParseSignatureColumn(&reader, sec, n_entities, &column));
  }
  if (!reader.done()) return Malformed(sec, "trailing bytes");
  return OkStatus();
}

Status ParseDictionary(ByteReader* reader, const Section& sec,
                       TokenDictionary* dict) {
  uint64_t n_tokens;
  if (!reader->U64(&n_tokens)) return Malformed(sec, "truncated dictionary");
  std::vector<std::string> tokens(n_tokens);
  for (std::string& t : tokens) {
    if (!reader->String(&t)) return Malformed(sec, "truncated token");
  }
  if (!reader->Align8()) return Malformed(sec, "truncated padding");
  std::vector<uint32_t> df;
  if (!reader->ReadArray(&df)) return Malformed(sec, "truncated frequencies");
  if (df.size() != tokens.size()) return Malformed(sec, "frequency count");
  dict->Restore(std::move(tokens), std::move(df));
  return OkStatus();
}

Status ParseDictionariesSection(const Section& sec, ByteReader reader,
                                PreparedGroup* pg) {
  uint64_t n_attrs;
  if (!reader.U64(&n_attrs)) return Malformed(sec, "truncated header");
  if (n_attrs != pg->attrs.size()) return Malformed(sec, "attribute count");
  for (PreparedAttr& attr : pg->attrs) {
    uint32_t flags, pad;
    if (!reader.U32(&flags) || !reader.U32(&pad)) {
      return Malformed(sec, "truncated flags");
    }
    if (flags != ((attr.has_value_list ? 1u : 0u) |
                  (attr.has_words ? 2u : 0u) | (attr.has_text ? 4u : 0u))) {
      return Malformed(sec, "flags disagree with the prepared section");
    }
    if (attr.has_value_list) {
      DIME_RETURN_IF_ERROR(ParseDictionary(&reader, sec, &attr.value_dict));
    }
    if (attr.has_words) {
      DIME_RETURN_IF_ERROR(ParseDictionary(&reader, sec, &attr.word_dict));
    }
    if (attr.has_text) {
      DIME_RETURN_IF_ERROR(ParseDictionary(&reader, sec, &attr.qgram_dict));
    }
  }
  if (!reader.done()) return Malformed(sec, "trailing bytes");
  return OkStatus();
}

}  // namespace

StatusOr<RawSnapshot> OpenRaw(const std::string& path,
                              const SnapshotLoadOptions& options,
                              bool check_section_crcs) {
  MappedFile::Options file_options;
  file_options.prefer_mmap = options.prefer_mmap;
  StatusOr<MappedFile> opened = MappedFile::Open(path, file_options);
  if (!opened.ok()) return opened.status();
  RawSnapshot raw;
  raw.file = std::make_shared<MappedFile>(std::move(opened).value());
  const uint8_t* data = raw.file->data();
  const size_t size = raw.file->size();

  if (size < kSnapshotHeaderSize + kSnapshotTailSize) {
    return ParseError(path + ": truncated snapshot (" +
                      std::to_string(size) + " bytes)");
  }
  if (std::memcmp(data, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return ParseError(path + ": not a DIME snapshot (bad magic)");
  }
  uint32_t version;
  std::memcpy(&version, data + 8, sizeof(version));
  if (version > kSnapshotFormatVersion) {
    return ParseError(path + ": snapshot format version " +
                      std::to_string(version) +
                      " is newer than supported version " +
                      std::to_string(kSnapshotFormatVersion));
  }
  if (version == 0) return ParseError(path + ": snapshot format version 0");
  if (data[12] != SnapshotNativeEndianMarker()) {
    return ParseError(path +
                      ": snapshot was written on a machine with different "
                      "endianness");
  }
  raw.version = version;

  // Tail, from the back.
  const uint8_t* tail = data + size - kSnapshotTailSize;
  uint64_t table_offset, tail_magic;
  uint32_t section_count, tail_version, tail_crc;
  std::memcpy(&table_offset, tail, 8);
  std::memcpy(&section_count, tail + 8, 4);
  std::memcpy(&tail_version, tail + 12, 4);
  std::memcpy(&raw.fingerprint_lo, tail + 16, 8);
  std::memcpy(&raw.fingerprint_hi, tail + 24, 8);
  std::memcpy(&tail_crc, tail + 32, 4);
  std::memcpy(&tail_magic, tail + 40, 8);
  if (tail_magic != kSnapshotTailMagic) {
    return ParseError(path + ": snapshot footer missing (truncated file?)");
  }
  if (tail_version != version) {
    return ParseError(path + ": header/footer version mismatch");
  }
  const uint64_t table_len =
      static_cast<uint64_t>(section_count) * kSnapshotSectionEntrySize;
  if (table_offset < kSnapshotHeaderSize ||
      table_offset > size - kSnapshotTailSize ||
      table_len != size - kSnapshotTailSize - table_offset) {
    return ParseError(path + ": snapshot section table out of bounds");
  }
  // tail_crc covers the table and the tail fields before the crc itself;
  // checking it first means a corrupted directory is never walked.
  const uint32_t expect_crc =
      Crc32(data + table_offset, table_len + 32);
  if (expect_crc != tail_crc) {
    return DataLossError(path + ": snapshot directory checksum mismatch");
  }

  raw.sections.resize(section_count);
  for (uint32_t s = 0; s < section_count; ++s) {
    const uint8_t* entry = data + table_offset +
                           static_cast<size_t>(s) * kSnapshotSectionEntrySize;
    Section& sec = raw.sections[s];
    std::memcpy(&sec.id, entry, 4);
    std::memcpy(&sec.index, entry + 4, 4);
    std::memcpy(&sec.offset, entry + 8, 8);
    std::memcpy(&sec.length, entry + 16, 8);
    std::memcpy(&sec.crc32, entry + 24, 4);
    if (sec.offset < kSnapshotHeaderSize || sec.offset % 8 != 0 ||
        sec.offset > table_offset || sec.length > table_offset - sec.offset) {
      return DataLossError(path + ": snapshot section " + SectionLabel(sec) +
                           " out of bounds");
    }
    if (check_section_crcs &&
        Crc32(data + sec.offset, sec.length) != sec.crc32) {
      return DataLossError(path + ": snapshot section " + SectionLabel(sec) +
                           " checksum mismatch");
    }
  }
  return raw;
}

const Section* FindSection(const RawSnapshot& raw, uint32_t id,
                           uint32_t index) {
  for (const Section& sec : raw.sections) {
    if (sec.id == id && sec.index == index) return &sec;
  }
  return nullptr;
}

StatusOr<LoadedSnapshot> LoadFromRaw(RawSnapshot raw,
                                     const SnapshotLoadOptions& options) {
  const uint8_t* data = raw.file->data();
  auto section_reader = [&](const Section& sec) {
    return ByteReader(data + sec.offset, sec.length);
  };
  auto require = [&](SnapshotSectionId id,
                     uint32_t index) -> StatusOr<const Section*> {
    const Section* sec = FindSection(raw, static_cast<uint32_t>(id), index);
    if (sec == nullptr) {
      return ParseError(std::string("snapshot is missing section ") +
                        SnapshotSectionIdName(static_cast<uint32_t>(id)) +
                        "[" + std::to_string(index) + "]");
    }
    return sec;
  };

  LoadedSnapshot loaded;
  loaded.fingerprint_lo = raw.fingerprint_lo;
  loaded.fingerprint_hi = raw.fingerprint_hi;
  loaded.mapped = raw.file->mapped();

  // meta
  DIME_ASSIGN_OR_RETURN(const Section* meta_sec,
                        require(SnapshotSectionId::kMeta, 0));
  uint32_t qgram_q, has_dicts;
  uint64_t group_count, max_tuple_signatures, attr_count;
  {
    ByteReader meta = section_reader(*meta_sec);
    if (!meta.U32(&qgram_q) || !meta.U32(&has_dicts) ||
        !meta.U64(&group_count) || !meta.U64(&max_tuple_signatures) ||
        !meta.U64(&attr_count)) {
      return Malformed(*meta_sec, "truncated header");
    }
    std::vector<std::string> names(attr_count);
    for (std::string& name : names) {
      if (!meta.String(&name)) return Malformed(*meta_sec, "truncated name");
    }
    loaded.schema = Schema(std::move(names));
    if (group_count == 0) return Malformed(*meta_sec, "zero groups");
  }
  loaded.context.qgram_q = static_cast<int>(qgram_q);

  // ontologies (before rules: ValidateRules needs them in context)
  DIME_ASSIGN_OR_RETURN(const Section* onto_sec,
                        require(SnapshotSectionId::kOntologies, 0));
  {
    ByteReader onto = section_reader(*onto_sec);
    uint64_t n_onto;
    if (!onto.U64(&n_onto)) return Malformed(*onto_sec, "truncated header");
    for (uint64_t i = 0; i < n_onto; ++i) {
      uint32_t mode, pad;
      std::string text;
      if (!onto.U32(&mode) || !onto.U32(&pad) || !onto.String(&text)) {
        return Malformed(*onto_sec, "truncated ontology");
      }
      if (mode > static_cast<uint32_t>(MapMode::kFuzzyName)) {
        return Malformed(*onto_sec, "unknown map mode");
      }
      auto tree = std::make_shared<Ontology>();
      if (!Ontology::FromText(text, tree.get())) {
        return Malformed(*onto_sec, "ontology text does not parse");
      }
      loaded.context.ontologies.push_back(
          OntologyRef{tree.get(), static_cast<MapMode>(mode)});
      loaded.owned_trees.push_back(std::move(tree));
    }
  }

  // rules
  DIME_ASSIGN_OR_RETURN(const Section* rules_sec,
                        require(SnapshotSectionId::kRules, 0));
  {
    std::string text(reinterpret_cast<const char*>(data + rules_sec->offset),
                     rules_sec->length);
    std::string error;
    if (!RuleSetFromText(text, loaded.schema, &loaded.positive,
                         &loaded.negative, &error)) {
      return Malformed(*rules_sec, "rule set does not parse");
    }
  }

  // groups + prepared + artifacts (+ dictionaries)
  loaded.groups.resize(group_count);
  std::vector<std::shared_ptr<PreparedGroup>> prepared(group_count);
  for (uint64_t i = 0; i < group_count; ++i) {
    const uint32_t index = static_cast<uint32_t>(i);
    DIME_ASSIGN_OR_RETURN(const Section* group_sec,
                          require(SnapshotSectionId::kGroup, index));
    {
      ByteReader rd = section_reader(*group_sec);
      Group& group = loaded.groups[i];
      uint64_t attr_count = 0;
      if (!rd.String(&group.name) || !rd.U64(&attr_count)) {
        return Malformed(*group_sec, "truncated group");
      }
      if (attr_count != loaded.schema.size()) {
        return Malformed(*group_sec, "group schema disagrees with meta");
      }
      for (uint64_t a = 0; a < attr_count; ++a) {
        std::string attr_name;
        if (!rd.String(&attr_name)) {
          return Malformed(*group_sec, "truncated group schema");
        }
        if (attr_name != loaded.schema.AttributeName(static_cast<int>(a))) {
          return Malformed(*group_sec, "group schema disagrees with meta");
        }
      }
      group.schema = loaded.schema;
      uint32_t has_truth = 0, pad = 0;
      uint64_t entity_count = 0;
      if (!rd.U32(&has_truth) || !rd.U32(&pad) || !rd.U64(&entity_count) ||
          has_truth > 1 || pad != 0) {
        return Malformed(*group_sec, "bad group header");
      }
      // Every entity costs at least one u64 (its id length) plus one u64
      // per attribute, so a count past this bound cannot be honest.
      if (entity_count > rd.remaining() / ((attr_count + 1) * 8)) {
        return Malformed(*group_sec, "entity count exceeds section");
      }
      group.entities.resize(static_cast<size_t>(entity_count));
      for (Entity& entity : group.entities) {
        if (!rd.String(&entity.id)) {
          return Malformed(*group_sec, "truncated entity");
        }
        entity.values.resize(static_cast<size_t>(attr_count));
        for (AttributeValue& value : entity.values) {
          uint64_t value_count = 0;
          if (!rd.U64(&value_count) ||
              value_count > rd.remaining() / 8) {
            return Malformed(*group_sec, "truncated entity");
          }
          value.resize(static_cast<size_t>(value_count));
          for (std::string& s : value) {
            if (!rd.String(&s)) {
              return Malformed(*group_sec, "truncated entity");
            }
          }
        }
      }
      if (has_truth != 0) {
        if (!rd.ReadArray(&group.truth) ||
            group.truth.size() != group.entities.size()) {
          return Malformed(*group_sec, "truncated ground truth");
        }
      }
      if (!rd.done()) {
        return Malformed(*group_sec, "trailing bytes after group");
      }
    }
    const uint64_t n = loaded.groups[i].size();

    DIME_ASSIGN_OR_RETURN(const Section* prep_sec,
                          require(SnapshotSectionId::kPrepared, index));
    prepared[i] = std::make_shared<PreparedGroup>();
    DIME_RETURN_IF_ERROR(ParsePreparedSection(
        *prep_sec, section_reader(*prep_sec), n, loaded.schema.size(),
        loaded.context.ontologies.size(), prepared[i].get()));

    DIME_ASSIGN_OR_RETURN(const Section* art_sec,
                          require(SnapshotSectionId::kArtifacts, index));
    auto artifacts = std::make_shared<PreparedRuleArtifacts>();
    DIME_RETURN_IF_ERROR(ParseArtifactsSection(
        *art_sec, section_reader(*art_sec), n, loaded.positive.size(),
        loaded.negative.size(), max_tuple_signatures, artifacts.get()));
    prepared[i]->artifacts = std::move(artifacts);

    if (has_dicts != 0 && options.load_dictionaries) {
      DIME_ASSIGN_OR_RETURN(const Section* dict_sec,
                            require(SnapshotSectionId::kDictionaries, index));
      DIME_RETURN_IF_ERROR(ParseDictionariesSection(
          *dict_sec, section_reader(*dict_sec), prepared[i].get()));
    }
  }

  // The groups vector is final now: fix the back pointers and contexts.
  for (uint64_t i = 0; i < group_count; ++i) {
    prepared[i]->group = &loaded.groups[i];
    prepared[i]->context = loaded.context;
  }
  loaded.prepared.assign(prepared.begin(), prepared.end());
  loaded.backing = raw.file;
  return loaded;
}

}  // namespace snapshot_internal

StatusOr<LoadedSnapshot> LoadSnapshot(const std::string& path,
                                      const SnapshotLoadOptions& options) {
  DIME_ASSIGN_OR_RETURN(
      snapshot_internal::RawSnapshot raw,
      snapshot_internal::OpenRaw(path, options,
                                 /*check_section_crcs=*/true));
  return snapshot_internal::LoadFromRaw(std::move(raw), options);
}

StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path) {
  DIME_ASSIGN_OR_RETURN(
      snapshot_internal::RawSnapshot raw,
      snapshot_internal::OpenRaw(path, SnapshotLoadOptions(),
                                 /*check_section_crcs=*/false));
  SnapshotInfo info;
  info.version = raw.version;
  info.file_size = raw.file->size();
  info.fingerprint_lo = raw.fingerprint_lo;
  info.fingerprint_hi = raw.fingerprint_hi;
  info.sections = raw.sections;
  return info;
}

Status VerifySnapshot(const std::string& path, bool deep) {
  SnapshotLoadOptions options;
  options.load_dictionaries = true;
  DIME_ASSIGN_OR_RETURN(
      snapshot_internal::RawSnapshot raw,
      snapshot_internal::OpenRaw(path, options,
                                 /*check_section_crcs=*/true));
  // Full parse: everything the serving path would trust must parse.
  std::shared_ptr<MappedFile> file = raw.file;
  std::vector<SnapshotInfo::Section> sections = raw.sections;
  DIME_ASSIGN_OR_RETURN(LoadedSnapshot loaded,
                        snapshot_internal::LoadFromRaw(std::move(raw),
                                                       options));
  if (!deep) return OkStatus();

  // Deep: re-prepare every group from its embedded TSV and require the
  // freshly serialized prepared/artifact bytes to match the stored ones —
  // preparation is deterministic, so any divergence means the snapshot
  // does not faithfully represent its own source data.
  SignatureOptions sig_options;
  sig_options.max_tuple_signatures =
      loaded.prepared.empty() || loaded.prepared[0]->artifacts == nullptr
          ? sig_options.max_tuple_signatures
          : loaded.prepared[0]->artifacts->max_tuple_signatures;
  for (size_t i = 0; i < loaded.groups.size(); ++i) {
    PreparedGroup fresh = PrepareGroup(loaded.groups[i], loaded.positive,
                                       loaded.negative, loaded.context);
    std::shared_ptr<const PreparedRuleArtifacts> artifacts =
        BuildPreparedRuleArtifacts(fresh, loaded.positive, loaded.negative,
                                   sig_options);
    struct Expectation {
      SnapshotSectionId id;
      std::string bytes;
    };
    const Expectation expectations[] = {
        {SnapshotSectionId::kPrepared,
         snapshot_internal::SerializePreparedSection(fresh)},
        {SnapshotSectionId::kArtifacts,
         snapshot_internal::SerializeArtifactsSection(*artifacts)},
    };
    for (const Expectation& expect : expectations) {
      const SnapshotInfo::Section* sec = nullptr;
      for (const SnapshotInfo::Section& s : sections) {
        if (s.id == static_cast<uint32_t>(expect.id) &&
            s.index == static_cast<uint32_t>(i)) {
          sec = &s;
          break;
        }
      }
      if (sec == nullptr || sec->length != expect.bytes.size() ||
          std::memcmp(file->data() + sec->offset, expect.bytes.data(),
                      expect.bytes.size()) != 0) {
        return DataLossError(
            "deep verification failed: stored " +
            std::string(
                SnapshotSectionIdName(static_cast<uint32_t>(expect.id))) +
            " section of group '" + loaded.groups[i].name +
            "' differs from a fresh preparation");
      }
    }
  }
  return OkStatus();
}

}  // namespace dime
