#include "src/store/epoch.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/common/fault_injection.h"
#include "src/entity/entity.h"
#include "src/rules/rule_io.h"
#include "src/store/snapshot_format.h"

namespace dime {

ServingCorpus CorpusFromSnapshot(LoadedSnapshot snapshot) {
  ServingCorpus corpus;
  corpus.schema = std::move(snapshot.schema);
  corpus.positive = std::move(snapshot.positive);
  corpus.negative = std::move(snapshot.negative);
  corpus.context = std::move(snapshot.context);
  corpus.shared_trees = std::move(snapshot.owned_trees);
  corpus.groups = std::move(snapshot.groups);
  corpus.prepared = std::move(snapshot.prepared);
  corpus.content_fingerprint_lo = snapshot.fingerprint_lo;
  corpus.content_fingerprint_hi = snapshot.fingerprint_hi;
  corpus.backing = std::move(snapshot.backing);
  return corpus;
}

CorpusEpoch::CorpusEpoch(uint64_t sequence, ServingCorpus corpus)
    : sequence_(sequence), corpus_(std::move(corpus)) {
  // Unique ownership becomes shared ownership: a successor epoch built
  // from this one (delta merge) copies the shared_ptrs and the raw
  // pointers inside context.ontologies stay valid in both epochs.
  for (std::unique_ptr<Ontology>& tree : corpus_.owned_trees) {
    corpus_.shared_trees.emplace_back(std::move(tree));
  }
  corpus_.owned_trees.clear();

  rules_text_ =
      RuleSetToText(corpus_.schema, corpus_.positive, corpus_.negative);

  if (corpus_.content_fingerprint_lo != 0 ||
      corpus_.content_fingerprint_hi != 0) {
    fingerprint_lo_ = corpus_.content_fingerprint_lo;
    fingerprint_hi_ = corpus_.content_fingerprint_hi;
  } else {
    // Not snapshot-backed: synthesize the content identity so epoch swaps
    // of TSV-ingested or delta-merged corpora still invalidate cache keys
    // by content, exactly like snapshot swaps do.
    SnapshotFingerprint fp;
    fp.Update(rules_text_.data(), rules_text_.size());
    for (const Group& group : corpus_.groups) {
      std::string tsv = GroupToTsv(group);
      fp.Update(tsv.data(), tsv.size());
    }
    fingerprint_lo_ = fp.lo;
    fingerprint_hi_ = fp.hi;
  }

  for (size_t i = 0;
       i < corpus_.prepared.size() && i < corpus_.groups.size(); ++i) {
    if (corpus_.prepared[i] != nullptr) {
      prepared_by_group_[&corpus_.groups[i]] = corpus_.prepared[i].get();
    }
  }
}

const Group* CorpusEpoch::FindGroup(std::string_view name) const {
  for (const Group& group : corpus_.groups) {
    if (group.name == name) return &group;
  }
  return nullptr;
}

const PreparedGroup* CorpusEpoch::FindPrepared(const Group* group) const {
  auto it = prepared_by_group_.find(group);
  return it == prepared_by_group_.end() ? nullptr : it->second;
}

void EpochManager::Retirer::operator()(const CorpusEpoch* epoch) const {
  const uint64_t sequence = epoch->sequence();
  // Test hook: hold the retiring epoch a beat before unmapping, so chaos
  // tests can widen the window in which a stale pointer would fault.
  if (DIME_FAULT_POINT(failpoints::kEpochUnmapDelay)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  delete epoch;  // frees the corpus; releasing `backing` unmaps the file
  control->retired.fetch_add(1, std::memory_order_relaxed);
  if (control->hook) control->hook(sequence);
}

EpochManager::EpochManager(RetireHook retire_hook)
    : control_(std::make_shared<ControlBlock>()) {
  control_->hook = std::move(retire_hook);
}

std::shared_ptr<const CorpusEpoch> EpochManager::Install(
    ServingCorpus corpus) {
  const uint64_t sequence =
      installed_.fetch_add(1, std::memory_order_relaxed) + 1;
  // The epoch (fingerprint synthesis, lookup index) is built outside the
  // lock so a heavyweight install never stalls Pin(). Two racing installs
  // resolve by sequence: the later one wins, the earlier is retired the
  // moment its last pin drops. The WINNER is returned either way, so a
  // caller reporting the outcome (e.g. an admin reload reply) describes
  // the epoch that actually serves — never one that lost the race and
  // will be retired without serving a single request.
  std::shared_ptr<const CorpusEpoch> epoch(
      new CorpusEpoch(sequence, std::move(corpus)), Retirer{control_});
  MutexLock lock(&mu_);
  if (current_ == nullptr || current_->sequence() < sequence) {
    current_ = std::move(epoch);
  }
  return current_;
}

std::shared_ptr<const CorpusEpoch> EpochManager::Pin() const {
  MutexLock lock(&mu_);
  return current_;
}

uint64_t EpochManager::current_sequence() const {
  MutexLock lock(&mu_);
  return current_ == nullptr ? 0 : current_->sequence();
}

}  // namespace dime
