#ifndef DIME_STORE_DELTA_LOG_H_
#define DIME_STORE_DELTA_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/entity/entity.h"
#include "src/core/incremental.h"

/// \file delta_log.h
/// The between-snapshots mutation stream: an append-only, CRC-framed log
/// of entity add/remove/edit events against a named group. A live
/// categorization system emits these continuously; the snapshot store
/// (snapshot.h) freezes a corpus at a point in time, and the delta log is
/// everything that happened since. The split follows the incremental-ER
/// playbook: run *small* deltas incrementally (IncrementalDime appends),
/// recompute *in bulk* when the log grows past a threshold (the serving
/// layer re-prepares the merged corpus and swaps it in as a new epoch —
/// see epoch.h and DimeService::ApplyDeltaLog).
///
/// On-disk layout (native-endian, like the snapshot format):
///
///   header (16 B): magic "DIMEDLT\n" | u32 version | u8 endian | 3 x 0
///   record*:       u32 payload_len | u32 crc32(payload) | payload
///   payload:       u32 op | str group | str entity_id
///                  | u64 value_count { u64 item_count { str item }* }*
///                  (str = u64 length + bytes; values only for add/edit)
///
/// Torn tails vs corruption. A crash mid-append legitimately leaves a
/// truncated final record; readers drop it and report `torn_tail` — the
/// acknowledged prefix is intact. A CRC mismatch *inside* the stream is
/// damage to acknowledged data: DATA_LOSS, and consumers must keep
/// serving the last good epoch instead of trusting any suffix.
///
/// Producer/merger handoff. Every DeltaLogWriter::Append runs under the
/// log file's exclusive flock(2), so appends from concurrent producers
/// (even across processes) never interleave mid-frame. The serving
/// layer's merge-and-rotate (DimeService::ApplyDeltaLog) takes the same
/// lock to prove quiescence — the log did not grow past the prefix it
/// merged — before renaming the applied log aside. A producer whose log
/// was rotated out from under its open descriptor detects the rename on
/// its next locked append and transparently reopens a fresh log at the
/// original path, so no acknowledged record is ever silently dropped.
///
/// Failpoint "store/delta-corrupt" forces the next record's CRC check to
/// fail, so every degradation path is deterministic to test.

namespace dime {

inline constexpr char kDeltaLogMagic[8] = {'D', 'I', 'M', 'E',
                                           'D', 'L', 'T', '\n'};
inline constexpr uint32_t kDeltaLogFormatVersion = 1;
inline constexpr size_t kDeltaLogHeaderSize = 16;
/// A record larger than this is structural damage, not data.
inline constexpr uint32_t kDeltaMaxRecordBytes = 64u << 20;

/// One corpus mutation event.
struct DeltaRecord {
  enum class Op : uint32_t { kAdd = 1, kRemove = 2, kEdit = 3 };
  Op op = Op::kAdd;
  std::string group;      ///< Group::name the event applies to
  std::string entity_id;  ///< Entity::id added / removed / replaced
  /// Parallel to the corpus schema for kAdd/kEdit; empty for kRemove.
  std::vector<AttributeValue> values;
};

const char* DeltaOpName(DeltaRecord::Op op);
bool DeltaOpFromName(std::string_view name, DeltaRecord::Op* op);

/// Serializes one record payload (no frame). Exposed for tests that build
/// corrupt frames byte by byte.
std::string EncodeDeltaPayload(const DeltaRecord& record);

/// Appends records to a delta log file. Creates the file (with header) on
/// first open; appends after validating the header otherwise. Appends are
/// serialized by the file's flock, so concurrent producers — and the
/// serving layer's merge-and-rotate — interoperate safely (see the
/// handoff protocol above).
class DeltaLogWriter {
 public:
  /// IO_ERROR when the file cannot be created, opened, or locked;
  /// PARSE_ERROR when `path` exists but is not a delta log.
  static StatusOr<DeltaLogWriter> Open(const std::string& path);

  DeltaLogWriter(DeltaLogWriter&&) = default;
  DeltaLogWriter& operator=(DeltaLogWriter&&) = default;
  ~DeltaLogWriter();

  /// Frames, checksums and appends one record under the log's flock, then
  /// flushes the stdio buffer (a crash after Append returns can tear at
  /// most the record the OS was still writing). If the log was rotated
  /// aside since the last append, the writer reopens a fresh log at the
  /// original path first.
  Status Append(const DeltaRecord& record);

  uint64_t records_appended() const { return records_appended_; }

 private:
  DeltaLogWriter(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  /// Acquires the flock on file_ and guarantees path_ still names its
  /// inode, reopening a fresh log when a rotation won the race. On OK the
  /// lock is HELD; the caller releases it.
  Status LockCurrentLog();

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };
  std::string path_;
  std::unique_ptr<std::FILE, FileCloser> file_;
  uint64_t records_appended_ = 0;
};

/// Exclusive hold on a delta log for the merge-and-rotate sequence: the
/// same flock DeltaLogWriter::Append takes per record, so while held no
/// producer append is in flight and none can start. Lets the merger
/// verify that the log did not grow past the prefix it read (quiescence)
/// and then rename the applied log aside without losing a single
/// acknowledged record. Not copyable; released on destruction.
class DeltaLogLock {
 public:
  DeltaLogLock() = default;
  ~DeltaLogLock() { Release(); }
  DeltaLogLock(const DeltaLogLock&) = delete;
  DeltaLogLock& operator=(const DeltaLogLock&) = delete;

  /// Opens `path` and blocks until the exclusive flock is held.
  /// NOT_FOUND when the log does not exist, IO_ERROR otherwise.
  Status Acquire(const std::string& path);
  bool held() const { return fd_ >= 0; }

  /// Current size of the locked file in bytes (fstat on the held
  /// descriptor — immune to a concurrent rename of the path).
  StatusOr<uint64_t> SizeNow() const;

  /// Renames the locked log to `rotated_path`. If the rename fails,
  /// truncates the log to its bare header instead — either way the
  /// applied records can never be applied twice. The lock stays held.
  Status RotateTo(const std::string& rotated_path);

  void Release();

 private:
  std::string path_;
  int fd_ = -1;
};

struct DeltaLogContents {
  std::vector<DeltaRecord> records;
  /// Bytes of the validated prefix (header + intact records).
  uint64_t valid_bytes = 0;
  /// Total bytes read from the file — equals valid_bytes unless a torn
  /// tail was dropped. The merge-and-rotate quiescence check compares
  /// this against the file size under the log's flock.
  uint64_t file_bytes = 0;
  /// True when a truncated final record was dropped (crash mid-append).
  bool torn_tail = false;
};

/// Reads and validates a delta log.
///   NOT_FOUND     the file cannot be opened
///   IO_ERROR      reading failed
///   PARSE_ERROR   not a delta log (magic/version/endian)
///   DATA_LOSS     a CRC mismatch or malformed payload inside the stream;
///                 the message names the failing record index
StatusOr<DeltaLogContents> ReadDeltaLog(const std::string& path);

/// Applies `records` to `group` in order. Records naming other groups are
/// skipped; for the targeted group:
///   kAdd     appends the entity (INVALID_ARGUMENT on duplicate id or a
///            value count that disagrees with `group->schema`)
///   kRemove  erases the entity by id (NOT_FOUND when absent)
///   kEdit    replaces the entity's values in place (NOT_FOUND / schema
///            check as above)
/// On error the group is left in the state reached so far — callers that
/// need atomicity apply to a copy (DimeService::ApplyDeltaLog does).
/// `applied`, when non-null, counts the records that touched the group.
Status ApplyDeltaRecords(const std::vector<DeltaRecord>& records,
                         Group* group, size_t* applied = nullptr);

/// True iff every record touching `group_name` is a kAdd — the fast path
/// IncrementalDime can absorb without a rebuild.
bool DeltaIsAppendOnly(const std::vector<DeltaRecord>& records,
                       std::string_view group_name);

/// Replays `base` plus the records targeting it through the incremental
/// engine: appends stream through IncrementalDime::AddEntity (O(n) rule
/// checks per arrival); a remove/edit forces one rebuild of the engine
/// from the merged group (union-find cannot split — see incremental.h).
/// The returned engine's Result() is bit-identical to a batch re-prepare
/// of the merged group (the golden differential test pins this).
StatusOr<std::unique_ptr<IncrementalDime>> ReplayDeltaThroughIncremental(
    const Group& base, const std::vector<DeltaRecord>& records,
    const std::vector<PositiveRule>& positive,
    const std::vector<NegativeRule>& negative, const DimeContext& context);

}  // namespace dime

#endif  // DIME_STORE_DELTA_LOG_H_
