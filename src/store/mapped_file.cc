#include "src/store/mapped_file.h"

#include <cstdio>
#include <utility>

#include "src/common/fault_injection.h"

#if defined(__unix__) || defined(__APPLE__)
#define DIME_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace dime {
namespace {

/// read() fallback shared by non-POSIX builds and the forced-fallback
/// path: plain stdio into an 8-aligned owned buffer.
Status ReadWhole(const std::string& path, std::unique_ptr<uint64_t[]>* buf,
                 size_t* size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFoundError(path + ": cannot open");
  Status status = OkStatus();
  if (std::fseek(f, 0, SEEK_END) != 0) {
    status = IoError(path + ": seek failed");
  } else {
    long end = std::ftell(f);
    if (end < 0) {
      status = IoError(path + ": tell failed");
    } else {
      *size = static_cast<size_t>(end);
      std::rewind(f);
      buf->reset(new uint64_t[(*size + 7) / 8]);
      if (*size > 0 && std::fread(buf->get(), 1, *size, f) != *size) {
        status = IoError(path + ": read failed");
      }
    }
  }
  std::fclose(f);
  return status;
}

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    owned_ = std::move(other.owned_);
  }
  return *this;
}

void MappedFile::Reset() {
#if DIME_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  owned_.reset();
}

MappedFile::~MappedFile() { Reset(); }

StatusOr<MappedFile> MappedFile::Open(const std::string& path,
                                      const Options& options) {
  MappedFile file;
  bool use_mmap = options.prefer_mmap;
  if (DIME_FAULT_POINT(failpoints::kStoreMmap)) use_mmap = false;
#if DIME_HAVE_MMAP
  if (use_mmap) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return NotFoundError(path + ": cannot open");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return IoError(path + ": stat failed");
    }
    file.size_ = static_cast<size_t>(st.st_size);
    if (file.size_ > 0) {
      void* addr =
          ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
      ::close(fd);  // the mapping keeps its own reference
      if (addr == MAP_FAILED) return IoError(path + ": mmap failed");
      file.data_ = static_cast<const uint8_t*>(addr);
      file.mapped_ = true;
    } else {
      ::close(fd);
    }
    return file;
  }
#else
  (void)use_mmap;
#endif
  DIME_RETURN_IF_ERROR(ReadWhole(path, &file.owned_, &file.size_));
  file.data_ = reinterpret_cast<const uint8_t*>(file.owned_.get());
  return file;
}

}  // namespace dime
