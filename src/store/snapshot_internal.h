#ifndef DIME_STORE_SNAPSHOT_INTERNAL_H_
#define DIME_STORE_SNAPSHOT_INTERNAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/store/mapped_file.h"
#include "src/store/snapshot.h"

/// \file snapshot_internal.h
/// Pieces shared between the snapshot writer, loader and verifier (not
/// part of the public API; tests may include it).

namespace dime {
namespace snapshot_internal {

/// A snapshot file whose envelope (header, tail, table, tail_crc) has
/// been validated; section payloads are untouched unless
/// `check_section_crcs` was set at open.
struct RawSnapshot {
  std::shared_ptr<MappedFile> file;
  uint32_t version = 0;
  uint64_t fingerprint_lo = 0;
  uint64_t fingerprint_hi = 0;
  std::vector<SnapshotInfo::Section> sections;
};

/// Opens `path` and validates the envelope. With `check_section_crcs`,
/// also verifies every section's CRC-32 (DATA_LOSS on mismatch).
StatusOr<RawSnapshot> OpenRaw(const std::string& path,
                              const SnapshotLoadOptions& options,
                              bool check_section_crcs);

/// First section with this (id, index), or null.
const SnapshotInfo::Section* FindSection(const RawSnapshot& raw, uint32_t id,
                                         uint32_t index);

/// Full parse of an already opened+checked snapshot.
StatusOr<LoadedSnapshot> LoadFromRaw(RawSnapshot raw,
                                     const SnapshotLoadOptions& options);

/// Deterministic section serializers (also used by deep verification:
/// identical prepared state must yield identical bytes).
std::string SerializePreparedSection(const PreparedGroup& pg);
std::string SerializeArtifactsSection(const PreparedRuleArtifacts& artifacts);
std::string SerializeDictionariesSection(const PreparedGroup& pg);

}  // namespace snapshot_internal
}  // namespace dime

#endif  // DIME_STORE_SNAPSHOT_INTERNAL_H_
