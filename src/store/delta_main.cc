// dime_delta: append to, inspect, and replay the live-corpus delta log
// (src/store/delta_log.h). The log is the between-snapshots mutation
// stream: `dime_server --delta-log` merges it into a new serving epoch,
// and this tool is how producers write records and operators audit them.
//
// Usage:
//   dime_delta append <log> --group G --op add|remove|edit --id E
//       [--value "v1|v2"]...        # one --value per schema attribute,
//                                   # '|' separating multi-values
//   dime_delta inspect <log>        # header, per-record listing, tail state
//   dime_delta replay <log> --base group.tsv
//       [--rules rules.txt [--venue-ontology]]  # run the merged group
//                                               # through IncrementalDime
//       [--output merged.tsv]       # write the merged group
//
// Exit codes follow src/common/exit_code.h: a torn tail (crash
// mid-append) inspects as OK with a note — the acknowledged prefix is
// intact — but mid-stream corruption exits with the DATA_LOSS mapping.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/exit_code.h"
#include "src/common/string_util.h"
#include "src/ontology/builtin.h"
#include "src/rules/rule_io.h"
#include "src/store/delta_log.h"

namespace {

using namespace dime;

int Usage(const char* msg) {
  std::fprintf(stderr, "dime_delta: %s (run with --help for usage)\n", msg);
  return ExitCodeForStatusCode(StatusCode::kInvalidArgument);
}

void PrintHelp() {
  std::printf(
      "dime_delta append <log> --group G --op add|remove|edit --id E\n"
      "    [--value \"v1|v2\"]...    (one --value per schema attribute)\n"
      "dime_delta inspect <log>\n"
      "dime_delta replay <log> --base <group.tsv>\n"
      "    [--rules <file> [--venue-ontology]] [--output <merged.tsv>]\n");
}

/// '|'-separated multi-values, matching the TSV codec of entity.h.
AttributeValue ParseValueCell(const std::string& cell) {
  AttributeValue value;
  size_t start = 0;
  while (true) {
    size_t bar = cell.find('|', start);
    std::string item = cell.substr(
        start, bar == std::string::npos ? std::string::npos : bar - start);
    if (!item.empty()) value.push_back(std::move(item));
    if (bar == std::string::npos) break;
    start = bar + 1;
  }
  return value;
}

int RunAppend(int argc, char** argv) {
  std::string path;
  DeltaRecord record;
  bool have_op = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(ExitCodeForStatusCode(StatusCode::kInvalidArgument));
      }
      return argv[++i];
    };
    if (arg == "--group") {
      record.group = next();
    } else if (arg == "--op") {
      if (!DeltaOpFromName(next(), &record.op)) {
        return Usage("--op must be add, remove, or edit");
      }
      have_op = true;
    } else if (arg == "--id") {
      record.entity_id = next();
    } else if (arg == "--value") {
      record.values.push_back(ParseValueCell(next()));
    } else if (arg == "--help") {
      PrintHelp();
      return 0;
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage(("unknown flag: " + arg).c_str());
    }
  }
  if (path.empty()) return Usage("append needs a log file");
  if (record.group.empty()) return Usage("append needs --group");
  if (!have_op) return Usage("append needs --op");
  if (record.entity_id.empty()) return Usage("append needs --id");
  if (record.op == DeltaRecord::Op::kRemove && !record.values.empty()) {
    return Usage("--value makes no sense with --op remove");
  }
  if (record.op != DeltaRecord::Op::kRemove && record.values.empty()) {
    return Usage("add/edit need at least one --value");
  }

  StatusOr<DeltaLogWriter> writer = DeltaLogWriter::Open(path);
  if (!writer.ok()) return ExitWithStatus(writer.status(), "append");
  Status appended = writer->Append(record);
  if (!appended.ok()) return ExitWithStatus(appended, "append");
  std::printf("dime_delta: appended %s %s/%s to %s\n",
              DeltaOpName(record.op), record.group.c_str(),
              record.entity_id.c_str(), path.c_str());
  return 0;
}

int RunInspect(int argc, char** argv) {
  std::string path;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help") {
      PrintHelp();
      return 0;
    }
    if (!path.empty()) return Usage("inspect takes exactly one file");
    path = arg;
  }
  if (path.empty()) return Usage("inspect needs a log file");

  StatusOr<DeltaLogContents> contents = ReadDeltaLog(path);
  if (!contents.ok()) return ExitWithStatus(contents.status(), "inspect");
  std::printf("%s: DIME delta log v%u, %zu record(s), %llu valid byte(s)\n",
              path.c_str(), kDeltaLogFormatVersion, contents->records.size(),
              static_cast<unsigned long long>(contents->valid_bytes));
  std::printf("%6s %-8s %-24s %-24s %s\n", "#", "op", "group", "entity",
              "values");
  for (size_t i = 0; i < contents->records.size(); ++i) {
    const DeltaRecord& r = contents->records[i];
    std::printf("%6zu %-8s %-24s %-24s %zu\n", i, DeltaOpName(r.op),
                r.group.c_str(), r.entity_id.c_str(), r.values.size());
  }
  if (contents->torn_tail) {
    std::printf("note: torn final record dropped (crash mid-append); the "
                "listed prefix is intact\n");
  }
  return 0;
}

int RunReplay(int argc, char** argv) {
  std::string path;
  std::string base_path;
  std::string rules_path;
  std::string output_path;
  bool use_venue_ontology = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(ExitCodeForStatusCode(StatusCode::kInvalidArgument));
      }
      return argv[++i];
    };
    if (arg == "--base") {
      base_path = next();
    } else if (arg == "--rules") {
      rules_path = next();
    } else if (arg == "--venue-ontology") {
      use_venue_ontology = true;
    } else if (arg == "--output") {
      output_path = next();
    } else if (arg == "--help") {
      PrintHelp();
      return 0;
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage(("unknown flag: " + arg).c_str());
    }
  }
  if (path.empty()) return Usage("replay needs a log file");
  if (base_path.empty()) return Usage("replay needs --base");

  Group base;
  Status loaded = LoadGroup(base_path, base_path, &base);
  if (!loaded.ok()) {
    return ExitWithStatus(loaded, ("loading " + base_path).c_str());
  }
  if (base.name.empty()) base.name = base_path;

  StatusOr<DeltaLogContents> contents = ReadDeltaLog(path);
  if (!contents.ok()) return ExitWithStatus(contents.status(), "replay");
  if (contents->torn_tail) {
    std::fprintf(stderr,
                 "dime_delta: WARNING: torn final record dropped; replaying "
                 "the intact prefix\n");
  }

  Group merged = base;
  size_t applied = 0;
  Status status = ApplyDeltaRecords(contents->records, &merged, &applied);
  if (!status.ok()) return ExitWithStatus(status, "replay");
  std::printf("dime_delta: %zu of %zu record(s) applied to '%s' (%zu -> %zu "
              "entities)%s\n",
              applied, contents->records.size(), base.name.c_str(),
              base.size(), merged.size(),
              DeltaIsAppendOnly(contents->records, base.name)
                  ? " [append-only: incremental fast path]"
                  : "");

  if (!rules_path.empty()) {
    std::vector<PositiveRule> positive;
    std::vector<NegativeRule> negative;
    std::string error;
    if (!LoadRuleSet(rules_path, merged.schema, &positive, &negative,
                     &error)) {
      return ExitWithStatus(
          ParseError("cannot load rules from " + rules_path + ": " + error),
          "replay");
    }
    DimeContext context;
    if (use_venue_ontology) {
      context.ontologies.push_back(
          OntologyRef{&VenueOntology(), MapMode::kExactName});
      context.ontologies.push_back(
          OntologyRef{&VenueOntology(), MapMode::kKeyword});
    }
    StatusOr<std::unique_ptr<IncrementalDime>> engine =
        ReplayDeltaThroughIncremental(base, contents->records, positive,
                                      negative, context);
    if (!engine.ok()) return ExitWithStatus(engine.status(), "replay");
    const DimeResult& result = (*engine)->Result();
    std::printf("dime_delta: incremental replay: %zu partition(s), %zu "
                "entity(ies) flagged\n",
                result.partitions.size(), result.flagged().size());
    for (int e : result.flagged()) {
      std::printf("  flagged: %s\n", (*engine)->group().entities[e].id.c_str());
    }
  }

  if (!output_path.empty()) {
    Status saved = SaveGroup(merged, output_path);
    if (!saved.ok()) return ExitWithStatus(saved, "replay");
    std::printf("dime_delta: wrote merged group to %s\n",
                output_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage("need a sub-command: append, inspect, replay");
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    PrintHelp();
    return 0;
  }
  if (cmd == "append") return RunAppend(argc - 2, argv + 2);
  if (cmd == "inspect") return RunInspect(argc - 2, argv + 2);
  if (cmd == "replay") return RunReplay(argc - 2, argv + 2);
  return Usage(("unknown sub-command: " + cmd).c_str());
}
