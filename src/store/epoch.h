#ifndef DIME_STORE_EPOCH_H_
#define DIME_STORE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/core/preprocess.h"
#include "src/store/snapshot.h"

/// \file epoch.h
/// Epoch-based zero-downtime corpus swap (RCU-style). A *corpus epoch* is
/// one immutable, fully-indexed generation of the serving corpus — a
/// loaded snapshot, a TSV-ingested corpus, or a delta-merged re-prepare.
/// The EpochManager holds the latest epoch behind a refcount:
///
///   Install(corpus)  publishes a new epoch; subsequent Pin() calls see it
///   Pin()            refcounts the current epoch for one request's lifetime
///   (refcount -> 0)  the epoch is destroyed: its backing mmap is unmapped
///                    and the retire hook fires with the epoch's sequence
///
/// In-flight requests keep serving the epoch they pinned at admission —
/// never a mix of two generations — while new requests see the latest.
/// The old mapping is unmapped only when the last pin drops, so a swap
/// can never pull pages out from under a running engine. Writers
/// (Install) never block readers (Pin is one mutex-protected shared_ptr
/// copy), and readers never block writers.
///
/// Failpoints (see fault_injection.h):
///   "epoch/unmap-delay"  the retiring epoch sleeps before unmapping,
///                        widening the swap/serve race window for tests
///
/// The serving layer's failpoint "store/swap" (a reload that fails before
/// install) lives in DimeService::ReloadFromSnapshot, the main consumer
/// of this machinery.

namespace dime {

/// Everything one corpus generation holds resident: the schema the rules
/// were parsed against, the rule set, the evaluation context (with owned
/// ontology trees backing the context's refs), and optional preloaded
/// groups addressable by name. Lived in src/server before epochs existed;
/// it is store-level state — the serving layer consumes it through
/// CorpusEpoch.
struct ServingCorpus {
  Schema schema;
  std::vector<PositiveRule> positive;
  std::vector<NegativeRule> negative;
  DimeContext context;
  /// Backing storage for `context.ontologies` pointers (moving the
  /// unique_ptrs keeps the raw pointers stable). Converted to
  /// `shared_trees` when the corpus becomes an epoch, so a delta-merged
  /// successor epoch can share the trees without copying them.
  std::vector<std::unique_ptr<Ontology>> owned_trees;
  /// Shared ontology trees (snapshot loads and successor epochs).
  std::vector<std::shared_ptr<const Ontology>> shared_trees;
  /// Preloaded groups, addressable by Group::name in CheckRequest.
  std::vector<Group> groups;
  /// Parallel to `groups` when the corpus is fully prepared (snapshot
  /// warm start or delta-merge re-prepare; empty when TSV-ingested):
  /// prepared groups with rule artifacts attached. Workers serve these
  /// directly instead of calling PrepareGroup per request.
  std::vector<std::shared_ptr<const PreparedGroup>> prepared;
  /// Content fingerprint of the snapshot backing this corpus (both zero
  /// when not snapshot-loaded). The epoch fingerprint — folded into
  /// result-cache keys — is derived from this, or synthesized from the
  /// corpus content when zero.
  uint64_t content_fingerprint_lo = 0;
  uint64_t content_fingerprint_hi = 0;
  /// Keep-alive for the mapped bytes `prepared` borrows from.
  std::shared_ptr<const void> backing;
};

/// Adapts a loaded snapshot into a serving corpus: groups, rules,
/// context, prepared groups and the backing mapping all move over;
/// internal pointers (prepared[i]->group, ontology refs) stay valid
/// because vector storage moves wholesale.
ServingCorpus CorpusFromSnapshot(LoadedSnapshot snapshot);

/// One immutable corpus generation plus the lookup structure the serving
/// hot path needs (group-by-name, prepared-by-group, canonical rule
/// text). Constructed once at Install; all accessors are const and safe
/// to call concurrently without synchronization.
class CorpusEpoch {
 public:
  CorpusEpoch(uint64_t sequence, ServingCorpus corpus);

  /// Monotone install counter (1 for the first epoch of a manager).
  uint64_t sequence() const { return sequence_; }

  const ServingCorpus& corpus() const { return corpus_; }

  /// RuleSetToText of the rule set — the rule component of cache keys.
  const std::string& rules_text() const { return rules_text_; }

  /// The epoch's 128-bit content identity: the snapshot fingerprint when
  /// the corpus was snapshot-loaded, otherwise synthesized (FNV-1a over
  /// the rule text and every group's canonical TSV). Two epochs with
  /// identical content share a fingerprint — and may legitimately share
  /// result-cache entries; two that differ anywhere cannot.
  uint64_t fingerprint_lo() const { return fingerprint_lo_; }
  uint64_t fingerprint_hi() const { return fingerprint_hi_; }

  /// Preloaded group by name, or nullptr. The pointer is valid for the
  /// epoch's lifetime — hold a pin (the shared_ptr) while using it.
  const Group* FindGroup(std::string_view name) const;

  /// Fully prepared form of `group` (must be a group of this epoch), or
  /// nullptr when the corpus was ingested without preparation.
  const PreparedGroup* FindPrepared(const Group* group) const;

 private:
  const uint64_t sequence_;
  ServingCorpus corpus_;
  std::string rules_text_;
  uint64_t fingerprint_lo_ = 0;
  uint64_t fingerprint_hi_ = 0;
  /// corpus_.prepared indexed by group pointer (empty for TSV corpora).
  std::unordered_map<const Group*, const PreparedGroup*> prepared_by_group_;
};

/// Publishes and refcounts corpus epochs. Thread-safe. The manager holds
/// one reference to the current epoch; every Pin() adds another. An
/// epoch's destructor (and therefore its munmap) runs on whichever
/// thread drops the last reference — a worker finishing the final
/// in-flight request of a superseded epoch, or Install itself when no
/// request pinned the old one.
class EpochManager {
 public:
  /// `retire_hook(sequence)` fires after a retired epoch is fully
  /// destroyed (backing unmapped). Must be thread-safe; it may run on any
  /// thread, including after the manager itself is destroyed (epochs can
  /// outlive the manager while pinned).
  using RetireHook = std::function<void(uint64_t sequence)>;

  explicit EpochManager(RetireHook retire_hook = nullptr);

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Publishes `corpus` as the next epoch and returns the epoch now
  /// serving (already pinned) — normally the one just built; when a
  /// racing Install with a higher sequence won, the winner, so callers
  /// always report an epoch that actually serves. The superseded epoch
  /// survives until its last pin drops.
  std::shared_ptr<const CorpusEpoch> Install(ServingCorpus corpus);

  /// Pins the current epoch. Null only before the first Install.
  std::shared_ptr<const CorpusEpoch> Pin() const;

  /// Sequence of the current epoch (0 before the first Install).
  uint64_t current_sequence() const;

  /// Epochs published so far.
  uint64_t installed() const {
    return installed_.load(std::memory_order_relaxed);
  }

  /// Epochs whose refcount drained to zero (destructor ran, mapping
  /// unmapped, retire hook fired).
  uint64_t retired() const {
    return control_->retired.load(std::memory_order_relaxed);
  }

 private:
  /// Outlives the manager: the epoch deleter holds a shared_ptr to it, so
  /// a pinned epoch released after the manager is gone still counts.
  struct ControlBlock {
    std::atomic<uint64_t> retired{0};
    RetireHook hook;
  };
  struct Retirer {
    std::shared_ptr<ControlBlock> control;
    void operator()(const CorpusEpoch* epoch) const;
  };

  std::shared_ptr<ControlBlock> control_;
  std::atomic<uint64_t> installed_{0};
  mutable Mutex mu_;
  std::shared_ptr<const CorpusEpoch> current_ DIME_GUARDED_BY(mu_);
};

}  // namespace dime

#endif  // DIME_STORE_EPOCH_H_
