#include "src/server/tcp_server.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/logging.h"
#include "src/server/wire.h"

namespace dime {
namespace {

/// Sends all of `data` (handles short writes). False on error.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SetRecvTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Resolves host:port (numeric or DNS) and connects. -1 on failure.
int ConnectTo(const std::string& host, int port, int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result) != 0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    SetRecvTimeout(fd, timeout_ms);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  return fd;
}

/// Reads bytes until '\n' or EOF. Returns false on error/EOF before any
/// byte of a line arrived; the line (without '\n') lands in *line.
bool RecvLine(int fd, std::string* line) {
  line->clear();
  char c;
  while (true) {
    ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // timeout or hard error
    }
    if (c == '\n') return true;
    line->push_back(c);
    // A line longer than any legal request is an abuse signal; cut the
    // connection instead of buffering without bound. 64 MiB comfortably
    // fits the largest inline group the engines could chew anyway.
    if (line->size() > (64u << 20)) return false;
  }
}

/// Buffered line reader for connection threads: recv() in chunks, hand
/// out lines. Retries EINTR; a partial chunk followed by more data is
/// normal TCP segmentation, not an error.
class LineReader {
 public:
  LineReader(int fd, size_t max_line_bytes)
      : fd_(fd), max_line_bytes_(max_line_bytes) {}

  /// False on EOF, timeout, hard error, or a line over the cap.
  bool ReadLine(std::string* line) {
    line->clear();
    while (true) {
      while (pos_ < buffer_.size()) {
        char c = buffer_[pos_++];
        if (c == '\n') return true;
        line->push_back(c);
        if (line->size() > max_line_bytes_) return false;
      }
      buffer_.clear();
      pos_ = 0;
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return false;  // EOF
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // timeout or hard error
      }
      buffer_.assign(chunk, static_cast<size_t>(n));
    }
  }

 private:
  const int fd_;
  const size_t max_line_bytes_;
  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace

TcpServer::TcpServer(DimeService* service, TcpServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError("not an IPv4 address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = IoError("bind " + options_.host + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status status = IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void TcpServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown(listen_fd_) in Stop() surfaces as EINVAL; anything else
      // after `stopping_` is equally a signal to exit.
      return;
    }
    MutexLock lock(&mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    SetRecvTimeout(fd, options_.idle_timeout_ms);
    connections_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

std::string TcpServer::Dispatch(const std::string& line) {
  StatusOr<WireRequest> parsed = ParseRequestLine(line);
  if (!parsed.ok()) return SerializeErrorResponse("", parsed.status());
  const WireRequest& request = *parsed;

  switch (request.type) {
    case WireRequest::Type::kPing:
      return SerializePingResponse(request.id);
    case WireRequest::Type::kStats:
      return SerializeStatsResponse(request.id, service_->Stats());
    case WireRequest::Type::kShutdown:
      return SerializeShutdownResponse(request.id);
    case WireRequest::Type::kReload: {
      if (!options_.reload_handler) {
        return SerializeErrorResponse(
            request.id,
            InvalidArgumentError("this server has no reloadable corpus "
                                 "source (started without --snapshot)"));
      }
      StatusOr<ReloadOutcome> outcome = options_.reload_handler();
      if (!outcome.ok()) {
        return SerializeErrorResponse(request.id, outcome.status());
      }
      return SerializeReloadResponse(request.id, *outcome);
    }
    case WireRequest::Type::kCheck:
      break;
  }

  // check: named groups are passed through and resolved by Check()
  // against the epoch it pins — resolving here could hand Check a group
  // pointer from an epoch a concurrent reload is retiring.
  Group inline_group;
  CheckRequest check;
  if (!request.group_tsv.empty()) {
    Status parsed_group =
        ParseGroupTsv(request.group_tsv, "inline", &inline_group);
    if (!parsed_group.ok()) {
      return SerializeErrorResponse(request.id, parsed_group);
    }
    check.group = &inline_group;
  } else if (!request.group_name.empty()) {
    check.group_name = request.group_name;
  } else {
    return SerializeErrorResponse(
        request.id,
        InvalidArgumentError("check needs \"group\" or \"group_tsv\""));
  }

  check.deadline_ms = request.deadline_ms;
  check.bypass_cache = request.no_cache;
  if (!request.engine.empty()) {
    EngineKind kind;
    if (!EngineKindFromName(request.engine, &kind)) {
      return SerializeErrorResponse(
          request.id,
          InvalidArgumentError("unknown engine '" + request.engine + "'"));
    }
    check.engine = kind;
  }

  StatusOr<CheckReply> reply = service_->Check(check);
  if (!reply.ok()) return SerializeErrorResponse(request.id, reply.status());
  // reply->group is the caller's inline group or a group owned by
  // reply->epoch, which the reply pins — safe either way.
  return SerializeCheckResponse(request.id, *reply->group, *reply);
}

void TcpServer::HandleConnection(int fd) {
  LineReader reader(fd, options_.max_line_bytes);
  std::string line;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;  // blank keep-alive lines are legal
    bool is_shutdown = false;
    {
      StatusOr<WireRequest> peek = ParseRequestLine(line);
      is_shutdown =
          peek.ok() && peek->type == WireRequest::Type::kShutdown;
    }
    std::string response = Dispatch(line);
    if (!SendAll(fd, response)) break;
    if (is_shutdown) {
      // Ack written; now unblock Wait(). Ordering matters: the response
      // must be on the wire before the owner can Stop() and exit.
      RequestShutdown();
      break;
    }
  }
  ::close(fd);
}

void TcpServer::RequestShutdown() {
  MutexLock lock(&mu_);
  shutdown_requested_ = true;
  wake_.SignalAll();
}

void TcpServer::Wait() {
  MutexLock lock(&mu_);
  while (!stopping_ && !shutdown_requested_) {
    wake_.Wait(&mu_);
  }
}

void TcpServer::Stop() {
  {
    MutexLock lock(&mu_);
    if (stopping_) return;
    stopping_ = true;
    wake_.SignalAll();
  }
  if (listen_fd_ >= 0) {
    // shutdown() forces a blocked accept() to return; close() alone does
    // not reliably wake it and can race a concurrent fd reuse.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> connections;
  {
    MutexLock lock(&mu_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
}

bool TcpServer::shutdown_requested() const {
  MutexLock lock(&mu_);
  return shutdown_requested_;
}

StatusOr<std::string> SendRequestLine(const std::string& host, int port,
                                      const std::string& line,
                                      int timeout_ms) {
  int fd = ConnectTo(host, port, timeout_ms);
  if (fd < 0) {
    return UnavailableError("cannot connect to " + host + ":" +
                            std::to_string(port) + ": " +
                            std::strerror(errno));
  }
  std::string request = line;
  if (request.empty() || request.back() != '\n') request += '\n';
  if (!SendAll(fd, request)) {
    Status status = IoError(std::string("send: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  std::string response;
  bool ok = RecvLine(fd, &response);
  int saved_errno = errno;
  ::close(fd);
  if (!ok) {
    if (saved_errno == EAGAIN || saved_errno == EWOULDBLOCK) {
      return DeadlineExceededError("timed out waiting for the response");
    }
    return IoError("connection closed before a response line arrived");
  }
  return response;
}

}  // namespace dime
