#include "src/server/tcp_server.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/server/event_loop.h"
#include "src/server/net_util.h"

namespace dime {

TcpServer::TcpServer(DimeService* service, TcpServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  EventLoopServerOptions loop_options;
  loop_options.host = options_.host;
  loop_options.port = options_.port;
  loop_options.backlog = options_.backlog;
  loop_options.idle_timeout_ms = options_.idle_timeout_ms;
  loop_options.max_line_bytes = options_.max_line_bytes;
  loop_options.max_connections = options_.max_connections;
  loop_options.max_pipeline_depth = options_.max_pipeline_depth;
  loop_options.hooks.reload_handler = options_.reload_handler;
  server_ =
      std::make_unique<EventLoopServer>(service_, std::move(loop_options));
  Status started = server_->Start();
  if (!started.ok()) server_.reset();
  return started;
}

int TcpServer::port() const { return server_ ? server_->port() : 0; }

void TcpServer::Wait() {
  if (server_) server_->Wait();
}

void TcpServer::Stop() {
  if (server_) server_->Stop();
}

bool TcpServer::shutdown_requested() const {
  return server_ && server_->shutdown_requested();
}

void TcpServer::RequestShutdown() {
  if (server_) server_->RequestShutdown();
}

std::string TcpServer::Dispatch(const std::string& line) {
  DispatchHooks hooks;
  hooks.reload_handler = options_.reload_handler;
  return DispatchLine(service_, hooks, line).line;
}

StatusOr<std::string> SendRequestLine(const std::string& host, int port,
                                      const std::string& line,
                                      int timeout_ms) {
  int fd = ConnectToHost(host, port, timeout_ms);
  if (fd < 0) {
    return UnavailableError("cannot connect to " + host + ":" +
                            std::to_string(port) + ": " +
                            std::strerror(errno));
  }
  std::string request = line;
  if (request.empty() || request.back() != '\n') request += '\n';
  if (!SendAll(fd, request)) {
    Status status = IoError(std::string("send: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  std::string response;
  bool ok = RecvLine(fd, &response);
  int saved_errno = errno;
  ::close(fd);
  if (!ok) {
    if (saved_errno == EAGAIN || saved_errno == EWOULDBLOCK) {
      return DeadlineExceededError("timed out waiting for the response");
    }
    return IoError("connection closed before a response line arrived");
  }
  return response;
}

}  // namespace dime
