#ifndef DIME_SERVER_DISPATCH_H_
#define DIME_SERVER_DISPATCH_H_

#include <functional>
#include <string>

#include "src/common/status.h"
#include "src/server/service.h"
#include "src/server/wire.h"

/// \file dispatch.h
/// Protocol-independent verb dispatch: one WireRequest in, one wire.h
/// response line out. Both transports route through here — the line-JSON
/// framing hands the line over verbatim, the HTTP front door (http.h)
/// wraps the same line as a response body — so the two protocols cannot
/// drift apart in semantics, only in framing.
///
/// The async form exists for the event loop: a check admitted to the
/// service completes on a WORKER thread, and the loop must not burn a
/// blocked transport thread per in-flight request waiting for it.

namespace dime {

/// Handles the admin "reload" verb. `fingerprint` is the request's
/// optional expected content fingerprint ("" = unconditional) — see
/// DimeService::ReloadFromSnapshot. Runs on the calling (transport)
/// thread and may block; must be thread-safe.
using ReloadHandler =
    std::function<StatusOr<ReloadOutcome>(const std::string& fingerprint)>;

struct DispatchHooks {
  /// Null: reload is answered INVALID_ARGUMENT (no reloadable source).
  ReloadHandler reload_handler;
};

/// One dispatched request's reply, framing-agnostic.
struct DispatchResult {
  /// The '\n'-terminated line-JSON response (wire.h serializers).
  std::string line;
  /// The coarse outcome the line carries, for transports whose framing
  /// wants it (the HTTP front door maps it to an HTTP status). For a
  /// check this is the ENGINE result status too: a deadline-truncated
  /// run reports kDeadlineExceeded here even though the body still
  /// carries the partial result.
  StatusCode code = StatusCode::kOk;
  /// A shutdown verb was acked: the transport must finish writing the
  /// response, then unblock its owner's Wait().
  bool shutdown = false;
};

/// Dispatches one parsed request. `done` is invoked exactly once: inline
/// (before the call returns) for every verb except an admitted check,
/// which completes later on a service worker thread. `done` must be
/// thread-safe against that and must not block.
///
/// Reload runs INLINE on the calling thread (it swaps epochs; it was
/// never queue-admitted work) — event-loop callers run the whole
/// dispatch on an offload thread so a slow reload cannot stall the IO
/// loop.
void DispatchRequestAsync(DimeService* service, const DispatchHooks& hooks,
                          const WireRequest& request,
                          std::function<void(DispatchResult)> done);

/// Parse + dispatch of one raw request line, blocking until the reply is
/// ready. This is TcpServer::Dispatch's engine, exposed so tests can
/// drive the protocol without sockets.
DispatchResult DispatchLine(DimeService* service, const DispatchHooks& hooks,
                            const std::string& line);

}  // namespace dime

#endif  // DIME_SERVER_DISPATCH_H_
