#ifndef DIME_SERVER_HTTP_H_
#define DIME_SERVER_HTTP_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/server/dispatch.h"

/// \file http.h
/// The minimal HTTP/1.1 front door: enough of the protocol for real
/// clients (curl, load balancer health checks, review tools) to drive
/// the service, and not a byte more. Hand-rolled in the style of
/// wire.cc — allocation-light, fail-closed: anything outside the
/// understood subset is a 4xx and the connection is cut, never a guess.
///
/// Understood subset:
///   * GET / POST, request-target up to the documented caps below
///   * HTTP/1.0 and HTTP/1.1 (anything else: 505)
///   * Content-Length framing only (Transfer-Encoding: 501 — chunked
///     bodies are refused, not skipped)
///   * keep-alive (1.1 default; "Connection: close" honored; 1.0
///     defaults to close)
///
/// Routes (bodies are wire.h line-JSON, Content-Type application/json —
/// one schema across both protocols):
///   POST /v1/check     body = a check request object (same fields as
///                      the line protocol minus "type")
///   GET  /v1/stats     stats snapshot
///   GET  /v1/ping      liveness
///   POST /v1/reload    optional body {"fingerprint": "..."}
///   POST /v1/shutdown  graceful drain, identical to the line verb
///
/// Status mapping (HttpStatusForCode): OK->200, INVALID_ARGUMENT /
/// PARSE_ERROR / SCHEMA_MISMATCH->400, NOT_FOUND->404, RESOURCE_EXHAUSTED /
/// UNAVAILABLE->503, DEADLINE_EXCEEDED->504, everything else->500.

namespace dime {

/// Documented fail-closed caps. A request that exceeds any of them is
/// answered with the noted status and the connection is cut.
struct HttpLimits {
  /// Request line (method + target + version). 431 past this.
  size_t max_request_line_bytes = 8u << 10;
  /// Total header section including the request line — the "header
  /// bomb" cap. 431 past this.
  size_t max_header_bytes = 32u << 10;
  /// Individual header count. 431 past this.
  size_t max_headers = 100;
  /// Content-Length ceiling (413 past this). Transports wire this to
  /// their line-protocol max_line_bytes so both protocols admit the
  /// same largest inline group.
  size_t max_body_bytes = 64u << 20;
};

struct HttpRequest {
  std::string method;  ///< "GET" / "POST" (others parse, route to 405)
  std::string target;  ///< origin-form, e.g. "/v1/check"
  std::string body;
  /// False when the client asked for close (or spoke 1.0 without
  /// keep-alive): the server must close after this response.
  bool keep_alive = true;
};

enum class HttpParseOutcome {
  kNeedMore,  ///< incomplete request; read more bytes and retry
  kOk,        ///< one full request parsed; erase `consumed` bytes
  kBad,       ///< malformed / over a cap: answer `error_status` and cut
};

struct HttpParseResult {
  HttpParseOutcome outcome = HttpParseOutcome::kNeedMore;
  size_t consumed = 0;    ///< kOk: bytes of `buffer` this request used
  int error_status = 0;   ///< kBad: 400 / 413 / 431 / 501 / 505
  std::string error;      ///< kBad: one-line reason (response body)
};

/// Incremental fail-closed parser: call with the connection's whole
/// unconsumed read buffer each time bytes arrive. Never consumes on
/// kNeedMore/kBad; on kOk exactly one request landed in *out. NUL bytes
/// anywhere in the header section are kBad (header smuggling), as are
/// bare-LF line endings, a non-digit or duplicate-conflicting
/// Content-Length, and any Transfer-Encoding.
HttpParseResult ParseHttpRequest(std::string_view buffer,
                                 const HttpLimits& limits, HttpRequest* out);

/// True when `prefix` (>= 1 byte) looks like the start of an HTTP
/// request rather than a line-JSON one — the per-connection protocol
/// sniff. Line-JSON requests always start with '{' (or a blank
/// keep-alive line), HTTP requests with an ASCII method letter.
bool LooksLikeHttp(std::string_view prefix);

/// The HTTP status for a wire.h Status code (see file comment).
int HttpStatusForCode(StatusCode code);

/// Serializes one response. `body` should be a wire.h line-JSON line
/// (its trailing '\n' doubles as the body terminator); Content-Type is
/// application/json, Content-Length always present, "Connection: close"
/// emitted when `keep_alive` is false.
std::string SerializeHttpResponse(int http_status, std::string_view body,
                                  bool keep_alive);

/// Routes one parsed request through dispatch.h. `done` is invoked
/// exactly once (inline or on a service worker thread — see
/// DispatchRequestAsync) with the full serialized response, whether the
/// connection survives this response, and whether a shutdown was acked.
void RouteHttpRequestAsync(
    DimeService* service, const DispatchHooks& hooks, HttpRequest request,
    std::function<void(std::string response, bool keep_alive, bool shutdown)>
        done);

/// Blocking client helper (dime_cli --client --http, tests): one
/// request, one response. UNAVAILABLE when the server is unreachable
/// (the retryable arm, exactly like SendRequestLine), IO_ERROR /
/// DEADLINE_EXCEEDED / PARSE_ERROR otherwise. On success returns the
/// response BODY (a wire.h line) and stores the HTTP status in
/// *http_status when non-null.
StatusOr<std::string> SendHttpRequest(const std::string& host, int port,
                                      const std::string& method,
                                      const std::string& target,
                                      const std::string& body,
                                      int timeout_ms = 30000,
                                      int* http_status = nullptr);

}  // namespace dime

#endif  // DIME_SERVER_HTTP_H_
