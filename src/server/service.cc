#include "src/server/service.h"

#include <bit>
#include <exception>
#include <future>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/rules/rule_io.h"

namespace dime {
namespace {

ServiceOptions NormalizeOptions(ServiceOptions options) {
  if (options.num_workers == 0) options.num_workers = 1;
  return options;
}

std::shared_ptr<const DimeResult> ResultWithStatus(Status status) {
  auto result = std::make_shared<DimeResult>();
  result->status = std::move(status);
  return result;
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNaive:
      return "naive";
    case EngineKind::kPlus:
      return "plus";
    case EngineKind::kParallel:
      return "parallel";
  }
  return "unknown";
}

bool EngineKindFromName(std::string_view name, EngineKind* kind) {
  if (name == "naive") {
    *kind = EngineKind::kNaive;
  } else if (name == "plus") {
    *kind = EngineKind::kPlus;
  } else if (name == "parallel") {
    *kind = EngineKind::kParallel;
  } else {
    return false;
  }
  return true;
}

/// One admitted request, owned by the queue until a worker picks it up.
/// The deadline inside `control` is anchored at ADMISSION time, so time
/// spent waiting in the queue counts against it — a request that waited
/// out its whole budget is answered DEADLINE_EXCEEDED without touching
/// the engine.
struct DimeService::PendingCheck {
  const Group* group = nullptr;
  EngineKind engine = EngineKind::kPlus;
  RunControl control;
  Fingerprint fp;
  bool cache_insert = true;
  Deadline::Clock::time_point admit_time;
  std::promise<CheckReply> promise;
};

ServingCorpus CorpusFromSnapshot(LoadedSnapshot snapshot) {
  ServingCorpus corpus;
  corpus.schema = std::move(snapshot.schema);
  corpus.positive = std::move(snapshot.positive);
  corpus.negative = std::move(snapshot.negative);
  corpus.context = std::move(snapshot.context);
  corpus.shared_trees = std::move(snapshot.owned_trees);
  corpus.groups = std::move(snapshot.groups);
  corpus.prepared = std::move(snapshot.prepared);
  corpus.content_fingerprint_lo = snapshot.fingerprint_lo;
  corpus.content_fingerprint_hi = snapshot.fingerprint_hi;
  corpus.backing = std::move(snapshot.backing);
  return corpus;
}

DimeService::DimeService(ServingCorpus corpus, ServiceOptions options)
    : corpus_(std::move(corpus)),
      options_(NormalizeOptions(std::move(options))),
      rules_text_(
          RuleSetToText(corpus_.schema, corpus_.positive, corpus_.negative)),
      cache_(options_.cache_capacity),
      queue_(options_.queue_capacity) {
  for (size_t i = 0;
       i < corpus_.prepared.size() && i < corpus_.groups.size(); ++i) {
    if (corpus_.prepared[i] != nullptr) {
      prepared_by_group_[&corpus_.groups[i]] = corpus_.prepared[i].get();
    }
  }
  workers_.reserve(options_.num_workers);
  for (unsigned i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DimeService::~DimeService() { Shutdown(); }

void DimeService::Shutdown() {
  queue_.Close();
  MutexLock lock(&shutdown_mu_);
  if (workers_joined_) return;
  for (std::thread& worker : workers_) worker.join();
  workers_joined_ = true;
}

const Group* DimeService::FindGroup(std::string_view name) const {
  for (const Group& group : corpus_.groups) {
    if (group.name == name) return &group;
  }
  return nullptr;
}

Fingerprint DimeService::RequestFingerprint(EngineKind engine,
                                            const Group& group) const {
  std::string tsv = GroupToTsv(group);
  std::string bytes;
  // '\x1f' (unit separator) cannot occur in the TSV or rule grammars, so
  // the concatenation is unambiguous (no component can absorb another).
  bytes.reserve(rules_text_.size() + tsv.size() + 16);
  bytes += EngineKindName(engine);
  bytes += '\x1f';
  bytes += rules_text_;
  bytes += '\x1f';
  bytes += tsv;
  Fingerprint fp = FingerprintBytes(bytes);
  // Fold the corpus content fingerprint in (zero for TSV-ingested
  // corpora, so their keys are unchanged): two services warm-started from
  // different snapshots of the "same" group can never share a cache slot.
  fp.lo ^= corpus_.content_fingerprint_lo * 0x9e3779b97f4a7c15ULL;
  fp.hi ^= corpus_.content_fingerprint_hi * 0xc2b2ae3d27d4eb4fULL;
  return fp;
}

StatusOr<CheckReply> DimeService::Check(const CheckRequest& request) {
  const Group* group = request.group;
  if (group == nullptr) {
    if (request.group_name.empty()) {
      return InvalidArgumentError(
          "check request names no group (inline group or group_name "
          "required)");
    }
    group = FindGroup(request.group_name);
    if (group == nullptr) {
      return NotFoundError("unknown group '" + request.group_name + "'");
    }
  } else if (group->schema.attribute_names() !=
             corpus_.schema.attribute_names()) {
    return SchemaMismatchError(
        "inline group schema does not match the serving corpus schema");
  }

  EngineKind engine = request.engine.value_or(options_.default_engine);
  Fingerprint fp = RequestFingerprint(engine, *group);
  Deadline::Clock::time_point admit_time = Deadline::Clock::now();

  if (!request.bypass_cache) {
    if (std::shared_ptr<const DimeResult> hit = cache_.Lookup(fp)) {
      RecordAdmitted();
      RecordCompleted(admit_time);
      return CheckReply{std::move(hit), /*cache_hit=*/true};
    }
  }

  auto pending = std::make_unique<PendingCheck>();
  pending->group = group;
  pending->engine = engine;
  int64_t deadline_ms = request.deadline_ms > 0 ? request.deadline_ms
                                                : options_.default_deadline_ms;
  if (deadline_ms > 0) {
    pending->control.deadline = Deadline::AfterMillis(deadline_ms);
  }
  pending->fp = fp;
  pending->cache_insert = !request.bypass_cache;
  pending->admit_time = admit_time;
  std::future<CheckReply> reply = pending->promise.get_future();

  switch (queue_.TryPush(std::move(pending))) {
    case QueuePushResult::kAccepted:
      break;
    case QueuePushResult::kFull:
      RecordRejected();
      return ResourceExhaustedError(
          "request queue full (capacity " +
          std::to_string(queue_.capacity()) + "); retry later");
    case QueuePushResult::kClosed:
      return UnavailableError("service is shutting down");
  }
  RecordAdmitted();
  return reply.get();
}

void DimeService::WorkerLoop() {
  while (std::optional<std::unique_ptr<PendingCheck>> item =
             queue_.BlockingPop()) {
    std::unique_ptr<PendingCheck>& pending = *item;
    if (options_.worker_pre_run_hook) options_.worker_pre_run_hook();
    CheckReply reply = Execute(*pending);
    RecordCompleted(pending->admit_time);
    pending->promise.set_value(std::move(reply));
  }
}

CheckReply DimeService::Execute(PendingCheck& pending) {
  Status admitted = pending.control.Check("server/worker-start");
  if (!admitted.ok()) {
    // The deadline ran out while the request sat in the queue: answer
    // with an empty-but-valid result, exactly like RunCorpus does for
    // groups that start after expiry.
    return CheckReply{ResultWithStatus(std::move(admitted)), false};
  }

  auto result = std::make_shared<DimeResult>();
  // A resident server must confine a faulting request to that request:
  // capture anything the engines throw (e.g. bad_alloc on a pathological
  // group) as an INTERNAL result instead of unwinding through the pool.
  try {
    // Snapshot-preloaded groups come fully prepared (with rule artifacts
    // attached) — the warm-start payoff is skipping this PrepareGroup.
    PreparedGroup local;
    const PreparedGroup* pg;
    auto preloaded = prepared_by_group_.find(pending.group);
    if (preloaded != prepared_by_group_.end()) {
      pg = preloaded->second;
    } else {
      local = PrepareGroup(*pending.group, corpus_.positive,
                           corpus_.negative, corpus_.context);
      pg = &local;
    }
    switch (pending.engine) {
      case EngineKind::kNaive:
        *result =
            RunDime(*pg, corpus_.positive, corpus_.negative, pending.control);
        break;
      case EngineKind::kPlus:
        *result = RunDimePlus(*pg, corpus_.positive, corpus_.negative,
                              options_.dime_plus, pending.control);
        break;
      case EngineKind::kParallel:
        *result = RunDimeParallel(*pg, corpus_.positive, corpus_.negative,
                                  options_.parallel, pending.control);
        break;
    }
  } catch (const std::exception& e) {
    *result = DimeResult{};
    result->status = InternalError(std::string("engine fault: ") + e.what());
  } catch (...) {
    *result = DimeResult{};
    result->status = InternalError("engine fault: unknown exception");
  }

  RecordEngineStats(*result);
  std::shared_ptr<const DimeResult> shared = std::move(result);
  if (pending.cache_insert && shared->status.ok()) {
    cache_.Insert(pending.fp, shared);
  }
  return CheckReply{std::move(shared), false};
}

void DimeService::RecordEngineStats(const DimeResult& result) {
  MutexLock lock(&stats_mu_);
  engine_transitivity_skips_ += result.stats.pairs_skipped_by_transitivity;
  engine_kernel_exits_ += result.stats.kernel_early_exits;
}

void DimeService::RecordAdmitted() {
  MutexLock lock(&stats_mu_);
  ++accepted_;
}

void DimeService::RecordRejected() {
  MutexLock lock(&stats_mu_);
  ++rejected_;
}

void DimeService::RecordCompleted(Deadline::Clock::time_point admit_time) {
  uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Deadline::Clock::now() - admit_time)
          .count());
  int bucket = static_cast<int>(std::bit_width(micros));
  if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
  MutexLock lock(&stats_mu_);
  ++completed_;
  ++latency_buckets_[bucket];
}

namespace {

/// Upper bound (ms) of the histogram bucket containing quantile `q`.
double PercentileFromBuckets(const uint64_t* buckets, int num_buckets,
                             double q) {
  uint64_t total = 0;
  for (int i = 0; i < num_buckets; ++i) total += buckets[i];
  if (total == 0) return 0.0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (int i = 0; i < num_buckets; ++i) {
    seen += buckets[i];
    if (seen >= target) {
      // Bucket i covers [2^(i-1), 2^i) microseconds.
      return static_cast<double>(1ULL << i) / 1000.0;
    }
  }
  return static_cast<double>(1ULL << (num_buckets - 1)) / 1000.0;
}

}  // namespace

StatsSnapshot DimeService::Stats() const {
  StatsSnapshot s;
  ResultCache::Counters cache = cache_.counters();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_size = cache.size;
  s.cache_capacity = cache_.capacity();
  s.queue_depth = queue_.size();
  s.queue_capacity = queue_.capacity();
  s.workers = options_.num_workers;
  MutexLock lock(&stats_mu_);
  s.accepted = accepted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.pairs_skipped_by_transitivity = engine_transitivity_skips_;
  s.kernel_early_exits = engine_kernel_exits_;
  s.p50_ms = PercentileFromBuckets(latency_buckets_, kLatencyBuckets, 0.50);
  s.p99_ms = PercentileFromBuckets(latency_buckets_, kLatencyBuckets, 0.99);
  return s;
}

}  // namespace dime
