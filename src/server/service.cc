#include "src/server/service.h"

#include <bit>
#include <cstdio>
#include <exception>
#include <future>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/common/fault_injection.h"
#include "src/common/logging.h"
#include "src/exec/sharded_dime.h"

namespace dime {
namespace {

ServiceOptions NormalizeOptions(ServiceOptions options) {
  if (options.num_workers == 0) options.num_workers = 1;
  return options;
}

std::shared_ptr<const DimeResult> ResultWithStatus(Status status) {
  auto result = std::make_shared<DimeResult>();
  result->status = std::move(status);
  return result;
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNaive:
      return "naive";
    case EngineKind::kPlus:
      return "plus";
    case EngineKind::kParallel:
      return "parallel";
    case EngineKind::kSharded:
      return "sharded";
  }
  return "unknown";
}

bool EngineKindFromName(std::string_view name, EngineKind* kind) {
  if (name == "naive") {
    *kind = EngineKind::kNaive;
  } else if (name == "plus") {
    *kind = EngineKind::kPlus;
  } else if (name == "parallel") {
    *kind = EngineKind::kParallel;
  } else if (name == "sharded") {
    *kind = EngineKind::kSharded;
  } else {
    return false;
  }
  return true;
}

/// One admitted request, owned by the queue until a worker picks it up.
/// The deadline inside `control` is anchored at ADMISSION time, so time
/// spent waiting in the queue counts against it — a request that waited
/// out its whole budget is answered DEADLINE_EXCEEDED without touching
/// the engine. `epoch` is the generation pinned at admission: the worker
/// serves from it even if a swap lands while the request waits, and the
/// pin keeps `group` valid when it points into the epoch's corpus.
struct DimeService::PendingCheck {
  std::shared_ptr<const CorpusEpoch> epoch;
  const Group* group = nullptr;
  EngineKind engine = EngineKind::kPlus;
  RunControl control;
  Fingerprint fp;
  bool cache_insert = true;
  Deadline::Clock::time_point admit_time;
  CheckCallback done;
};

DimeService::DimeService(ServingCorpus corpus, ServiceOptions options)
    : options_(NormalizeOptions(std::move(options))),
      engine_pool_(std::make_unique<exec::WorkStealingPool>(
          exec::PoolOptions{options_.engine_threads})),
      epochs_(options_.epoch_retire_hook),
      cache_(options_.cache_capacity),
      queue_(options_.queue_capacity) {
  epochs_.Install(std::move(corpus));
  workers_.reserve(options_.num_workers);
  for (unsigned i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

DimeService::~DimeService() { Shutdown(); }

void DimeService::Shutdown() {
  queue_.Close();
  MutexLock lock(&shutdown_mu_);
  if (workers_joined_) return;
  for (std::thread& worker : workers_) worker.join();
  workers_joined_ = true;
}

std::shared_ptr<const CorpusEpoch> DimeService::CurrentEpoch() const {
  return epochs_.Pin();
}

const Group* DimeService::FindGroup(std::string_view name) const {
  return epochs_.Pin()->FindGroup(name);
}

ReloadOutcome DimeService::InstallCorpus(ServingCorpus corpus) {
  std::shared_ptr<const CorpusEpoch> epoch =
      epochs_.Install(std::move(corpus));
  // Hygiene, not correctness: keys already fold the epoch fingerprint,
  // so stale entries could never hit — but they would sit in the LRU
  // evicting useful ones.
  cache_.Clear();
  ReloadOutcome outcome;
  outcome.sequence = epoch->sequence();
  outcome.fingerprint_lo = epoch->fingerprint_lo();
  outcome.fingerprint_hi = epoch->fingerprint_hi();
  outcome.groups = epoch->corpus().groups.size();
  return outcome;
}

std::string FingerprintToWireHex(uint64_t lo, uint64_t hi) {
  // hi word first: the same order every log line and dime_snapshot
  // inspect/build print, so a fingerprint copied from either pastes
  // straight into a gated reload.
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

bool FingerprintFromWireHex(std::string_view hex, uint64_t* lo, uint64_t* hi) {
  if (hex.size() != 32) return false;
  uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      char c = hex[static_cast<size_t>(w * 16 + i)];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint64_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint64_t>(c - 'A') + 10;
      } else {
        return false;
      }
      words[w] = (words[w] << 4) | digit;
    }
  }
  *hi = words[0];
  *lo = words[1];
  return true;
}

StatusOr<ReloadOutcome> DimeService::ReloadFromSnapshot(
    const std::string& path, const std::string& expected_fingerprint) {
  uint64_t want_lo = 0;
  uint64_t want_hi = 0;
  const bool gated = !expected_fingerprint.empty();
  if (gated &&
      !FingerprintFromWireHex(expected_fingerprint, &want_lo, &want_hi)) {
    return InvalidArgumentError(
        "reload fingerprint '" + expected_fingerprint +
        "' is not 32 hex digits (expected the wire form a reload response "
        "carries)");
  }
  if (gated) {
    std::shared_ptr<const CorpusEpoch> current = epochs_.Pin();
    if (current->fingerprint_lo() == want_lo &&
        current->fingerprint_hi() == want_hi) {
      // The fleet-coordination fast path: this replica already serves the
      // requested build, so re-loading the file would only churn an
      // identical epoch (and clear a warm cache) for nothing.
      ReloadOutcome outcome;
      outcome.sequence = current->sequence();
      outcome.fingerprint_lo = current->fingerprint_lo();
      outcome.fingerprint_hi = current->fingerprint_hi();
      outcome.groups = current->corpus().groups.size();
      outcome.noop = true;
      return outcome;
    }
  }
  if (DIME_FAULT_POINT(failpoints::kStoreSwap)) {
    return UnavailableError(
        "injected fault at store/swap: reload of " + path +
        " abandoned before install");
  }
  StatusOr<LoadedSnapshot> loaded = LoadSnapshot(path);
  if (!loaded.ok()) return loaded.status();
  ServingCorpus corpus = CorpusFromSnapshot(std::move(loaded).value());
  if (gated && (corpus.content_fingerprint_lo != want_lo ||
                corpus.content_fingerprint_hi != want_hi)) {
    // The file on disk is not the build the coordinator asked for (a
    // stale or not-yet-pushed snapshot). Installing it would "succeed"
    // while silently serving the wrong content — refuse, keep serving
    // the current epoch.
    return InvalidArgumentError(
        "snapshot " + path + " has fingerprint " +
        FingerprintToWireHex(corpus.content_fingerprint_lo,
                             corpus.content_fingerprint_hi) +
        " but the reload requested " + expected_fingerprint +
        "; nothing was installed");
  }
  return InstallCorpus(std::move(corpus));
}

StatusOr<ReloadOutcome> DimeService::ApplyDeltaLog(const std::string& path,
                                                   bool rotate_applied) {
  bool grew = false;
  if (!rotate_applied) return ApplyDeltaLogAttempt(path, nullptr, &grew);
  // Merge-then-rotate must be atomic against live producers: a record
  // appended between the read and the rename would be rotated away
  // without ever being applied. Every DeltaLogWriter::Append holds the
  // log's flock, so a size check under the same lock proves quiescence.
  // The expensive part (re-preparing every group) runs unlocked; only
  // the final attempt holds producers off for the whole merge, which
  // guarantees progress under continuous append load.
  constexpr int kMergeAttempts = 3;
  for (int attempt = 0; attempt < kMergeAttempts; ++attempt) {
    DeltaLogLock lock;
    if (attempt == kMergeAttempts - 1) {
      Status held = lock.Acquire(path);
      if (!held.ok()) return held;
    }
    grew = false;
    StatusOr<ReloadOutcome> merged = ApplyDeltaLogAttempt(path, &lock, &grew);
    if (!grew) return merged;
  }
  // Unreachable: the locked final attempt cannot observe growth.
  return InternalError("delta log merge never converged");
}

StatusOr<ReloadOutcome> DimeService::ApplyDeltaLogAttempt(
    const std::string& path, DeltaLogLock* lock, bool* grew_during_merge) {
  StatusOr<DeltaLogContents> log = ReadDeltaLog(path);
  if (!log.ok()) return log.status();

  std::shared_ptr<const CorpusEpoch> base = epochs_.Pin();
  const ServingCorpus& old = base->corpus();

  // Every record must name a resident group, or the merge is refused
  // whole: a half-applied log must never become an epoch.
  for (size_t r = 0; r < log->records.size(); ++r) {
    if (base->FindGroup(log->records[r].group) == nullptr) {
      return NotFoundError("delta record " + std::to_string(r) +
                           " names unknown group '" + log->records[r].group +
                           "'");
    }
  }

  ServingCorpus next;
  next.schema = old.schema;
  next.positive = old.positive;
  next.negative = old.negative;
  next.context = old.context;
  // Ontology trees are shared with the base epoch, so the raw pointers
  // inside next.context stay valid in both generations.
  next.shared_trees = old.shared_trees;
  next.groups = old.groups;  // deep copies — the records mutate these

  size_t applied_total = 0;
  for (Group& group : next.groups) {
    size_t applied = 0;
    Status status = ApplyDeltaRecords(log->records, &group, &applied);
    if (!status.ok()) return status;
    applied_total += applied;
  }

  // Re-prepare so the merged epoch serves fully warm, exactly like a
  // snapshot load (this is the bulk-recompute half of the incremental
  // split; the per-request IncrementalDime path stays for small deltas).
  next.prepared.reserve(next.groups.size());
  for (const Group& group : next.groups) {
    next.prepared.push_back(std::make_shared<PreparedGroup>(
        PrepareGroup(group, next.positive, next.negative, next.context)));
  }

  if (lock != nullptr) {
    if (!lock->held()) {
      if (options_.delta_merge_race_hook) options_.delta_merge_race_hook();
      Status held = lock->Acquire(path);
      if (!held.ok()) return held;
    }
    StatusOr<uint64_t> size_now = lock->SizeNow();
    if (!size_now.ok()) return size_now.status();
    if (*size_now != log->file_bytes) {
      // A producer appended while we merged: rotating now would discard
      // its acknowledged records unapplied. Throw this merge away and
      // redo it from the grown log. (A torn tail from a LIVE writer also
      // lands here — its append finishes before we can hold the lock —
      // so a torn tail that survives to the install below is a crashed
      // producer, safe to drop.)
      *grew_during_merge = true;
      return InternalError("delta log grew during merge");
    }
  }

  ReloadOutcome outcome = InstallCorpus(std::move(next));
  outcome.delta_records = applied_total;
  outcome.torn_tail = log->torn_tail;
  {
    MutexLock stats_lock(&stats_mu_);
    delta_records_applied_ += applied_total;
  }
  if (lock != nullptr) {
    Status rotated = lock->RotateTo(path + ".applied." +
                                    std::to_string(outcome.sequence));
    if (!rotated.ok()) {
      DIME_LOG(WARNING) << rotated.ToString()
                        << " (the merged epoch is installed and serving)";
    }
  }
  return outcome;
}

Fingerprint DimeService::RequestFingerprint(EngineKind engine,
                                            const Group& group) const {
  return RequestFingerprint(engine, group, *epochs_.Pin());
}

Fingerprint DimeService::RequestFingerprint(EngineKind engine,
                                            const Group& group,
                                            const CorpusEpoch& epoch) const {
  std::string tsv = GroupToTsv(group);
  std::string bytes;
  // '\x1f' (unit separator) cannot occur in the TSV or rule grammars, so
  // the concatenation is unambiguous (no component can absorb another).
  const std::string& rules_text = epoch.rules_text();
  bytes.reserve(rules_text.size() + tsv.size() + 16);
  bytes += EngineKindName(engine);
  bytes += '\x1f';
  bytes += rules_text;
  bytes += '\x1f';
  bytes += tsv;
  Fingerprint fp = FingerprintBytes(bytes);
  // Fold the epoch content fingerprint in: two epochs that differ
  // anywhere (different snapshot, delta-merged successor) can never share
  // a cache slot, while identical content legitimately can.
  fp.lo ^= epoch.fingerprint_lo() * 0x9e3779b97f4a7c15ULL;
  fp.hi ^= epoch.fingerprint_hi() * 0xc2b2ae3d27d4eb4fULL;
  return fp;
}

StatusOr<CheckReply> DimeService::Check(const CheckRequest& request) {
  // `done` always fires before the worker releases the PendingCheck (or
  // inline below), so the promise outlives every use of the reference.
  std::promise<StatusOr<CheckReply>> promise;
  std::future<StatusOr<CheckReply>> reply = promise.get_future();
  CheckAsync(request, [&promise](StatusOr<CheckReply> r) {
    promise.set_value(std::move(r));
  });
  return reply.get();
}

void DimeService::CheckAsync(const CheckRequest& request, CheckCallback done) {
  std::shared_ptr<const CorpusEpoch> epoch = epochs_.Pin();
  const Group* group = request.group;
  if (group == nullptr) {
    if (request.group_name.empty()) {
      done(InvalidArgumentError(
          "check request names no group (inline group or group_name "
          "required)"));
      return;
    }
    // Resolved against the epoch pinned above — never against a corpus
    // that a concurrent swap might retire under us.
    group = epoch->FindGroup(request.group_name);
    if (group == nullptr) {
      done(NotFoundError("unknown group '" + request.group_name + "'"));
      return;
    }
  } else if (group->schema.attribute_names() !=
             epoch->corpus().schema.attribute_names()) {
    done(SchemaMismatchError(
        "inline group schema does not match the serving corpus schema"));
    return;
  }

  EngineKind engine = request.engine.value_or(options_.default_engine);
  Fingerprint fp = RequestFingerprint(engine, *group, *epoch);
  Deadline::Clock::time_point admit_time = Deadline::Clock::now();

  if (!request.bypass_cache) {
    if (std::shared_ptr<const DimeResult> hit = cache_.Lookup(fp)) {
      RecordAdmitted();
      RecordCompleted(admit_time);
      done(CheckReply{std::move(hit), /*cache_hit=*/true, std::move(epoch),
                      group});
      return;
    }
  }

  auto pending = std::make_unique<PendingCheck>();
  pending->epoch = std::move(epoch);
  pending->group = group;
  pending->engine = engine;
  int64_t deadline_ms = request.deadline_ms > 0 ? request.deadline_ms
                                                : options_.default_deadline_ms;
  if (deadline_ms > 0) {
    pending->control.deadline = Deadline::AfterMillis(deadline_ms);
  }
  pending->fp = fp;
  pending->cache_insert = !request.bypass_cache;
  pending->admit_time = admit_time;
  pending->done = std::move(done);

  // A rejected TryPush leaves `pending` (and the callback inside it) with
  // us, so the shed arms below can still answer the caller.
  switch (queue_.TryPush(std::move(pending))) {
    case QueuePushResult::kAccepted:
      RecordAdmitted();
      return;
    case QueuePushResult::kFull:
      RecordRejected();
      pending->done(ResourceExhaustedError(
          "request queue full (capacity " + std::to_string(queue_.capacity()) +
          "); retry later"));
      return;
    case QueuePushResult::kClosed:
      pending->done(UnavailableError("service is shutting down"));
      return;
  }
}

void DimeService::WorkerLoop() {
  while (std::optional<std::unique_ptr<PendingCheck>> item =
             queue_.BlockingPop()) {
    std::unique_ptr<PendingCheck>& pending = *item;
    if (options_.worker_pre_run_hook) options_.worker_pre_run_hook();
    CheckReply reply = Execute(*pending);
    RecordCompleted(pending->admit_time);
    pending->done(std::move(reply));
  }
}

CheckReply DimeService::Execute(PendingCheck& pending) {
  const ServingCorpus& corpus = pending.epoch->corpus();
  Status admitted = pending.control.Check("server/worker-start");
  if (!admitted.ok()) {
    // The deadline ran out while the request sat in the queue: answer
    // with an empty-but-valid result, exactly like RunCorpus does for
    // groups that start after expiry.
    return CheckReply{ResultWithStatus(std::move(admitted)), false,
                      pending.epoch, pending.group};
  }

  auto result = std::make_shared<DimeResult>();
  // A resident server must confine a faulting request to that request:
  // capture anything the engines throw (e.g. bad_alloc on a pathological
  // group) as an INTERNAL result instead of unwinding through the pool.
  try {
    // Snapshot-preloaded (or delta-merge re-prepared) groups come fully
    // prepared with rule artifacts attached — the warm-start payoff is
    // skipping this PrepareGroup.
    PreparedGroup local;
    const PreparedGroup* pg = pending.epoch->FindPrepared(pending.group);
    if (pg == nullptr) {
      local = PrepareGroup(*pending.group, corpus.positive, corpus.negative,
                           corpus.context);
      pg = &local;
    }
    switch (pending.engine) {
      case EngineKind::kNaive:
        *result =
            RunDime(*pg, corpus.positive, corpus.negative, pending.control);
        break;
      case EngineKind::kPlus:
        *result = RunDimePlus(*pg, corpus.positive, corpus.negative,
                              options_.dime_plus, pending.control);
        break;
      case EngineKind::kParallel: {
        ParallelOptions popts = options_.parallel;
        if (popts.pool == nullptr) popts.pool = engine_pool_.get();
        *result = RunDimeParallel(*pg, corpus.positive, corpus.negative,
                                  popts, pending.control);
        break;
      }
      case EngineKind::kSharded: {
        exec::ShardedOptions sopts;
        sopts.pool = engine_pool_.get();
        sopts.plus = options_.dime_plus;
        *result = exec::RunDimePlusSharded(*pg, corpus.positive,
                                           corpus.negative, sopts,
                                           pending.control);
        break;
      }
    }
  } catch (const std::exception& e) {
    *result = DimeResult{};
    result->status = InternalError(std::string("engine fault: ") + e.what());
  } catch (...) {
    *result = DimeResult{};
    result->status = InternalError("engine fault: unknown exception");
  }

  RecordEngineStats(*result);
  std::shared_ptr<const DimeResult> shared = std::move(result);
  if (pending.cache_insert && shared->status.ok()) {
    cache_.Insert(pending.fp, shared);
  }
  return CheckReply{std::move(shared), false, pending.epoch, pending.group};
}

void DimeService::RecordEngineStats(const DimeResult& result) {
  MutexLock lock(&stats_mu_);
  engine_transitivity_skips_ += result.stats.pairs_skipped_by_transitivity;
  engine_kernel_exits_ += result.stats.kernel_early_exits;
}

void DimeService::RecordAdmitted() {
  MutexLock lock(&stats_mu_);
  ++accepted_;
}

void DimeService::RecordRejected() {
  MutexLock lock(&stats_mu_);
  ++rejected_;
}

void DimeService::RecordCompleted(Deadline::Clock::time_point admit_time) {
  uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Deadline::Clock::now() - admit_time)
          .count());
  int bucket = static_cast<int>(std::bit_width(micros));
  if (bucket >= kLatencyBuckets) bucket = kLatencyBuckets - 1;
  MutexLock lock(&stats_mu_);
  ++completed_;
  ++latency_buckets_[bucket];
}

namespace {

/// Upper bound (ms) of the histogram bucket containing quantile `q`.
double PercentileFromBuckets(const uint64_t* buckets, int num_buckets,
                             double q) {
  uint64_t total = 0;
  for (int i = 0; i < num_buckets; ++i) total += buckets[i];
  if (total == 0) return 0.0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (int i = 0; i < num_buckets; ++i) {
    seen += buckets[i];
    if (seen >= target) {
      // Bucket i covers [2^(i-1), 2^i) microseconds.
      return static_cast<double>(1ULL << i) / 1000.0;
    }
  }
  return static_cast<double>(1ULL << (num_buckets - 1)) / 1000.0;
}

}  // namespace

StatsSnapshot DimeService::Stats() const {
  StatsSnapshot s;
  ResultCache::Counters cache = cache_.counters();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_size = cache.size;
  s.cache_capacity = cache_.capacity();
  s.queue_depth = queue_.size();
  s.queue_capacity = queue_.capacity();
  s.workers = options_.num_workers;
  s.epoch_sequence = epochs_.current_sequence();
  s.epochs_installed = epochs_.installed();
  s.epochs_retired = epochs_.retired();
  MutexLock lock(&stats_mu_);
  s.accepted = accepted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.delta_records_applied = delta_records_applied_;
  s.pairs_skipped_by_transitivity = engine_transitivity_skips_;
  s.kernel_early_exits = engine_kernel_exits_;
  s.p50_ms = PercentileFromBuckets(latency_buckets_, kLatencyBuckets, 0.50);
  s.p99_ms = PercentileFromBuckets(latency_buckets_, kLatencyBuckets, 0.99);
  return s;
}

}  // namespace dime
