#ifndef DIME_SERVER_NET_UTIL_H_
#define DIME_SERVER_NET_UTIL_H_

#include <string>
#include <string_view>

#include "src/common/status.h"

/// \file net_util.h
/// Shared socket plumbing for the serving layer: the blocking client
/// helpers (SendRequestLine in tcp_server.h, SendHttpRequest in http.h)
/// and the non-blocking event-loop transport (event_loop.h) sit on the
/// same handful of primitives, so error handling (EINTR retries, short
/// writes, MSG_NOSIGNAL) lives exactly once.

namespace dime {

/// Sends all of `data`, handling short writes and EINTR. False on error
/// (errno is preserved). Uses MSG_NOSIGNAL so a dead peer is a return
/// code, never a SIGPIPE.
bool SendAll(int fd, std::string_view data);

/// SO_RCVTIMEO for blocking clients; <= 0 is a no-op.
void SetRecvTimeout(int fd, int timeout_ms);

/// O_NONBLOCK for event-loop sockets. False on fcntl failure.
bool SetNonBlocking(int fd);

/// Resolves host:port (numeric or DNS) and connects (blocking, with
/// `timeout_ms` as the receive timeout). -1 on failure.
int ConnectToHost(const std::string& host, int port, int timeout_ms);

/// Reads bytes until '\n' or EOF. True when a full line (without the
/// '\n') landed in *line; false on EOF, timeout, or a line past an
/// internal 64 MiB abuse cap.
bool RecvLine(int fd, std::string* line);

/// Creates, binds, and listens an IPv4 TCP socket. On success returns
/// the fd and writes the bound port (after an ephemeral port 0 bind) to
/// *bound_port. IO_ERROR / INVALID_ARGUMENT otherwise.
StatusOr<int> ListenTcp(const std::string& host, int port, int backlog,
                        int* bound_port);

}  // namespace dime

#endif  // DIME_SERVER_NET_UTIL_H_
