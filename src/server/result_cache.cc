#include "src/server/result_cache.h"

namespace dime {
namespace {

/// 64-bit FNV-1a with a caller-chosen offset basis. The standard basis
/// gives the canonical hash; a second, distinct basis gives a stream that
/// disagrees with the first on any input differing in at least one byte
/// position's contribution — good enough independence for a cache key.
uint64_t Fnv1a64(std::string_view bytes, uint64_t basis) {
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  uint64_t h = basis;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kPrime;
  }
  return h;
}

}  // namespace

Fingerprint FingerprintBytes(std::string_view bytes) {
  constexpr uint64_t kStandardBasis = 0xcbf29ce484222325ULL;
  // Arbitrary second basis (digits of pi); any constant != the standard
  // basis yields an independent stream.
  constexpr uint64_t kAltBasis = 0x243f6a8885a308d3ULL;
  return Fingerprint{Fnv1a64(bytes, kStandardBasis),
                     Fnv1a64(bytes, kAltBasis)};
}

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const DimeResult> ResultCache::Lookup(const Fingerprint& key) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh: move to front
  return it->second->value;
}

void ResultCache::Insert(const Fingerprint& key,
                         std::shared_ptr<const DimeResult> value) {
  if (capacity_ == 0) return;
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent misses on the same key both compute and both insert;
    // refresh rather than duplicate.
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(Entry{key, std::move(value)});
  index_[key] = lru_.begin();
  ++counters_.insertions;
}

void ResultCache::Clear() {
  MutexLock lock(&mu_);
  index_.clear();
  lru_.clear();
}

ResultCache::Counters ResultCache::counters() const {
  MutexLock lock(&mu_);
  Counters out = counters_;
  out.size = lru_.size();
  return out;
}

}  // namespace dime
