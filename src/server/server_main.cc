// dime_server: the resident DIME service. Loads a corpus (rules +
// ontologies + optional preloaded groups) ONCE and answers repeated
// "check group G" requests over the line-delimited JSON protocol of
// src/server/wire.h on a TCP socket.
//
// Usage:
//   dime_server --demo [--demo-pages N]           # generated Scholar corpus
//   dime_server --snapshot corpus.snap            # warm start (dime_snapshot)
//   dime_server --group page.tsv [--group ...] --rules rules.txt
//               [--venue-ontology]
//               [--ontology tree.txt --ontology-mode exact|keyword]
//
// --snapshot may be combined with --demo or --group/--rules: a snapshot
// that fails to load (corrupt, truncated, newer format) logs a warning
// and the server degrades to the TSV/demo corpus instead of crashing;
// with no fallback source the load error is fatal.
//   common flags:
//               [--host 127.0.0.1] [--port 0]     # port 0 = ephemeral
//               [--workers N] [--queue-cap N] [--cache-cap N]
//               [--default-deadline-ms N] [--engine naive|plus|parallel]
//               [--idle-timeout-ms N]
//
// On startup the server prints exactly one line
//   dime_server listening on <host>:<port>
// to stdout (flushed), so scripts can scrape the bound port when using
// --port 0. It exits 0 after a clean {"type":"shutdown"} round trip;
// failures exit with the Status-coded mapping of src/common/exit_code.h.
//
// Smoke test from a shell (see also `dime_cli --client`):
//   dime_server --demo --port 7421 &
//   dime_cli --client --port 7421 --request ping

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/exit_code.h"
#include "src/datagen/presets.h"
#include "src/ontology/builtin.h"
#include "src/datagen/scholar_gen.h"
#include "src/rules/rule_io.h"
#include "src/server/tcp_server.h"
#include "src/store/snapshot.h"

namespace {

using namespace dime;

/// The generated demo corpus: the Scholar preset rules/ontologies plus a
/// few medium pages named page_0..page_{n-1} (addressable via the
/// "group" request field).
ServingCorpus MakeDemoCorpus(size_t pages) {
  ScholarSetup setup = MakeScholarSetup();
  ServingCorpus corpus;
  corpus.schema = setup.schema;
  corpus.positive = std::move(setup.positive);
  corpus.negative = std::move(setup.negative);
  corpus.context = setup.context;
  // Moving the unique_ptr keeps the raw pointers in context.ontologies
  // valid: they point at the tree object, not at the unique_ptr.
  corpus.owned_trees.push_back(std::move(setup.venue_tree));
  for (size_t i = 0; i < pages; ++i) {
    ScholarGenOptions gen;
    gen.num_correct = 120;
    gen.seed = 1000 + i * 17;
    gen.garbage_pubs = 3 + i % 4;
    gen.chem_namesake_pubs = 2 + i % 3;
    Group page = GenerateScholarGroup("Demo Owner " + std::to_string(i), gen);
    page.name = "page_" + std::to_string(i);
    corpus.groups.push_back(std::move(page));
  }
  return corpus;
}

int Usage(const char* msg) {
  std::fprintf(stderr, "dime_server: %s (run with --help for usage)\n", msg);
  return ExitCodeForStatusCode(StatusCode::kInvalidArgument);
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  size_t demo_pages = 4;
  std::string snapshot_path;
  std::vector<std::string> group_paths;
  std::string rules_path;
  bool use_venue_ontology = false;
  std::vector<std::string> ontology_paths;
  std::vector<std::string> ontology_modes;
  TcpServerOptions transport;
  ServiceOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(ExitCodeForStatusCode(StatusCode::kInvalidArgument));
      }
      return argv[++i];
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--snapshot") {
      snapshot_path = next();
    } else if (arg == "--demo-pages") {
      demo_pages = static_cast<size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--group") {
      group_paths.push_back(next());
    } else if (arg == "--rules") {
      rules_path = next();
    } else if (arg == "--venue-ontology") {
      use_venue_ontology = true;
    } else if (arg == "--ontology") {
      ontology_paths.push_back(next());
      ontology_modes.push_back("exact");
    } else if (arg == "--ontology-mode") {
      if (ontology_modes.empty()) {
        return Usage("--ontology-mode needs a preceding --ontology");
      }
      ontology_modes.back() = next();
    } else if (arg == "--host") {
      transport.host = next();
    } else if (arg == "--port") {
      transport.port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--workers") {
      options.num_workers =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--queue-cap") {
      options.queue_capacity =
          static_cast<size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--cache-cap") {
      options.cache_capacity =
          static_cast<size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--default-deadline-ms") {
      options.default_deadline_ms = std::strtol(next(), nullptr, 10);
    } else if (arg == "--engine") {
      EngineKind kind;
      if (!EngineKindFromName(next(), &kind)) {
        return Usage("--engine must be naive, plus, or parallel");
      }
      options.default_engine = kind;
    } else if (arg == "--idle-timeout-ms") {
      transport.idle_timeout_ms =
          static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--help") {
      std::printf(
          "dime_server --demo | --snapshot <file> | --group <tsv>... "
          "--rules <file>\n"
          "  [--venue-ontology] [--ontology <tree> --ontology-mode m]\n"
          "  [--host H] [--port N] [--workers N] [--queue-cap N]\n"
          "  [--cache-cap N] [--default-deadline-ms N] [--engine e]\n"
          "  [--idle-timeout-ms N] [--demo-pages N]\n");
      return 0;
    } else {
      return Usage(("unknown flag: " + arg).c_str());
    }
  }

  ServingCorpus corpus;
  bool warm_started = false;
  if (!snapshot_path.empty()) {
    StatusOr<LoadedSnapshot> loaded = LoadSnapshot(snapshot_path);
    if (loaded.ok()) {
      const bool mapped = loaded->mapped;
      corpus = CorpusFromSnapshot(std::move(loaded).value());
      warm_started = true;
      std::printf("dime_server: warm start from %s (%s, fingerprint "
                  "%016llx%016llx)\n",
                  snapshot_path.c_str(),
                  mapped ? "mmap" : "read fallback",
                  static_cast<unsigned long long>(
                      corpus.content_fingerprint_hi),
                  static_cast<unsigned long long>(
                      corpus.content_fingerprint_lo));
    } else if (demo || !group_paths.empty()) {
      // Degrade, never crash: a damaged snapshot costs the warm start,
      // not the service.
      std::fprintf(stderr,
                   "dime_server: WARNING: snapshot %s unusable (%s); "
                   "falling back to TSV ingestion\n",
                   snapshot_path.c_str(),
                   loaded.status().ToString().c_str());
    } else {
      return ExitWithStatus(loaded.status(),
                            ("loading snapshot " + snapshot_path).c_str());
    }
  }
  if (warm_started) {
    // Snapshot wins; any --demo/--group/--rules were only the fallback.
  } else if (demo) {
    if (!group_paths.empty() || !rules_path.empty()) {
      return Usage("--demo and --group/--rules are mutually exclusive");
    }
    corpus = MakeDemoCorpus(demo_pages);
  } else {
    if (group_paths.empty()) {
      return Usage("need --demo, --snapshot, or at least one --group");
    }
    if (rules_path.empty()) return Usage("need --rules with --group");
    for (const std::string& path : group_paths) {
      Group group;
      Status loaded = LoadGroup(path, path, &group);
      if (!loaded.ok()) {
        return ExitWithStatus(loaded, ("loading " + path).c_str());
      }
      if (group.name.empty()) group.name = path;
      corpus.groups.push_back(std::move(group));
    }
    corpus.schema = corpus.groups.front().schema;
    if (use_venue_ontology) {
      corpus.context.ontologies.push_back(
          OntologyRef{&VenueOntology(), MapMode::kExactName});
      corpus.context.ontologies.push_back(
          OntologyRef{&VenueOntology(), MapMode::kKeyword});
    }
    for (size_t i = 0; i < ontology_paths.size(); ++i) {
      auto tree = std::make_unique<Ontology>();
      if (!Ontology::LoadFromFile(ontology_paths[i], tree.get())) {
        return ExitWithStatus(
            NotFoundError("cannot load ontology " + ontology_paths[i]),
            "startup");
      }
      MapMode mode = ontology_modes[i] == "keyword" ? MapMode::kKeyword
                                                    : MapMode::kExactName;
      corpus.context.ontologies.push_back(OntologyRef{tree.get(), mode});
      corpus.owned_trees.push_back(std::move(tree));
    }
    std::string error;
    if (!LoadRuleSet(rules_path, corpus.schema, &corpus.positive,
                     &corpus.negative, &error)) {
      return ExitWithStatus(
          ParseError("cannot load rules from " + rules_path + ": " + error),
          "startup");
    }
  }
  std::string invalid = ValidateRules(corpus.schema, corpus.positive,
                                      corpus.negative, corpus.context);
  if (!invalid.empty()) {
    return ExitWithStatus(InvalidArgumentError("invalid rules: " + invalid),
                          "startup");
  }

  DimeService service(std::move(corpus), options);
  TcpServer server(&service, transport);
  Status started = server.Start();
  if (!started.ok()) return ExitWithStatus(started, "startup");

  std::printf("dime_server listening on %s:%d\n", transport.host.c_str(),
              server.port());
  std::printf(
      "  corpus: %zu preloaded group(s), %zu positive / %zu negative "
      "rule(s); workers=%u queue=%zu cache=%zu engine=%s\n",
      service.corpus().groups.size(), service.corpus().positive.size(),
      service.corpus().negative.size(), service.options().num_workers,
      service.options().queue_capacity, service.options().cache_capacity,
      EngineKindName(service.options().default_engine));
  std::fflush(stdout);

  server.Wait();  // until a {"type":"shutdown"} request
  server.Stop();
  service.Shutdown();

  StatsSnapshot stats = service.Stats();
  std::printf(
      "dime_server: clean shutdown (accepted=%llu rejected=%llu "
      "cache_hits=%llu cache_misses=%llu)\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses));
  return 0;
}
