// dime_server: the resident DIME service. Loads a corpus (rules +
// ontologies + optional preloaded groups) ONCE and answers repeated
// "check group G" requests over the line-delimited JSON protocol of
// src/server/wire.h on a TCP socket.
//
// Usage:
//   dime_server --demo [--demo-pages N]           # generated Scholar corpus
//   dime_server --snapshot corpus.snap            # warm start (dime_snapshot)
//   dime_server --group page.tsv [--group ...] --rules rules.txt
//               [--venue-ontology]
//               [--ontology tree.txt --ontology-mode exact|keyword]
//
// --snapshot may be combined with --demo or --group/--rules: a snapshot
// that fails to load (corrupt, truncated, newer format) logs a warning
// and the server degrades to the TSV/demo corpus instead of crashing;
// with no fallback source the load error is fatal.
//   common flags:
//               [--host 127.0.0.1] [--port 0]     # port 0 = ephemeral
//               [--workers N] [--queue-cap N] [--cache-cap N]
//               [--threads N]  # engine pool size (default: DIME_THREADS
//                              # env, then hardware concurrency)
//               [--default-deadline-ms N]
//               [--engine naive|plus|parallel|sharded]
//               [--idle-timeout-ms N]
//   live corpus (see DESIGN.md "Live corpus & epochs"):
//               [--watch] [--watch-interval-ms N]  # poll --snapshot for a
//                                                  # fingerprint change and
//                                                  # swap the new file in
//               [--delta-log log.dlt]              # apply pending deltas on
//                                                  # reload / past threshold
//               [--delta-threshold-bytes N]
//
// The corpus is served through refcounted epochs (src/store/epoch.h): a
// reload — from the admin {"type":"reload"} verb, the --watch poller, or
// a delta-log merge — publishes a new epoch atomically. In-flight
// requests finish on the epoch they started on; a reload that fails
// leaves the last good epoch serving (logged warning, never a crash).
//
// On startup the server prints exactly one line
//   dime_server listening on <host>:<port>
// to stdout (flushed), so scripts can scrape the bound port when using
// --port 0. It exits 0 after a clean {"type":"shutdown"} round trip OR a
// SIGTERM/SIGINT (stop accepting, drain admitted work, flush stats);
// failures exit with the Status-coded mapping of src/common/exit_code.h.
//
// Smoke test from a shell (see also `dime_cli --client`):
//   dime_server --demo --port 7421 &
//   dime_cli --client --port 7421 --request ping

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/exit_code.h"
#include "src/common/logging.h"
#include "src/datagen/presets.h"
#include "src/ontology/builtin.h"
#include "src/datagen/scholar_gen.h"
#include "src/rules/rule_io.h"
#include "src/server/tcp_server.h"
#include "src/store/delta_log.h"
#include "src/store/snapshot.h"

namespace {

using namespace dime;

/// The generated demo corpus: the Scholar preset rules/ontologies plus a
/// few medium pages named page_0..page_{n-1} (addressable via the
/// "group" request field).
ServingCorpus MakeDemoCorpus(size_t pages) {
  ScholarSetup setup = MakeScholarSetup();
  ServingCorpus corpus;
  corpus.schema = setup.schema;
  corpus.positive = std::move(setup.positive);
  corpus.negative = std::move(setup.negative);
  corpus.context = setup.context;
  // Moving the unique_ptr keeps the raw pointers in context.ontologies
  // valid: they point at the tree object, not at the unique_ptr.
  corpus.owned_trees.push_back(std::move(setup.venue_tree));
  for (size_t i = 0; i < pages; ++i) {
    ScholarGenOptions gen;
    gen.num_correct = 120;
    gen.seed = 1000 + i * 17;
    gen.garbage_pubs = 3 + i % 4;
    gen.chem_namesake_pubs = 2 + i % 3;
    Group page = GenerateScholarGroup("Demo Owner " + std::to_string(i), gen);
    page.name = "page_" + std::to_string(i);
    corpus.groups.push_back(std::move(page));
  }
  return corpus;
}

int Usage(const char* msg) {
  std::fprintf(stderr, "dime_server: %s (run with --help for usage)\n", msg);
  return ExitCodeForStatusCode(StatusCode::kInvalidArgument);
}

/// Shared between the wire "reload" handler and the --watch poller.
struct LiveCorpusState {
  DimeService* service = nullptr;
  std::string snapshot_path;   ///< empty: no snapshot source
  std::string delta_log_path;  ///< empty: no delta source

  /// Serializes every epoch-producing operation — the wire reload
  /// handler (transport threads) and the watcher poller — across the
  /// whole reload/merge/rotate sequence. Without it, a slow delta merge
  /// pinned to an older epoch could Install after a concurrent snapshot
  /// reload and win by sequence while loaded_fp_* already records the
  /// new file as loaded — the stale corpus would serve until restart.
  Mutex reload_mu;

  Mutex mu;
  /// Fingerprint of the snapshot FILE last loaded (not the serving
  /// epoch's — a delta merge moves the epoch fingerprint past the
  /// file's, and the watcher must not re-load an unchanged file).
  uint64_t loaded_fp_lo DIME_GUARDED_BY(mu) = 0;
  uint64_t loaded_fp_hi DIME_GUARDED_BY(mu) = 0;
};

uint64_t FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

/// The full reload sequence: re-read the snapshot (when configured),
/// then merge any pending delta log on top. Any failure leaves the last
/// good epoch serving; a bad delta log after a good snapshot load keeps
/// the snapshot epoch (logged, degraded, never crashed). The merged log
/// is rotated aside inside ApplyDeltaLog, under the log's lock, so live
/// producers never lose a record (see service.h).
///
/// `fingerprint` is the request's optional expected content fingerprint
/// (see wire.h). A fingerprint-gated reload is a COORDINATED swap to one
/// exact corpus, so it is snapshot-only: merging a delta log on top
/// would change the content fingerprint past the one the coordinator
/// asked for.
StatusOr<ReloadOutcome> ReloadSources(LiveCorpusState* state,
                                      const std::string& fingerprint) {
  MutexLock reload_lock(&state->reload_mu);
  StatusOr<ReloadOutcome> outcome =
      InvalidArgumentError("no corpus source to reload");
  bool have_snapshot_epoch = false;
  if (!fingerprint.empty() && state->snapshot_path.empty()) {
    return InvalidArgumentError(
        "a fingerprint-gated reload needs a snapshot source (started "
        "without --snapshot)");
  }
  if (!state->snapshot_path.empty()) {
    outcome =
        state->service->ReloadFromSnapshot(state->snapshot_path, fingerprint);
    if (!outcome.ok()) return outcome;
    have_snapshot_epoch = true;
    if (!outcome->noop) {
      MutexLock lock(&state->mu);
      state->loaded_fp_lo = outcome->fingerprint_lo;
      state->loaded_fp_hi = outcome->fingerprint_hi;
    }
  }
  if (!fingerprint.empty()) return outcome;
  if (!state->delta_log_path.empty() &&
      FileSize(state->delta_log_path) > kDeltaLogHeaderSize) {
    StatusOr<ReloadOutcome> merged = state->service->ApplyDeltaLog(
        state->delta_log_path, /*rotate_applied=*/true);
    if (merged.ok()) {
      if (merged->torn_tail) {
        DIME_LOG(WARNING) << "delta log " << state->delta_log_path
                          << " had a torn final record (dropped; the "
                             "applied prefix is intact)";
      }
      return merged;
    }
    if (have_snapshot_epoch) {
      DIME_LOG(WARNING) << "delta log " << state->delta_log_path
                        << " unusable (" << merged.status().ToString()
                        << "); serving the snapshot epoch without it";
      return outcome;
    }
    return merged;
  }
  return outcome;
}

/// The watcher's delta-only trigger: merge and rotate without re-reading
/// an unchanged snapshot, serialized with every other epoch-producing
/// operation.
StatusOr<ReloadOutcome> MergeDeltaLog(LiveCorpusState* state) {
  MutexLock reload_lock(&state->reload_mu);
  return state->service->ApplyDeltaLog(state->delta_log_path,
                                       /*rotate_applied=*/true);
}

/// Self-pipe for SIGTERM/SIGINT: the handler only write()s (async-signal
/// safe); a helper thread turns the byte into TcpServer::RequestShutdown
/// so the server drains through the same path as a wire shutdown.
int g_signal_pipe_write = -1;

extern "C" void HandleTermSignal(int signo) {
  unsigned char byte = static_cast<unsigned char>(signo);
  if (g_signal_pipe_write >= 0) {
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe_write, &byte, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  size_t demo_pages = 4;
  std::string snapshot_path;
  std::vector<std::string> group_paths;
  std::string rules_path;
  bool use_venue_ontology = false;
  std::vector<std::string> ontology_paths;
  std::vector<std::string> ontology_modes;
  bool watch = false;
  int watch_interval_ms = 500;
  std::string delta_log_path;
  uint64_t delta_threshold_bytes = 4096;
  TcpServerOptions transport;
  ServiceOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(ExitCodeForStatusCode(StatusCode::kInvalidArgument));
      }
      return argv[++i];
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--snapshot") {
      snapshot_path = next();
    } else if (arg == "--demo-pages") {
      demo_pages = static_cast<size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--group") {
      group_paths.push_back(next());
    } else if (arg == "--rules") {
      rules_path = next();
    } else if (arg == "--venue-ontology") {
      use_venue_ontology = true;
    } else if (arg == "--ontology") {
      ontology_paths.push_back(next());
      ontology_modes.push_back("exact");
    } else if (arg == "--ontology-mode") {
      if (ontology_modes.empty()) {
        return Usage("--ontology-mode needs a preceding --ontology");
      }
      ontology_modes.back() = next();
    } else if (arg == "--watch") {
      watch = true;
    } else if (arg == "--watch-interval-ms") {
      watch_interval_ms = static_cast<int>(std::strtol(next(), nullptr, 10));
      if (watch_interval_ms < 10) watch_interval_ms = 10;
    } else if (arg == "--delta-log") {
      delta_log_path = next();
    } else if (arg == "--delta-threshold-bytes") {
      delta_threshold_bytes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--host") {
      transport.host = next();
    } else if (arg == "--port") {
      transport.port = static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--workers") {
      options.num_workers =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--threads") {
      options.engine_threads =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--queue-cap") {
      options.queue_capacity =
          static_cast<size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--cache-cap") {
      options.cache_capacity =
          static_cast<size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--default-deadline-ms") {
      options.default_deadline_ms = std::strtol(next(), nullptr, 10);
    } else if (arg == "--engine") {
      EngineKind kind;
      if (!EngineKindFromName(next(), &kind)) {
        return Usage("--engine must be naive, plus, parallel, or sharded");
      }
      options.default_engine = kind;
    } else if (arg == "--idle-timeout-ms") {
      transport.idle_timeout_ms =
          static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--max-connections") {
      transport.max_connections =
          static_cast<size_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--help") {
      std::printf(
          "dime_server --demo | --snapshot <file> | --group <tsv>... "
          "--rules <file>\n"
          "  [--venue-ontology] [--ontology <tree> --ontology-mode m]\n"
          "  [--host H] [--port N] [--workers N] [--threads N]\n"
          "  [--queue-cap N]\n"
          "  [--cache-cap N] [--default-deadline-ms N] [--engine e]\n"
          "  [--idle-timeout-ms N] [--max-connections N] [--demo-pages N]\n"
          "  [--watch] [--watch-interval-ms N]\n"
          "  [--delta-log <file>] [--delta-threshold-bytes N]\n");
      return 0;
    } else {
      return Usage(("unknown flag: " + arg).c_str());
    }
  }
  if (watch && snapshot_path.empty()) {
    return Usage("--watch needs --snapshot (it polls that file)");
  }

  ServingCorpus corpus;
  bool warm_started = false;
  if (!snapshot_path.empty()) {
    StatusOr<LoadedSnapshot> loaded = LoadSnapshot(snapshot_path);
    if (loaded.ok()) {
      const bool mapped = loaded->mapped;
      corpus = CorpusFromSnapshot(std::move(loaded).value());
      warm_started = true;
      std::printf("dime_server: warm start from %s (%s, fingerprint "
                  "%016llx%016llx)\n",
                  snapshot_path.c_str(),
                  mapped ? "mmap" : "read fallback",
                  static_cast<unsigned long long>(
                      corpus.content_fingerprint_hi),
                  static_cast<unsigned long long>(
                      corpus.content_fingerprint_lo));
    } else if (demo || !group_paths.empty()) {
      // Degrade, never crash: a damaged snapshot costs the warm start,
      // not the service.
      std::fprintf(stderr,
                   "dime_server: WARNING: snapshot %s unusable (%s); "
                   "falling back to TSV ingestion\n",
                   snapshot_path.c_str(),
                   loaded.status().ToString().c_str());
    } else {
      return ExitWithStatus(loaded.status(),
                            ("loading snapshot " + snapshot_path).c_str());
    }
  }
  if (warm_started) {
    // Snapshot wins; any --demo/--group/--rules were only the fallback.
  } else if (demo) {
    if (!group_paths.empty() || !rules_path.empty()) {
      return Usage("--demo and --group/--rules are mutually exclusive");
    }
    corpus = MakeDemoCorpus(demo_pages);
  } else {
    if (group_paths.empty()) {
      return Usage("need --demo, --snapshot, or at least one --group");
    }
    if (rules_path.empty()) return Usage("need --rules with --group");
    for (const std::string& path : group_paths) {
      Group group;
      Status loaded = LoadGroup(path, path, &group);
      if (!loaded.ok()) {
        return ExitWithStatus(loaded, ("loading " + path).c_str());
      }
      if (group.name.empty()) group.name = path;
      corpus.groups.push_back(std::move(group));
    }
    corpus.schema = corpus.groups.front().schema;
    if (use_venue_ontology) {
      corpus.context.ontologies.push_back(
          OntologyRef{&VenueOntology(), MapMode::kExactName});
      corpus.context.ontologies.push_back(
          OntologyRef{&VenueOntology(), MapMode::kKeyword});
    }
    for (size_t i = 0; i < ontology_paths.size(); ++i) {
      auto tree = std::make_unique<Ontology>();
      if (!Ontology::LoadFromFile(ontology_paths[i], tree.get())) {
        return ExitWithStatus(
            NotFoundError("cannot load ontology " + ontology_paths[i]),
            "startup");
      }
      MapMode mode = ontology_modes[i] == "keyword" ? MapMode::kKeyword
                                                    : MapMode::kExactName;
      corpus.context.ontologies.push_back(OntologyRef{tree.get(), mode});
      corpus.owned_trees.push_back(std::move(tree));
    }
    std::string error;
    if (!LoadRuleSet(rules_path, corpus.schema, &corpus.positive,
                     &corpus.negative, &error)) {
      return ExitWithStatus(
          ParseError("cannot load rules from " + rules_path + ": " + error),
          "startup");
    }
  }
  std::string invalid = ValidateRules(corpus.schema, corpus.positive,
                                      corpus.negative, corpus.context);
  if (!invalid.empty()) {
    return ExitWithStatus(InvalidArgumentError("invalid rules: " + invalid),
                          "startup");
  }

  const uint64_t boot_fp_lo = corpus.content_fingerprint_lo;
  const uint64_t boot_fp_hi = corpus.content_fingerprint_hi;
  DimeService service(std::move(corpus), options);

  LiveCorpusState live;
  live.service = &service;
  live.snapshot_path = warm_started || !snapshot_path.empty()
                           ? snapshot_path
                           : std::string();
  live.delta_log_path = delta_log_path;
  {
    MutexLock lock(&live.mu);
    live.loaded_fp_lo = boot_fp_lo;
    live.loaded_fp_hi = boot_fp_hi;
  }
  if (!live.snapshot_path.empty() || !live.delta_log_path.empty()) {
    transport.reload_handler = [&live](const std::string& fingerprint) {
      return ReloadSources(&live, fingerprint);
    };
  }

  TcpServer server(&service, transport);
  Status started = server.Start();
  if (!started.ok()) return ExitWithStatus(started, "startup");

  // Graceful SIGTERM/SIGINT: handler writes one byte to a pipe; the
  // helper thread requests shutdown, and main drains exactly like a wire
  // shutdown (stop accepting, drain admitted work, flush stats, exit 0).
  int signal_pipe[2] = {-1, -1};
  std::thread signal_thread;
  if (::pipe(signal_pipe) == 0) {
    g_signal_pipe_write = signal_pipe[1];
    std::signal(SIGTERM, HandleTermSignal);
    std::signal(SIGINT, HandleTermSignal);
    signal_thread = std::thread([&server, fd = signal_pipe[0]] {
      unsigned char byte = 0;
      while (true) {
        ssize_t n = ::read(fd, &byte, 1);
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      if (byte != 0) {
        std::fprintf(stderr, "dime_server: caught signal %d; draining\n",
                     static_cast<int>(byte));
      }
      server.RequestShutdown();
    });
  }

  // --watch: poll the snapshot file's tail fingerprint (InspectSnapshot
  // validates header/tail without parsing payloads — cheap) and swap a
  // changed file in; also merge the delta log once it crosses the size
  // threshold (the "recompute in bulk" trigger).
  std::atomic<bool> watch_stop{false};
  std::thread watcher;
  if (watch || (!delta_log_path.empty() && !live.snapshot_path.empty()) ||
      (!delta_log_path.empty() && demo)) {
    watcher = std::thread([&] {
      uint64_t last_bad_delta_size = 0;
      while (!watch_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(watch_interval_ms));
        if (watch_stop.load(std::memory_order_relaxed)) break;
        bool snapshot_changed = false;
        if (watch && !live.snapshot_path.empty()) {
          StatusOr<SnapshotInfo> info = InspectSnapshot(live.snapshot_path);
          if (info.ok()) {
            MutexLock lock(&live.mu);
            snapshot_changed = info->fingerprint_lo != live.loaded_fp_lo ||
                               info->fingerprint_hi != live.loaded_fp_hi;
          }
        }
        uint64_t delta_size =
            live.delta_log_path.empty() ? 0 : FileSize(live.delta_log_path);
        bool delta_ready =
            delta_size >= kDeltaLogHeaderSize + delta_threshold_bytes &&
            delta_size != last_bad_delta_size;
        if (!snapshot_changed && !delta_ready) continue;
        StatusOr<ReloadOutcome> outcome =
            snapshot_changed ? ReloadSources(&live, /*fingerprint=*/"")
                             : MergeDeltaLog(&live);
        if (outcome.ok()) {
          last_bad_delta_size = 0;
          std::printf("dime_server: swapped in epoch %llu (%zu group(s), "
                      "%zu delta record(s))\n",
                      static_cast<unsigned long long>(outcome->sequence),
                      outcome->groups, outcome->delta_records);
          std::fflush(stdout);
        } else {
          // Degrade: the last good epoch keeps serving. Remember the
          // failing delta size so an unchanged bad log warns once, not
          // once per poll.
          if (delta_ready) last_bad_delta_size = delta_size;
          DIME_LOG(WARNING)
              << "live reload failed (" << outcome.status().ToString()
              << "); serving last good epoch "
              << service.Stats().epoch_sequence;
        }
      }
    });
  }

  std::printf("dime_server listening on %s:%d\n", transport.host.c_str(),
              server.port());
  {
    std::shared_ptr<const CorpusEpoch> epoch = service.CurrentEpoch();
    std::printf(
        "  corpus: %zu preloaded group(s), %zu positive / %zu negative "
        "rule(s); workers=%u queue=%zu cache=%zu engine=%s\n",
        epoch->corpus().groups.size(), epoch->corpus().positive.size(),
        epoch->corpus().negative.size(), service.options().num_workers,
        service.options().queue_capacity, service.options().cache_capacity,
        EngineKindName(service.options().default_engine));
  }
  std::fflush(stdout);

  server.Wait();  // until a shutdown request or SIGTERM/SIGINT

  watch_stop.store(true, std::memory_order_relaxed);
  if (signal_thread.joinable()) {
    // Wake the helper if no signal ever arrived (byte 0 = not a signal).
    unsigned char zero = 0;
    [[maybe_unused]] ssize_t n = ::write(signal_pipe[1], &zero, 1);
    signal_thread.join();
  }
  server.Stop();
  service.Shutdown();
  if (watcher.joinable()) watcher.join();
  if (signal_pipe[0] >= 0) {
    g_signal_pipe_write = -1;
    ::close(signal_pipe[0]);
    ::close(signal_pipe[1]);
  }

  StatsSnapshot stats = service.Stats();
  std::printf(
      "dime_server: clean shutdown (accepted=%llu rejected=%llu "
      "cache_hits=%llu cache_misses=%llu epochs=%llu)\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.epochs_installed));
  return 0;
}
