#ifndef DIME_SERVER_EVENT_LOOP_H_
#define DIME_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/server/dispatch.h"
#include "src/server/http.h"
#include "src/server/service.h"

/// \file event_loop.h
/// The non-blocking transport: ONE epoll IO thread multiplexing
/// thousands of keep-alive connections, speaking both serving protocols
/// on the same port (sniffed per connection from the first byte):
///
///   * the line-JSON protocol of wire.h — byte-identical replies to the
///     old thread-per-connection transport, and
///   * the minimal HTTP/1.1 front door of http.h.
///
/// Per-connection state machine:
///
///   readable ──> inbox ──> frame (line / ParseHttpRequest)
///      │                      │ dispatched with an in-order serial
///      │                      v
///      │               offload pool ──> dispatch.h ──> DimeService
///      │ (paused past                        │ (check: completes on a
///      │  the pipeline                       │  service WORKER thread)
///      │  depth cap)                         v
///      │               completion queue + eventfd wakeup
///      │                      │
///      v                      v
///   epoll loop <── apply in serial order ──> outbox ──> writable
///                                            (partial-write resumption)
///
/// Worker threads NEVER touch a socket: every completion is posted to a
/// mutex-guarded queue and the loop is woken through an eventfd, so all
/// fd lifetime and all writes are single-threaded in the loop — no
/// write interleaving, no close/write races, and the loop can drop
/// completions for connections that died while the engine ran.
///
/// Backpressure is layered: per-connection pipelining is capped (reads
/// pause, TCP flow control pushes back on the client); global admission
/// is the service's bounded queue (RESOURCE_EXHAUSTED per request); and
/// the connection COUNT is capped — a connection over the ceiling is
/// answered with one line-JSON RESOURCE_EXHAUSTED error and closed
/// instead of accepted-and-stalled (the protocol is unknowable before
/// the client sends a byte, so the shed reply is always line-JSON; an
/// HTTP client observes a cut connection with a JSON diagnostic).
///
/// Readiness is level-triggered with explicit interest masks (EPOLLOUT
/// armed only while an outbox is non-empty): unlike edge-triggered,
/// a missed drain can never strand a connection — the kernel re-reports
/// until the buffer is actually empty.
///
/// Graceful drain (Stop(), after SIGTERM or a wire shutdown): the
/// listener closes, framed-but-unanswered requests complete and their
/// responses flush, then connections close — bounded by
/// `drain_timeout_ms` so a peer that stopped reading cannot pin the
/// process.

namespace dime {

struct EventLoopServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after Start().
  int port = 0;
  int backlog = 128;
  /// A connection with no inbound bytes, no queued work and nothing to
  /// write for this long is closed. <= 0 disables the sweep.
  int idle_timeout_ms = 0;
  /// Line-protocol frame cap (also wired to the HTTP body cap): a
  /// request line past this cuts the connection instead of buffering
  /// without bound.
  size_t max_line_bytes = 64u << 20;
  /// Connection-count ceiling; connections over it are shed with a
  /// clean error (see file comment). 0 is normalized to 1.
  size_t max_connections = 4096;
  /// Per-connection in-flight frame cap: past it the connection's reads
  /// pause and TCP flow control takes over. Responses always flush in
  /// request order regardless.
  int max_pipeline_depth = 32;
  /// Threads running parse + dispatch (and the reload handler) off the
  /// IO loop. Engine work is bounded by the SERVICE's worker pool, not
  /// by this; 2 is plenty. 0 is normalized to 1.
  unsigned offload_threads = 2;
  /// Hard cap on the graceful drain in Stop().
  int drain_timeout_ms = 5000;
  /// HTTP front-door caps (max_body_bytes is overridden with
  /// `max_line_bytes` at Start so both protocols admit the same largest
  /// request).
  HttpLimits http_limits;
  DispatchHooks hooks;
};

class EventLoopServer {
 public:
  /// `service` is borrowed and must outlive the server.
  EventLoopServer(DimeService* service, EventLoopServerOptions options);
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Binds, listens, spawns the IO loop and the offload pool. IO_ERROR
  /// when the socket (or epoll/eventfd plumbing) cannot be set up.
  Status Start();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Blocks until Stop() is called or a shutdown request was acked.
  void Wait();

  /// Graceful drain + teardown (see file comment). Idempotent. Does NOT
  /// shut down the service — the owner decides when to drain it.
  void Stop();

  /// True once a {"type":"shutdown"} / POST /v1/shutdown ack was handed
  /// to the kernel.
  bool shutdown_requested() const;

  /// Unblocks Wait() as if a shutdown request had arrived; safe from
  /// any thread (server_main's signal helper calls it).
  void RequestShutdown();

  /// Observability for tests and stats.
  size_t open_connections() const { return open_connections_.load(); }
  uint64_t connections_shed() const { return connections_shed_.load(); }

 private:
  enum class Proto { kUnknown, kLine, kHttp };

  /// A finished frame's response, posted by an offload/worker thread
  /// and applied by the loop in serial order.
  struct Completion {
    std::string bytes;
    bool close_after = false;
    bool shutdown = false;
  };

  struct PostedCompletion {
    uint64_t conn_id = 0;
    uint64_t serial = 0;
    Completion completion;
  };

  /// Loop-thread-confined per-connection state machine (no lock: only
  /// the IO loop touches it; other threads reach a connection solely by
  /// posting completions keyed by id).
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    Proto proto = Proto::kUnknown;
    std::string inbox;
    /// Resume point for the line-framing '\n' scan so a slowly-arriving
    /// giant line costs linear, not quadratic, time.
    size_t inbox_scan = 0;
    std::string outbox;
    size_t outbox_off = 0;
    uint32_t events = 0;  ///< current epoll interest mask
    uint64_t next_serial = 0;
    uint64_t flush_serial = 0;
    std::map<uint64_t, Completion> ready;  ///< out-of-order completions
    int inflight = 0;
    bool paused = false;   ///< pipeline depth reached: reads off
    bool closing = false;  ///< no more reads; destroy once flushed+idle
    /// Condemned: helpers never erase a connection mid-call-chain (the
    /// caller may still hold the pointer) — they set `dead` and the
    /// owning entry point reaps it.
    bool dead = false;
    bool shutdown_after_flush = false;
    std::chrono::steady_clock::time_point last_activity;
  };

  struct OffloadTask {
    uint64_t conn_id = 0;
    uint64_t serial = 0;
    Proto proto = Proto::kUnknown;
    std::string line;  ///< line-protocol frame
    HttpRequest http;  ///< HTTP frame
  };

  void LoopThread();
  void OffloadThread();
  void AcceptReady();
  void HandleConnIo(uint64_t conn_id, uint32_t events);
  void ReadFromConn(Connection* conn);
  void ExtractFrames(Connection* conn);
  void DispatchFrame(Connection* conn, OffloadTask task);
  /// Enqueues a loop-generated response (shed notice, HTTP parse error)
  /// through the same in-order serial path as dispatched frames.
  void EnqueueLocalResponse(Connection* conn, std::string bytes,
                            bool close_after);
  void ApplyCompletions();
  void FlushReady(Connection* conn);
  void TryWrite(Connection* conn);
  void UpdateInterest(Connection* conn, uint32_t events);
  /// Destroys `conn_id` iff its Connection is marked dead (see
  /// Connection::dead).
  void Reap(uint64_t conn_id);
  void DestroyConn(uint64_t conn_id);
  void SweepIdle();
  void WakeLoop();

  DimeService* const service_;
  EventLoopServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completions + Stop/shutdown wakeups
  int port_ = 0;
  std::thread loop_thread_;
  std::vector<std::thread> offload_threads_;

  // Loop-thread confined (see Connection).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  std::chrono::steady_clock::time_point last_sweep_;

  std::atomic<bool> stopping_{false};
  std::atomic<size_t> open_connections_{0};
  std::atomic<uint64_t> connections_shed_{0};

  mutable Mutex state_mu_;
  bool shutdown_requested_ DIME_GUARDED_BY(state_mu_) = false;
  CondVar state_cv_;

  mutable Mutex comp_mu_;
  std::vector<PostedCompletion> completions_ DIME_GUARDED_BY(comp_mu_);
  /// Frames handed to the offload pool whose completion has not been
  /// posted yet — the drain barrier in Stop().
  size_t outstanding_ DIME_GUARDED_BY(comp_mu_) = 0;

  mutable Mutex off_mu_;
  std::deque<OffloadTask> offload_queue_ DIME_GUARDED_BY(off_mu_);
  bool offload_closed_ DIME_GUARDED_BY(off_mu_) = false;
  CondVar off_cv_;
};

}  // namespace dime

#endif  // DIME_SERVER_EVENT_LOOP_H_
