#ifndef DIME_SERVER_WIRE_H_
#define DIME_SERVER_WIRE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/server/service.h"

/// \file wire.h
/// The server's wire protocol: line-delimited JSON over a byte stream.
/// One request per line, one response line per request, in order. The
/// grammar is deliberately tiny (see DESIGN.md "Serving layer"):
///
///   request  := '{' members '}' '\n'        (a FLAT json object: values
///                                            are strings, numbers, bools
///                                            or null — never nested)
///   fields   := "type"        "check" | "stats" | "ping" | "shutdown"
///                             | "reload"
///               "id"          echoed verbatim in the response (optional)
///               -- check only:
///               "group"       name of a preloaded corpus group
///               "group_tsv"   inline group in GroupToTsv format
///               "deadline_ms" number; 0/absent = server default
///               "engine"      "naive" | "plus" | "parallel" | "sharded"
///               "no_cache"    bool; true bypasses the result cache
///
/// "reload" asks the server to re-read its corpus source (the snapshot
/// it was started from, plus any pending delta log) and swap the result
/// in as a new epoch; the server decides the paths, never the client.
/// Servers without a reloadable source answer INVALID_ARGUMENT. An
/// optional "fingerprint" field (32 wire-hex digits, exactly as a reload
/// response reports it) makes the swap coordinated: already-matching
/// servers answer OK with "noop":true without reloading, and a snapshot
/// whose fingerprint differs from the requested one is refused
/// INVALID_ARGUMENT instead of installed (see
/// DimeService::ReloadFromSnapshot).
///
/// Responses are also single-line JSON objects; every one carries
/// "status" (a StatusCode name, "OK" on success) and echoes "id". Arrays
/// appear only in responses, so the request parser stays flat; the
/// parser still captures nested values as raw text (kRaw) so a client
/// can parse a response with the same function.
///
/// Unknown request fields are ignored (forward compatibility); unknown
/// "type" values are answered with INVALID_ARGUMENT.

namespace dime {

/// One parsed JSON scalar. kRaw holds the unparsed text of a nested
/// array/object value (responses only; requests never nest).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kRaw };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;  ///< decoded for kString; verbatim for kRaw
};

/// A flat JSON object (field order is irrelevant to the protocol).
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

/// Parses one line holding exactly one JSON object. PARSE_ERROR on
/// malformed input or trailing garbage.
StatusOr<JsonObject> ParseJsonObjectLine(std::string_view line);

/// JSON string escaping of `s` (no surrounding quotes).
std::string JsonEscape(std::string_view s);

/// Builds one single-line JSON object; Finish() terminates it with '\n'
/// (the line delimiter IS the message delimiter).
class JsonLineWriter {
 public:
  JsonLineWriter() : out_("{") {}
  void AddString(std::string_view key, std::string_view value);
  void AddInt(std::string_view key, int64_t value);
  void AddUint(std::string_view key, uint64_t value);
  void AddDouble(std::string_view key, double value);
  void AddBool(std::string_view key, bool value);
  void AddCountArray(std::string_view key, const std::vector<size_t>& values);
  void AddStringArray(std::string_view key,
                      const std::vector<std::string>& values);
  std::string Finish();

 private:
  void Key(std::string_view key);
  std::string out_;
  bool first_ = true;
};

/// A decoded request.
struct WireRequest {
  enum class Type { kCheck, kStats, kPing, kShutdown, kReload };
  Type type = Type::kCheck;
  std::string id;
  std::string group_name;
  std::string group_tsv;
  int64_t deadline_ms = 0;
  std::string engine;  ///< empty = server default
  bool no_cache = false;
  /// reload only: expected content fingerprint (32 wire-hex digits, as a
  /// prior reload response reported). Empty = unconditional reload.
  std::string fingerprint;
};

/// Decodes a request line. PARSE_ERROR for malformed JSON,
/// INVALID_ARGUMENT for a well-formed object with a missing/unknown
/// "type" or a wrong-typed known field.
StatusOr<WireRequest> ParseRequestLine(std::string_view line);

/// Decodes the request FIELDS of `object` under an externally-decided
/// type, with exactly ParseRequestLine's validation. This is how the
/// HTTP front door reuses the grammar: there the verb comes from the
/// route (POST /v1/check), not from a "type" field in the body.
StatusOr<WireRequest> RequestFromJson(const JsonObject& object,
                                      WireRequest::Type type);

/// Encodes a request (the client side of ParseRequestLine).
std::string SerializeRequest(const WireRequest& request);

/// Response serializers (each returns one '\n'-terminated line).
std::string SerializeErrorResponse(const std::string& id,
                                   const Status& status);
/// `group` must be the group the reply was computed on (entity ids).
std::string SerializeCheckResponse(const std::string& id, const Group& group,
                                   const CheckReply& reply);
std::string SerializeStatsResponse(const std::string& id,
                                   const StatsSnapshot& stats);
std::string SerializePingResponse(const std::string& id);
std::string SerializeShutdownResponse(const std::string& id);
/// Successful corpus swap: the new epoch's sequence, fingerprint (hex),
/// group count and applied delta records.
std::string SerializeReloadResponse(const std::string& id,
                                    const ReloadOutcome& outcome);

/// Client-side helper: the Status encoded in a response line — OK when
/// "status" is "OK", the decoded code + "error" message otherwise, and
/// PARSE_ERROR when the line is not a valid response at all.
Status StatusFromResponseLine(std::string_view line);

}  // namespace dime

#endif  // DIME_SERVER_WIRE_H_
