#ifndef DIME_SERVER_SERVICE_H_
#define DIME_SERVER_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/core/corpus.h"
#include "src/core/dime_parallel.h"
#include "src/core/dime_plus.h"
#include "src/server/request_queue.h"
#include "src/server/result_cache.h"
#include "src/store/snapshot.h"

/// \file service.h
/// The resident DIME service: loads a corpus (rules, ontologies, optional
/// preloaded groups) ONCE and answers repeated "check group G" requests
/// without re-ingesting anything. This is the in-process API; the TCP
/// transport (tcp_server.h) is a thin line-JSON wrapper around it, so
/// tests, benches and the CLI can drive the service without sockets.
///
/// Request lifecycle:
///
///   Check() ── fingerprint ──> result cache ── hit ──> reply (no engine)
///                 │ miss
///                 v
///         bounded queue  ── full ──> RESOURCE_EXHAUSTED (shed, never block)
///                 │ admitted
///                 v
///         worker pool ──> PrepareGroup + Run{Dime,DimePlus,DimeParallel}
///                 │          (per-request deadline via RunControl,
///                 │           anchored at ADMISSION so queue wait counts)
///                 v
///         cache insert (complete results only) ──> reply
///
/// Shutdown() closes the queue: admitted work drains, new work gets
/// UNAVAILABLE. Every piece of shared state is a PR-2 annotated Mutex /
/// DIME_GUARDED_BY field, so Clang TSA and the TSan CI leg cover the
/// serving layer exactly like the engines.

namespace dime {

/// Which engine executes a check.
enum class EngineKind { kNaive, kPlus, kParallel };

/// "naive" / "plus" / "parallel".
const char* EngineKindName(EngineKind kind);
bool EngineKindFromName(std::string_view name, EngineKind* kind);

/// Everything the service holds resident: the schema the rules were
/// parsed against, the rule set, the evaluation context (with owned
/// ontology trees backing the context's refs), and optional preloaded
/// groups addressable by name.
struct ServingCorpus {
  Schema schema;
  std::vector<PositiveRule> positive;
  std::vector<NegativeRule> negative;
  DimeContext context;
  /// Backing storage for `context.ontologies` pointers (moving the
  /// unique_ptrs keeps the raw pointers stable).
  std::vector<std::unique_ptr<Ontology>> owned_trees;
  /// Snapshot-loaded ontology trees (the loader owns them shared).
  std::vector<std::shared_ptr<const Ontology>> shared_trees;
  /// Preloaded groups, addressable by Group::name in CheckRequest.
  std::vector<Group> groups;
  /// Parallel to `groups` when warm-started from a snapshot (empty when
  /// groups were TSV-ingested): fully prepared groups with rule artifacts
  /// attached, arenas borrowed from `backing`. Workers serve these
  /// directly instead of calling PrepareGroup per request.
  std::vector<std::shared_ptr<const PreparedGroup>> prepared;
  /// Content fingerprint of the snapshot backing this corpus (both zero
  /// when not snapshot-loaded). Folded into every result-cache key so a
  /// cache carried across corpus swaps can never serve a stale result.
  uint64_t content_fingerprint_lo = 0;
  uint64_t content_fingerprint_hi = 0;
  /// Keep-alive for the mapped bytes `prepared` borrows from.
  std::shared_ptr<const void> backing;
};

/// Adapts a loaded snapshot into a serving corpus: groups, rules,
/// context, prepared groups and the backing mapping all move over;
/// internal pointers (prepared[i]->group, ontology refs) stay valid
/// because vector storage moves wholesale.
ServingCorpus CorpusFromSnapshot(LoadedSnapshot snapshot);

struct ServiceOptions {
  /// Worker threads executing engine runs. 0 is normalized to 1.
  unsigned num_workers = 4;
  /// Bounded queue depth; a push beyond it is shed with
  /// RESOURCE_EXHAUSTED (admission control, see request_queue.h).
  size_t queue_capacity = 64;
  /// LRU result-cache entries; 0 disables caching.
  size_t cache_capacity = 128;
  /// Deadline applied when a request does not carry one. <= 0: unbounded.
  int64_t default_deadline_ms = 0;
  EngineKind default_engine = EngineKind::kPlus;
  DimePlusOptions dime_plus;
  ParallelOptions parallel;
  /// Test-only: invoked by a worker before executing each admitted
  /// request. Lets tests hold the pool at a barrier to fill the queue
  /// deterministically. Must not throw.
  std::function<void()> worker_pre_run_hook;
};

struct CheckRequest {
  /// Inline group to check (borrowed; must outlive the Check call). When
  /// null, `group_name` selects a preloaded corpus group.
  const Group* group = nullptr;
  std::string group_name;
  /// <= 0: the service default applies.
  int64_t deadline_ms = 0;
  /// Engine override; nullopt = service default.
  std::optional<EngineKind> engine;
  /// Skip the cache entirely (no lookup, no insert) — for measurement.
  bool bypass_cache = false;
};

struct CheckReply {
  /// Never null. result->status is OK for a complete run and
  /// DEADLINE_EXCEEDED / CANCELLED / INTERNAL for a truncated or faulted
  /// one (partial results follow the engine contract in dime.h).
  std::shared_ptr<const DimeResult> result;
  bool cache_hit = false;
};

/// Counter snapshot served by the "stats" request type.
struct StatsSnapshot {
  uint64_t accepted = 0;      ///< admitted: cache hits + queued requests
  uint64_t rejected = 0;      ///< shed with RESOURCE_EXHAUSTED
  uint64_t completed = 0;     ///< replies delivered (hits + engine runs)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t cache_size = 0;
  size_t cache_capacity = 0;
  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  unsigned workers = 0;
  /// Cumulative DimeResult::Stats counters over every engine run this
  /// service executed (cache hits add nothing — no engine ran).
  uint64_t pairs_skipped_by_transitivity = 0;
  uint64_t kernel_early_exits = 0;
  /// Admission-to-reply latency percentiles over completed requests, in
  /// milliseconds (log-bucketed histogram: values are bucket upper
  /// bounds, i.e. within 2x of exact).
  double p50_ms = 0;
  double p99_ms = 0;
};

class DimeService {
 public:
  DimeService(ServingCorpus corpus, ServiceOptions options);
  /// Shuts down (drains admitted work) if Shutdown was not called.
  ~DimeService();

  DimeService(const DimeService&) = delete;
  DimeService& operator=(const DimeService&) = delete;

  /// Synchronous check: admits, waits for the reply. The Status arm is
  /// for requests that never executed — RESOURCE_EXHAUSTED (queue full),
  /// UNAVAILABLE (shutting down), NOT_FOUND (unknown group name),
  /// SCHEMA_MISMATCH (inline group disagrees with the corpus schema),
  /// INVALID_ARGUMENT (no group at all). Engine-level truncation is NOT
  /// an error arm: it lands in reply.result->status with partial results.
  StatusOr<CheckReply> Check(const CheckRequest& request);

  StatsSnapshot Stats() const;

  /// Graceful drain: admitted requests finish, new ones get UNAVAILABLE.
  /// Idempotent; blocks until the workers exit.
  void Shutdown();

  /// Preloaded group by name, or nullptr. Stable for the service's
  /// lifetime (the corpus is immutable once loaded).
  const Group* FindGroup(std::string_view name) const;

  const ServingCorpus& corpus() const { return corpus_; }
  const ServiceOptions& options() const { return options_; }

  /// The cache key for (engine, corpus rule set, group content) — the
  /// fingerprint described in result_cache.h. Exposed for tests.
  Fingerprint RequestFingerprint(EngineKind engine, const Group& group) const;

 private:
  struct PendingCheck;

  void WorkerLoop();
  /// Executes one admitted request end to end (engine + cache insert).
  CheckReply Execute(PendingCheck& pending);
  void RecordAdmitted() DIME_EXCLUDES(stats_mu_);
  void RecordRejected() DIME_EXCLUDES(stats_mu_);
  void RecordCompleted(Deadline::Clock::time_point admit_time)
      DIME_EXCLUDES(stats_mu_);
  void RecordEngineStats(const DimeResult& result) DIME_EXCLUDES(stats_mu_);

  const ServingCorpus corpus_;
  const ServiceOptions options_;
  /// corpus_.prepared indexed by group pointer (empty for TSV corpora).
  /// Immutable after construction.
  std::unordered_map<const Group*, const PreparedGroup*> prepared_by_group_;
  /// RuleSetToText(schema, positive, negative), computed once — the rule
  /// component of every cache key.
  const std::string rules_text_;

  ResultCache cache_;
  BoundedRequestQueue<std::unique_ptr<PendingCheck>> queue_;
  std::vector<std::thread> workers_;  // written only in ctor / Shutdown

  mutable Mutex shutdown_mu_;
  bool workers_joined_ DIME_GUARDED_BY(shutdown_mu_) = false;

  mutable Mutex stats_mu_;
  uint64_t accepted_ DIME_GUARDED_BY(stats_mu_) = 0;
  uint64_t rejected_ DIME_GUARDED_BY(stats_mu_) = 0;
  uint64_t completed_ DIME_GUARDED_BY(stats_mu_) = 0;
  /// Log-bucketed latency histogram: bucket i counts requests whose
  /// admission-to-reply latency was in [2^(i-1), 2^i) microseconds.
  static constexpr int kLatencyBuckets = 40;
  uint64_t latency_buckets_[kLatencyBuckets] DIME_GUARDED_BY(stats_mu_) = {};
  uint64_t engine_transitivity_skips_ DIME_GUARDED_BY(stats_mu_) = 0;
  uint64_t engine_kernel_exits_ DIME_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace dime

#endif  // DIME_SERVER_SERVICE_H_
