#ifndef DIME_SERVER_SERVICE_H_
#define DIME_SERVER_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/core/corpus.h"
#include "src/core/dime_parallel.h"
#include "src/core/dime_plus.h"
#include "src/exec/pool.h"
#include "src/server/request_queue.h"
#include "src/server/result_cache.h"
#include "src/store/delta_log.h"
#include "src/store/epoch.h"

/// \file service.h
/// The resident DIME service: loads a corpus (rules, ontologies, optional
/// preloaded groups) ONCE and answers repeated "check group G" requests
/// without re-ingesting anything. This is the in-process API; the TCP
/// transport (tcp_server.h) is a thin line-JSON wrapper around it, so
/// tests, benches and the CLI can drive the service without sockets.
///
/// Request lifecycle:
///
///   Check() ── pin epoch ── fingerprint ──> result cache ── hit ──> reply
///                 │ miss
///                 v
///         bounded queue  ── full ──> RESOURCE_EXHAUSTED (shed, never block)
///                 │ admitted
///                 v
///         worker pool ──> PrepareGroup + Run{Dime,DimePlus,DimeParallel}
///                 │          (per-request deadline via RunControl,
///                 │           anchored at ADMISSION so queue wait counts)
///                 v
///         cache insert (complete results only) ──> reply
///
/// Live corpus. The corpus is no longer fixed at construction: it lives
/// behind an EpochManager (store/epoch.h). Every request pins the current
/// epoch at admission and serves entirely from it — a reload or delta
/// merge mid-request cannot mix generations. InstallCorpus /
/// ReloadFromSnapshot / ApplyDeltaLog publish a new epoch atomically;
/// the superseded epoch's mmap is unmapped when its last in-flight
/// request finishes. Cache correctness across swaps comes from the key:
/// RequestFingerprint folds the epoch's content fingerprint, so entries
/// cached under one generation can never answer for a different one
/// (Clear() on install is hygiene, not the safety mechanism).
///
/// Shutdown() closes the queue: admitted work drains, new work gets
/// UNAVAILABLE. Every piece of shared state is a PR-2 annotated Mutex /
/// DIME_GUARDED_BY field, so Clang TSA and the TSan CI leg cover the
/// serving layer exactly like the engines.

namespace dime {

/// Which engine executes a check.
enum class EngineKind { kNaive, kPlus, kParallel, kSharded };

/// "naive" / "plus" / "parallel" / "sharded".
const char* EngineKindName(EngineKind kind);
bool EngineKindFromName(std::string_view name, EngineKind* kind);

struct ServiceOptions {
  /// Worker threads executing engine runs. 0 is normalized to 1.
  unsigned num_workers = 4;
  /// Bounded queue depth; a push beyond it is shed with
  /// RESOURCE_EXHAUSTED (admission control, see request_queue.h).
  size_t queue_capacity = 64;
  /// LRU result-cache entries; 0 disables caching.
  size_t cache_capacity = 128;
  /// Deadline applied when a request does not carry one. <= 0: unbounded.
  int64_t default_deadline_ms = 0;
  EngineKind default_engine = EngineKind::kPlus;
  DimePlusOptions dime_plus;
  ParallelOptions parallel;
  /// Executors of the shared scheduler pool the parallel and sharded
  /// engines run on (one pool for the whole service — serving workers
  /// spawn task groups into it and help execute while they wait, so
  /// concurrent requests time-share the same threads instead of
  /// oversubscribing). 0 = the --threads / DIME_THREADS /
  /// hardware_concurrency precedence of exec::ResolveThreadCount.
  unsigned engine_threads = 0;
  /// Test-only: invoked by a worker before executing each admitted
  /// request. Lets tests hold the pool at a barrier to fill the queue
  /// deterministically. Must not throw.
  std::function<void()> worker_pre_run_hook;
  /// Test hook forwarded to the EpochManager: fires with the epoch's
  /// sequence after a retired epoch is fully destroyed (mmap unmapped).
  /// Must be thread-safe.
  std::function<void(uint64_t)> epoch_retire_hook;
  /// Test-only: invoked by a rotating delta merge (ApplyDeltaLog with
  /// rotate_applied) after it read the log but before it takes the log's
  /// lock to verify quiescence — lets tests land a concurrent append at
  /// exactly the racy moment. Not called on the final, fully-locked
  /// attempt (an append there would deadlock on the flock). Must not
  /// throw.
  std::function<void()> delta_merge_race_hook;
};

struct CheckRequest {
  /// Inline group to check (borrowed; must outlive the Check call). When
  /// null, `group_name` selects a preloaded corpus group.
  const Group* group = nullptr;
  std::string group_name;
  /// <= 0: the service default applies.
  int64_t deadline_ms = 0;
  /// Engine override; nullopt = service default.
  std::optional<EngineKind> engine;
  /// Skip the cache entirely (no lookup, no insert) — for measurement.
  bool bypass_cache = false;
};

struct CheckReply {
  /// Never null. result->status is OK for a complete run and
  /// DEADLINE_EXCEEDED / CANCELLED / INTERNAL for a truncated or faulted
  /// one (partial results follow the engine contract in dime.h).
  std::shared_ptr<const DimeResult> result;
  bool cache_hit = false;
  /// The epoch this request was served under (pinned — the reply keeps
  /// it alive, so `group` below is safe to read). Never null.
  std::shared_ptr<const CorpusEpoch> epoch;
  /// The group that was checked: the caller's inline group, or the
  /// resolved corpus group owned by `epoch`.
  const Group* group = nullptr;
};

/// What a successful corpus swap published (InstallCorpus /
/// ReloadFromSnapshot / ApplyDeltaLog).
struct ReloadOutcome {
  uint64_t sequence = 0;  ///< the new epoch's sequence number
  uint64_t fingerprint_lo = 0;
  uint64_t fingerprint_hi = 0;
  size_t groups = 0;  ///< groups resident in the new epoch
  /// Delta records applied (ApplyDeltaLog only; 0 for snapshot reloads).
  size_t delta_records = 0;
  /// A truncated final record was dropped from the delta log (crash
  /// mid-append; the applied prefix is intact).
  bool torn_tail = false;
  /// Fingerprint-gated reload found the serving epoch already matching:
  /// nothing was loaded or installed, the fields above describe the
  /// epoch that keeps serving.
  bool noop = false;
};

/// The 128-bit content fingerprint in its canonical wire form: 32 hex
/// digits, low word first — exactly the "fingerprint" string a reload
/// response carries (see wire.h), so clients can echo it back verbatim
/// for a fingerprint-gated reload.
std::string FingerprintToWireHex(uint64_t lo, uint64_t hi);
/// Inverse; false unless `hex` is exactly 32 hex digits.
bool FingerprintFromWireHex(std::string_view hex, uint64_t* lo, uint64_t* hi);

/// Counter snapshot served by the "stats" request type.
struct StatsSnapshot {
  uint64_t accepted = 0;      ///< admitted: cache hits + queued requests
  uint64_t rejected = 0;      ///< shed with RESOURCE_EXHAUSTED
  uint64_t completed = 0;     ///< replies delivered (hits + engine runs)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t cache_size = 0;
  size_t cache_capacity = 0;
  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  unsigned workers = 0;
  /// Live-corpus counters: sequence of the epoch currently serving,
  /// epochs published and fully retired (unmapped) over the service's
  /// lifetime, and delta records merged in via ApplyDeltaLog.
  uint64_t epoch_sequence = 0;
  uint64_t epochs_installed = 0;
  uint64_t epochs_retired = 0;
  uint64_t delta_records_applied = 0;
  /// Cumulative DimeResult::Stats counters over every engine run this
  /// service executed (cache hits add nothing — no engine ran).
  uint64_t pairs_skipped_by_transitivity = 0;
  uint64_t kernel_early_exits = 0;
  /// Admission-to-reply latency percentiles over completed requests, in
  /// milliseconds (log-bucketed histogram: values are bucket upper
  /// bounds, i.e. within 2x of exact).
  double p50_ms = 0;
  double p99_ms = 0;
};

class DimeService {
 public:
  /// `corpus` becomes epoch 1.
  DimeService(ServingCorpus corpus, ServiceOptions options);
  /// Shuts down (drains admitted work) if Shutdown was not called.
  ~DimeService();

  DimeService(const DimeService&) = delete;
  DimeService& operator=(const DimeService&) = delete;

  /// Synchronous check: admits, waits for the reply. The Status arm is
  /// for requests that never executed — RESOURCE_EXHAUSTED (queue full),
  /// UNAVAILABLE (shutting down), NOT_FOUND (unknown group name),
  /// SCHEMA_MISMATCH (inline group disagrees with the corpus schema),
  /// INVALID_ARGUMENT (no group at all). Engine-level truncation is NOT
  /// an error arm: it lands in reply.result->status with partial results.
  StatusOr<CheckReply> Check(const CheckRequest& request);

  /// Callback flavour of Check, the primitive the event-loop transport
  /// builds on (event_loop.h): thousands of in-flight requests bounded
  /// by the admission queue, not by blocked threads. `done` is invoked
  /// EXACTLY once — inline (before CheckAsync returns) for cache hits
  /// and every never-admitted error arm, or later on a worker thread for
  /// queued work. It must not block and must not call back into the
  /// service. Anything `request.group` points at must stay alive until
  /// `done` fires.
  using CheckCallback = std::function<void(StatusOr<CheckReply>)>;
  void CheckAsync(const CheckRequest& request, CheckCallback done);

  StatsSnapshot Stats() const;

  /// Graceful drain: admitted requests finish, new ones get UNAVAILABLE.
  /// Idempotent; blocks until the workers exit.
  void Shutdown();

  /// Pins and returns the epoch currently serving. Never null.
  std::shared_ptr<const CorpusEpoch> CurrentEpoch() const;

  /// Preloaded group by name in the CURRENT epoch, or nullptr. The
  /// pointer stays valid until the next Install retires that epoch —
  /// callers that might race a swap should go through CurrentEpoch() and
  /// hold the pin instead.
  const Group* FindGroup(std::string_view name) const;

  /// Publishes `corpus` as the next epoch: in-flight requests finish on
  /// the epoch they pinned, new requests see this one, and the old
  /// epoch's backing is unmapped when its last pin drops. Also clears the
  /// result cache (hygiene — key fingerprints already prevent stale
  /// hits).
  ReloadOutcome InstallCorpus(ServingCorpus corpus);

  /// Loads `path` and installs it as the next epoch. On any load error
  /// the current epoch keeps serving untouched. Failpoint "store/swap"
  /// makes the reload fail (UNAVAILABLE) before anything is installed —
  /// the degradation path a watcher or admin reload must survive.
  ///
  /// `expected_fingerprint` (the coordinated-swap hook: 32 wire-hex
  /// digits from FingerprintToWireHex, empty = unconditional) gates the
  /// swap: if the SERVING epoch already carries that fingerprint the
  /// reload is a no-op success (outcome.noop, nothing loaded); if the
  /// snapshot at `path` carries a DIFFERENT fingerprint the reload fails
  /// INVALID_ARGUMENT without installing anything — a fleet rollout
  /// pushing "swap to build X" can never half-apply a stale file.
  StatusOr<ReloadOutcome> ReloadFromSnapshot(
      const std::string& path, const std::string& expected_fingerprint = "");

  /// Reads the delta log at `path`, applies its records to a copy of the
  /// current epoch's groups, re-prepares them, and installs the merged
  /// corpus as the next epoch (the "recompute in bulk" half of the
  /// incremental split — see delta_log.h). On any error — unreadable or
  /// corrupt log (DATA_LOSS), a record naming an unknown group or entity
  /// — nothing is installed and the current epoch keeps serving.
  ///
  /// With `rotate_applied`, the applied log is renamed aside to
  /// `<path>.applied.<sequence>` so its records are never merged twice —
  /// atomically with respect to live producers: the install+rotate only
  /// happens under the log's flock after verifying the log did not grow
  /// past the merged prefix (DeltaLogWriter::Append holds the same lock
  /// per record). A merge raced by appends is discarded and retried; the
  /// final attempt merges with the lock held, so producers wait instead
  /// of losing records. Callers (the watcher, the reload verb) must
  /// serialize rotating merges among themselves — the server's reload
  /// mutex does.
  StatusOr<ReloadOutcome> ApplyDeltaLog(const std::string& path,
                                        bool rotate_applied = false);

  const ServiceOptions& options() const { return options_; }

  /// The cache key for (engine, epoch content, group content) under the
  /// current epoch — see result_cache.h. Exposed for tests.
  Fingerprint RequestFingerprint(EngineKind engine, const Group& group) const;
  /// Same, under an explicit epoch (what Check uses internally).
  Fingerprint RequestFingerprint(EngineKind engine, const Group& group,
                                 const CorpusEpoch& epoch) const;

 private:
  struct PendingCheck;

  /// One merge attempt: read, merge, re-prepare, install. When `lock` is
  /// non-null the install is gated on quiescence (log size under the
  /// held lock == bytes read) and the applied log is rotated aside;
  /// `*grew_during_merge` reports a discarded attempt (nothing was
  /// installed) that the caller should retry.
  StatusOr<ReloadOutcome> ApplyDeltaLogAttempt(const std::string& path,
                                               DeltaLogLock* lock,
                                               bool* grew_during_merge);

  void WorkerLoop();
  /// Executes one admitted request end to end (engine + cache insert).
  CheckReply Execute(PendingCheck& pending);
  void RecordAdmitted() DIME_EXCLUDES(stats_mu_);
  void RecordRejected() DIME_EXCLUDES(stats_mu_);
  void RecordCompleted(Deadline::Clock::time_point admit_time)
      DIME_EXCLUDES(stats_mu_);
  void RecordEngineStats(const DimeResult& result) DIME_EXCLUDES(stats_mu_);

  const ServiceOptions options_;
  /// The shared work-stealing pool (created before, destroyed after, the
  /// serving workers that submit to it).
  std::unique_ptr<exec::WorkStealingPool> engine_pool_;
  EpochManager epochs_;

  ResultCache cache_;
  BoundedRequestQueue<std::unique_ptr<PendingCheck>> queue_;
  std::vector<std::thread> workers_;  // written only in ctor / Shutdown

  mutable Mutex shutdown_mu_;
  bool workers_joined_ DIME_GUARDED_BY(shutdown_mu_) = false;

  mutable Mutex stats_mu_;
  uint64_t accepted_ DIME_GUARDED_BY(stats_mu_) = 0;
  uint64_t rejected_ DIME_GUARDED_BY(stats_mu_) = 0;
  uint64_t completed_ DIME_GUARDED_BY(stats_mu_) = 0;
  uint64_t delta_records_applied_ DIME_GUARDED_BY(stats_mu_) = 0;
  /// Log-bucketed latency histogram: bucket i counts requests whose
  /// admission-to-reply latency was in [2^(i-1), 2^i) microseconds.
  static constexpr int kLatencyBuckets = 40;
  uint64_t latency_buckets_[kLatencyBuckets] DIME_GUARDED_BY(stats_mu_) = {};
  uint64_t engine_transitivity_skips_ DIME_GUARDED_BY(stats_mu_) = 0;
  uint64_t engine_kernel_exits_ DIME_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace dime

#endif  // DIME_SERVER_SERVICE_H_
