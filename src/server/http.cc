#include "src/server/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/server/net_util.h"
#include "src/server/wire.h"

namespace dime {
namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

HttpParseResult Bad(int status, std::string error) {
  HttpParseResult result;
  result.outcome = HttpParseOutcome::kBad;
  result.error_status = status;
  result.error = std::move(error);
  return result;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// `value` contains `token` as a comma-separated member (already
/// lowercased). Good enough for Connection: close / keep-alive.
bool HasConnectionToken(std::string_view value, std::string_view token) {
  size_t pos = 0;
  while (pos <= value.size()) {
    size_t comma = value.find(',', pos);
    std::string_view member = value.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    if (TrimOws(member) == token) return true;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

bool LooksLikeHttp(std::string_view prefix) {
  // Line-JSON requests open with '{'; blank keep-alive lines are CR/LF.
  // An ASCII uppercase letter can only be an HTTP method — the wire
  // grammar has no bare letters at line start.
  if (prefix.empty()) return false;
  char c = prefix.front();
  return c >= 'A' && c <= 'Z';
}

HttpParseResult ParseHttpRequest(std::string_view buffer,
                                 const HttpLimits& limits, HttpRequest* out) {
  HttpParseResult result;

  size_t head_end = buffer.find(kHeadEnd);
  std::string_view head_seen =
      head_end == std::string_view::npos ? buffer : buffer.substr(0, head_end);
  // NUL bytes in the header section are a smuggling/abuse signal —
  // refuse even before the head is complete.
  if (head_seen.find('\0') != std::string_view::npos) {
    return Bad(400, "NUL byte in request head");
  }
  if (head_end == std::string_view::npos) {
    // Fail closed on oversized partials instead of buffering forever.
    size_t line_end = buffer.find(kCrlf);
    if (line_end == std::string_view::npos &&
        buffer.size() > limits.max_request_line_bytes) {
      return Bad(431, "request line exceeds " +
                          std::to_string(limits.max_request_line_bytes) +
                          " bytes");
    }
    if (buffer.size() > limits.max_header_bytes) {
      return Bad(431, "header section exceeds " +
                          std::to_string(limits.max_header_bytes) + " bytes");
    }
    return result;  // kNeedMore
  }
  if (head_end > limits.max_header_bytes) {
    return Bad(431, "header section exceeds " +
                        std::to_string(limits.max_header_bytes) + " bytes");
  }

  size_t line_end = buffer.find(kCrlf);
  if (line_end > limits.max_request_line_bytes) {
    return Bad(431, "request line exceeds " +
                        std::to_string(limits.max_request_line_bytes) +
                        " bytes");
  }
  std::string_view request_line = buffer.substr(0, line_end);
  if (request_line.find('\n') != std::string_view::npos) {
    return Bad(400, "bare LF in request line");
  }

  // METHOD SP request-target SP HTTP-version — single spaces, no tabs.
  size_t sp1 = request_line.find(' ');
  size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Bad(400, "malformed request line");
  }
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() || method.size() > 16) {
    return Bad(400, "malformed method");
  }
  for (char c : method) {
    if (c < 'A' || c > 'Z') return Bad(400, "malformed method");
  }
  if (target.empty() || target.front() != '/') {
    return Bad(400, "request target must be origin-form (start with '/')");
  }
  bool http11;
  if (version == "HTTP/1.1") {
    http11 = true;
  } else if (version == "HTTP/1.0") {
    http11 = false;
  } else {
    return Bad(505, "unsupported protocol version");
  }

  HttpRequest request;
  request.method = std::string(method);
  request.target = std::string(target);
  request.keep_alive = http11;  // 1.0 defaults to close

  bool have_content_length = false;
  size_t content_length = 0;
  size_t header_count = 0;
  size_t pos = line_end + kCrlf.size();
  while (pos < head_end) {
    size_t next = buffer.find(kCrlf, pos);
    // head_end was found, so every header line has a CRLF terminator.
    std::string_view line = buffer.substr(pos, next - pos);
    pos = next + kCrlf.size();
    if (line.find('\n') != std::string_view::npos) {
      return Bad(400, "bare LF in header section");
    }
    if (line.front() == ' ' || line.front() == '\t') {
      // Obsolete line folding: deprecated, and a classic smuggling
      // vector — fail closed.
      return Bad(400, "folded header line");
    }
    if (++header_count > limits.max_headers) {
      return Bad(431,
                 "more than " + std::to_string(limits.max_headers) +
                     " header fields");
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Bad(400, "malformed header field");
    }
    std::string_view raw_name = line.substr(0, colon);
    if (raw_name.find(' ') != std::string_view::npos ||
        raw_name.find('\t') != std::string_view::npos) {
      // Whitespace before the colon desynchronizes naive proxies —
      // RFC 9112 requires rejection.
      return Bad(400, "whitespace in header field name");
    }
    std::string name = AsciiLower(raw_name);
    std::string_view value = TrimOws(line.substr(colon + 1));

    if (name == "content-length") {
      if (value.empty() || value.size() > 18) {
        return Bad(400, "malformed Content-Length");
      }
      size_t parsed = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return Bad(400, "malformed Content-Length");
        parsed = parsed * 10 + static_cast<size_t>(c - '0');
      }
      if (have_content_length && parsed != content_length) {
        return Bad(400, "conflicting Content-Length headers");
      }
      have_content_length = true;
      content_length = parsed;
      if (content_length > limits.max_body_bytes) {
        return Bad(413, "body of " + std::to_string(content_length) +
                            " bytes exceeds the " +
                            std::to_string(limits.max_body_bytes) +
                            "-byte cap");
      }
    } else if (name == "transfer-encoding") {
      // Content-Length framing only: skipping an encoding we do not
      // implement would desynchronize the connection.
      return Bad(501, "Transfer-Encoding is not supported");
    } else if (name == "connection") {
      std::string lowered = AsciiLower(value);
      if (HasConnectionToken(lowered, "close")) {
        request.keep_alive = false;
      } else if (HasConnectionToken(lowered, "keep-alive")) {
        request.keep_alive = true;
      }
    }
  }

  size_t body_start = head_end + kHeadEnd.size();
  if (buffer.size() - body_start < content_length) {
    return result;  // kNeedMore: body still in flight (already capped)
  }
  request.body = std::string(buffer.substr(body_start, content_length));
  *out = std::move(request);
  result.outcome = HttpParseOutcome::kOk;
  result.consumed = body_start + content_length;
  return result;
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kSchemaMismatch:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    default:
      return 500;
  }
}

std::string SerializeHttpResponse(int http_status, std::string_view body,
                                  bool keep_alive) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(http_status);
  out += ' ';
  out += ReasonPhrase(http_status);
  out += "\r\nContent-Type: application/json\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\n";
  if (!keep_alive) out += "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

void RouteHttpRequestAsync(
    DimeService* service, const DispatchHooks& hooks, HttpRequest request,
    std::function<void(std::string response, bool keep_alive, bool shutdown)>
        done) {
  const bool keep_alive = request.keep_alive;
  auto fail = [&done, keep_alive](int http_status, const Status& status) {
    done(SerializeHttpResponse(http_status, SerializeErrorResponse("", status),
                               keep_alive),
         keep_alive, false);
  };

  WireRequest::Type type;
  bool want_post;
  if (request.target == "/v1/check") {
    type = WireRequest::Type::kCheck;
    want_post = true;
  } else if (request.target == "/v1/stats") {
    type = WireRequest::Type::kStats;
    want_post = false;
  } else if (request.target == "/v1/ping") {
    type = WireRequest::Type::kPing;
    want_post = false;
  } else if (request.target == "/v1/reload") {
    type = WireRequest::Type::kReload;
    want_post = true;
  } else if (request.target == "/v1/shutdown") {
    type = WireRequest::Type::kShutdown;
    want_post = true;
  } else {
    fail(404, NotFoundError("no route for '" + request.target + "'"));
    return;
  }
  if (request.method != (want_post ? "POST" : "GET")) {
    fail(405, InvalidArgumentError(
                  std::string(want_post ? "POST" : "GET") + " required for " +
                  request.target));
    return;
  }

  // The body is the same flat object the line protocol uses, minus
  // "type" (the route carries the verb). Empty bodies mean "defaults".
  JsonObject object;
  if (!request.body.empty()) {
    StatusOr<JsonObject> parsed = ParseJsonObjectLine(request.body);
    if (!parsed.ok()) {
      fail(400, parsed.status());
      return;
    }
    object = std::move(parsed).value();
  }
  StatusOr<WireRequest> wire = RequestFromJson(object, type);
  if (!wire.ok()) {
    fail(400, wire.status());
    return;
  }

  DispatchRequestAsync(
      service, hooks, *wire,
      [keep_alive, done = std::move(done)](DispatchResult result) {
        done(SerializeHttpResponse(HttpStatusForCode(result.code), result.line,
                                   keep_alive),
             keep_alive, result.shutdown);
      });
}

StatusOr<std::string> SendHttpRequest(const std::string& host, int port,
                                      const std::string& method,
                                      const std::string& target,
                                      const std::string& body, int timeout_ms,
                                      int* http_status) {
  int fd = ConnectToHost(host, port, timeout_ms);
  if (fd < 0) {
    return UnavailableError("cannot connect to " + host + ":" +
                            std::to_string(port) + ": " +
                            std::strerror(errno));
  }
  std::string request;
  request.reserve(body.size() + 160);
  request += method;
  request += ' ';
  request += target;
  request += " HTTP/1.1\r\nHost: ";
  request += host;
  request += ':';
  request += std::to_string(port);
  request += "\r\nContent-Type: application/json\r\nContent-Length: ";
  request += std::to_string(body.size());
  request += "\r\nConnection: close\r\n\r\n";
  request += body;
  if (!SendAll(fd, request)) {
    Status status = IoError(std::string("send: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }

  // Connection: close above means "read to EOF" is a correct fallback,
  // but Content-Length is still honored when present so a lingering
  // server cannot stall the client past the response.
  std::string response;
  char chunk[4096];
  size_t head_end = std::string::npos;
  size_t body_need = std::string::npos;
  while (true) {
    if (head_end != std::string::npos && body_need != std::string::npos &&
        response.size() >= head_end + 4 + body_need) {
      break;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved_errno = errno;
      ::close(fd);
      if (saved_errno == EAGAIN || saved_errno == EWOULDBLOCK) {
        return DeadlineExceededError("timed out waiting for the response");
      }
      return IoError(std::string("recv: ") + std::strerror(saved_errno));
    }
    if (n == 0) break;  // EOF
    response.append(chunk, static_cast<size_t>(n));
    if (head_end == std::string::npos) {
      head_end = response.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Scan for Content-Length in the received head.
        std::string_view head(response.data(), head_end);
        size_t pos = head.find("\r\n");
        while (pos != std::string_view::npos && pos < head.size()) {
          pos += 2;
          size_t next = head.find("\r\n", pos);
          std::string_view line = head.substr(
              pos, next == std::string_view::npos ? head.size() - pos
                                                  : next - pos);
          size_t colon = line.find(':');
          if (colon != std::string_view::npos &&
              AsciiLower(line.substr(0, colon)) == "content-length") {
            std::string_view value = TrimOws(line.substr(colon + 1));
            size_t parsed = 0;
            bool digits = !value.empty();
            for (char c : value) {
              if (c < '0' || c > '9') {
                digits = false;
                break;
              }
              parsed = parsed * 10 + static_cast<size_t>(c - '0');
            }
            if (digits) body_need = parsed;
          }
          pos = next;
        }
      }
    }
  }
  ::close(fd);

  if (head_end == std::string::npos) {
    return response.empty()
               ? IoError("connection closed before a response arrived")
               : ParseError("malformed HTTP response (no header terminator)");
  }
  std::string_view status_line(response.data(),
                               std::string_view(response).find("\r\n"));
  if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
    return ParseError("malformed HTTP status line");
  }
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) {
    return ParseError("malformed HTTP status line");
  }
  int code = 0;
  for (int i = 0; i < 3; ++i) {
    char c = status_line[sp + 1 + static_cast<size_t>(i)];
    if (c < '0' || c > '9') return ParseError("malformed HTTP status code");
    code = code * 10 + (c - '0');
  }
  if (http_status != nullptr) *http_status = code;

  std::string response_body = response.substr(head_end + 4);
  if (body_need != std::string::npos && response_body.size() > body_need) {
    response_body.resize(body_need);
  }
  return response_body;
}

}  // namespace dime
