#include "src/server/event_loop.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/common/logging.h"
#include "src/server/net_util.h"
#include "src/server/wire.h"

namespace dime {
namespace {

/// epoll_event.data.u64 tags for the two non-connection fds; connection
/// ids start above them.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

/// Per-readiness read budget: with level-triggered epoll the kernel
/// re-reports leftover bytes, so a bounded drain keeps one firehose
/// connection from starving the rest of the loop.
constexpr size_t kReadBudget = 256u << 10;

std::chrono::steady_clock::time_point Now() {
  return std::chrono::steady_clock::now();
}

}  // namespace

EventLoopServer::EventLoopServer(DimeService* service,
                                 EventLoopServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.max_connections == 0) options_.max_connections = 1;
  if (options_.offload_threads == 0) options_.offload_threads = 1;
  if (options_.max_pipeline_depth < 1) options_.max_pipeline_depth = 1;
  // One cap for the largest admissible request on either protocol.
  options_.http_limits.max_body_bytes = options_.max_line_bytes;
}

EventLoopServer::~EventLoopServer() { Stop(); }

Status EventLoopServer::Start() {
  StatusOr<int> listener =
      ListenTcp(options_.host, options_.port, options_.backlog, &port_);
  if (!listener.ok()) return listener.status();
  listen_fd_ = *listener;
  if (!SetNonBlocking(listen_fd_)) {
    Status status = IoError(std::string("fcntl(listener): ") +
                            std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = epoll_fd_ < 0 ? -1 : ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status status =
        IoError(std::string("epoll/eventfd setup: ") + std::strerror(errno));
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    ::close(listen_fd_);
    epoll_fd_ = -1;
    listen_fd_ = -1;
    return status;
  }

  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  next_conn_id_ = kFirstConnId;
  last_sweep_ = Now();
  loop_thread_ = std::thread([this] { LoopThread(); });
  offload_threads_.reserve(options_.offload_threads);
  for (unsigned i = 0; i < options_.offload_threads; ++i) {
    offload_threads_.emplace_back([this] { OffloadThread(); });
  }
  return OkStatus();
}

void EventLoopServer::WakeLoop() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  // A full eventfd counter still leaves the fd readable, so a failed
  // write cannot lose the wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoopServer::RequestShutdown() {
  {
    MutexLock lock(&state_mu_);
    shutdown_requested_ = true;
  }
  state_cv_.SignalAll();
}

bool EventLoopServer::shutdown_requested() const {
  MutexLock lock(&state_mu_);
  return shutdown_requested_;
}

void EventLoopServer::Wait() {
  MutexLock lock(&state_mu_);
  while (!shutdown_requested_ && !stopping_.load()) {
    state_cv_.Wait(&state_mu_);
  }
}

void EventLoopServer::Stop() {
  bool was_stopping = stopping_.exchange(true);
  state_cv_.SignalAll();
  if (was_stopping) {
    // Idempotent, but a concurrent caller must still not return before
    // teardown finished; joining below handles the common owner-only
    // case, and tests only Stop from one thread.
  }
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    MutexLock lock(&off_mu_);
    offload_closed_ = true;
  }
  off_cv_.SignalAll();
  for (std::thread& t : offload_threads_) {
    if (t.joinable()) t.join();
  }
  offload_threads_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

void EventLoopServer::LoopThread() {
  bool draining = false;
  std::chrono::steady_clock::time_point drain_deadline;
  struct epoll_event events[128];

  while (true) {
    int timeout_ms = 1000;
    if (stopping_.load()) {
      timeout_ms = 50;
    } else if (options_.idle_timeout_ms > 0) {
      timeout_ms = options_.idle_timeout_ms / 4;
      if (timeout_ms < 10) timeout_ms = 10;
      if (timeout_ms > 1000) timeout_ms = 1000;
    }
    int n = ::epoll_wait(epoll_fd_, events,
                         static_cast<int>(std::size(events)), timeout_ms);
    if (n < 0 && errno != EINTR) {
      DIME_LOG(ERROR) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
      } else if (tag == kListenerTag) {
        if (!stopping_.load()) AcceptReady();
      } else {
        HandleConnIo(tag, events[i].events);
      }
    }
    ApplyCompletions();
    SweepIdle();

    if (!stopping_.load()) continue;

    // --- graceful drain ---
    if (!draining) {
      draining = true;
      drain_deadline =
          Now() + std::chrono::milliseconds(options_.drain_timeout_ms > 0
                                                ? options_.drain_timeout_ms
                                                : 0);
      if (listen_fd_ >= 0) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      // No new frames: admitted work finishes and flushes, reads stop.
      for (auto& entry : conns_) {
        Connection* conn = entry.second.get();
        conn->closing = true;
        UpdateInterest(conn, conn->events & ~static_cast<uint32_t>(EPOLLIN));
      }
    }
    const bool past_deadline =
        options_.drain_timeout_ms > 0 && Now() >= drain_deadline;
    std::vector<uint64_t> doomed;
    for (auto& entry : conns_) {
      Connection* conn = entry.second.get();
      bool flushed = conn->outbox_off >= conn->outbox.size();
      if (conn->dead || past_deadline ||
          (conn->inflight == 0 && flushed)) {
        doomed.push_back(entry.first);
      }
    }
    for (uint64_t id : doomed) DestroyConn(id);
    // Outstanding dispatches are ALWAYS awaited, even past the drain
    // deadline: their completion callbacks capture `this`, so exiting
    // while an engine run is still in flight would be a use-after-free,
    // exactly the class of bug the completion queue exists to prevent.
    // (The service's own Shutdown() bounds how long that can take.)
    bool quiesced;
    {
      MutexLock lock(&comp_mu_);
      quiesced = outstanding_ == 0 && completions_.empty();
    }
    if (quiesced && conns_.empty()) break;
  }

  // The loop owns every connection; nothing else touches them.
  std::vector<uint64_t> leftover;
  leftover.reserve(conns_.size());
  for (auto& entry : conns_) leftover.push_back(entry.first);
  for (uint64_t id : leftover) DestroyConn(id);
}

void EventLoopServer::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE) {
        DIME_LOG(WARNING) << "accept: " << std::strerror(errno)
                          << " (fd limit); backing off";
        return;
      }
      return;
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = Now();
    Connection* raw = conn.get();
    const bool shed = conns_.size() >= options_.max_connections;
    conns_.emplace(raw->id, std::move(conn));
    open_connections_.fetch_add(1);

    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = shed ? 0u : static_cast<uint32_t>(EPOLLIN);
    ev.data.u64 = raw->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      DestroyConn(raw->id);
      continue;
    }
    raw->events = ev.events;

    if (shed) {
      // Over the ceiling: answer with ONE clean error and close instead
      // of accepting-and-stalling. The peer has not sent a byte yet, so
      // its protocol is unknowable — the notice is line-JSON (the
      // native protocol; an HTTP client sees a cut connection with a
      // JSON diagnostic in the stream).
      connections_shed_.fetch_add(1);
      raw->closing = true;
      EnqueueLocalResponse(
          raw,
          SerializeErrorResponse(
              "", ResourceExhaustedError(
                      "connection ceiling reached (max_connections=" +
                      std::to_string(options_.max_connections) +
                      "); retry later")),
          /*close_after=*/true);
      Reap(raw->id);
    }
  }
}

void EventLoopServer::HandleConnIo(uint64_t conn_id, uint32_t revents) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();

  if (revents & EPOLLERR) {
    conn->dead = true;
    Reap(conn_id);
    return;
  }
  if ((revents & EPOLLIN) && !conn->closing && !conn->paused && !conn->dead) {
    ReadFromConn(conn);
  }
  if (!conn->dead && (revents & EPOLLOUT)) {
    TryWrite(conn);
  }
  if (!conn->dead && (revents & EPOLLHUP) && conn->inflight == 0 &&
      conn->outbox_off >= conn->outbox.size()) {
    conn->dead = true;
  }
  Reap(conn_id);
}

void EventLoopServer::ReadFromConn(Connection* conn) {
  char buf[64 << 10];
  size_t total = 0;
  while (total < kReadBudget && !conn->dead && !conn->paused &&
         !conn->closing) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbox.append(buf, static_cast<size_t>(n));
      conn->last_activity = Now();
      total += static_cast<size_t>(n);
      ExtractFrames(conn);
      continue;
    }
    if (n == 0) {
      // EOF: the peer is done sending; in-flight responses still get
      // written, then the connection is reaped.
      conn->closing = true;
      UpdateInterest(conn, conn->events & ~static_cast<uint32_t>(EPOLLIN));
      if (conn->inflight == 0 && conn->outbox_off >= conn->outbox.size()) {
        conn->dead = true;
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn->dead = true;
    return;
  }
}

void EventLoopServer::ExtractFrames(Connection* conn) {
  while (!conn->paused && !conn->closing && !conn->dead) {
    if (conn->proto == Proto::kUnknown) {
      // Blank keep-alive lines are legal line-protocol filler; skip them
      // before sniffing so they cannot misidentify the protocol.
      size_t skip = 0;
      while (skip < conn->inbox.size() &&
             (conn->inbox[skip] == '\r' || conn->inbox[skip] == '\n')) {
        ++skip;
      }
      if (skip > 0) conn->inbox.erase(0, skip);
      if (conn->inbox.empty()) return;
      conn->proto =
          LooksLikeHttp(conn->inbox) ? Proto::kHttp : Proto::kLine;
    }

    if (conn->proto == Proto::kLine) {
      size_t nl = conn->inbox.find('\n', conn->inbox_scan);
      if (nl == std::string::npos) {
        conn->inbox_scan = conn->inbox.size();
        if (conn->inbox.size() > options_.max_line_bytes) {
          // Same contract as the old transport: an over-cap line is an
          // abuse signal — cut, no reply.
          conn->dead = true;
        }
        return;
      }
      std::string line = conn->inbox.substr(0, nl);
      conn->inbox.erase(0, nl + 1);
      conn->inbox_scan = 0;
      if (line.empty()) continue;
      if (line.size() > options_.max_line_bytes) {
        conn->dead = true;
        return;
      }
      OffloadTask task;
      task.proto = Proto::kLine;
      task.line = std::move(line);
      DispatchFrame(conn, std::move(task));
    } else {
      HttpRequest request;
      HttpParseResult parsed =
          ParseHttpRequest(conn->inbox, options_.http_limits, &request);
      if (parsed.outcome == HttpParseOutcome::kNeedMore) return;
      if (parsed.outcome == HttpParseOutcome::kBad) {
        // Fail closed: one diagnostic response, then cut. It still goes
        // through the serial path so pipelined good requests ahead of
        // the bad one answer first.
        conn->closing = true;
        UpdateInterest(conn,
                       conn->events & ~static_cast<uint32_t>(EPOLLIN));
        EnqueueLocalResponse(
            conn,
            SerializeHttpResponse(
                parsed.error_status,
                SerializeErrorResponse("", ParseError(parsed.error)),
                /*keep_alive=*/false),
            /*close_after=*/true);
        return;
      }
      conn->inbox.erase(0, parsed.consumed);
      OffloadTask task;
      task.proto = Proto::kHttp;
      task.http = std::move(request);
      DispatchFrame(conn, std::move(task));
    }

    if (conn->inflight >= options_.max_pipeline_depth) {
      conn->paused = true;
      UpdateInterest(conn, conn->events & ~static_cast<uint32_t>(EPOLLIN));
      return;
    }
  }
}

void EventLoopServer::DispatchFrame(Connection* conn, OffloadTask task) {
  task.conn_id = conn->id;
  task.serial = conn->next_serial++;
  ++conn->inflight;
  {
    MutexLock lock(&comp_mu_);
    ++outstanding_;
  }
  {
    MutexLock lock(&off_mu_);
    offload_queue_.push_back(std::move(task));
  }
  off_cv_.Signal();
}

void EventLoopServer::EnqueueLocalResponse(Connection* conn,
                                           std::string bytes,
                                           bool close_after) {
  Completion completion;
  completion.bytes = std::move(bytes);
  completion.close_after = close_after;
  uint64_t serial = conn->next_serial++;
  ++conn->inflight;
  conn->ready.emplace(serial, std::move(completion));
  FlushReady(conn);
}

void EventLoopServer::OffloadThread() {
  while (true) {
    OffloadTask task;
    {
      MutexLock lock(&off_mu_);
      while (offload_queue_.empty() && !offload_closed_) {
        off_cv_.Wait(&off_mu_);
      }
      if (offload_queue_.empty()) return;
      task = std::move(offload_queue_.front());
      offload_queue_.pop_front();
    }
    const uint64_t conn_id = task.conn_id;
    const uint64_t serial = task.serial;
    auto post = [this, conn_id, serial](Completion completion) {
      {
        MutexLock lock(&comp_mu_);
        completions_.push_back(
            PostedCompletion{conn_id, serial, std::move(completion)});
        --outstanding_;
      }
      WakeLoop();
    };

    if (task.proto == Proto::kLine) {
      StatusOr<WireRequest> parsed = ParseRequestLine(task.line);
      if (!parsed.ok()) {
        Completion completion;
        completion.bytes = SerializeErrorResponse("", parsed.status());
        post(std::move(completion));
        continue;
      }
      DispatchRequestAsync(
          service_, options_.hooks, *parsed,
          [post](DispatchResult result) {
            Completion completion;
            completion.bytes = std::move(result.line);
            // The old transport closed the connection right after the
            // shutdown ack hit the wire; keep that contract.
            completion.close_after = result.shutdown;
            completion.shutdown = result.shutdown;
            post(std::move(completion));
          });
    } else {
      RouteHttpRequestAsync(
          service_, options_.hooks, std::move(task.http),
          [post](std::string response, bool keep_alive, bool shutdown) {
            Completion completion;
            completion.bytes = std::move(response);
            completion.close_after = !keep_alive || shutdown;
            completion.shutdown = shutdown;
            post(std::move(completion));
          });
    }
  }
}

void EventLoopServer::ApplyCompletions() {
  std::vector<PostedCompletion> batch;
  {
    MutexLock lock(&comp_mu_);
    batch.swap(completions_);
  }
  for (PostedCompletion& posted : batch) {
    auto it = conns_.find(posted.conn_id);
    if (it == conns_.end()) {
      // The connection died while the engine ran. If this was a
      // shutdown ack it was never delivered, so (like the old
      // transport, where a failed ack write skipped RequestShutdown)
      // the server keeps serving.
      continue;
    }
    Connection* conn = it->second.get();
    conn->ready.emplace(posted.serial, std::move(posted.completion));
    FlushReady(conn);
    Reap(posted.conn_id);
  }
}

void EventLoopServer::FlushReady(Connection* conn) {
  auto it = conn->ready.begin();
  while (it != conn->ready.end() && it->first == conn->flush_serial) {
    Completion& completion = it->second;
    conn->outbox.append(completion.bytes);
    if (completion.close_after) conn->closing = true;
    if (completion.shutdown) conn->shutdown_after_flush = true;
    --conn->inflight;
    ++conn->flush_serial;
    it = conn->ready.erase(it);
  }
  TryWrite(conn);
  if (!conn->dead && conn->paused &&
      conn->inflight < options_.max_pipeline_depth) {
    conn->paused = false;
    if (!conn->closing) {
      UpdateInterest(conn, conn->events | EPOLLIN);
      // Frames may already be buffered; the kernel will not re-report
      // bytes we already read, so resume framing explicitly.
      ExtractFrames(conn);
    }
  }
}

void EventLoopServer::TryWrite(Connection* conn) {
  if (conn->dead) return;
  while (conn->outbox_off < conn->outbox.size()) {
    ssize_t n = ::send(conn->fd, conn->outbox.data() + conn->outbox_off,
                       conn->outbox.size() - conn->outbox_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbox_off += static_cast<size_t>(n);
      conn->last_activity = Now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Partial write: arm EPOLLOUT and resume when the kernel says so.
      UpdateInterest(conn, conn->events | EPOLLOUT);
      return;
    }
    conn->dead = true;
    return;
  }
  conn->outbox.clear();
  conn->outbox_off = 0;
  UpdateInterest(conn, conn->events & ~static_cast<uint32_t>(EPOLLOUT));
  if (conn->shutdown_after_flush) {
    // The ack bytes are in the kernel's send buffer (the same guarantee
    // the old SendAll-then-RequestShutdown gave) — now the owner may
    // drain.
    conn->shutdown_after_flush = false;
    RequestShutdown();
  }
  if (conn->closing && conn->inflight == 0) conn->dead = true;
}

void EventLoopServer::UpdateInterest(Connection* conn, uint32_t want) {
  if (want == conn->events || conn->dead) return;
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = want;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->events = want;
  }
}

void EventLoopServer::Reap(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it != conns_.end() && it->second->dead) DestroyConn(conn_id);
}

void EventLoopServer::DestroyConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  int fd = it->second->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // Decrement before close: once close() lands the peer can observe the
  // EOF, and the gauge must already agree that the connection is gone.
  open_connections_.fetch_sub(1);
  ::close(fd);
  conns_.erase(it);
}

void EventLoopServer::SweepIdle() {
  if (options_.idle_timeout_ms <= 0) return;
  auto now = Now();
  auto interval = std::chrono::milliseconds(options_.idle_timeout_ms / 4 + 1);
  if (now - last_sweep_ < interval) return;
  last_sweep_ = now;
  auto cutoff = now - std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<uint64_t> doomed;
  for (auto& entry : conns_) {
    Connection* conn = entry.second.get();
    // Only truly idle peers: a connection waiting on its own slow
    // request (or our unflushed response) is OUR latency, not idleness.
    if (conn->inflight == 0 && conn->outbox_off >= conn->outbox.size() &&
        conn->last_activity < cutoff) {
      doomed.push_back(entry.first);
    }
  }
  for (uint64_t id : doomed) DestroyConn(id);
}

}  // namespace dime
