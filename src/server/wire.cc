#include "src/server/wire.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dime {
namespace {

/// Recursive-descent parser over a single line. Positions are byte
/// offsets; the grammar is ASCII, string contents may be any UTF-8.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  StatusOr<JsonObject> ParseObjectLine() {
    SkipWs();
    JsonObject object;
    DIME_RETURN_IF_ERROR(ParseObjectInto(&object));
    SkipWs();
    if (pos_ != text_.size()) {
      return ParseError("trailing bytes after JSON object");
    }
    return object;
  }

 private:
  Status ParseObjectInto(JsonObject* object) {
    DIME_RETURN_IF_ERROR(Expect('{'));
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return OkStatus();
    }
    while (true) {
      SkipWs();
      std::string key;
      DIME_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      DIME_RETURN_IF_ERROR(Expect(':'));
      SkipWs();
      JsonValue value;
      DIME_RETURN_IF_ERROR(ParseValue(&value));
      (*object)[std::move(key)] = std::move(value);
      SkipWs();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return OkStatus();
      }
      return ParseError("expected ',' or '}' in object");
    }
  }

  Status ParseValue(JsonValue* out) {
    char c = Peek();
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == '[' || c == '{') {
      // Nested values are captured verbatim (kRaw): requests never nest,
      // and response clients only need the raw text or the scalars.
      out->kind = JsonValue::Kind::kRaw;
      return CaptureBalanced(&out->string_value);
    }
    if (c == 't' || c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      if (text_.substr(pos_, 4) == "true") {
        out->bool_value = true;
        pos_ += 4;
        return OkStatus();
      }
      if (text_.substr(pos_, 5) == "false") {
        out->bool_value = false;
        pos_ += 5;
        return OkStatus();
      }
      return ParseError("bad literal");
    }
    if (c == 'n') {
      if (text_.substr(pos_, 4) == "null") {
        out->kind = JsonValue::Kind::kNull;
        pos_ += 4;
        return OkStatus();
      }
      return ParseError("bad literal");
    }
    return ParseNumber(out);
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return ParseError("expected a JSON value");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value =
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr);
    return OkStatus();
  }

  Status ParseString(std::string* out) {
    DIME_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return OkStatus();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          DIME_RETURN_IF_ERROR(ParseHex4(&code));
          // Surrogate pair -> one code point.
          if (code >= 0xD800 && code <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            unsigned low = 0;
            DIME_RETURN_IF_ERROR(ParseHex4(&low));
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return ParseError("bad surrogate pair");
            }
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return ParseError("bad escape");
      }
    }
    return ParseError("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return ParseError("bad \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return ParseError("bad \\u escape");
    }
    *out = v;
    return OkStatus();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  /// Captures a balanced [...] or {...} (strings respected) verbatim.
  Status CaptureBalanced(std::string* out) {
    size_t start = pos_;
    int depth = 0;
    bool in_string = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (in_string) {
        if (c == '\\') {
          ++pos_;  // skip the escaped char too
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '[' || c == '{') {
        ++depth;
      } else if (c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          ++pos_;
          *out = std::string(text_.substr(start, pos_ - start));
          return OkStatus();
        }
      }
      ++pos_;
    }
    return ParseError("unterminated array/object");
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Expect(char c) {
    if (Peek() != c) {
      return ParseError(std::string("expected '") + c + "'");
    }
    ++pos_;
    return OkStatus();
  }

  Status ParseError(std::string what) {
    return dime::ParseError("json: " + what + " at byte " +
                            std::to_string(pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

const JsonValue* Find(const JsonObject& object, std::string_view key) {
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

}  // namespace

StatusOr<JsonObject> ParseJsonObjectLine(std::string_view line) {
  return JsonParser(line).ParseObjectLine();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

void JsonLineWriter::Key(std::string_view key) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
}

void JsonLineWriter::AddString(std::string_view key, std::string_view value) {
  Key(key);
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonLineWriter::AddInt(std::string_view key, int64_t value) {
  Key(key);
  out_ += std::to_string(value);
}

void JsonLineWriter::AddUint(std::string_view key, uint64_t value) {
  Key(key);
  out_ += std::to_string(value);
}

void JsonLineWriter::AddDouble(std::string_view key, double value) {
  Key(key);
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no inf/nan
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonLineWriter::AddBool(std::string_view key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
}

void JsonLineWriter::AddCountArray(std::string_view key,
                                   const std::vector<size_t>& values) {
  Key(key);
  out_ += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out_ += ',';
    out_ += std::to_string(values[i]);
  }
  out_ += ']';
}

void JsonLineWriter::AddStringArray(std::string_view key,
                                    const std::vector<std::string>& values) {
  Key(key);
  out_ += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out_ += ',';
    out_ += '"';
    out_ += JsonEscape(values[i]);
    out_ += '"';
  }
  out_ += ']';
}

std::string JsonLineWriter::Finish() {
  out_ += "}\n";
  return std::move(out_);
}

StatusOr<WireRequest> RequestFromJson(const JsonObject& object,
                                      WireRequest::Type type) {
  WireRequest request;
  request.type = type;

  // A helper per field type; wrong-typed known fields are rejected rather
  // than silently zeroed, unknown fields are ignored.
  auto get_string = [&](const char* key, std::string* out) -> Status {
    const JsonValue* v = Find(object, key);
    if (v == nullptr) return OkStatus();
    if (v->kind != JsonValue::Kind::kString) {
      return InvalidArgumentError(std::string("field \"") + key +
                                  "\" must be a string");
    }
    *out = v->string_value;
    return OkStatus();
  };
  DIME_RETURN_IF_ERROR(get_string("id", &request.id));
  DIME_RETURN_IF_ERROR(get_string("group", &request.group_name));
  DIME_RETURN_IF_ERROR(get_string("group_tsv", &request.group_tsv));
  DIME_RETURN_IF_ERROR(get_string("engine", &request.engine));
  DIME_RETURN_IF_ERROR(get_string("fingerprint", &request.fingerprint));

  if (const JsonValue* v = Find(object, "deadline_ms")) {
    if (v->kind != JsonValue::Kind::kNumber) {
      return InvalidArgumentError("field \"deadline_ms\" must be a number");
    }
    request.deadline_ms = static_cast<int64_t>(v->number_value);
  }
  if (const JsonValue* v = Find(object, "no_cache")) {
    if (v->kind != JsonValue::Kind::kBool) {
      return InvalidArgumentError("field \"no_cache\" must be a bool");
    }
    request.no_cache = v->bool_value;
  }
  return request;
}

StatusOr<WireRequest> ParseRequestLine(std::string_view line) {
  DIME_ASSIGN_OR_RETURN(JsonObject object, ParseJsonObjectLine(line));

  const JsonValue* type = Find(object, "type");
  if (type == nullptr || type->kind != JsonValue::Kind::kString) {
    return InvalidArgumentError("request needs a string \"type\" field");
  }
  WireRequest::Type parsed_type;
  if (type->string_value == "check") {
    parsed_type = WireRequest::Type::kCheck;
  } else if (type->string_value == "stats") {
    parsed_type = WireRequest::Type::kStats;
  } else if (type->string_value == "ping") {
    parsed_type = WireRequest::Type::kPing;
  } else if (type->string_value == "shutdown") {
    parsed_type = WireRequest::Type::kShutdown;
  } else if (type->string_value == "reload") {
    parsed_type = WireRequest::Type::kReload;
  } else {
    return InvalidArgumentError("unknown request type '" +
                                type->string_value + "'");
  }
  return RequestFromJson(object, parsed_type);
}

std::string SerializeRequest(const WireRequest& request) {
  JsonLineWriter w;
  switch (request.type) {
    case WireRequest::Type::kCheck: w.AddString("type", "check"); break;
    case WireRequest::Type::kStats: w.AddString("type", "stats"); break;
    case WireRequest::Type::kPing: w.AddString("type", "ping"); break;
    case WireRequest::Type::kShutdown: w.AddString("type", "shutdown"); break;
    case WireRequest::Type::kReload: w.AddString("type", "reload"); break;
  }
  if (!request.id.empty()) w.AddString("id", request.id);
  if (!request.group_name.empty()) w.AddString("group", request.group_name);
  if (!request.group_tsv.empty()) w.AddString("group_tsv", request.group_tsv);
  if (request.deadline_ms > 0) w.AddInt("deadline_ms", request.deadline_ms);
  if (!request.engine.empty()) w.AddString("engine", request.engine);
  if (request.no_cache) w.AddBool("no_cache", true);
  if (!request.fingerprint.empty()) {
    w.AddString("fingerprint", request.fingerprint);
  }
  return w.Finish();
}

std::string SerializeErrorResponse(const std::string& id,
                                   const Status& status) {
  JsonLineWriter w;
  if (!id.empty()) w.AddString("id", id);
  w.AddString("status", StatusCodeName(status.code()));
  w.AddString("error", status.message());
  return w.Finish();
}

std::string SerializeCheckResponse(const std::string& id, const Group& group,
                                   const CheckReply& reply) {
  const DimeResult& result = *reply.result;
  JsonLineWriter w;
  if (!id.empty()) w.AddString("id", id);
  w.AddString("status", StatusCodeName(result.status.code()));
  if (!result.status.ok()) w.AddString("error", result.status.message());
  w.AddBool("cached", reply.cache_hit);
  if (reply.epoch != nullptr) w.AddUint("epoch", reply.epoch->sequence());
  w.AddUint("partitions", result.partitions.size());
  w.AddUint("pivot_size", result.PivotEntities().size());
  std::vector<size_t> per_prefix;
  per_prefix.reserve(result.flagged_by_prefix.size());
  for (const auto& flagged : result.flagged_by_prefix) {
    per_prefix.push_back(flagged.size());
  }
  w.AddCountArray("flagged_per_prefix", per_prefix);
  std::vector<std::string> flagged_ids;
  flagged_ids.reserve(result.flagged().size());
  for (int e : result.flagged()) {
    flagged_ids.push_back(group.entities[static_cast<size_t>(e)].id);
  }
  w.AddStringArray("flagged", flagged_ids);
  return w.Finish();
}

std::string SerializeStatsResponse(const std::string& id,
                                   const StatsSnapshot& stats) {
  JsonLineWriter w;
  if (!id.empty()) w.AddString("id", id);
  w.AddString("status", "OK");
  w.AddUint("accepted", stats.accepted);
  w.AddUint("rejected", stats.rejected);
  w.AddUint("completed", stats.completed);
  w.AddUint("cache_hits", stats.cache_hits);
  w.AddUint("cache_misses", stats.cache_misses);
  w.AddUint("cache_size", stats.cache_size);
  w.AddUint("cache_capacity", stats.cache_capacity);
  w.AddUint("queue_depth", stats.queue_depth);
  w.AddUint("queue_capacity", stats.queue_capacity);
  w.AddUint("workers", stats.workers);
  w.AddUint("epoch", stats.epoch_sequence);
  w.AddUint("epochs_installed", stats.epochs_installed);
  w.AddUint("epochs_retired", stats.epochs_retired);
  w.AddUint("delta_records_applied", stats.delta_records_applied);
  w.AddUint("pairs_skipped_by_transitivity",
            stats.pairs_skipped_by_transitivity);
  w.AddUint("kernel_early_exits", stats.kernel_early_exits);
  w.AddDouble("p50_ms", stats.p50_ms);
  w.AddDouble("p99_ms", stats.p99_ms);
  return w.Finish();
}

std::string SerializePingResponse(const std::string& id) {
  JsonLineWriter w;
  if (!id.empty()) w.AddString("id", id);
  w.AddString("status", "OK");
  w.AddString("pong", "dime_server");
  return w.Finish();
}

std::string SerializeShutdownResponse(const std::string& id) {
  JsonLineWriter w;
  if (!id.empty()) w.AddString("id", id);
  w.AddString("status", "OK");
  w.AddBool("shutting_down", true);
  return w.Finish();
}

std::string SerializeReloadResponse(const std::string& id,
                                    const ReloadOutcome& outcome) {
  JsonLineWriter w;
  if (!id.empty()) w.AddString("id", id);
  w.AddString("status", "OK");
  w.AddUint("epoch", outcome.sequence);
  w.AddString("fingerprint", FingerprintToWireHex(outcome.fingerprint_lo,
                                                  outcome.fingerprint_hi));
  w.AddUint("groups", outcome.groups);
  w.AddUint("delta_records", outcome.delta_records);
  if (outcome.torn_tail) w.AddBool("torn_tail", true);
  if (outcome.noop) w.AddBool("noop", true);
  return w.Finish();
}

Status StatusFromResponseLine(std::string_view line) {
  StatusOr<JsonObject> parsed = ParseJsonObjectLine(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue* status = Find(*parsed, "status");
  if (status == nullptr || status->kind != JsonValue::Kind::kString) {
    return dime::ParseError("response has no string \"status\" field");
  }
  StatusCode code;
  if (!StatusCodeFromName(status->string_value, &code)) {
    return dime::ParseError("response has unknown status '" +
                            status->string_value + "'");
  }
  if (code == StatusCode::kOk) return OkStatus();
  std::string message;
  if (const JsonValue* error = Find(*parsed, "error");
      error != nullptr && error->kind == JsonValue::Kind::kString) {
    message = error->string_value;
  }
  return Status(code, std::move(message));
}

}  // namespace dime
