#ifndef DIME_SERVER_RESULT_CACHE_H_
#define DIME_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "src/common/mutex.h"
#include "src/core/dime.h"

/// \file result_cache.h
/// The serving layer's result cache: repeated or overlapping "check group
/// G" requests skip the engine entirely when the *content* of the request
/// is identical to one already answered.
///
/// Cache key. A request's outcome is fully determined by (engine, rule
/// set, group content): the engines are deterministic and the context /
/// ontologies are fixed for the lifetime of a service. The key is
/// therefore a 128-bit fingerprint over the canonical serializations —
/// RuleSetToText for the rules, GroupToTsv for the group — prefixed with
/// the engine name. Hashing content instead of the client's group *name*
/// means a re-crawled page with identical entities still hits, and a page
/// that changed by one entity misses (no stale answers).
///
/// Only complete (result.ok()) results are inserted: a deadline-truncated
/// scrollbar is valid but partial, and caching it would pin the partial
/// answer for future callers with laxer deadlines.
///
/// Collisions: two distinct requests colliding on all 128 bits of two
/// independent FNV-1a streams is vanishingly unlikely at any realistic
/// cache size; we accept that instead of storing full serializations,
/// which would multiply the cache's memory footprint.

namespace dime {

/// 128 bits of content hash (two independent 64-bit FNV-1a streams).
struct Fingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const Fingerprint& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const Fingerprint& other) const { return !(*this == other); }
};

struct FingerprintHash {
  size_t operator()(const Fingerprint& fp) const {
    // lo is already a mixed 64-bit hash; fold hi in for map dispersion.
    return static_cast<size_t>(fp.lo ^ (fp.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Fingerprints a byte string (two FNV-1a variants with distinct offset
/// bases, so the halves are independent).
Fingerprint FingerprintBytes(std::string_view bytes);

/// Thread-safe LRU cache from request fingerprint to a completed engine
/// result. Values are shared_ptr<const ...> so a hit can be returned (and
/// later evicted) without copying the result's vectors under the lock.
class ResultCache {
 public:
  /// capacity == 0 disables the cache: Lookup always misses (and counts
  /// the miss, so /stats still shows traffic), Insert is a no-op.
  explicit ResultCache(size_t capacity);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached result for `key`, or nullptr. A hit refreshes the entry's
  /// LRU position. Counts one hit or one miss.
  std::shared_ptr<const DimeResult> Lookup(const Fingerprint& key)
      DIME_EXCLUDES(mu_);

  /// Inserts (or refreshes) `key`. Evicts the least-recently-used entry
  /// when at capacity. Inserting a result that is not ok() is a caller
  /// bug — enforced with DIME_DCHECK at the call site's layer.
  void Insert(const Fingerprint& key, std::shared_ptr<const DimeResult> value)
      DIME_EXCLUDES(mu_);

  /// Drops every entry (hit/miss counters survive). Used on corpus epoch
  /// swaps: key fingerprints already prevent cross-epoch hits, so this is
  /// hygiene — superseded entries would only occupy LRU slots.
  void Clear() DIME_EXCLUDES(mu_);

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t size = 0;
  };
  Counters counters() const DIME_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    Fingerprint key;
    std::shared_ptr<const DimeResult> value;
  };
  using LruList = std::list<Entry>;

  const size_t capacity_;
  mutable Mutex mu_;
  /// Most-recently-used at the front.
  LruList lru_ DIME_GUARDED_BY(mu_);
  std::unordered_map<Fingerprint, LruList::iterator, FingerprintHash> index_
      DIME_GUARDED_BY(mu_);
  Counters counters_ DIME_GUARDED_BY(mu_);
};

}  // namespace dime

#endif  // DIME_SERVER_RESULT_CACHE_H_
