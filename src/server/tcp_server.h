#ifndef DIME_SERVER_TCP_SERVER_H_
#define DIME_SERVER_TCP_SERVER_H_

#include <cstddef>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/server/dispatch.h"
#include "src/server/service.h"

/// \file tcp_server.h
/// The socket transport around DimeService. Since the event-loop
/// rewrite this is a thin facade over EventLoopServer (event_loop.h):
/// one epoll IO thread multiplexes every connection, speaking both the
/// line-JSON protocol of wire.h (byte-identical replies to the old
/// thread-per-connection transport) and the HTTP/1.1 front door of
/// http.h on the same port. The facade keeps the name and the API every
/// caller already uses; the transport mechanics live in event_loop.h.
///
/// Shutdown paths (unchanged):
///  * a client sends {"type":"shutdown"} / POST /v1/shutdown: the ack is
///    written, then Wait() unblocks — the caller (server_main) runs
///    Stop() and drains the service;
///  * the owner calls Stop() directly (tests): graceful drain — in-flight
///    requests finish and flush, bounded by a drain timeout;
///  * a signal handler (or any other thread) calls RequestShutdown():
///    Wait() unblocks exactly as if a shutdown request had arrived.

namespace dime {

class EventLoopServer;

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after Start().
  int port = 0;
  int backlog = 64;
  /// A connection with no inbound bytes, no queued work and nothing left
  /// to write for this long is disconnected so stuck peers cannot pin
  /// server state forever. <= 0 disables the timeout.
  int idle_timeout_ms = 0;
  /// A request line longer than this is an abuse signal; the connection
  /// is cut instead of buffering without bound. The default comfortably
  /// fits the largest inline group the engines could chew. Also caps the
  /// HTTP request body.
  size_t max_line_bytes = 64u << 20;
  /// Connection-count ceiling: a connection over it is answered with one
  /// clean RESOURCE_EXHAUSTED error and closed (see event_loop.h).
  size_t max_connections = 4096;
  /// Per-connection pipelining cap: past it the connection's reads pause
  /// and TCP flow control pushes back on the client.
  int max_pipeline_depth = 32;
  /// Handles the admin "reload" verb: re-read the corpus source and swap
  /// it in (the owner knows the paths — typically
  /// DimeService::ReloadFromSnapshot + ApplyDeltaLog). The argument is
  /// the request's optional expected fingerprint ("" = unconditional;
  /// see wire.h). Null: reload is answered INVALID_ARGUMENT. Runs on a
  /// transport offload thread; must be thread-safe.
  ReloadHandler reload_handler;
};

class TcpServer {
 public:
  /// `service` is borrowed and must outlive the server.
  TcpServer(DimeService* service, TcpServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and spawns the IO loop. IO_ERROR when the socket
  /// cannot be created/bound (e.g. the port is taken).
  Status Start();

  /// The bound port (valid after a successful Start).
  int port() const;

  /// Blocks until Stop() is called or a shutdown request arrives.
  void Wait();

  /// Graceful drain + teardown. Idempotent. Does NOT shut down the
  /// service (the owner decides when to drain it).
  void Stop();

  /// True once a {"type":"shutdown"} request has been acked.
  bool shutdown_requested() const;

  /// Unblocks Wait() as if a shutdown request had arrived. Safe to call
  /// from any thread (server_main's signal helper thread calls it after
  /// the self-pipe trips). Does not stop the server by itself — the
  /// Wait() caller owns the drain sequence.
  void RequestShutdown();

  /// Transport-level dispatch: one request line in, one response line
  /// out. Exposed so tests can exercise the protocol without sockets.
  std::string Dispatch(const std::string& line);

 private:
  DimeService* const service_;
  TcpServerOptions options_;
  std::unique_ptr<EventLoopServer> server_;
};

/// Client-side helper (dime_cli --client, tests, benches): connects to
/// host:port, sends `line` (a '\n' is appended when missing), reads one
/// response line. UNAVAILABLE when the server is unreachable, IO_ERROR /
/// DEADLINE_EXCEEDED on broken or timed-out reads.
StatusOr<std::string> SendRequestLine(const std::string& host, int port,
                                      const std::string& line,
                                      int timeout_ms = 30000);

}  // namespace dime

#endif  // DIME_SERVER_TCP_SERVER_H_
