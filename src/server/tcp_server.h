#ifndef DIME_SERVER_TCP_SERVER_H_
#define DIME_SERVER_TCP_SERVER_H_

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/server/service.h"

/// \file tcp_server.h
/// The socket transport around DimeService: accepts TCP connections and
/// speaks the line-delimited JSON protocol of wire.h. One thread per
/// connection — the transport threads only parse, block in
/// DimeService::Check (where admission control lives), and serialize, so
/// engine concurrency is bounded by the service's worker pool, not by
/// the connection count. Connection threads are joined on Stop().
///
/// Shutdown paths:
///  * a client sends {"type":"shutdown"}: the ack is written, then
///    Wait() unblocks — the caller (server_main) runs Stop() and drains
///    the service;
///  * the owner calls Stop() directly (tests): the listen socket is shut
///    down, the accept loop exits, every connection thread is joined;
///  * a signal handler (or any other thread) calls RequestShutdown():
///    Wait() unblocks exactly as if a shutdown request had arrived, and
///    the owner drains through the same path.

namespace dime {

struct TcpServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after Start().
  int port = 0;
  int backlog = 64;
  /// Per-connection receive timeout; a client idle for longer is
  /// disconnected so stuck peers cannot pin transport threads forever.
  /// <= 0 disables the timeout.
  int idle_timeout_ms = 0;
  /// A request line longer than this is an abuse signal; the connection
  /// is cut instead of buffering without bound. The default comfortably
  /// fits the largest inline group the engines could chew.
  size_t max_line_bytes = 64u << 20;
  /// Handles the admin "reload" verb: re-read the corpus source and swap
  /// it in (the owner knows the paths — typically
  /// DimeService::ReloadFromSnapshot + ApplyDeltaLog). Null: reload is
  /// answered INVALID_ARGUMENT. Runs on a transport thread; must be
  /// thread-safe.
  std::function<StatusOr<ReloadOutcome>()> reload_handler;
};

class TcpServer {
 public:
  /// `service` is borrowed and must outlive the server.
  TcpServer(DimeService* service, TcpServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and spawns the accept loop. IO_ERROR when the
  /// socket cannot be created/bound (e.g. the port is taken).
  Status Start();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Blocks until Stop() is called or a shutdown request arrives.
  void Wait();

  /// Stops accepting, closes the listen socket, joins the accept loop
  /// and every connection thread. Idempotent. Does NOT shut down the
  /// service (the owner decides when to drain it).
  void Stop();

  /// True once a {"type":"shutdown"} request has been acked.
  bool shutdown_requested() const;

  /// Unblocks Wait() as if a shutdown request had arrived. Safe to call
  /// from any thread (server_main's signal helper thread calls it after
  /// the self-pipe trips). Does not stop the server by itself — the
  /// Wait() caller owns the drain sequence.
  void RequestShutdown();

  /// Transport-level dispatch: one request line in, one response line
  /// out. Exposed so tests can exercise the protocol without sockets.
  std::string Dispatch(const std::string& line);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  DimeService* const service_;
  const TcpServerOptions options_;
  int listen_fd_ = -1;  // written in Start() before the accept thread spawns
  int port_ = 0;
  std::thread accept_thread_;

  mutable Mutex mu_;
  std::vector<std::thread> connections_ DIME_GUARDED_BY(mu_);
  bool stopping_ DIME_GUARDED_BY(mu_) = false;
  bool shutdown_requested_ DIME_GUARDED_BY(mu_) = false;
  CondVar wake_;
};

/// Client-side helper (dime_cli --client, tests, benches): connects to
/// host:port, sends `line` (a '\n' is appended when missing), reads one
/// response line. UNAVAILABLE when the server is unreachable, IO_ERROR /
/// DEADLINE_EXCEEDED on broken or timed-out reads.
StatusOr<std::string> SendRequestLine(const std::string& host, int port,
                                      const std::string& line,
                                      int timeout_ms = 30000);

}  // namespace dime

#endif  // DIME_SERVER_TCP_SERVER_H_
