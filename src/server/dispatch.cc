#include "src/server/dispatch.h"

#include <memory>
#include <utility>

#include "src/common/mutex.h"
#include "src/core/corpus.h"

namespace dime {
namespace {

DispatchResult ErrorResult(const std::string& id, const Status& status) {
  DispatchResult result;
  result.code = status.code();
  result.line = SerializeErrorResponse(id, status);
  return result;
}

}  // namespace

void DispatchRequestAsync(DimeService* service, const DispatchHooks& hooks,
                          const WireRequest& request,
                          std::function<void(DispatchResult)> done) {
  switch (request.type) {
    case WireRequest::Type::kPing: {
      DispatchResult result;
      result.line = SerializePingResponse(request.id);
      done(std::move(result));
      return;
    }
    case WireRequest::Type::kStats: {
      DispatchResult result;
      result.line = SerializeStatsResponse(request.id, service->Stats());
      done(std::move(result));
      return;
    }
    case WireRequest::Type::kShutdown: {
      DispatchResult result;
      result.line = SerializeShutdownResponse(request.id);
      result.shutdown = true;
      done(std::move(result));
      return;
    }
    case WireRequest::Type::kReload: {
      if (!hooks.reload_handler) {
        done(ErrorResult(
            request.id,
            InvalidArgumentError("this server has no reloadable corpus "
                                 "source (started without --snapshot)")));
        return;
      }
      StatusOr<ReloadOutcome> outcome =
          hooks.reload_handler(request.fingerprint);
      if (!outcome.ok()) {
        done(ErrorResult(request.id, outcome.status()));
        return;
      }
      DispatchResult result;
      result.line = SerializeReloadResponse(request.id, *outcome);
      done(std::move(result));
      return;
    }
    case WireRequest::Type::kCheck:
      break;
  }

  // check: named groups are passed through and resolved by the service
  // against the epoch it pins — resolving here could hand it a group
  // pointer from an epoch a concurrent reload is retiring. An inline
  // group must outlive the (possibly much later) worker-side completion,
  // so it lives on the heap, owned by the completion lambda.
  auto inline_group = std::make_shared<Group>();
  CheckRequest check;
  if (!request.group_tsv.empty()) {
    Status parsed_group =
        ParseGroupTsv(request.group_tsv, "inline", inline_group.get());
    if (!parsed_group.ok()) {
      done(ErrorResult(request.id, parsed_group));
      return;
    }
    check.group = inline_group.get();
  } else if (!request.group_name.empty()) {
    check.group_name = request.group_name;
  } else {
    done(ErrorResult(
        request.id,
        InvalidArgumentError("check needs \"group\" or \"group_tsv\"")));
    return;
  }

  check.deadline_ms = request.deadline_ms;
  check.bypass_cache = request.no_cache;
  if (!request.engine.empty()) {
    EngineKind kind;
    if (!EngineKindFromName(request.engine, &kind)) {
      done(ErrorResult(
          request.id,
          InvalidArgumentError("unknown engine '" + request.engine + "'")));
      return;
    }
    check.engine = kind;
  }

  service->CheckAsync(
      check, [id = request.id, inline_group = std::move(inline_group),
              done = std::move(done)](StatusOr<CheckReply> reply) {
        if (!reply.ok()) {
          done(ErrorResult(id, reply.status()));
          return;
        }
        DispatchResult result;
        // Engine truncation is not an error arm (the body carries the
        // partial result), but the coarse code still reports it so the
        // HTTP framing can say 504 instead of 200.
        result.code = reply->result->status.code();
        // reply->group is our heap inline group or a group owned by
        // reply->epoch, which the reply pins — safe either way.
        result.line = SerializeCheckResponse(id, *reply->group, *reply);
        done(std::move(result));
      });
}

DispatchResult DispatchLine(DimeService* service, const DispatchHooks& hooks,
                            const std::string& line) {
  StatusOr<WireRequest> parsed = ParseRequestLine(line);
  if (!parsed.ok()) return ErrorResult("", parsed.status());

  // Every non-check verb completes inline, and the sync Check inside
  // CheckAsync's admitted path is exactly what the old thread-per-
  // connection transport did — so waiting on the callback here cannot
  // deadlock: a service worker thread delivers it.
  struct Rendezvous {
    Mutex mu;
    CondVar ready;
    DispatchResult result DIME_GUARDED_BY(mu);
    bool fired DIME_GUARDED_BY(mu) = false;
  } rv;
  DispatchRequestAsync(service, hooks, *parsed, [&rv](DispatchResult r) {
    MutexLock lock(&rv.mu);
    rv.result = std::move(r);
    rv.fired = true;
    rv.ready.Signal();
  });
  MutexLock lock(&rv.mu);
  while (!rv.fired) rv.ready.Wait(&rv.mu);
  return rv.result;
}

}  // namespace dime
