#include "src/server/net_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dime {

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SetRecvTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int ConnectToHost(const std::string& host, int port, int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result) != 0) {
    return -1;
  }
  int fd = -1;
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    SetRecvTimeout(fd, timeout_ms);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  return fd;
}

bool RecvLine(int fd, std::string* line) {
  line->clear();
  char c;
  while (true) {
    ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 0) return false;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // timeout or hard error
    }
    if (c == '\n') return true;
    line->push_back(c);
    // A line longer than any legal request is an abuse signal; cut the
    // connection instead of buffering without bound. 64 MiB comfortably
    // fits the largest inline group the engines could chew anyway.
    if (line->size() > (64u << 20)) return false;
  }
}

StatusOr<int> ListenTcp(const std::string& host, int port, int backlog,
                        int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("not an IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = IoError("bind " + host + ":" + std::to_string(port) +
                            ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  return fd;
}

}  // namespace dime
