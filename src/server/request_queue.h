#ifndef DIME_SERVER_REQUEST_QUEUE_H_
#define DIME_SERVER_REQUEST_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "src/common/mutex.h"

/// \file request_queue.h
/// The admission-control boundary of the serving layer: a bounded MPMC
/// queue that NEVER blocks producers. A full queue rejects the push
/// immediately (the service turns that into RESOURCE_EXHAUSTED), because
/// under overload a fast "try later" keeps tail latency bounded while a
/// blocking enqueue would stack up transport threads until everything
/// times out at once.
///
/// Consumers (the worker pool) block in BlockingPop. Close() starts a
/// graceful drain: producers are turned away with kClosed, consumers keep
/// popping until the queue is empty and then get nullopt — so work that
/// was admitted before shutdown is still executed, never dropped.

namespace dime {

enum class QueuePushResult {
  kAccepted,  ///< item enqueued
  kFull,      ///< bounded capacity reached — shed the request
  kClosed,    ///< Close() was called — the service is shutting down
};

template <typename T>
class BoundedRequestQueue {
 public:
  /// `capacity` must be >= 1 (a zero-capacity queue would reject every
  /// request, which is a configuration error, not a policy).
  explicit BoundedRequestQueue(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedRequestQueue(const BoundedRequestQueue&) = delete;
  BoundedRequestQueue& operator=(const BoundedRequestQueue&) = delete;

  /// Non-blocking admission decision. O(1); never waits. A rejected push
  /// (kFull / kClosed) leaves `item` untouched in the caller's hands —
  /// the service answers the shed request through state the item still
  /// owns (its completion callback).
  QueuePushResult TryPush(T&& item) DIME_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (closed_) return QueuePushResult::kClosed;
      if (items_.size() >= capacity_) return QueuePushResult::kFull;
      items_.push_back(std::move(item));
    }
    // Signal outside the critical section: the woken consumer re-acquires
    // mu_ in BlockingPop, so signaling under the lock would just make it
    // block again immediately.
    ready_.Signal();
    return QueuePushResult::kAccepted;
  }

  /// Blocks until an item is available or the queue is closed AND empty.
  /// nullopt means "drained and closed" — the consumer should exit.
  std::optional<T> BlockingPop() DIME_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (items_.empty() && !closed_) {
      ready_.Wait(&mu_);
    }
    if (items_.empty()) return std::nullopt;  // closed_ and drained
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Begins the graceful drain (idempotent). Producers see kClosed from
  /// now on; consumers finish the backlog and then get nullopt.
  void Close() DIME_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    ready_.SignalAll();
  }

  size_t size() const DIME_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  bool closed() const DIME_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar ready_;
  std::deque<T> items_ DIME_GUARDED_BY(mu_);
  bool closed_ DIME_GUARDED_BY(mu_) = false;
};

}  // namespace dime

#endif  // DIME_SERVER_REQUEST_QUEUE_H_
