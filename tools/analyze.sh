#!/usr/bin/env bash
# Dynamic-analysis driver: builds and tests the repo under ASan+UBSan and
# TSan in separate build trees (the two are mutually exclusive in one
# binary — CMake enforces that too).
#
# Usage:
#   tools/analyze.sh            # both legs
#   tools/analyze.sh --asan     # address+undefined only
#   tools/analyze.sh --tsan     # thread only
#   tools/analyze.sh --tsan -j8 # bounded parallelism
#
# The TSan leg exports TSAN_OPTIONS pointing at tools/tsan.supp so known
# benign reports in third-party code stay suppressed; keep that file empty
# of first-party entries — a race in src/ is a bug, not a suppression.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
RUN_ASAN=1
RUN_TSAN=1

for arg in "$@"; do
  case "$arg" in
    --asan) RUN_TSAN=0 ;;
    --tsan) RUN_ASAN=0 ;;
    -j*) JOBS="${arg#-j}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

run_leg() {
  local name="$1" sanitize="$2" build_dir="$ROOT/build-$1"
  echo "=== [$name] configure ($sanitize) ==="
  cmake -B "$build_dir" -S "$ROOT" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DDIME_SANITIZE="$sanitize" \
        -DDIME_WERROR=ON
  echo "=== [$name] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$name] test ==="
  (cd "$build_dir" && ctest --output-on-failure -j "$JOBS")
}

if [[ "$RUN_ASAN" == 1 ]]; then
  ASAN_OPTIONS="detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    run_leg asan "address;undefined"
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  TSAN_OPTIONS="suppressions=$ROOT/tools/tsan.supp:halt_on_error=1:second_deadlock_stack=1" \
    run_leg tsan "thread"
fi

echo "=== analyze.sh: all requested legs passed ==="
